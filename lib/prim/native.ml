module Atomic = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make
  let make_padded v = Padding.copy_as_padded (Stdlib.Atomic.make v)
  let get = Stdlib.Atomic.get
  let set = Stdlib.Atomic.set
  let exchange = Stdlib.Atomic.exchange
  let compare_and_set = Stdlib.Atomic.compare_and_set
  let fetch_and_add = Stdlib.Atomic.fetch_and_add
  let incr = Stdlib.Atomic.incr
  let decr = Stdlib.Atomic.decr
end

let cpu_relax = Domain.cpu_relax

let relax n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let yield = Thread.yield

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Per-domain generator, lazily seeded from the domain id and the clock so
   that concurrently created domains get distinct streams. *)
let rng_key =
  Domain.DLS.new_key (fun () ->
      let id = (Domain.self () :> int) in
      Rng.create
        (Int64.add (Int64.of_int (0x51EC + (id * 0x9E37))) (now_ns ())))

let seed_rng seed = Rng.create seed |> Domain.DLS.set rng_key
let rand_int bound = Rng.int (Domain.DLS.get rng_key) bound
let rand_bits () = Rng.bits (Domain.DLS.get rng_key)

(* Native allocation is measured by the GC itself (Gc.minor_words); the
   hook only exists so the simulator can count the same sites. *)
let note_alloc () = ()

(* ------------------------------------------------------------------ *)
(* Execution (Prim_intf.EXEC): a deferred domain pool.

   [spawn] only registers a thunk; [await_all] spawns the domains, holds
   them on a start barrier so they begin the measured phase together,
   releases them, sleeps out the current deadline's duration (if one was
   created), raises the stop flag and joins. Harness runs are sequential,
   so one module-level context is enough; [with_exec] resets it.

   Randomness: [with_exec ~seed] creates a run-level SplitMix64 stream;
   the caller's generator and each worker's generator are [Rng.split]
   from it in spawn order — the same derivation the simulator uses for
   its fibers — so every draw (benchmark loop and algorithm-internal
   alike) goes through [rand_int] on one documented stream per thread. *)

type budget = float

type deadline = {
  stop : bool Stdlib.Atomic.t;
  duration : float;
  mutable measured : float; (* wall time workers actually ran *)
}

type exec_ctx = {
  mutable thunks : (int * Rng.t * (unit -> unit)) list; (* reversed *)
  mutable spawned : int;
  mutable current : deadline option;
  mutable run_rng : Rng.t;
}

let ctx =
  { thunks = []; spawned = 0; current = None; run_rng = Rng.create 0x5ECL }

let tid_key = Domain.DLS.new_key (fun () -> -1)

let deadline_after duration =
  let d = { stop = Stdlib.Atomic.make false; duration; measured = duration } in
  ctx.current <- Some d;
  d

let expired d = Stdlib.Atomic.get d.stop
let elapsed d = d.measured

let spawn body =
  let tid = ctx.spawned in
  ctx.spawned <- tid + 1;
  ctx.thunks <- (tid, Rng.split ctx.run_rng, body) :: ctx.thunks

let thread_id () = Domain.DLS.get tid_key
let num_threads () = ctx.spawned

let await_all () =
  let thunks = List.rev ctx.thunks in
  ctx.thunks <- [];
  let n = List.length thunks in
  if n > 0 then begin
    (* Sense barrier: workers check in, then hold until [go] flips. *)
    let ready = Stdlib.Atomic.make 0 in
    let go = Stdlib.Atomic.make false in
    let domains =
      List.map
        (fun (tid, rng, body) ->
          Domain.spawn (fun () ->
              Domain.DLS.set tid_key tid;
              Domain.DLS.set rng_key rng;
              Stdlib.Atomic.incr ready;
              while not (Stdlib.Atomic.get go) do
                Domain.cpu_relax ()
              done;
              body ()))
        thunks
    in
    while Stdlib.Atomic.get ready < n do
      Domain.cpu_relax ()
    done;
    Stdlib.Atomic.set go true;
    let t0 = Unix.gettimeofday () in
    (match ctx.current with
    | Some d ->
        Unix.sleepf d.duration;
        let t1 = Unix.gettimeofday () in
        Stdlib.Atomic.set d.stop true;
        d.measured <- t1 -. t0
    | None -> ());
    List.iter Domain.join domains;
    match ctx.current with
    | Some _ -> ()
    | None ->
        (* Untimed (op-bounded) run: elapsed is join-to-join. *)
        ignore (Unix.gettimeofday () -. t0)
  end;
  ctx.current <- None

let with_exec ~seed f =
  ctx.thunks <- [];
  ctx.spawned <- 0;
  ctx.current <- None;
  ctx.run_rng <- Rng.create seed;
  Domain.DLS.set rng_key (Rng.split ctx.run_rng);
  f ()
