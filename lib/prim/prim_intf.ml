(* Signature of the execution substrate that every concurrent algorithm in
   this repository is written against.

   Two implementations exist:
   - {!Sec_prim.Native}: real shared memory, [Stdlib.Atomic] and [Domain];
   - [Sec_sim.Sim_prim]: a deterministic discrete-event simulator in which
     every atomic access is charged against a NUMA cache-cost model.

   Algorithms must route {e all} shared-memory communication through
   [Atomic]; plain mutable fields are only allowed when they are published
   through an atomic operation before becoming shared (the usual OCaml 5
   publication idiom), because the simulator executes fibers one at a time
   and does not intercept plain loads/stores. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t

  (** [make_padded v] is [make v] but the cell is allocated in its own
      cache line, so that independently contended cells never exhibit
      false sharing. *)
  val make_padded : 'a -> 'a t

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

module type S = sig
  module Atomic : ATOMIC

  (** Hint that the caller is spinning; on native hardware a pause
      instruction, in the simulator a one-cycle charge. *)
  val cpu_relax : unit -> unit

  (** [relax n] relaxes for roughly [n] units. The simulator charges the
      whole amount with a single scheduling event, which keeps spin loops
      with exponential backoff cheap to simulate. *)
  val relax : int -> unit

  (** Give other threads a chance to run. Used by spin loops once they
      escalate past busy waiting; essential when threads outnumber cores. *)
  val yield : unit -> unit

  (** Monotonic clock. Native: wall clock in nanoseconds. Simulator: the
      calling fiber's virtual time in cycles. Only differences matter. *)
  val now_ns : unit -> int64

  (** [rand_int bound] draws uniformly from [\[0, bound)] using a
      per-thread generator (no sharing, no synchronization). *)
  val rand_int : int -> int

  (** 30 random bits from the per-thread generator. *)
  val rand_bits : unit -> int

  (** Account one hot-path heap allocation: a freshly constructed node
      that did not come out of a recycler (see
      {!Sec_reclaim.Magazine}). Native: a no-op — the GC's own counters
      already measure allocation. Simulator: bumps the run's
      [Sim.stats.allocs] without a scheduling event, so instrumenting a
      path never perturbs schedules (pinned-seed results are unchanged
      by adding or removing calls). *)
  val note_alloc : unit -> unit
end

(** {!S} plus an execution capability: the substrate can not only describe
    shared memory but also run workers and bound a run in time. This is
    what the harness's single workload driver ([Sec_harness.Runner.Make])
    is written against, so the exact same prefill/announce/measure loop
    executes on real domains and inside the simulator.

    Implementations:
    - {!Sec_prim.Native}: a deferred domain pool released by a start
      barrier, with a stop flag flipped after a wall-clock sleep;
    - [Sec_sim.Sim.Prim]: fibers of the discrete-event simulator, with
      deadlines in virtual cycles.

    Worker identity and randomness follow one scheme on both backends:
    workers are numbered [0, 1, ...] in spawn order ({!EXEC.thread_id}),
    and each worker's generator is an independent SplitMix64 stream
    derived ([Rng.split]) from the run-level seed, so a run is
    reproducible from (seed, spawn order) alone. *)
module type EXEC = sig
  include S

  (** A run duration in the substrate's own unit: wall-clock seconds on
      native hardware, virtual cycles in the simulator. *)
  type budget

  (** A ticking run bound, created before the workers start. *)
  type deadline

  val deadline_after : budget -> deadline

  (** Cheap enough to poll once per benchmark-loop iteration: a stop-flag
      read on native, a virtual-clock comparison in the simulator. *)
  val expired : deadline -> bool

  (** How long the workers actually ran, in {!budget} units, measured by
      the backend. Meaningful once {!await_all} has returned. *)
  val elapsed : deadline -> budget

  (** Register a worker. Workers are released together (native: after a
      start barrier; simulator: fibers share the spawner's virtual time)
      and numbered [0, 1, ...] in spawn order. *)
  val spawn : (unit -> unit) -> unit

  (** Block the caller until every spawned worker has finished. On the
      native backend this is also what starts the deferred workers and,
      when a deadline exists, sleeps out its duration before raising the
      stop flag. *)
  val await_all : unit -> unit

  (** The calling worker's id (its spawn rank). *)
  val thread_id : unit -> int

  (** Number of workers spawned so far in the current run. *)
  val num_threads : unit -> int
end
