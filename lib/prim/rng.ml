(* SplitMix64 (Steele, Lea & Flood 2014).

   The state is one 64-bit word and every draw is a single add + mix.
   The hot draws ([bits], [int]) write the whole chain out in one body:
   ocamlopt unboxes let-bound [int64] intermediates whose uses are all
   arithmetic, so the only boxed value per draw is the one stored back
   into the mutable state field. The simulator draws from these on its
   per-access jitter path, so a draw must not allocate a chain of boxed
   intermediates — and the output sequence is pinned by golden schedule
   digests, so any change here must be value-identical. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64 output function, used by the cold draws. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let[@inline] bits t =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  Int64.to_int (Int64.shift_right_logical z 34)

let[@inline] int t bound =
  assert (bound > 0);
  if bound = 1 then 0
  else begin
    let s = Int64.add t.state golden_gamma in
    t.state <- s;
    let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    let z = Int64.(logxor z (shift_right_logical z 31)) in
    (* Rejection-free: a 60-bit draw modulo [bound] has negligible bias for
       the bounds used here (all far below 2^30). The draw is non-negative,
       so a power-of-two bound can mask instead of divide — same value,
       no 64-bit [idiv] (the simulator's jitter path draws with bound 8 on
       every single event). *)
    let x = Int64.to_int (Int64.shift_right_logical z 4) in
    if bound land (bound - 1) = 0 then x land (bound - 1) else x mod bound
  end

let split t = { state = next_int64 t }
