(** Native implementation of {!Prim_intf.EXEC}: real shared memory via
    [Stdlib.Atomic], workers running on [Domain]s.

    Spin loops must escalate to {!yield} (see {!Backoff}); this host may
    have fewer cores than domains, and a non-yielding spinner would burn
    its whole scheduling quantum while the thread it waits for is
    descheduled.

    Execution: {!spawn} defers worker bodies; {!await_all} starts them on
    real domains, releases them together through a start barrier, sleeps
    out the current deadline (if any) before raising its stop flag, and
    joins. Budgets are wall-clock seconds. *)

include Prim_intf.EXEC with type budget = float

(** Re-seed the calling thread's random generator (tests use this for
    reproducibility). *)
val seed_rng : int64 -> unit

(** [with_exec ~seed f] resets the execution context for one run: a fresh
    run-level SplitMix64 stream is created from [seed], the caller's
    generator and each subsequently spawned worker's generator are
    {!Rng.split} from it in spawn order — the same per-fiber derivation
    the simulator uses — and [f] is run. Runs must not nest or overlap;
    the harness drives them sequentially. *)
val with_exec : seed:int64 -> (unit -> 'a) -> 'a
