(* Reusable conformance checks for STACK implementations, packaged as a
   library so downstream users can validate their own stacks the way this
   repository validates SEC and its competitors.

   The checks are substrate-polymorphic: provide a {!RUNNER} saying how to
   execute a parallel phase (real domains, or fibers inside the simulator)
   and they drive any {!Stack_intf.S} through sequential-semantics,
   conservation and duplicate-detection checks.

   For linearizability over a recorded history (rather than the invariant
   checks here), the benchmark harness's [Sec_harness.Runner] records a
   {!History} on either substrate via its history observer and feeds it to
   {!Lin_check} — see [test/test_runner_diff.ml] and docs/HARNESS.md. *)

module type RUNNER = sig
  module P : Sec_prim.Prim_intf.S

  (** [run body] executes [body ~spawn ~await] in the substrate's context:
      [spawn] schedules a concurrent task, [await] blocks until all
      spawned tasks finish. [run] itself returns [body]'s result. *)
  val run :
    (spawn:((unit -> unit) -> unit) -> await:(unit -> unit) -> 'a) -> 'a
end

(** Real domains. *)
module Domain_runner : RUNNER with module P = Sec_prim.Native = struct
  module P = Sec_prim.Native

  let run body =
    let domains = ref [] in
    let spawn f = domains := Domain.spawn f :: !domains in
    let await () =
      List.iter Domain.join !domains;
      domains := []
    in
    let result = body ~spawn ~await in
    await ();
    result
end

type failure = { check : string; detail : string }

type report = { passed : int; failures : failure list }

let ok = { passed = 1; failures = [] }
let fail check detail = { passed = 0; failures = [ { check; detail } ] }

let merge a b =
  { passed = a.passed + b.passed; failures = a.failures @ b.failures }

module Make (R : RUNNER) (S : Stack_intf.S) = struct
  (* ------------------------------------------------------------------ *)

  let sequential_semantics () =
    R.run (fun ~spawn:_ ~await:_ ->
        let s = S.create ~max_threads:1 () in
        let check name cond detail =
          if cond then ok else fail ("sequential: " ^ name) detail
        in
        let r1 = check "empty pop" (S.pop s ~tid:0 = None) "expected None" in
        S.push s ~tid:0 1;
        S.push s ~tid:0 2;
        let r2 =
          check "peek top" (S.peek s ~tid:0 = Some 2) "expected Some 2"
        in
        let r3 = check "lifo 2" (S.pop s ~tid:0 = Some 2) "expected Some 2" in
        let r4 = check "lifo 1" (S.pop s ~tid:0 = Some 1) "expected Some 1" in
        let r5 =
          check "empty again" (S.pop s ~tid:0 = None) "expected None"
        in
        List.fold_left merge r1 [ r2; r3; r4; r5 ])

  (* Concurrent conservation: tag values uniquely; nothing may be lost,
     duplicated or invented. *)
  let conservation ?(threads = 4) ?(ops = 500) () =
    R.run (fun ~spawn ~await ->
        let s = S.create ~max_threads:threads () in
        let pushed = Array.make threads 0 in
        let popped = Array.init threads (fun _ -> ref []) in
        for tid = 0 to threads - 1 do
          spawn (fun () ->
              for i = 1 to ops do
                if R.P.rand_int 2 = 0 then begin
                  S.push s ~tid ((tid * 1_000_000) + i);
                  pushed.(tid) <- pushed.(tid) + 1
                end
                else
                  match S.pop s ~tid with
                  | Some v -> popped.(tid) := v :: !(popped.(tid))
                  | None -> ()
              done)
        done;
        await ();
        let rec drain acc =
          match S.pop s ~tid:0 with Some v -> drain (v :: acc) | None -> acc
        in
        let all_popped =
          drain [] @ List.concat_map (fun l -> !l) (Array.to_list popped)
        in
        let total_pushed = Array.fold_left ( + ) 0 pushed in
        let distinct = List.sort_uniq compare all_popped in
        if List.length distinct <> List.length all_popped then
          fail "conservation" "a value was popped twice"
        else if List.length all_popped <> total_pushed then
          fail "conservation"
            (Printf.sprintf "pushed %d values but recovered %d" total_pushed
               (List.length all_popped))
        else ok)

  (* Pops never invent values. *)
  let no_phantom_values ?(threads = 2) ?(ops = 300) () =
    R.run (fun ~spawn ~await ->
        let s = S.create ~max_threads:threads () in
        let bad = ref 0 in
        for tid = 0 to threads - 1 do
          spawn (fun () ->
              for i = 1 to ops do
                S.push s ~tid ((tid * 1_000_000) + i);
                match S.pop s ~tid with
                | Some v -> if v < 0 || v mod 1_000_000 > ops then incr bad
                | None -> incr bad (* we just pushed: never empty *)
              done)
        done;
        await ();
        if !bad = 0 then ok
        else fail "no phantom values" (Printf.sprintf "%d anomalies" !bad))

  let all ?(threads = 4) ?(ops = 500) () =
    List.fold_left merge
      (sequential_semantics ())
      [ conservation ~threads ~ops (); no_phantom_values () ]
end
