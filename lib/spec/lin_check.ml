(* Linearizability checker for stack histories, after Wing & Gong's
   algorithm with the memoisation of Lowe ("Testing for linearizability").

   Search state: the set of not-yet-linearized operations plus the abstract
   stack contents. At each step any operation [o] whose invocation does not
   follow the response of another remaining operation may be linearized
   next, provided the abstract stack accepts it. Memoising on
   (remaining-set, stack) prunes the exponential blow-up enough for the
   history sizes the test suite uses (up to a few hundred operations over a
   handful of threads). *)

type result = Linearizable | Not_linearizable | Gave_up

type 'a cell = {
  op : 'a History.op;
  inv : int64;
  resp : int64;
}

(* Apply [op] to the abstract LIFO state; [None] if the outcome recorded in
   the history is impossible from this state. *)
let apply op state =
  match (op, state) with
  | History.Push v, s -> Some (v :: s)
  | History.Pop None, [] -> Some []
  | History.Pop None, _ :: _ -> None
  | History.Pop (Some v), top :: rest when top = v -> Some rest
  | History.Pop (Some _), _ -> None
  | History.Peek None, [] -> Some []
  | History.Peek None, _ :: _ -> None
  | History.Peek (Some v), top :: _ when top = v -> Some state
  | History.Peek (Some _), _ -> None

(* Remaining-set as a bitset over operation indices, encoded into bytes so
   it can key a hashtable together with the abstract state. *)
module Bitset = struct
  let create n = Bytes.make ((n + 7) / 8) '\xff'

  let full_mask n b =
    (* Clear the padding bits above [n] so keys are canonical. *)
    let last = n mod 8 in
    if last <> 0 then begin
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) land ((1 lsl last) - 1)))
    end;
    b

  let mem b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

  let remove b i =
    let b = Bytes.copy b in
    Bytes.set b (i / 8)
      (Char.chr (Char.code (Bytes.get b (i / 8)) land lnot (1 lsl (i mod 8))));
    b

  let is_empty b =
    let rec go i = i >= Bytes.length b || (Bytes.get b i = '\x00' && go (i + 1)) in
    go 0
end

exception Too_hard

let check ?(max_states = 2_000_000) ?(max_work = 50_000_000) ?(init = [])
    events =
  let cells =
    Array.of_list
      (List.map
         (fun (e : 'a History.event) -> { op = e.op; inv = e.inv; resp = e.resp })
         events)
  in
  let n = Array.length cells in
  if n = 0 then Linearizable
  else begin
    let seen : (Bytes.t * 'a list, unit) Hashtbl.t = Hashtbl.create 4096 in
    let states = ref 0 in
    (* Second guard alongside [max_states]: total linearization attempts.
       [max_states] bounds *distinct* memoised states, but each visited
       state fans out into up to n apply attempts and memo probes, and
       every probe hashes an (n/8-byte bitset, stack) key — so the time
       under the state cap alone is O(max_states · n²), effectively
       unbounded for the wide all-concurrent histories an adversary (or a
       fuzzer) can produce. Counting every linearization attempt bounds
       wall-clock directly; exceeding either budget reports [Gave_up]
       (inconclusive), never a wrong verdict. *)
    let work = ref 0 in
    let rec search remaining stack =
      if Bitset.is_empty remaining then true
      else if Hashtbl.mem seen (remaining, stack) then false
      else begin
        incr states;
        if !states > max_states then raise Too_hard;
        Hashtbl.add seen (remaining, stack) ();
        (* Earliest unfinished response bounds which ops can go first. *)
        let min_resp = ref Int64.max_int in
        for i = 0 to n - 1 do
          if Bitset.mem remaining i && Int64.compare cells.(i).resp !min_resp < 0
          then min_resp := cells.(i).resp
        done;
        let rec try_ops i =
          if i >= n then false
          else if
            Bitset.mem remaining i && Int64.compare cells.(i).inv !min_resp <= 0
          then begin
            incr work;
            if !work > max_work then raise Too_hard;
            match apply cells.(i).op stack with
            | Some stack' when search (Bitset.remove remaining i) stack' -> true
            | _ -> try_ops (i + 1)
          end
          else try_ops (i + 1)
        in
        try_ops 0
      end
    in
    let remaining = Bitset.full_mask n (Bitset.create n) in
    match search remaining init with
    | true -> Linearizable
    | false -> Not_linearizable
    | exception Too_hard -> Gave_up
  end

let pp_result ppf = function
  | Linearizable -> Format.pp_print_string ppf "linearizable"
  | Not_linearizable -> Format.pp_print_string ppf "NOT linearizable"
  | Gave_up -> Format.pp_print_string ppf "gave up (state bound)"
