(** Linearizability checking of recorded stack histories against the
    sequential LIFO specification (Wing–Gong search with memoisation). *)

type result = Linearizable | Not_linearizable | Gave_up

(** [check ?max_states ?max_work ?init events] decides whether the
    complete history [events] is linearizable with respect to a stack
    whose initial contents are [init] (top first). [max_states] bounds
    distinct memoised search states; [max_work] bounds total
    linearization attempts (the wall-clock guard — adversarial histories
    can burn unbounded time under the state cap alone by probing the
    memo table). Exceeding either yields [Gave_up] (an inconclusive
    verdict), never a wrong one. *)
val check :
  ?max_states:int ->
  ?max_work:int ->
  ?init:'a list ->
  'a History.event list ->
  result

val pp_result : Format.formatter -> result -> unit
