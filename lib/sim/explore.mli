(** Systematic schedule exploration with preemption bounding (CHESS-style
    stateless model checking) over the {!Sim_effects} instrumentation.

    A *scenario* is a generator returning fresh fiber bodies plus a final
    check; {!for_all} replays it under every schedule that deviates from
    a fair round-robin baseline by at most [max_preemptions] forced
    context switches placed before atomic accesses. The fair baseline
    makes exploration sound for blocking algorithms (spinning fibers
    always let their partners run).

    Scenario code uses {!Sim.Prim} exactly as simulator code does;
    {!Sim.spawn}/{!Sim.await_all} are not available inside scenarios. *)

type placement = { step : int; fiber : int }

(** How branching points are harvested from a run:
    - [`Exhaustive]: branch at every step at which another fiber was
      runnable (the historical behaviour — complete within the bound,
      but most branches commute);
    - [`Dpor]: dynamic partial-order reduction — branch only at steps
      whose access conflicts (same location, at least one write) with a
      later access of another fiber. Far fewer schedules for the same
      behaviours; see docs/ANALYSIS.md for the model and its limits. *)
type strategy = [ `Exhaustive | `Dpor ]

type violation_kind =
  | Check_failed  (** the scenario's final check returned false *)
  | Fiber_raised of string  (** a fiber or the check raised *)
  | Livelock  (** a schedule exceeded the per-run step budget *)
  | Race_detected of string
      (** the race detector flagged this schedule (with [detect_races]) *)
  | Reclamation_violation of string
      (** the reclamation checker flagged this schedule (with
          [check_reclamation]) *)

type violation = {
  kind : violation_kind;
  schedule : placement list;  (** forced preemptions reproducing it *)
  explored : int;  (** schedules run up to and including the violation *)
}

type result =
  | Passed of { schedules : int; truncated : bool }
  | Failed of violation

exception Unsupported of string

val pp_result : Format.formatter -> result -> unit

(** Round-trip a reproducing schedule through a compact
    ["step:fiber;step:fiber"] string, for pinning violations in bug
    reports and regression tests. [schedule_of_string] raises
    [Invalid_argument] on malformed input. *)
val schedule_to_string : placement list -> string

val schedule_of_string : string -> placement list

(** [for_all scenario] explores schedules depth-first until a violation,
    exhaustion of the bounded space, or [max_schedules] runs ([truncated]
    reports whether any bound cut the space). [scenario ()] must build
    fresh state and return [(fiber_bodies, final_check)]; it runs once
    per schedule, so it must be deterministic.

    [detect_races] monitors every run with a fresh
    {!Sec_analysis.Race_detector}; a write-write race fails the search
    with {!Race_detected} even when the scenario's check passes.

    [check_reclamation] likewise monitors every run with a fresh
    {!Sec_analysis.Reclaim_checker}: instrumented reclamation code feeds
    its shadow heap and any lifetime report (use-after-retire, unguarded
    access, double retire, ...) fails the search with
    {!Reclamation_violation} and a reproducing schedule. *)
val for_all :
  ?max_preemptions:int ->
  ?quantum:int ->
  ?max_schedules:int ->
  ?max_steps:int ->
  ?strategy:strategy ->
  ?detect_races:bool ->
  ?check_reclamation:bool ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  result

type one_outcome = Ok_run of bool | Raised of string | Livelocked

(** {1 Weighted-random exploration}

    A PCT-style randomized scheduler (Burckhardt et al., "A randomized
    scheduler with probabilistic guarantees of finding bugs") for depths
    the bounded DFS cannot exhaust: each run draws one priority weight
    per fiber from a seeded generator, and at every atomic access the
    scheduler either stays on the current fiber (weight [stay_weight])
    or deviates to a runnable other, proportionally to the weights. The
    fair round-robin baseline still rotates between deviations, so
    blocking algorithms cannot be starved into false livelocks.

    Every deviation is recorded as a {!placement}, so a failing run
    serializes to an ordinary schedule replayable with {!replay} — the
    random exploration produces pinned, deterministic witnesses. *)

(** One seeded random run. Returns the outcome plus the recorded
    deviations (ascending); replaying them with {!replay} reproduces the
    run exactly. *)
val random_run :
  ?quantum:int ->
  ?max_steps:int ->
  ?stay_weight:int ->
  seed:int64 ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  one_outcome * placement list

(** [for_random ~seed scenario] performs [runs] independent seeded
    random runs (each run's generator is split off one master seeded
    with [seed], so the sweep is a pure function of [seed]) and fails
    with the first violation, whose [schedule] is the recorded deviation
    list. [detect_races]/[check_reclamation] monitor every run as in
    {!for_all}. *)
val for_random :
  ?quantum:int ->
  ?max_steps:int ->
  ?runs:int ->
  ?stay_weight:int ->
  ?detect_races:bool ->
  ?check_reclamation:bool ->
  seed:int64 ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  result

(** {1 Counterexample shrinking}

    [shrink_schedule ~still_fails schedule] minimizes a failing schedule
    by delta debugging (ddmin) over its placements: it returns a
    sublist, still failing according to [still_fails], from which no
    single placement can be removed without the failure disappearing.
    [still_fails] must replay the candidate deterministically (e.g. via
    {!replay}, comparing the violation kind); it is invoked O(n²) times
    in the worst case for an n-placement schedule. *)
val shrink_schedule :
  still_fails:(placement list -> bool) -> placement list -> placement list

(** Replay one specific schedule (e.g. a reported violation). With
    [detector] and/or [reclaim_checker], the run feeds them; inspect
    them afterwards. *)
val replay :
  ?quantum:int ->
  ?max_steps:int ->
  ?detector:Sec_analysis.Race_detector.t ->
  ?reclaim_checker:Sec_analysis.Reclaim_checker.t ->
  schedule:placement list ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  one_outcome

(** {1 Adversarial suspension: the mechanical lock-freedom check}

    The progress prong's dynamic classifier (docs/ANALYSIS.md, "Progress
    prong"): freeze one fiber forever at a chosen point mid-operation and
    ask whether the rest of the system still completes — the operational,
    crash-failure reading of lock-freedom (a blocking algorithm has a
    state in which a stopped thread stalls its peers; a lock-free one has
    none). *)

type progress_class = Blocking | Lock_free

type suspension_outcome =
  | Survived of { engaged : bool }
      (** every non-victim fiber completed; [engaged] is [false] when the
          victim finished before reaching the suspension point *)
  | Blocked  (** the step budget ran out: the peers spun forever *)
  | Crashed of string

(** Run the scenario once under the fair round-robin baseline with fiber
    [victim] frozen just before its [after]th atomic access. The
    scenario's final check is not consulted (the frozen fiber's operation
    is legitimately half-done); the verdict is only whether the peers ran
    to completion. *)
val suspended_run :
  ?quantum:int ->
  ?max_steps:int ->
  victim:int ->
  after:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  suspension_outcome

(** Like {!suspended_run}, but when the peers run to completion the
    scenario's final check {e is} consulted, and its verdict returned
    alongside the outcome ([None] on [Blocked]/[Crashed]). For
    crash-aware refinement properties (docs/ANALYSIS.md, "Refinement
    prong"): the check must already account for the victim's possibly
    half-completed operation — e.g. treat its in-flight pushes as
    optional. *)
val crashed_run :
  ?quantum:int ->
  ?max_steps:int ->
  victim:int ->
  after:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  suspension_outcome * bool option

type classification = {
  verdict : progress_class;
  witness : (int * int) option;
      (** [(victim, access index)] whose suspension blocked the peers *)
  runs : int;  (** suspension runs performed *)
}

(** Sweep every single-fiber suspension point of the scenario ([fibers]
    is the number of fiber bodies it returns): each victim in turn is
    frozen before its 1st, 2nd, ... access until it completes naturally
    (or [max_suspensions] caps the sweep). Any run that exhausts
    [max_steps] is a definitive [Blocking] witness, reproducible with
    {!suspended_run}; surviving the whole sweep is (bounded) evidence of
    [Lock_free]. Raises [Failure] if a fiber raises under suspension. *)
val classify :
  ?quantum:int ->
  ?max_steps:int ->
  ?max_suspensions:int ->
  fibers:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  classification

val progress_class_to_string : progress_class -> string
