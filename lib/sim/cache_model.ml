(* Socket-granular MESI-flavoured cost model.

   Every simulated atomic cell is its own cache line (identified by an
   integer). For each line we track the owning core (last writer, if its
   copy is still exclusive) and a bitmask of sockets holding a shared
   copy. Charging rules:

   - read: cheap if we own the line or our socket holds a copy; otherwise
     a transfer from the owner's socket (local or remote), after which our
     socket is added to the sharers.
   - write / RMW: cheap premium if we own it exclusively; otherwise a
     transfer plus an invalidation broadcast proportional to how many other
     sockets held a copy. The writer becomes the exclusive owner.

   Crucially, a line is a *serial resource in time*: any access that has
   to move the line (a miss, an RMW from a non-owner, an invalidating
   write) occupies it until the transfer completes, so concurrent misses
   on one hot line queue up behind each other. This is what makes a
   contended CAS/FAA cell a sequential bottleneck — the central phenomenon
   the SEC paper's figures are about. Cache hits do not occupy the line.

   [access] therefore takes the accessor's current virtual time and
   returns its new virtual time. *)

type kind = Read | Write | Rmw

type line = {
  mutable owner : int; (* core id of exclusive owner, -1 if none *)
  mutable owner_socket : int;
  mutable sharers : int; (* socket bitmask (<= 62 sockets) *)
  mutable busy_until : int; (* virtual time the line is free again *)
}

type t = {
  (* The charging constants, copied out of [Topology.costs] at creation:
     [access] reads several per call, and flat int fields spare it two
     pointer hops into the topology record per simulated access. *)
  l1_hit : int;
  shared_hit : int;
  local_transfer : int;
  remote_transfer : int;
  rmw_extra : int;
  invalidate_per_socket : int;
  mutable lines : line array;
  mutable used : int;
  (* traffic statistics *)
  mutable transfers : int;
  mutable remote_transfers : int;
  mutable invalidations : int;
}

let fresh_line () = { owner = -1; owner_socket = -1; sharers = 0; busy_until = 0 }

let create topo =
  let c = topo.Topology.costs in
  {
    l1_hit = c.Topology.l1_hit;
    shared_hit = c.Topology.shared_hit;
    local_transfer = c.Topology.local_transfer;
    remote_transfer = c.Topology.remote_transfer;
    rmw_extra = c.Topology.rmw_extra;
    invalidate_per_socket = c.Topology.invalidate_per_socket;
    lines = Array.init 1024 (fun _ -> fresh_line ());
    used = 0;
    transfers = 0;
    remote_transfers = 0;
    invalidations = 0;
  }

(* Allocation writes the line, so a fresh cell starts exclusively owned by
   the creating core: its own subsequent accesses are L1 hits and only
   *other* threads pay a transfer — as on real hardware. *)
let new_line t ~core ~socket =
  if t.used >= Array.length t.lines then begin
    let bigger =
      Array.init
        (2 * Array.length t.lines)
        (fun i -> if i < Array.length t.lines then t.lines.(i) else fresh_line ())
    in
    t.lines <- bigger
  end;
  let id = t.used in
  t.used <- id + 1;
  let line = t.lines.(id) in
  line.owner <- core;
  line.owner_socket <- socket;
  line.sharers <- 1 lsl socket;
  id

let popcount =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0

(* Returns the accessor's new virtual time after performing [kind] on
   [loc] at time [now]. *)
let access t ~core ~socket ~loc ~now kind =
  (* [loc] came from [new_line], so it is below [t.used] by construction;
     this lookup runs once per simulated atomic access. *)
  let line = Array.unsafe_get t.lines loc in
  let bit = 1 lsl socket in
  (* A hit costs [cost] without occupying the line; a miss queues on the
     line and occupies it for the duration of the transfer. *)
  let hit cost = now + cost in
  let miss cost =
    let start = max now line.busy_until in
    let finish = start + cost in
    line.busy_until <- finish;
    finish
  in
  match kind with
  | Read ->
      if line.owner = core then hit t.l1_hit
      else if line.sharers land bit <> 0 then hit t.shared_hit
      else begin
        (* Pull a copy from wherever the line lives. *)
        t.transfers <- t.transfers + 1;
        let cost =
          if line.owner_socket = -1 || line.owner_socket = socket then
            t.local_transfer
          else begin
            t.remote_transfers <- t.remote_transfers + 1;
            t.remote_transfer
          end
        in
        line.sharers <- line.sharers lor bit;
        (* A read demotes any exclusive owner to shared. *)
        if line.owner <> -1 then
          line.sharers <- line.sharers lor (1 lsl line.owner_socket);
        line.owner <- -1;
        miss cost
      end
  | Write | Rmw ->
      let premium = match kind with Rmw -> t.rmw_extra | _ -> 0 in
      if line.owner = core then hit (t.l1_hit + premium)
      else begin
        let holders =
          line.sharers
          lor (if line.owner = -1 then 0 else 1 lsl line.owner_socket)
        in
        let other_sockets = popcount (holders land lnot bit) in
        let base =
          if holders = 0 then t.local_transfer
          else if line.owner_socket = socket || holders land bit <> 0 then begin
            t.transfers <- t.transfers + 1;
            t.local_transfer
          end
          else begin
            t.transfers <- t.transfers + 1;
            t.remote_transfers <- t.remote_transfers + 1;
            t.remote_transfer
          end
        in
        if other_sockets > 0 then
          t.invalidations <- t.invalidations + other_sockets;
        line.owner <- core;
        line.owner_socket <- socket;
        line.sharers <- bit;
        miss (base + premium + (other_sockets * t.invalidate_per_socket))
      end

type traffic = { transfers : int; remote_transfers : int; invalidations : int }

let traffic (m : t) =
  {
    transfers = m.transfers;
    remote_transfers = m.remote_transfers;
    invalidations = m.invalidations;
  }
