(* The effect vocabulary shared by every scheduler that can execute
   simulated threads: {!Sim} (discrete-event, cost-charging) and
   {!Explore} (systematic schedule enumeration) both install handlers for
   these effects; {!Prim} is the {!Sec_prim.Prim_intf.S} implementation
   that performs them, so the same algorithm code runs under either.

   When a {!Sec_analysis.Race_detector} is installed, every atomic
   operation additionally reports a (fiber, location, kind) event to it.
   The fiber id is obtained with the non-scheduling [Fiber_id] effect, so
   the events work identically under both schedulers; with no detector
   installed the cost is a single ref read per operation. *)

type _ Effect.t +=
  | New_loc : int Effect.t
  | Access : int * Cache_model.kind -> unit Effect.t
  | Relax : int -> unit Effect.t
  | Yield : unit Effect.t
  | Now : int64 Effect.t
  | Rand_int : int -> int Effect.t
  | Rand_bits : int Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t
  | Await_all : unit Effect.t
  | Fiber_id : int Effect.t
  | Num_workers : int Effect.t

(* Fresh hot-path allocations ([Prim.note_alloc] calls). A plain counter
   rather than an effect: each domain executes one simulation at a time,
   so {!Sim.run} brackets a run with before/after reads and reports the
   delta — same determinism, no per-allocation perform/resume
   round-trip, and (like an accounting-only effect) no scheduling point,
   so instrumenting an allocation site never perturbs schedules. The
   counter is domain-local so concurrent simulations on a sweep pool
   ({!Sec_harness.Sweep}) keep exact per-run counts. *)
let alloc_key = Domain.DLS.new_key (fun () -> ref 0)
let alloc_tally () = Domain.DLS.get alloc_key

(* ------------------------------------------------------------------ *)
(* Primitive dispatch.

   {!Prim} routes every primitive through this domain-local record
   instead of performing an effect directly. The default implementation
   performs the legacy effects above, so {!Explore} (and any other
   effect-based scheduler) works unchanged; {!Sim} installs direct
   functions for the duration of a run, turning the hot path — an atomic
   access that does not switch fibers — into a plain call with no effect
   round-trip and no [Access]-payload allocation. Only the rare access
   that must actually hand control to an earlier fiber performs an
   effect ({!Sim}'s private [Switch]).

   The record lives behind a per-domain ref so concurrent simulations on
   a {!Sec_harness.Sweep} pool each see their own installation; outside
   any run the default applies and a primitive raises
   [Effect.Unhandled], exactly as before. *)

type dispatch = {
  d_new_loc : unit -> int;
  d_access : int -> Cache_model.kind -> unit;
  d_relax : int -> unit;
  d_yield : unit -> unit;
  d_now : unit -> int64;
  d_now_int : unit -> int; (* [d_now] without the [int64] box: the virtual
                              clock is an [int], and the per-op deadline
                              check in {!Sec_harness.Runner} is hot *)
  d_rand_int : int -> int;
  d_rand_bits : unit -> int;
  d_spawn : (unit -> unit) -> unit;
  d_await_all : unit -> unit;
  d_fiber_id : unit -> int;
  d_num_workers : unit -> int;
}

let effect_dispatch =
  {
    d_new_loc = (fun () -> Effect.perform New_loc);
    d_access = (fun loc kind -> Effect.perform (Access (loc, kind)));
    d_relax = (fun n -> Effect.perform (Relax n));
    d_yield = (fun () -> Effect.perform Yield);
    d_now = (fun () -> Effect.perform Now);
    d_now_int = (fun () -> Int64.to_int (Effect.perform Now));
    d_rand_int = (fun n -> Effect.perform (Rand_int n));
    d_rand_bits = (fun () -> Effect.perform Rand_bits);
    d_spawn = (fun body -> Effect.perform (Spawn body));
    d_await_all = (fun () -> Effect.perform Await_all);
    d_fiber_id = (fun () -> Effect.perform Fiber_id);
    d_num_workers = (fun () -> Effect.perform Num_workers);
  }

(* The record is stored in the slot directly (not behind a ref): the
   [dispatch] read is on the path of every primitive, and one DLS load is
   all it costs. *)
let disp_key = Domain.DLS.new_key (fun () -> effect_dispatch)
let[@inline] dispatch () = Domain.DLS.get disp_key

(* [install d] swaps the calling domain's dispatch and returns the
   previous one; callers must [restore] it (in a [Fun.protect]) so
   nested runs and post-run code see what they saw before. *)
let install d =
  let saved = Domain.DLS.get disp_key in
  Domain.DLS.set disp_key d;
  saved

let restore d = Domain.DLS.set disp_key d

module Detect = struct
  type event = Make | Read | Write | Rmw | Cas of bool

  let notify loc event =
    match !Sec_analysis.Race_detector.active with
    | None -> ()
    | Some d -> (
        let fiber = Effect.perform Fiber_id in
        let open Sec_analysis.Race_detector in
        match event with
        | Make -> on_make d ~fiber ~loc
        | Read -> on_read d ~fiber ~loc
        | Write -> on_write d ~fiber ~loc
        | Rmw -> on_rmw d ~fiber ~loc
        | Cas success -> on_cas d ~fiber ~loc ~success)
end

module Reclaim = struct
  (* Fiber-exit notification for the reclamation checker
     ({!Sec_analysis.Reclaim_checker}): a fiber that finishes while still
     inside an EBR critical section pins the epoch forever. Both
     schedulers call this when a fiber completes; the checker's other
     events are fed directly by instrumented algorithm code through the
     [note_*] hooks. *)
  let on_fiber_exit fid =
    match !Sec_analysis.Reclaim_checker.active with
    | None -> ()
    | Some c -> Sec_analysis.Reclaim_checker.on_fiber_exit c ~fiber:fid
end

module Progress = struct
  (* Scheduling-event feed for the progress monitor
     ({!Sec_analysis.Progress_monitor}): both schedulers call this at
     every atomic access they account for, passing the fiber id they
     already hold — no effect is performed, so the feed never perturbs
     the schedule. The monitor's operation boundaries are fed directly by
     the workload loop ({!Sec_harness.Runner}) through the [note_op_*]
     hooks. One ref read when no monitor is installed. *)
  let on_event fid =
    match !Sec_analysis.Progress_monitor.active with
    | None -> ()
    | Some m -> Sec_analysis.Progress_monitor.on_event m ~fiber:fid

  let on_fiber_exit fid =
    match !Sec_analysis.Progress_monitor.active with
    | None -> ()
    | Some m -> Sec_analysis.Progress_monitor.on_fiber_exit m ~fiber:fid
end

module Prim : Sec_prim.Prim_intf.EXEC with type budget = int = struct
  module Atomic = struct
    type 'a t = { loc : int; mutable v : 'a }

    (* Whichever scheduler dispatches these accesses runs exactly one
       fiber at a time, so after the dispatch accounts for the access we
       can act on [v] directly. *)
    let make v =
      let loc = (dispatch ()).d_new_loc () in
      Detect.notify loc Detect.Make;
      { loc; v }

    let make_padded = make (* every simulated cell is its own line *)

    let get t =
      (dispatch ()).d_access t.loc Cache_model.Read;
      Detect.notify t.loc Detect.Read;
      t.v

    let set t v =
      (dispatch ()).d_access t.loc Cache_model.Write;
      Detect.notify t.loc Detect.Write;
      t.v <- v

    let exchange t v =
      (dispatch ()).d_access t.loc Cache_model.Rmw;
      Detect.notify t.loc Detect.Rmw;
      let old = t.v in
      t.v <- v;
      old

    let compare_and_set t expected desired =
      (* A failing CAS still costs the line transfer. *)
      (dispatch ()).d_access t.loc Cache_model.Rmw;
      let success = t.v == expected in
      Detect.notify t.loc (Detect.Cas success);
      if success then begin
        t.v <- desired;
        true
      end
      else false

    let fetch_and_add t n =
      (dispatch ()).d_access t.loc Cache_model.Rmw;
      Detect.notify t.loc Detect.Rmw;
      let old = t.v in
      t.v <- old + n;
      old

    let incr t = ignore (fetch_and_add t 1)
    let decr t = ignore (fetch_and_add t (-1))
  end

  let cpu_relax () = (dispatch ()).d_relax 1
  let relax n = (dispatch ()).d_relax n
  let yield () = (dispatch ()).d_yield ()
  let now_ns () = (dispatch ()).d_now ()
  let rand_int n = (dispatch ()).d_rand_int n
  let rand_bits () = (dispatch ()).d_rand_bits ()
  let note_alloc () = incr (alloc_tally ())

  (* Execution capability ({!Sec_prim.Prim_intf.EXEC}): budgets are virtual
     cycles, and a deadline is just a target virtual time — the scheduler
     already orders fibers by their clocks, so [expired] is a plain
     comparison with no extra scheduling event. *)
  type budget = int
  type deadline = { until : int; budget : int }

  let deadline_after b = { until = (dispatch ()).d_now_int () + b; budget = b }
  let expired d = (dispatch ()).d_now_int () >= d.until

  (* The run always spans exactly its budget in virtual time: fibers stop
     at the first schedule point past [until]. *)
  let elapsed d = d.budget
  let spawn body = (dispatch ()).d_spawn body
  let await_all () = (dispatch ()).d_await_all ()
  let thread_id () = (dispatch ()).d_fiber_id ()
  let num_threads () = (dispatch ()).d_num_workers ()
end
