(* The effect vocabulary shared by every scheduler that can execute
   simulated threads: {!Sim} (discrete-event, cost-charging) and
   {!Explore} (systematic schedule enumeration) both install handlers for
   these effects; {!Prim} is the {!Sec_prim.Prim_intf.S} implementation
   that performs them, so the same algorithm code runs under either.

   When a {!Sec_analysis.Race_detector} is installed, every atomic
   operation additionally reports a (fiber, location, kind) event to it.
   The fiber id is obtained with the non-scheduling [Fiber_id] effect, so
   the events work identically under both schedulers; with no detector
   installed the cost is a single ref read per operation. *)

type _ Effect.t +=
  | New_loc : int Effect.t
  | Access : int * Cache_model.kind -> unit Effect.t
  | Relax : int -> unit Effect.t
  | Yield : unit Effect.t
  | Now : int64 Effect.t
  | Rand_int : int -> int Effect.t
  | Rand_bits : int Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t
  | Await_all : unit Effect.t
  | Fiber_id : int Effect.t
  | Num_workers : int Effect.t

(* Fresh hot-path allocations ([Prim.note_alloc] calls). A plain counter
   rather than an effect: simulations execute one at a time on a single
   host thread, so {!Sim.run} brackets a run with before/after reads and
   reports the delta — same determinism, no per-allocation
   perform/resume round-trip, and (like an accounting-only effect) no
   scheduling point, so instrumenting an allocation site never perturbs
   schedules. *)
let alloc_tally = ref 0

module Detect = struct
  type event = Make | Read | Write | Rmw | Cas of bool

  let notify loc event =
    match !Sec_analysis.Race_detector.active with
    | None -> ()
    | Some d -> (
        let fiber = Effect.perform Fiber_id in
        let open Sec_analysis.Race_detector in
        match event with
        | Make -> on_make d ~fiber ~loc
        | Read -> on_read d ~fiber ~loc
        | Write -> on_write d ~fiber ~loc
        | Rmw -> on_rmw d ~fiber ~loc
        | Cas success -> on_cas d ~fiber ~loc ~success)
end

module Reclaim = struct
  (* Fiber-exit notification for the reclamation checker
     ({!Sec_analysis.Reclaim_checker}): a fiber that finishes while still
     inside an EBR critical section pins the epoch forever. Both
     schedulers call this when a fiber completes; the checker's other
     events are fed directly by instrumented algorithm code through the
     [note_*] hooks. *)
  let on_fiber_exit fid =
    match !Sec_analysis.Reclaim_checker.active with
    | None -> ()
    | Some c -> Sec_analysis.Reclaim_checker.on_fiber_exit c ~fiber:fid
end

module Progress = struct
  (* Scheduling-event feed for the progress monitor
     ({!Sec_analysis.Progress_monitor}): both schedulers call this at
     every atomic access they account for, passing the fiber id they
     already hold — no effect is performed, so the feed never perturbs
     the schedule. The monitor's operation boundaries are fed directly by
     the workload loop ({!Sec_harness.Runner}) through the [note_op_*]
     hooks. One ref read when no monitor is installed. *)
  let on_event fid =
    match !Sec_analysis.Progress_monitor.active with
    | None -> ()
    | Some m -> Sec_analysis.Progress_monitor.on_event m ~fiber:fid

  let on_fiber_exit fid =
    match !Sec_analysis.Progress_monitor.active with
    | None -> ()
    | Some m -> Sec_analysis.Progress_monitor.on_fiber_exit m ~fiber:fid
end

module Prim : Sec_prim.Prim_intf.EXEC with type budget = int = struct
  module Atomic = struct
    type 'a t = { loc : int; mutable v : 'a }

    (* Whichever scheduler handles these effects runs exactly one fiber at
       a time, so after the effect accounts for the access we can act on
       [v] directly. *)
    let make v =
      let loc = Effect.perform New_loc in
      Detect.notify loc Detect.Make;
      { loc; v }

    let make_padded = make (* every simulated cell is its own line *)

    let get t =
      Effect.perform (Access (t.loc, Cache_model.Read));
      Detect.notify t.loc Detect.Read;
      t.v

    let set t v =
      Effect.perform (Access (t.loc, Cache_model.Write));
      Detect.notify t.loc Detect.Write;
      t.v <- v

    let exchange t v =
      Effect.perform (Access (t.loc, Cache_model.Rmw));
      Detect.notify t.loc Detect.Rmw;
      let old = t.v in
      t.v <- v;
      old

    let compare_and_set t expected desired =
      (* A failing CAS still costs the line transfer. *)
      Effect.perform (Access (t.loc, Cache_model.Rmw));
      let success = t.v == expected in
      Detect.notify t.loc (Detect.Cas success);
      if success then begin
        t.v <- desired;
        true
      end
      else false

    let fetch_and_add t n =
      Effect.perform (Access (t.loc, Cache_model.Rmw));
      Detect.notify t.loc Detect.Rmw;
      let old = t.v in
      t.v <- old + n;
      old

    let incr t = ignore (fetch_and_add t 1)
    let decr t = ignore (fetch_and_add t (-1))
  end

  let cpu_relax () = Effect.perform (Relax 1)
  let relax n = Effect.perform (Relax n)
  let yield () = Effect.perform Yield
  let now_ns () = Effect.perform Now
  let rand_int n = Effect.perform (Rand_int n)
  let rand_bits () = Effect.perform Rand_bits
  let note_alloc () = incr alloc_tally

  (* Execution capability ({!Sec_prim.Prim_intf.EXEC}): budgets are virtual
     cycles, and a deadline is just a target virtual time — the scheduler
     already orders fibers by their clocks, so [expired] is a plain
     comparison with no extra scheduling event. *)
  type budget = int
  type deadline = { until : int64; budget : int }

  let deadline_after b =
    { until = Int64.add (Effect.perform Now) (Int64.of_int b); budget = b }

  let expired d = Int64.compare (Effect.perform Now) d.until >= 0

  (* The run always spans exactly its budget in virtual time: fibers stop
     at the first schedule point past [until]. *)
  let elapsed d = d.budget
  let spawn body = Effect.perform (Spawn body)
  let await_all () = Effect.perform Await_all
  let thread_id () = Effect.perform Fiber_id
  let num_threads () = Effect.perform Num_workers
end
