(** Deterministic discrete-event simulator of a NUMA multicore.

    Simulated threads are effects-based fibers with private virtual
    clocks; atomic accesses are charged through {!Cache_model} and the
    earliest fiber always runs next. Used to run every stack in this
    repository at the paper's 56/96/192-thread scales on a small host,
    and to explore interleavings deterministically in tests. *)

exception Deadlock
exception Not_in_simulation

exception Stalled
(** Raised when [run ~max_events] exceeds its event budget — the
    discrete-event analogue of {!Explore}'s livelock verdict: with a
    fiber frozen by [~suspend], the peers of a blocking algorithm spin
    forever instead of completing. *)

type stats = {
  elapsed_cycles : int;  (** makespan: latest fiber end time *)
  events : int;  (** scheduling events (atomic accesses etc.) *)
  traffic : Cache_model.traffic;
  fibers : int;  (** workers spawned *)
  allocs : int;
      (** fresh hot-path node allocations, as reported by
          [P.note_alloc] in instrumented algorithm code. Counted without
          a scheduling event, so instrumentation never perturbs the
          schedule; magazine-recycled nodes do not count. *)
  schedule_digest : int;
      (** order-sensitive FNV-style hash folded over every (time, fid)
          rescheduling decision the event loop made, in order. Equal
          digests mean the two runs took exactly the same schedule; the
          harness pins figure-cell digests as goldens so event-loop
          refactors are provably schedule-preserving. Non-negative. *)
}

(** Internals of the scheduler's event heap, exposed for tests: the
    (time, fid) key packed into one unboxed int. [pack time fid] raises
    [Invalid_argument] when [fid + fid_bias] does not fit in [fid_bits]
    bits or [time] exceeds the remaining 62-bit range. *)
module Heap : sig
  val fid_bits : int
  val fid_bias : int
  val pack : int -> int -> int
end

(** [run ~topology f] executes [f] as the main fiber of a fresh simulated
    machine and returns its result plus run statistics. Deterministic for
    a fixed [seed]; [jitter > 0] adds seeded random delays (up to that
    many cycles) to every access, perturbing interleavings.

    When [detector] is given it is installed for the duration of the run:
    every atomic access feeds its happens-before tracker, and spawn /
    exit / join edges are recorded. Inspect it afterwards with
    {!Sec_analysis.Race_detector.races}.

    When [reclaim_checker] is given it is likewise installed for the
    duration: instrumented reclamation code (lib/reclaim) feeds its
    shadow heap, and fiber completion is reported so leaked guards are
    caught. Inspect it with {!Sec_analysis.Reclaim_checker.reports}.

    When [progress] is given it is installed for the duration: every
    atomic access feeds {!Sec_analysis.Progress_monitor.on_event} and
    fiber completion clears in-flight operations; operation boundaries
    come from the workload loop's [note_op_*] hooks. Inspect it with
    {!Sec_analysis.Progress_monitor.reports}.

    [suspend:(fid, n)] is the suspension adversary (see
    {!Explore.classify} for the sweeping classifier): fiber [fid] is
    frozen forever just before its [n]th atomic access. A frozen worker
    stops counting as live, so [await_all] returns once its peers
    finish — unless they spin on the victim's next write, in which case
    the run never completes: bound it with [max_events] and catch
    {!Stalled}. *)
val run :
  ?seed:int ->
  ?jitter:int ->
  ?detector:Sec_analysis.Race_detector.t ->
  ?reclaim_checker:Sec_analysis.Reclaim_checker.t ->
  ?progress:Sec_analysis.Progress_monitor.t ->
  ?suspend:int * int ->
  ?max_events:int ->
  topology:Topology.t ->
  (unit -> 'a) ->
  'a * stats

(** Spawn a worker fiber on the next hardware thread (compact placement).
    Must be called inside {!run}; raises past the topology's thread count. *)
val spawn : (unit -> unit) -> unit

(** Block the calling fiber until every spawned worker has finished; its
    clock advances to the makespan. *)
val await_all : unit -> unit

(** Hardware-thread id of the calling worker fiber (-2 for main). *)
val fiber_id : unit -> int

(** The simulated execution substrate, including the execution capability
    ({!Sec_prim.Prim_intf.EXEC}): budgets are virtual cycles, [spawn] and
    [await_all] are the fiber operations above, and [thread_id] is
    {!fiber_id}. Using it outside {!run} raises [Effect.Unhandled]. *)
module Prim : Sec_prim.Prim_intf.EXEC with type budget = int
