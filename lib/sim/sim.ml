(* Deterministic discrete-event simulator of a NUMA multicore.

   Each simulated hardware thread is a fiber with its own virtual clock.
   Every *atomic* access charges cycles from the {!Cache_model} and
   re-schedules, always running the fiber with the smallest virtual time
   next. Shared-memory conflicts are therefore resolved in virtual-time
   order, and the makespan of a run is [max] over fiber end times —
   exactly a parallel discrete-event simulation.

   Determinism: a fixed seed yields an identical schedule, identical final
   state and identical statistics. The optional [jitter] parameter adds
   seeded random delays to accesses, which perturbs interleavings — the
   test suite sweeps seeds to explore schedules. [stats.schedule_digest]
   folds every rescheduling decision, so "identical schedule" is a
   checkable claim, not an assumption.

   Flat core: per-fiber state (clock, core, socket, RNG, parked
   continuation, unstarted body) lives in struct-of-arrays indexed by
   [fid + Heap.fid_bias], and the ready queue is a keys-only binary heap
   of packed [(time, fid)] ints — the fiber index rides in the key's low
   bits, so scheduling touches no boxed payloads at all. The hot path
   performs no effect: {!Sim_effects.dispatch} routes primitives to
   direct functions that charge the access inline and only perform the
   private [Switch] effect when an earlier fiber must actually run.
   The legacy effect vocabulary is still handled (for {!Explore}-style
   callers and the analysis hooks that perform [Fiber_id]), just off the
   hot path.

   IMPORTANT implementation invariant: every handler branch, [schedule]
   and [retc] must end in a TAIL call ([continue]/[schedule]/[run_fiber]);
   this is what keeps the stack flat across millions of context switches. *)

open Sim_effects

exception Deadlock
exception Not_in_simulation

exception Stalled
(* Raised when [run ~max_events] exceeds its event budget: with a fiber
   frozen by [~suspend], the peers of a blocking algorithm spin forever
   and virtual time grows without completing — the discrete-event
   analogue of {!Explore}'s livelock verdict. *)

(* ------------------------------------------------------------------ *)
(* Binary min-heap of runnable fibers, keyed by (time, fid) so that      *)
(* scheduling is deterministic.                                          *)

module Heap = struct
  (* The (time, fid) key packed into one unboxed int —
     [time * 2^fid_bits + (fid + fid_bias)]. The key *is* the whole
     entry: its low bits identify the fiber's slot in the scheduler's
     flat arrays, so the heap is a bare int array — a push allocates
     nothing, ordering is a single integer test (the packing is
     order-isomorphic to the lexicographic pair) and sifts move a hole
     instead of swapping, one key move per level. Exact while
     [0 <= fid + fid_bias < 2^fid_bits] and [time < 2^(62 - fid_bits)]
     — two million fibers and ~10^12 virtual cycles, both far past any
     simulated run; [pack] rejects anything outside. *)
  let fid_bits = 21
  let fid_bias = 2 (* the main pseudo-fiber runs as fid -2 *)
  let slot_mask = (1 lsl fid_bits) - 1

  let[@inline] pack time fid =
    let f = fid + fid_bias in
    if f lsr fid_bits <> 0 || time lsr (62 - fid_bits) <> 0 then
      invalid_arg "Sim.Heap: time or fiber id exceeds the packing range";
    (time lsl fid_bits) lor f

  (* Per-event repack of an already-validated fiber's clock: the fid was
     range-checked when the fiber was spawned, and the virtual clock
     cannot reach 2^41 cycles within any feasible event budget, so the
     scheduler's inner loop skips the two range tests. *)
  let[@inline] pack_unchecked time fid = (time lsl fid_bits) lor (fid + fid_bias)

  type t = { mutable keys : int array; mutable size : int }

  let create () = { keys = [||]; size = 0 }

  (* Indices below [size] are always in bounds — [size] only grows inside
     [push] right after the capacity check — so the sift loops use
     unchecked accesses; this heap sits on the per-event hot path. *)
  let push t key =
    if t.size = Array.length t.keys then begin
      let keys = Array.make (max 16 (2 * t.size)) 0 in
      Array.blit t.keys 0 keys 0 t.size;
      t.keys <- keys
    end;
    (* sift the new hole up, then write once *)
    let a = t.keys in
    let i = ref t.size in
    t.size <- t.size + 1;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let parent = (!i - 1) / 2 in
      if key < Array.unsafe_get a parent then begin
        Array.unsafe_set a !i (Array.unsafe_get a parent);
        i := parent
      end
      else sifting := false
    done;
    Array.unsafe_set a !i key

  (* The packed key of the earliest entry; -1 when empty (every real key
     is non-negative, so no option box on the per-access fast path). *)
  let[@inline] min_key t =
    if t.size = 0 then -1 else Array.unsafe_get t.keys 0

  (* Sift a root-shaped hole down past children smaller than [key], then
     drop [key] in — shared by [pop] (re-inserting the detached last
     element) and [replace_min]. *)
  let[@inline] sift_down a n key =
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= n then sifting := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && Array.unsafe_get a r < Array.unsafe_get a l then r else l
        in
        if Array.unsafe_get a c < key then begin
          Array.unsafe_set a !i (Array.unsafe_get a c);
          i := c
        end
        else sifting := false
      end
    done;
    Array.unsafe_set a !i key

  let pop t =
    if t.size = 0 then -1
    else begin
      let a = t.keys in
      let top = Array.unsafe_get a 0 in
      t.size <- t.size - 1;
      let n = t.size in
      if n > 0 then sift_down a n (Array.unsafe_get a n);
      top
    end

  (* [push] + [pop] fused: replace the root with [key] and return the old
     root. Only valid when the heap is non-empty and [key] is >= the
     current min — exactly the situation of a fiber parking itself in
     favour of an earlier one, which is the common case on contended
     workloads (one sift instead of two). *)
  let replace_min t key =
    let a = t.keys in
    let top = Array.unsafe_get a 0 in
    sift_down a t.size key;
    top
end

(* ------------------------------------------------------------------ *)

(* Scheduling effects private to this loop. [Switch] is performed by the
   dispatch fast path only when an earlier fiber must run; [Freeze] drops
   the performer (suspension adversary); [Await] parks the joiner. All
   three are constant constructors, so performing them allocates no
   payload, and their handler results are preallocated in [ctx]. *)
type _ Effect.t +=
  | Switch : unit Effect.t
  | Freeze : unit Effect.t
  | Await : unit Effect.t

type handler_fn = ((unit, unit) Effect.Deep.continuation -> unit) option

type ctx = {
  topo : Topology.t;
  cache : Cache_model.t;
  heap : Heap.t;
  det : Sec_analysis.Race_detector.t option;
  jitter : int;
  sched_rng : Sec_prim.Rng.t;
  (* Flat per-fiber state, indexed by slot = fid + Heap.fid_bias; the
     main pseudo-fiber (fid -2) is slot 0. One array per field instead
     of an array of records: the hot fields ([f_time], [f_core],
     [f_socket]) pack densely and nothing is boxed per fiber. *)
  f_time : int array;
  f_core : int array;
  f_socket : int array;
  f_rng : Sec_prim.Rng.t array;
  f_kont : (unit, unit) Effect.Deep.continuation array;
      (* parked continuation of a switched-out fiber. Unboxed (no option):
         [resume] consults [f_body] first, so a slot's continuation is
         only ever read after that fiber actually parked and wrote one.
         Unused slots hold a shared dead placeholder, and a resumed slot
         is left stale rather than cleared — fiber ids are never reused
         within a run and a *resumed* one-shot continuation pins nothing,
         so the extra write would buy nothing. *)
  f_body : (unit -> unit) option array; (* not-yet-started fiber bodies *)
  mutable current : int; (* slot of the fiber executing right now *)
  mutable next_core : int;
  mutable live_workers : int;
  mutable joiner : int; (* slot parked in [await_all], or -1 *)
  mutable joiner_k : (unit, unit) Effect.Deep.continuation option;
  mutable max_end_time : int;
  mutable events : int;
  (* FNV-style fold over every (new_time, fid) rescheduling decision, in
     order. Two runs with equal digests took the same schedule, so the
     digest is a compact golden for "the refactor did not change one
     scheduling decision" — far stronger than comparing final stats. *)
  mutable digest : int;
  (* Packed (time, fid) key of the current fiber, written by [advance]
     whenever the ready heap is non-empty — so [park] reuses it instead
     of re-packing. Only meaningful immediately after [advance] returns
     [true]. *)
  mutable self_key : int;
  (* Cached [Heap.min_key ctx.heap], maintained at every heap mutation:
     [advance] consults it once per event, and a field read beats the
     heap's record/array chain there. -1 when the heap is empty. *)
  mutable heap_min : int;
  alloc_base : int; (* domain-local {!Sim_effects.alloc_tally} at run start *)
  (* Suspension adversary: freeze fiber [suspend_victim] just before its
     [suspend_after]th atomic access (see {!Explore.classify} for the
     bounded-sweep version; here a single point suffices for regression
     pinning). [min_int] as the victim means "nobody" — a plain compare
     on the fast path instead of an option match. *)
  suspend_victim : int;
  suspend_after : int;
  mutable suspend_seen : int;
  max_events : int; (* raise [Stalled] past this many events; [max_int] = no cap *)
  (* Preallocated [effc] results for the private effects, so even the
     switch slow path allocates nothing per perform. Set right after the
     record is built — they close over it. *)
  mutable switch_h : handler_fn;
  mutable freeze_h : handler_fn;
  mutable await_h : handler_fn;
}

type stats = {
  elapsed_cycles : int;  (** makespan: latest fiber end time *)
  events : int;  (** scheduling events (atomic accesses etc.) *)
  traffic : Cache_model.traffic;
  fibers : int;
  allocs : int;  (** fresh hot-path allocations ([P.note_alloc] calls) *)
  schedule_digest : int;  (** order-sensitive hash of every (time, fid) reschedule *)
}

let[@inline] digest_mix d time fid =
  (d * 0x100000001B3) lxor ((time lsl 7) + fid + 2)

let[@inline] fid_of slot = slot - Heap.fid_bias

(* Heavy-tailed jitter: small perturbations alone cannot reorder fibers
   that queue on a busy line (the service gap absorbs them), so
   occasionally insert a delay long enough to swap turns. Out of line so
   the jitter-free [advance] body stays small. *)
let[@inline never] jitter_extra ctx =
  let extra = Sec_prim.Rng.int ctx.sched_rng (ctx.jitter + 1) in
  if Sec_prim.Rng.int ctx.sched_rng 8 = 0 then
    extra + Sec_prim.Rng.int ctx.sched_rng ((8 * ctx.jitter) + 1)
  else extra

(* Advance the current fiber's clock to [new_time] (plus seeded jitter),
   account the scheduling event, and report whether an earlier fiber is
   now due — the one decision point every scheduling primitive funnels
   through, so digest, event count and Stalled policing stay uniform. *)
let[@inline] advance ctx new_time =
  let slot = ctx.current in
  let new_time =
    if ctx.jitter > 0 then new_time + jitter_extra ctx else new_time
  in
  Array.unsafe_set ctx.f_time slot new_time;
  ctx.events <- ctx.events + 1;
  ctx.digest <- digest_mix ctx.digest new_time (fid_of slot);
  if ctx.events > ctx.max_events then raise Stalled;
  let mk = ctx.heap_min in
  mk >= 0
  &&
  let self = Heap.pack_unchecked new_time (fid_of slot) in
  ctx.self_key <- self;
  mk < self

(* Suspension adversary: [true] means the current access never executes
   and the performer is dropped. *)
let[@inline] check_freeze ctx =
  fid_of ctx.current = ctx.suspend_victim
  && begin
       ctx.suspend_seen <- ctx.suspend_seen + 1;
       ctx.suspend_seen = ctx.suspend_after
     end

let[@inline] access_time ctx loc kind =
  let slot = ctx.current in
  Cache_model.access ctx.cache
    ~core:(Array.unsafe_get ctx.f_core slot)
    ~socket:(Array.unsafe_get ctx.f_socket slot)
    ~loc
    ~now:(Array.unsafe_get ctx.f_time slot)
    kind

let do_spawn ctx body =
  let fid = ctx.next_core in
  ctx.next_core <- fid + 1;
  let core = Topology.core_of ctx.topo fid in (* raises past the limit *)
  let socket = Topology.socket_of ctx.topo fid in
  let slot = fid + Heap.fid_bias in
  ctx.f_core.(slot) <- core;
  ctx.f_socket.(slot) <- socket;
  ctx.f_time.(slot) <- ctx.f_time.(ctx.current);
  ctx.f_rng.(slot) <- Sec_prim.Rng.split ctx.sched_rng;
  ctx.f_body.(slot) <- Some body;
  ctx.live_workers <- ctx.live_workers + 1;
  (match ctx.det with
  | Some d ->
      Sec_analysis.Race_detector.on_spawn d ~parent:(fid_of ctx.current)
        ~child:fid
  | None -> ());
  Heap.push ctx.heap (Heap.pack ctx.f_time.(slot) fid);
  ctx.heap_min <- Heap.min_key ctx.heap

(* Hand control to the fiber named by [key]'s low bits: start its
   not-yet-run body, or resume its parked continuation. The body check
   comes first so the continuation slot needs no option box — [None]
   here means the fiber has parked before and [f_kont] holds it. *)
let rec resume ctx key =
  let slot = key land Heap.slot_mask in
  ctx.current <- slot;
  match Array.unsafe_get ctx.f_body slot with
  | None -> Effect.Deep.continue (Array.unsafe_get ctx.f_kont slot) ()
  | Some body ->
      Array.unsafe_set ctx.f_body slot None;
      run_fiber ctx body

and schedule ctx =
  let key = Heap.pop ctx.heap in
  ctx.heap_min <- Heap.min_key ctx.heap;
  if key >= 0 then resume ctx key
  else
    match ctx.joiner_k with
    | Some k when ctx.live_workers = 0 ->
        let slot = ctx.joiner in
        ctx.joiner_k <- None;
        ctx.joiner <- -1;
        ctx.f_time.(slot) <- max ctx.f_time.(slot) ctx.max_end_time;
        (match ctx.det with
        | Some d -> Sec_analysis.Race_detector.on_join d ~fiber:(fid_of slot)
        | None -> ());
        ctx.current <- slot;
        Effect.Deep.continue k ()
    | Some _ -> raise Deadlock
    | None -> () (* fully drained: unwind to [run] *)

(* Park the current fiber and hand control to the globally earliest one.
   Only reached when [advance] just returned [true], so [ctx.self_key]
   holds the parker's packed key, the heap is non-empty and its min is
   strictly earlier — exactly the precondition of [Heap.replace_min]. *)
and park ctx k =
  Array.unsafe_set ctx.f_kont ctx.current k;
  let key = Heap.replace_min ctx.heap ctx.self_key in
  ctx.heap_min <- Heap.min_key ctx.heap;
  resume ctx key

(* The suspension adversary dropped the current fiber: it stops forever,
   no longer counts as live, and its peers run on. *)
and on_freeze ctx =
  let slot = ctx.current in
  ctx.max_end_time <- max ctx.max_end_time ctx.f_time.(slot);
  if slot <> 0 then ctx.live_workers <- ctx.live_workers - 1;
  schedule ctx

and on_return ctx =
  let slot = ctx.current in
  ctx.max_end_time <- max ctx.max_end_time ctx.f_time.(slot);
  if slot <> 0 then ctx.live_workers <- ctx.live_workers - 1;
  (match ctx.det with
  | Some d -> Sec_analysis.Race_detector.on_exit d ~fiber:(fid_of slot)
  | None -> ());
  Sim_effects.Reclaim.on_fiber_exit (fid_of slot);
  Sim_effects.Progress.on_fiber_exit (fid_of slot);
  schedule ctx

and legacy_advance ctx new_time k =
  if advance ctx new_time then park ctx k else Effect.Deep.continue k ()

and run_fiber ctx body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> on_return ctx);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Switch -> (ctx.switch_h : ((a, _) continuation -> _) option)
          | Freeze -> (ctx.freeze_h : ((a, _) continuation -> _) option)
          | Await -> (ctx.await_h : ((a, _) continuation -> _) option)
          (* Legacy effect vocabulary: cold under this loop (the
             dispatch fast path bypasses it) but still honoured, for
             analysis hooks that perform [Fiber_id] and for any caller
             performing {!Sim_effects} effects directly. *)
          | Access (loc, kind) ->
              Some
                (fun (k : (a, _) continuation) ->
                  if check_freeze ctx then on_freeze ctx
                  else begin
                    Sim_effects.Progress.on_event (fid_of ctx.current);
                    legacy_advance ctx (access_time ctx loc kind) k
                  end)
          | Relax n ->
              Some
                (fun k ->
                  legacy_advance ctx
                    (ctx.f_time.(ctx.current) + max 1 n)
                    k)
          | Yield ->
              Some
                (fun k ->
                  legacy_advance ctx
                    (ctx.f_time.(ctx.current)
                    + ctx.topo.Topology.costs.yield_quantum)
                    k)
          | New_loc ->
              Some
                (fun k ->
                  continue k
                    (Cache_model.new_line ctx.cache
                       ~core:ctx.f_core.(ctx.current)
                       ~socket:ctx.f_socket.(ctx.current)))
          | Now -> Some (fun k -> continue k (Int64.of_int ctx.f_time.(ctx.current)))
          | Rand_int n ->
              Some
                (fun k ->
                  continue k (Sec_prim.Rng.int ctx.f_rng.(ctx.current) n))
          | Rand_bits ->
              Some
                (fun k ->
                  continue k (Sec_prim.Rng.bits ctx.f_rng.(ctx.current)))
          | Fiber_id -> Some (fun k -> continue k (fid_of ctx.current))
          | Num_workers -> Some (fun k -> continue k ctx.next_core)
          | Spawn body ->
              Some
                (fun k ->
                  do_spawn ctx body;
                  continue k ())
          | Await_all ->
              Some
                (fun k ->
                  if ctx.live_workers = 0 then begin
                    (match ctx.det with
                    | Some d ->
                        Sec_analysis.Race_detector.on_join d
                          ~fiber:(fid_of ctx.current)
                    | None -> ());
                    continue k ()
                  end
                  else begin
                    ctx.joiner <- ctx.current;
                    ctx.joiner_k <- Some k;
                    schedule ctx
                  end)
          | _ -> None)
    }

(* The direct-call implementations {!Sim_effects.Prim} dispatches to for
   the duration of a run. A non-scheduling primitive is a plain read; a
   scheduling one charges its cycles inline and performs an effect only
   when control must actually move. *)
let dispatch_of ctx =
  {
    d_new_loc =
      (fun () ->
        Cache_model.new_line ctx.cache ~core:ctx.f_core.(ctx.current)
          ~socket:ctx.f_socket.(ctx.current));
    d_access =
      (fun loc kind ->
        if check_freeze ctx then Effect.perform Freeze
        else begin
          Sim_effects.Progress.on_event (fid_of ctx.current);
          if advance ctx (access_time ctx loc kind) then Effect.perform Switch
        end);
    d_relax =
      (fun n ->
        if advance ctx (Array.unsafe_get ctx.f_time ctx.current + max 1 n)
        then Effect.perform Switch);
    d_yield =
      (fun () ->
        if
          advance ctx
            (Array.unsafe_get ctx.f_time ctx.current
            + ctx.topo.Topology.costs.yield_quantum)
        then Effect.perform Switch);
    d_now = (fun () -> Int64.of_int (Array.unsafe_get ctx.f_time ctx.current));
    d_now_int = (fun () -> Array.unsafe_get ctx.f_time ctx.current);
    d_rand_int =
      (fun n -> Sec_prim.Rng.int (Array.unsafe_get ctx.f_rng ctx.current) n);
    d_rand_bits =
      (fun () -> Sec_prim.Rng.bits (Array.unsafe_get ctx.f_rng ctx.current));
    d_spawn = (fun body -> do_spawn ctx body);
    d_await_all =
      (fun () ->
        if ctx.live_workers = 0 then
          match ctx.det with
          | Some d ->
              Sec_analysis.Race_detector.on_join d ~fiber:(fid_of ctx.current)
          | None -> ()
        else Effect.perform Await);
    d_fiber_id = (fun () -> fid_of ctx.current);
    d_num_workers = (fun () -> ctx.next_core);
  }

(* ------------------------------------------------------------------ *)
(* Public API                                                           *)

(* A dead one-shot continuation to fill [f_kont]'s never-read slots:
   captured from a throwaway fiber that performs [Switch] once. It is
   never resumed, so the placeholder costs one tiny fiber per run. *)
let dead_kont () =
  let cell = ref None in
  Effect.Deep.match_with
    (fun () -> Effect.perform Switch)
    ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Switch ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  cell := Some (k : (unit, unit) Effect.Deep.continuation))
          | _ -> None);
    };
  match !cell with Some k -> k | None -> assert false

let run ?(seed = 42) ?(jitter = 0) ?detector ?reclaim_checker ?progress
    ?suspend ?max_events ~topology f =
  let nslots = Topology.max_threads topology + Heap.fid_bias in
  let main_rng = Sec_prim.Rng.create (Int64.of_int (seed + 1)) in
  let ctx =
    {
      topo = topology;
      cache = Cache_model.create topology;
      heap = Heap.create ();
      det = detector;
      jitter;
      sched_rng = Sec_prim.Rng.create (Int64.of_int seed);
      f_time = Array.make nslots 0;
      f_core = Array.make nslots 0;
      f_socket = Array.make nslots 0;
      f_rng = Array.make nslots main_rng;
      f_kont = Array.make nslots (dead_kont ());
      f_body = Array.make nslots None;
      current = 0;
      next_core = 0;
      live_workers = 0;
      joiner = -1;
      joiner_k = None;
      max_end_time = 0;
      events = 0;
      digest = 0;
      self_key = 0;
      heap_min = -1;
      alloc_base = !(Sim_effects.alloc_tally ());
      suspend_victim = (match suspend with Some (v, _) -> v | None -> min_int);
      suspend_after = (match suspend with Some (_, n) -> n | None -> 0);
      suspend_seen = 0;
      max_events = (match max_events with Some m -> m | None -> max_int);
      switch_h = None;
      freeze_h = None;
      await_h = None;
    }
  in
  ctx.f_core.(0) <- -2 (* the main pseudo-fiber's off-grid core *);
  ctx.switch_h <- Some (fun k -> park ctx k);
  ctx.freeze_h <- Some (fun _k -> on_freeze ctx);
  ctx.await_h <-
    Some
      (fun k ->
        ctx.joiner <- ctx.current;
        ctx.joiner_k <- Some k;
        schedule ctx);
  let result = ref None in
  let start () = run_fiber ctx (fun () -> result := Some (f ())) in
  let start =
    match reclaim_checker with
    | Some c -> fun () -> Sec_analysis.Reclaim_checker.with_checker c start
    | None -> start
  in
  let start =
    match progress with
    | Some m -> fun () -> Sec_analysis.Progress_monitor.with_monitor m start
    | None -> start
  in
  let saved = Sim_effects.install (dispatch_of ctx) in
  Fun.protect
    ~finally:(fun () -> Sim_effects.restore saved)
    (fun () ->
      match detector with
      | Some d -> Sec_analysis.Race_detector.with_detector d start
      | None -> start ());
  match !result with
  | None -> raise Deadlock
  | Some r ->
      ( r,
        {
          elapsed_cycles = ctx.max_end_time;
          events = ctx.events;
          traffic = Cache_model.traffic ctx.cache;
          fibers = ctx.next_core;
          allocs = !(Sim_effects.alloc_tally ()) - ctx.alloc_base;
          schedule_digest = ctx.digest land max_int;
        } )

(* Routed through the dispatch so they hit the in-run fast path; outside
   a run the default dispatch performs the legacy effects, preserving
   [Effect.Unhandled] (and {!Explore}'s handlers see exactly what they
   always saw). *)
let spawn body = (Sim_effects.dispatch ()).d_spawn body
let await_all () = (Sim_effects.dispatch ()).d_await_all ()
let fiber_id () = (Sim_effects.dispatch ()).d_fiber_id ()

(* ------------------------------------------------------------------ *)

(* The simulated substrate (re-exported from {!Sim_effects} so algorithm
   code can keep writing [Sec_sim.Sim.Prim]). *)
module Prim = Sim_effects.Prim
