(* Deterministic discrete-event simulator of a NUMA multicore.

   Each simulated hardware thread is an effects-based fiber with its own
   virtual clock. Every *atomic* access performs an effect; the handler
   charges cycles from the {!Cache_model} and re-schedules, always running
   the fiber with the smallest virtual time next. Shared-memory conflicts
   are therefore resolved in virtual-time order, and the makespan of a
   run is [max] over fiber end times — exactly a parallel discrete-event
   simulation.

   Determinism: a fixed seed yields an identical schedule, identical final
   state and identical statistics. The optional [jitter] parameter adds
   seeded random delays to accesses, which perturbs interleavings — the
   test suite sweeps seeds to explore schedules.

   IMPORTANT implementation invariant: every handler branch, [schedule]
   and [retc] must end in a TAIL call ([continue]/[schedule]/[run_fiber]);
   this is what keeps the stack flat across millions of context switches. *)

type fiber = {
  fid : int; (* hardware-thread id; -2 for the main fiber *)
  core : int; (* physical core in the cache model (SMT siblings share) *)
  socket : int;
  mutable time : int;
  rng : Sec_prim.Rng.t;
  is_main : bool;
}

open Sim_effects

exception Deadlock
exception Not_in_simulation

exception Stalled
(* Raised when [run ~max_events] exceeds its event budget: with a fiber
   frozen by [~suspend], the peers of a blocking algorithm spin forever
   and virtual time grows without completing — the discrete-event
   analogue of {!Explore}'s livelock verdict. *)

(* ------------------------------------------------------------------ *)
(* Binary min-heap of runnable fibers, keyed by (time, fid) so that      *)
(* scheduling is deterministic.                                          *)

module Heap = struct
  (* The (time, fid) key packed into one unboxed int —
     [time * 2^fid_bits + (fid + fid_bias)] — beside a same-index
     payload array. A push happens at every scheduling event, and the
     seed's boxed {time; fid; payload} entries cost a minor-heap
     allocation per push plus a pointer chase per comparison; packed
     keys allocate nothing, order with a single integer test (the
     packing is order-isomorphic to the lexicographic pair), and sifts
     move a hole instead of swapping, one key/payload move per level.
     Exact while [0 <= fid + fid_bias < 2^fid_bits] and
     [time < 2^(62 - fid_bits)] — two million fibers and ~10^12 virtual
     cycles, both far past any simulated run; [pack] rejects anything
     outside. *)
  let fid_bits = 21
  let fid_bias = 2 (* the main pseudo-fiber runs as fid -2 *)

  let pack time fid =
    let f = fid + fid_bias in
    if f lsr fid_bits <> 0 || time lsr (62 - fid_bits) <> 0 then
      invalid_arg "Sim.Heap: time or fiber id exceeds the packing range";
    (time lsl fid_bits) lor f

  type 'a t = {
    mutable keys : int array;
    mutable data : 'a array;
    mutable size : int;
  }

  let create () = { keys = [||]; data = [||]; size = 0 }

  let push t time fid payload =
    if t.size = Array.length t.data then begin
      let cap = max 16 (2 * t.size) in
      let keys = Array.make cap 0 in
      let data = Array.make cap payload in
      Array.blit t.keys 0 keys 0 t.size;
      Array.blit t.data 0 data 0 t.size;
      t.keys <- keys;
      t.data <- data
    end;
    let key = pack time fid in
    (* sift the new hole up, then write once *)
    let i = ref t.size in
    t.size <- t.size + 1;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let parent = (!i - 1) / 2 in
      if key < t.keys.(parent) then begin
        t.keys.(!i) <- t.keys.(parent);
        t.data.(!i) <- t.data.(parent);
        i := parent
      end
      else sifting := false
    done;
    t.keys.(!i) <- key;
    t.data.(!i) <- payload

  (* The packed key of the earliest entry. *)
  let min_key t = if t.size = 0 then None else Some t.keys.(0)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.data.(0) in
      t.size <- t.size - 1;
      let n = t.size in
      if n > 0 then begin
        (* sift a root hole down past smaller children, then drop the
           detached last entry in; this also overwrites the popped
           payload's slot, so the heap does not pin a dead
           continuation. *)
        let key = t.keys.(n) in
        let last = t.data.(n) in
        let i = ref 0 in
        let sifting = ref true in
        while !sifting do
          let l = (2 * !i) + 1 in
          if l >= n then sifting := false
          else begin
            let r = l + 1 in
            let c = if r < n && t.keys.(r) < t.keys.(l) then r else l in
            if t.keys.(c) < key then begin
              t.keys.(!i) <- t.keys.(c);
              t.data.(!i) <- t.data.(c);
              i := c
            end
            else sifting := false
          end
        done;
        t.keys.(!i) <- key;
        t.data.(!i) <- last
      end;
      Some top
    end
end

(* ------------------------------------------------------------------ *)

type pending =
  | Resume of fiber * (unit, unit) Effect.Deep.continuation
  | Start of fiber * (unit -> unit)

type ctx = {
  topo : Topology.t;
  cache : Cache_model.t;
  heap : pending Heap.t;
  det : Sec_analysis.Race_detector.t option;
  jitter : int;
  sched_rng : Sec_prim.Rng.t;
  mutable next_core : int;
  mutable live_workers : int;
  mutable joiner : (fiber * (unit, unit) Effect.Deep.continuation) option;
  mutable max_end_time : int;
  mutable events : int;
  alloc_base : int; (* {!Sim_effects.alloc_tally} at run start *)
  (* Suspension adversary: freeze fiber [fid] just before its [n]th
     atomic access (see {!Explore.classify} for the bounded-sweep
     version; here a single point suffices for regression pinning). *)
  suspend : (int * int) option;
  mutable suspend_seen : int;
  max_events : int option; (* raise [Stalled] past this many events *)
}

type stats = {
  elapsed_cycles : int;  (** makespan: latest fiber end time *)
  events : int;  (** scheduling events (atomic accesses etc.) *)
  traffic : Cache_model.traffic;
  fibers : int;
  allocs : int;  (** fresh hot-path allocations ([P.note_alloc] calls) *)
}

let key_of fiber = Heap.pack fiber.time fiber.fid

let rec schedule ctx =
  match Heap.pop ctx.heap with
  | Some (Resume (_, k)) -> Effect.Deep.continue k ()
  | Some (Start (f, body)) -> run_fiber ctx f body
  | None -> (
      match ctx.joiner with
      | Some (f, k) when ctx.live_workers = 0 ->
          ctx.joiner <- None;
          f.time <- max f.time ctx.max_end_time;
          (match ctx.det with
          | Some d -> Sec_analysis.Race_detector.on_join d ~fiber:f.fid
          | None -> ());
          Effect.Deep.continue k ()
      | Some _ -> raise Deadlock
      | None -> () (* fully drained: unwind to [run] *))

(* Advance [fiber] to [new_time] and hand control to the globally earliest
   fiber. Fast path: if [fiber] is still earliest, keep running it without
   touching the heap. *)
and reschedule ctx fiber new_time k =
  let new_time =
    if ctx.jitter > 0 then begin
      (* Heavy-tailed jitter: small perturbations alone cannot reorder
         fibers that queue on a busy line (the service gap absorbs them),
         so occasionally insert a delay long enough to swap turns. *)
      let extra = Sec_prim.Rng.int ctx.sched_rng (ctx.jitter + 1) in
      let extra =
        if Sec_prim.Rng.int ctx.sched_rng 8 = 0 then
          extra + Sec_prim.Rng.int ctx.sched_rng ((8 * ctx.jitter) + 1)
        else extra
      in
      new_time + extra
    end
    else new_time
  in
  fiber.time <- new_time;
  ctx.events <- ctx.events + 1;
  (match ctx.max_events with
  | Some m when ctx.events > m -> raise Stalled
  | _ -> ());
  match Heap.min_key ctx.heap with
  | Some key when key < key_of fiber ->
      Heap.push ctx.heap fiber.time fiber.fid (Resume (fiber, k));
      schedule ctx
  | Some _ | None -> Effect.Deep.continue k ()

and run_fiber ctx fiber body =
  let open Effect.Deep in
  match_with body ()
    {
      retc =
        (fun () ->
          ctx.max_end_time <- max ctx.max_end_time fiber.time;
          if not fiber.is_main then ctx.live_workers <- ctx.live_workers - 1;
          (match ctx.det with
          | Some d -> Sec_analysis.Race_detector.on_exit d ~fiber:fiber.fid
          | None -> ());
          Sim_effects.Reclaim.on_fiber_exit fiber.fid;
          Sim_effects.Progress.on_fiber_exit fiber.fid;
          schedule ctx);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Access (loc, kind) ->
              Some
                (fun (k : (a, _) continuation) ->
                  let freeze =
                    match ctx.suspend with
                    | Some (victim, after) when fiber.fid = victim ->
                        ctx.suspend_seen <- ctx.suspend_seen + 1;
                        ctx.suspend_seen = after
                    | _ -> false
                  in
                  if freeze then begin
                    (* Suspension adversary: the victim stops forever
                       just before the access executes. Its continuation
                       is dropped; it no longer counts as a live worker,
                       so [await_all] waits only for its peers. *)
                    ctx.max_end_time <- max ctx.max_end_time fiber.time;
                    if not fiber.is_main then
                      ctx.live_workers <- ctx.live_workers - 1;
                    schedule ctx
                  end
                  else begin
                    Sim_effects.Progress.on_event fiber.fid;
                    let new_time =
                      Cache_model.access ctx.cache ~core:fiber.core
                        ~socket:fiber.socket ~loc ~now:fiber.time kind
                    in
                    reschedule ctx fiber new_time k
                  end)
          | Relax n -> Some (fun k -> reschedule ctx fiber (fiber.time + max 1 n) k)
          | Yield ->
              Some
                (fun k ->
                  reschedule ctx fiber
                    (fiber.time + ctx.topo.Topology.costs.yield_quantum)
                    k)
          | New_loc ->
              Some
                (fun k ->
                  continue k
                    (Cache_model.new_line ctx.cache ~core:fiber.core
                       ~socket:fiber.socket))
          | Now -> Some (fun k -> continue k (Int64.of_int fiber.time))
          | Rand_int n -> Some (fun k -> continue k (Sec_prim.Rng.int fiber.rng n))
          | Rand_bits -> Some (fun k -> continue k (Sec_prim.Rng.bits fiber.rng))
          | Fiber_id -> Some (fun k -> continue k fiber.fid)
          | Num_workers -> Some (fun k -> continue k ctx.next_core)
          | Spawn body ->
              Some
                (fun k ->
                  let fid = ctx.next_core in
                  ctx.next_core <- fid + 1;
                  let worker =
                    {
                      fid;
                      core = Topology.core_of ctx.topo fid;
                      socket = Topology.socket_of ctx.topo fid;
                      time = fiber.time;
                      rng = Sec_prim.Rng.split ctx.sched_rng;
                      is_main = false;
                    }
                  in
                  ctx.live_workers <- ctx.live_workers + 1;
                  (match ctx.det with
                  | Some d ->
                      Sec_analysis.Race_detector.on_spawn d ~parent:fiber.fid
                        ~child:fid
                  | None -> ());
                  Heap.push ctx.heap worker.time worker.fid (Start (worker, body));
                  continue k ())
          | Await_all ->
              Some
                (fun k ->
                  if ctx.live_workers = 0 then begin
                    (match ctx.det with
                    | Some d ->
                        Sec_analysis.Race_detector.on_join d ~fiber:fiber.fid
                    | None -> ());
                    continue k ()
                  end
                  else begin
                    ctx.joiner <- Some (fiber, k);
                    schedule ctx
                  end)
          | _ -> None)
    }

(* ------------------------------------------------------------------ *)
(* Public API                                                           *)

let run ?(seed = 42) ?(jitter = 0) ?detector ?reclaim_checker ?progress
    ?suspend ?max_events ~topology f =
  let ctx =
    {
      topo = topology;
      cache = Cache_model.create topology;
      heap = Heap.create ();
      det = detector;
      jitter;
      sched_rng = Sec_prim.Rng.create (Int64.of_int seed);
      next_core = 0;
      live_workers = 0;
      joiner = None;
      max_end_time = 0;
      events = 0;
      alloc_base = !Sim_effects.alloc_tally;
      suspend;
      suspend_seen = 0;
      max_events;
    }
  in
  let result = ref None in
  let main =
    {
      fid = -2;
      core = -2;
      socket = 0;
      time = 0;
      rng = Sec_prim.Rng.create (Int64.of_int (seed + 1));
      is_main = true;
    }
  in
  let start () = run_fiber ctx main (fun () -> result := Some (f ())) in
  let start =
    match reclaim_checker with
    | Some c -> fun () -> Sec_analysis.Reclaim_checker.with_checker c start
    | None -> start
  in
  let start =
    match progress with
    | Some m -> fun () -> Sec_analysis.Progress_monitor.with_monitor m start
    | None -> start
  in
  (match detector with
  | Some d -> Sec_analysis.Race_detector.with_detector d start
  | None -> start ());
  match !result with
  | None -> raise Deadlock
  | Some r ->
      ( r,
        {
          elapsed_cycles = ctx.max_end_time;
          events = ctx.events;
          traffic = Cache_model.traffic ctx.cache;
          fibers = ctx.next_core;
          allocs = !Sim_effects.alloc_tally - ctx.alloc_base;
        } )

let spawn body = Effect.perform (Spawn body)
let await_all () = Effect.perform Await_all
let fiber_id () = Effect.perform Fiber_id

(* ------------------------------------------------------------------ *)

(* The simulated substrate (re-exported from {!Sim_effects} so algorithm
   code can keep writing [Sec_sim.Sim.Prim]). *)
module Prim = Sim_effects.Prim
