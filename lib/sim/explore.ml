(* Systematic schedule exploration with preemption bounding, in the style
   of CHESS (Musuvathi & Qadeer) and dscheck: replay a scenario under
   every schedule that deviates from a fair round-robin baseline by at
   most [max_preemptions] forced context switches, each placed immediately
   before an atomic access.

   Soundness for *blocking* algorithms (SEC spins on freezers and
   combiners) comes from the fair baseline: between forced preemptions,
   fibers rotate round-robin every [quantum] accesses, so a spinning fiber
   always lets the fiber it waits for run. The bug-finding power comes
   from the forced preemptions — empirically most concurrency bugs need
   only one or two (the CHESS observation).

   Schedules are enumerated by depth-first search over placement lists
   [(step, fiber); ...] with strictly increasing steps; each run replays
   the scenario from scratch (the generator re-creates all state and
   per-fiber RNGs are reseeded, so replay is deterministic).

   Two placement-harvesting strategies exist (see {!strategy}):

   - [`Exhaustive] (the historical behaviour) branches at every step at
     which another fiber was runnable;
   - [`Dpor] harvests dynamic-partial-order-reduction style (Flanagan &
     Godefroid 2005, as in dejafu): a branch is added only at steps whose
     access *conflicts* with a later access of another fiber (same
     location, at least one write). Preemptions between independent
     accesses commute into an already-explored schedule, so pruning them
     visits the same behaviours in far fewer runs. With lookahead limited
     to the observed trace this is an approximation of source-DPOR: it
     prunes aggressively and keeps every conflict-driven branch, which in
     practice preserves the bug-finding power of the bounded search.

   Optionally every run is monitored by a {!Sec_analysis.Race_detector};
   a schedule that exhibits a write-write race fails with the offending
   source locations even if the scenario's own check passes.

   Like {!Sim}, the engine interprets the effects of {!Sim_effects}; there
   is no cost model here — only interleavings matter. *)

type placement = { step : int; fiber : int }

type strategy = [ `Exhaustive | `Dpor ]

type violation_kind =
  | Check_failed  (** the scenario's final check returned false *)
  | Fiber_raised of string  (** a fiber or the check raised *)
  | Livelock  (** a schedule exceeded the per-run step budget *)
  | Race_detected of string  (** the race detector flagged this schedule *)
  | Reclamation_violation of string
      (** the reclamation checker flagged this schedule *)

type violation = {
  kind : violation_kind;
  schedule : placement list;  (** forced preemptions reproducing it *)
  explored : int;  (** schedules run up to and including the violation *)
}

type result =
  | Passed of { schedules : int; truncated : bool }
  | Failed of violation

exception Unsupported of string

let pp_result ppf = function
  | Passed { schedules; truncated } ->
      Format.fprintf ppf "passed (%d schedules%s)" schedules
        (if truncated then ", truncated" else "")
  | Failed { kind; schedule; explored } ->
      let kind_str =
        match kind with
        | Check_failed -> "check failed"
        | Fiber_raised msg -> "raised: " ^ msg
        | Livelock -> "livelock"
        | Race_detected msg -> "race: " ^ msg
        | Reclamation_violation msg -> "reclamation: " ^ msg
      in
      Format.fprintf ppf "FAILED after %d schedules (%s) at preemptions [%s]"
        explored kind_str
        (String.concat "; "
           (List.map
              (fun p -> Printf.sprintf "step %d -> fiber %d" p.step p.fiber)
              schedule))

(* A violation's schedule as a compact string ("step:fiber;step:fiber"),
   so tests and bug reports can pin a reproduction. *)
let schedule_to_string schedule =
  String.concat ";"
    (List.map (fun p -> Printf.sprintf "%d:%d" p.step p.fiber) schedule)

let schedule_of_string s =
  if String.trim s = "" then []
  else
    String.split_on_char ';' s
    |> List.map (fun item ->
           match String.split_on_char ':' (String.trim item) with
           | [ step; fiber ] -> (
               match (int_of_string_opt step, int_of_string_opt fiber) with
               | Some step, Some fiber -> { step; fiber }
               | _ -> invalid_arg ("Explore.schedule_of_string: " ^ item))
           | _ -> invalid_arg ("Explore.schedule_of_string: " ^ item))

(* ------------------------------------------------------------------ *)
(* One schedule                                                         *)

type fiber_state =
  | Start of (unit -> unit)
  | Paused of (unit -> unit) (* resumes the captured continuation *)
  | Done
  | Frozen
      (* parked forever by the suspension adversary ({!classify}): the
         continuation is dropped, modelling a thread descheduled
         mid-operation and never coming back *)

(* Last accesses per location, for [`Dpor] conflict harvesting. *)
type loc_accesses = {
  mutable last_write : (int * int) option; (* fiber, step *)
  reads : (int, int) Hashtbl.t; (* fiber -> step of its last read *)
}

(* Weighted-random scheduling state (PCT-style, see {!random_run}): one
   priority weight per fiber, drawn once per run from the seeded [rng],
   plus a [stay] weight for the currently running fiber. At every live
   access the scheduler samples proportionally to the weights; choosing
   another fiber is recorded as a {!placement} so the run replays through
   the ordinary forced-preemption path. *)
type rand_sched = {
  rng : Sec_prim.Rng.t;
  mutable weights : int array; (* per-fiber, sized lazily at first access *)
  stay : int; (* weight of not deviating from the baseline *)
}

type run_ctx = {
  mutable fibers : fiber_state array;
  mutable rngs : Sec_prim.Rng.t array;
  mutable current : int;
  mutable in_quantum : int;
  quantum : int;
  mutable step : int;
  mutable pending : placement list; (* forced preemptions, ascending *)
  mutable next_loc : int;
  max_steps : int;
  mutable livelocked : bool;
  (* Extension points for the DFS: steps (past the last forced one) at
     which the search should branch, with the alternative fibers. *)
  mutable extensions : (int * int list) list; (* reversed *)
  mutable extension_count : int;
  collect_from : int;
  collecting : bool;
  max_extensions : int;
  mutable extensions_truncated : bool;
  strategy : strategy;
  accesses : (int, loc_accesses) Hashtbl.t; (* loc -> last accesses *)
  branched : (int * int, unit) Hashtbl.t; (* dedup of (step, fiber) *)
  setup_rng : Sec_prim.Rng.t; (* for effects outside any fiber *)
  (* Weighted-random scheduling; [recorded] accumulates the deviations
     (reversed) so a failing run serializes to a replayable schedule. *)
  rand : rand_sched option;
  mutable recorded : placement list;
  (* Suspension adversary: freeze [fiber] just before its [n]th access. *)
  suspend : (int * int) option;
  mutable victim_seen : int; (* accesses the victim has reached *)
  mutable suspended : bool; (* the freeze actually happened *)
}

let runnable_others ctx =
  let alts = ref [] in
  Array.iteri
    (fun i st ->
      match st with
      | Done | Frozen -> ()
      | Start _ | Paused _ -> if i <> ctx.current then alts := i :: !alts)
    ctx.fibers;
  !alts

let next_runnable ctx =
  let n = Array.length ctx.fibers in
  let rec scan k =
    if k > n then None
    else
      let i = (ctx.current + k) mod n in
      match ctx.fibers.(i) with
      | Done | Frozen -> scan (k + 1)
      | Start _ | Paused _ -> Some i
  in
  scan 1

let add_extension ctx step fiber =
  if
    step > ctx.collect_from
    && not (Hashtbl.mem ctx.branched (step, fiber))
  then
    if ctx.extension_count < ctx.max_extensions then begin
      Hashtbl.add ctx.branched (step, fiber) ();
      ctx.extensions <- (step, [ fiber ]) :: ctx.extensions;
      ctx.extension_count <- ctx.extension_count + 1
    end
    else ctx.extensions_truncated <- true

(* [`Dpor]: the access (current fiber, loc, kind) about to execute at
   [ctx.step] conflicts with earlier accesses of other fibers to the same
   location (at least one side a write). For the most recent conflicting
   access of each kind, request a branch that runs *this* fiber right
   before it — reversing the order of the conflicting pair. Independent
   accesses harvest nothing: preempting between them commutes into a
   schedule the DFS already covers. *)
let harvest_conflicts ctx ~loc ~kind =
  let f = ctx.current in
  let acc =
    match Hashtbl.find_opt ctx.accesses loc with
    | Some a -> a
    | None ->
        let a = { last_write = None; reads = Hashtbl.create 4 } in
        Hashtbl.add ctx.accesses loc a;
        a
  in
  (match acc.last_write with
  | Some (w, s) when w <> f -> add_extension ctx s f
  | _ -> ());
  (match kind with
  | Cache_model.Read -> ()
  | Cache_model.Write | Cache_model.Rmw ->
      Hashtbl.iter (fun r s -> if r <> f then add_extension ctx s f) acc.reads);
  (* Update the tables with this access. *)
  match kind with
  | Cache_model.Read -> Hashtbl.replace acc.reads f ctx.step
  | Cache_model.Write | Cache_model.Rmw ->
      acc.last_write <- Some (f, ctx.step);
      (* Reads before this write are now ordered behind it for future
         conflicts through [last_write]; drop them to keep pairs fresh. *)
      Hashtbl.reset acc.reads

(* Tail-call discipline as in {!Sim}: every branch ends in [continue],
   [run_fiber], [dispatch] or a plain return unwinding to the driver. *)
let rec dispatch ctx fiber =
  ctx.current <- fiber;
  ctx.in_quantum <- ctx.quantum;
  match ctx.fibers.(fiber) with
  | Done | Frozen -> assert false
  | Paused resume -> resume ()
  | Start body -> run_fiber ctx fiber body

and run_fiber ctx fiber body =
  let open Effect.Deep in
  match_with body ()
    {
      retc =
        (fun () ->
          ctx.fibers.(fiber) <- Done;
          match next_runnable ctx with
          | None -> ()
          | Some f -> dispatch ctx f);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sim_effects.Access (loc, kind) ->
              Some
                (fun (k : (a, _) continuation) ->
                  at_access ctx ~loc ~kind (fun () -> continue k ()))
          | Sim_effects.Relax _ -> Some (fun k -> continue k ())
          | Sim_effects.Yield ->
              Some
                (fun k ->
                  (* A yield rotates immediately — that is its meaning. *)
                  match next_runnable ctx with
                  | None -> continue k ()
                  | Some f ->
                      ctx.fibers.(ctx.current) <-
                        Paused (fun () -> continue k ());
                      dispatch ctx f)
          | Sim_effects.New_loc ->
              Some
                (fun k ->
                  let id = ctx.next_loc in
                  ctx.next_loc <- id + 1;
                  continue k id)
          | Sim_effects.Now -> Some (fun k -> continue k (Int64.of_int ctx.step))
          | Sim_effects.Rand_int n ->
              Some
                (fun k -> continue k (Sec_prim.Rng.int ctx.rngs.(ctx.current) n))
          | Sim_effects.Rand_bits ->
              Some
                (fun k -> continue k (Sec_prim.Rng.bits ctx.rngs.(ctx.current)))
          | Sim_effects.Fiber_id -> Some (fun k -> continue k ctx.current)
          | Sim_effects.Num_workers ->
              Some (fun k -> continue k (Array.length ctx.rngs))
          | Sim_effects.Spawn _ ->
              Some
                (fun _ ->
                  raise (Unsupported "Sim.spawn inside an Explore scenario"))
          | Sim_effects.Await_all ->
              Some
                (fun _ ->
                  raise (Unsupported "Sim.await_all inside an Explore scenario"))
          | _ -> None)
    }

(* The heart: a scheduling point just before an atomic access. [resume]
   continues the suspended access. *)
and at_access ctx ~loc ~kind (resume : unit -> unit) =
  let freeze =
    match ctx.suspend with
    | Some (victim, after) when ctx.current = victim && not ctx.suspended ->
        ctx.victim_seen <- ctx.victim_seen + 1;
        ctx.victim_seen = after
    | _ -> false
  in
  if freeze then begin
    (* Suspension adversary: park the victim forever, just before the
       access executes. The frozen access is never accounted as a step —
       it never happens. *)
    ctx.suspended <- true;
    ctx.fibers.(ctx.current) <- Frozen;
    match next_runnable ctx with None -> () | Some f -> dispatch ctx f
  end
  else at_live_access ctx ~loc ~kind resume

and at_live_access ctx ~loc ~kind (resume : unit -> unit) =
  Sim_effects.Progress.on_event ctx.current;
  ctx.step <- ctx.step + 1;
  if ctx.step > ctx.max_steps then begin
    ctx.livelocked <- true
    (* abandon: unwind to the driver, leaving other fibers paused *)
  end
  else begin
    let forced =
      match ctx.pending with
      | { step; fiber } :: rest when step = ctx.step ->
          ctx.pending <- rest;
          Some fiber
      | _ -> None
    in
    (* Record branching opportunities for the DFS — only past the last
       forced preemption, so every schedule is generated exactly once. *)
    (if ctx.collecting then
       match ctx.strategy with
       | `Dpor ->
           (* Conflict harvesting must see every access (the tables feed
              later conflicts), including forced ones. *)
           harvest_conflicts ctx ~loc ~kind
       | `Exhaustive ->
           if forced = None && ctx.step > ctx.collect_from then (
             match runnable_others ctx with
             | [] -> ()
             | alts ->
                 if ctx.extension_count < ctx.max_extensions then begin
                   ctx.extensions <- (ctx.step, alts) :: ctx.extensions;
                   ctx.extension_count <-
                     ctx.extension_count + List.length alts
                 end
                 else ctx.extensions_truncated <- true));
    match forced with
    | Some f -> (
        match ctx.fibers.(f) with
        | Done | Frozen ->
            (* Replay drift should not happen (runs are deterministic);
               degrade to continuing rather than crashing. *)
            resume ()
        | Start _ | Paused _ ->
            ctx.fibers.(ctx.current) <- Paused resume;
            dispatch ctx f)
    | None -> (
        match random_choice ctx with
        | Some f ->
            (* A sampled deviation: record it so the run replays as a
               plain forced-preemption schedule, then switch. *)
            ctx.recorded <- { step = ctx.step; fiber = f } :: ctx.recorded;
            ctx.fibers.(ctx.current) <- Paused resume;
            dispatch ctx f
        | None ->
        if ctx.in_quantum <= 1 then begin
          (* Baseline fairness: rotate round-robin. *)
          match next_runnable ctx with
          | None ->
              ctx.in_quantum <- ctx.quantum;
              resume ()
          | Some f ->
              ctx.fibers.(ctx.current) <- Paused resume;
              dispatch ctx f
        end
        else begin
          ctx.in_quantum <- ctx.in_quantum - 1;
          resume ()
        end)
  end

(* Sample the weighted-random scheduler, if installed: [None] keeps the
   fair baseline for this access, [Some f] deviates to fiber [f]. The
   baseline still rotates every [quantum] accesses in between, so even a
   fiber whose weight the sampler never favours keeps running — random
   exploration stays sound for blocking algorithms. *)
and random_choice ctx =
  match ctx.rand with
  | None -> None
  | Some r -> (
      match runnable_others ctx with
      | [] -> None
      | alts ->
          if Array.length r.weights = 0 then
            r.weights <-
              Array.init (Array.length ctx.fibers) (fun _ ->
                  1 lsl Sec_prim.Rng.int r.rng 4);
          let total =
            List.fold_left (fun acc f -> acc + r.weights.(f)) r.stay alts
          in
          let d = Sec_prim.Rng.int r.rng total in
          if d < r.stay then None
          else
            let rec pick d = function
              | [] -> None
              | f :: rest ->
                  if d < r.weights.(f) then Some f
                  else pick (d - r.weights.(f)) rest
            in
            pick (d - r.stay) alts)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)

type one_outcome =
  | Ok_run of bool (* final check result *)
  | Raised of string
  | Livelocked

(* Effects performed outside the fibers (scenario setup, final check) are
   interpreted trivially and sequentially. Shared by {!run_one} and the
   suspension driver {!run_frozen}. *)
let setup_effc :
    type a.
    run_ctx -> a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option
    =
 fun ctx eff ->
  let open Effect.Deep in
  match eff with
  | Sim_effects.Access (_, _) ->
      (* No scheduling (there is nothing to interleave with), but the
         virtual clock still ticks: the final check records drain events
         through {!Sec_spec.History}, and those need distinct timestamps
         so the linearizability checker sees them as sequential. The step
         budget applies here too (generously): a check that operates on
         the structure (e.g. a draining pop) can inherit a stalled
         protocol state — a combiner lock held by a crash-frozen fiber —
         and would otherwise spin the setup context forever. *)
      Some
        (fun k ->
          ctx.step <- ctx.step + 1;
          if ctx.step > 4 * ctx.max_steps then
            discontinue k
              (Failure "Explore: setup/check exceeded the step budget")
          else continue k ())
  | Sim_effects.Relax _ -> Some (fun k -> continue k ())
  | Sim_effects.Yield -> Some (fun k -> continue k ())
  | Sim_effects.New_loc ->
      Some
        (fun k ->
          let id = ctx.next_loc in
          ctx.next_loc <- id + 1;
          continue k id)
  | Sim_effects.Now -> Some (fun k -> continue k (Int64.of_int ctx.step))
  | Sim_effects.Rand_int n ->
      Some (fun k -> continue k (Sec_prim.Rng.int ctx.setup_rng n))
  | Sim_effects.Rand_bits ->
      Some (fun k -> continue k (Sec_prim.Rng.bits ctx.setup_rng))
  | Sim_effects.Fiber_id -> Some (fun k -> continue k (-1))
  | Sim_effects.Num_workers -> Some (fun k -> continue k 0)
  | _ -> None

let run_one ctx scenario =
  let open Effect.Deep in
  let outcome = ref (Ok_run true) in
  let body () =
    let fibers, check = scenario () in
    if fibers = [] then raise (Unsupported "scenario with no fibers");
    ctx.fibers <- Array.of_list (List.map (fun b -> Start b) fibers);
    ctx.rngs <-
      Array.init (Array.length ctx.fibers) (fun i ->
          Sec_prim.Rng.create (Int64.of_int (1_000 + i)));
    (* Setup-to-fiber happens-before edges for the race detector: the
       scenario's state was built by the setup context (fiber -1). *)
    (match !Sec_analysis.Race_detector.active with
    | Some d ->
        Array.iteri
          (fun i _ -> Sec_analysis.Race_detector.on_spawn d ~parent:(-1) ~child:i)
          ctx.fibers
    | None -> ());
    dispatch ctx 0;
    (match !Sec_analysis.Race_detector.active with
    | Some d ->
        Array.iteri
          (fun i _ -> Sec_analysis.Race_detector.on_exit d ~fiber:i)
          ctx.fibers;
        Sec_analysis.Race_detector.on_join d ~fiber:(-1)
    | None -> ());
    (* Guard-leak detection at fiber completion — except on livelock,
       where abandoned fibers legitimately still hold their guards. *)
    if not ctx.livelocked then
      Array.iteri (fun i _ -> Sim_effects.Reclaim.on_fiber_exit i) ctx.fibers;
    if ctx.livelocked then outcome := Livelocked
    else outcome := Ok_run (check ())
  in
  (try
     match_with body ()
       {
         retc = (fun () -> ());
         exnc = (fun e -> outcome := Raised (Printexc.to_string e));
         effc = (fun eff -> setup_effc ctx eff);
       }
   with e -> outcome := Raised (Printexc.to_string e));
  !outcome

let make_ctx ?suspend ?rand ~strategy ~quantum ~max_steps ~placements
    ~collecting ~max_extensions () =
  let collect_from =
    List.fold_left (fun acc (p : placement) -> max acc p.step) 0 placements
  in
  {
    fibers = [||];
    rngs = [||];
    current = 0;
    in_quantum = quantum;
    quantum;
    step = 0;
    pending = placements;
    next_loc = 0;
    max_steps;
    livelocked = false;
    extensions = [];
    extension_count = 0;
    collect_from;
    collecting;
    max_extensions;
    extensions_truncated = false;
    strategy;
    accesses = Hashtbl.create 64;
    branched = Hashtbl.create 64;
    setup_rng = Sec_prim.Rng.create 99L;
    rand;
    recorded = [];
    suspend;
    victim_seen = 0;
    suspended = false;
  }

exception Stop of violation

(* Run one schedule under the optional race/reclamation monitors —
   shared by {!for_all} and {!for_random}. *)
let monitored_run ~detect_races ~check_reclamation ctx scenario =
  let run_monitored () =
    if detect_races then begin
      let d = Sec_analysis.Race_detector.create () in
      let o =
        Sec_analysis.Race_detector.with_detector d (fun () ->
            run_one ctx scenario)
      in
      (o, Sec_analysis.Race_detector.races d)
    end
    else (run_one ctx scenario, [])
  in
  if check_reclamation then begin
    let c = Sec_analysis.Reclaim_checker.create () in
    let r = Sec_analysis.Reclaim_checker.with_checker c run_monitored in
    (r, Sec_analysis.Reclaim_checker.reports c)
  end
  else (run_monitored (), [])

(* Fold a monitored run's three failure channels into one verdict, most
   specific first (a race explains a failed check better than the check
   does). *)
let violation_kind_of ((outcome, races), lifetime_bugs) =
  match races with
  | hz :: _ ->
      Some (Race_detected (Sec_analysis.Race_detector.hazard_to_string hz))
  | [] -> (
      match lifetime_bugs with
      | r :: _ ->
          Some
            (Reclamation_violation
               (Sec_analysis.Reclaim_checker.report_to_string r))
      | [] -> (
          match outcome with
          | Raised msg -> Some (Fiber_raised msg)
          | Livelocked -> Some Livelock
          | Ok_run false -> Some Check_failed
          | Ok_run true -> None))

let for_all ?(max_preemptions = 1) ?(quantum = 8) ?(max_schedules = 20_000)
    ?(max_steps = 50_000) ?(strategy = `Exhaustive) ?(detect_races = false)
    ?(check_reclamation = false) scenario =
  let explored = ref 0 in
  let truncated = ref false in
  let rec dfs placements =
    if !explored >= max_schedules then truncated := true
    else begin
      incr explored;
      let collecting = List.length placements < max_preemptions in
      let ctx =
        make_ctx ~strategy ~quantum ~max_steps ~placements ~collecting
          ~max_extensions:4_096 ()
      in
      let monitored = monitored_run ~detect_races ~check_reclamation ctx scenario in
      (match violation_kind_of monitored with
      | Some kind ->
          raise (Stop { kind; schedule = placements; explored = !explored })
      | None -> ());
      if ctx.extensions_truncated then truncated := true;
      List.iter
        (fun (step, alts) ->
          List.iter
            (fun fiber -> dfs (placements @ [ { step; fiber } ]))
            (List.rev alts))
        (List.rev ctx.extensions)
    end
  in
  match dfs [] with
  | () -> Passed { schedules = !explored; truncated = !truncated }
  | exception Stop v -> Failed v

(* Replay a specific schedule (e.g. a reported violation) once and return
   the check's verdict — for debugging a failure interactively. With
   [detector] and/or [reclaim_checker], the run feeds them (install is
   handled here). *)
let replay ?(quantum = 8) ?(max_steps = 50_000) ?detector ?reclaim_checker
    ~schedule scenario =
  let ctx =
    make_ctx ~strategy:`Exhaustive ~quantum ~max_steps ~placements:schedule
      ~collecting:false ~max_extensions:0 ()
  in
  let go () = run_one ctx scenario in
  let go =
    match reclaim_checker with
    | Some c -> fun () -> Sec_analysis.Reclaim_checker.with_checker c go
    | None -> go
  in
  match detector with
  | Some d -> Sec_analysis.Race_detector.with_detector d go
  | None -> go ()

(* ------------------------------------------------------------------ *)
(* Weighted-random exploration (PCT-style)                              *)

let random_run ?(quantum = 8) ?(max_steps = 50_000) ?(stay_weight = 6) ~seed
    scenario =
  let rand =
    { rng = Sec_prim.Rng.create seed; weights = [||]; stay = stay_weight }
  in
  let ctx =
    make_ctx ~rand ~strategy:`Exhaustive ~quantum ~max_steps ~placements:[]
      ~collecting:false ~max_extensions:0 ()
  in
  let outcome = run_one ctx scenario in
  (outcome, List.rev ctx.recorded)

let for_random ?(quantum = 8) ?(max_steps = 50_000) ?(runs = 64)
    ?(stay_weight = 6) ?(detect_races = false) ?(check_reclamation = false)
    ~seed scenario =
  let master = Sec_prim.Rng.create seed in
  let failure = ref None in
  let k = ref 0 in
  while Option.is_none !failure && !k < runs do
    incr k;
    (* Each run gets an independent generator split off the master, so
       the whole sweep is a pure function of [seed]. *)
    let rand =
      { rng = Sec_prim.Rng.split master; weights = [||]; stay = stay_weight }
    in
    let ctx =
      make_ctx ~rand ~strategy:`Exhaustive ~quantum ~max_steps ~placements:[]
        ~collecting:false ~max_extensions:0 ()
    in
    let monitored =
      monitored_run ~detect_races ~check_reclamation ctx scenario
    in
    match violation_kind_of monitored with
    | Some kind ->
        failure :=
          Some { kind; schedule = List.rev ctx.recorded; explored = !k }
    | None -> ()
  done;
  match !failure with
  | Some v -> Failed v
  | None -> Passed { schedules = runs; truncated = false }

(* ------------------------------------------------------------------ *)
(* Counterexample shrinking                                             *)

(* Delta debugging (Zeller & Hildebrandt's ddmin) over the placement
   list: repeatedly try dropping chunks of forced preemptions, keeping
   any smaller schedule for which [still_fails] holds, until the
   schedule is 1-minimal at chunk granularity 1. [still_fails] replays
   the candidate — schedules are deterministic, so the predicate is
   stable and the loop terminates (each accepted candidate is strictly
   shorter; otherwise the granularity doubles until it exceeds the
   length). *)
let shrink_schedule ~still_fails schedule =
  if schedule = [] then []
  else if still_fails [] then []
  else
    let rec minimize current n =
      let len = List.length current in
      if len <= 1 then current
      else begin
        let n = min n len in
        let chunk = (len + n - 1) / n in
        let rec try_complements i =
          if i * chunk >= len then None
          else
            let lo = i * chunk and hi = min len ((i + 1) * chunk) in
            let candidate =
              List.filteri (fun j _ -> j < lo || j >= hi) current
            in
            if still_fails candidate then Some candidate
            else try_complements (i + 1)
        in
        match try_complements 0 with
        | Some candidate -> minimize candidate (max 2 (n - 1))
        | None ->
            if chunk <= 1 then current else minimize current (min len (2 * n))
      end
    in
    minimize schedule 2

(* ------------------------------------------------------------------ *)
(* Adversarial suspension: the mechanical lock-freedom check             *)

type progress_class = Blocking | Lock_free

type suspension_outcome =
  | Survived of { engaged : bool }
      (* every non-victim fiber completed; [engaged] is false when the
         victim finished before reaching the suspension point *)
  | Blocked (* the step budget ran out: the peers spun forever *)
  | Crashed of string

(* One run under the suspension adversary. By default the scenario's
   final check is not consulted: with a fiber parked mid-operation the
   shared state is legitimately half-updated (e.g. a value pushed but not
   yet popped), so the only question is whether the *other* fibers ran to
   completion. With [consult], the check *is* evaluated when the peers
   complete — for crash-aware refinement properties whose check already
   accounts for the victim's in-flight operation ({!crashed_run}).
   Race/reclamation hooks are not fed either way — a frozen fiber holding
   a guard is the adversary's doing, not a bug. *)
let run_frozen ?(consult = false) ctx scenario =
  let open Effect.Deep in
  let outcome = ref (Survived { engaged = false }) in
  let verdict = ref None in
  let body () =
    let fibers, check = scenario () in
    if fibers = [] then raise (Unsupported "scenario with no fibers");
    ctx.fibers <- Array.of_list (List.map (fun b -> Start b) fibers);
    ctx.rngs <-
      Array.init (Array.length ctx.fibers) (fun i ->
          Sec_prim.Rng.create (Int64.of_int (1_000 + i)));
    dispatch ctx 0;
    if ctx.livelocked then outcome := Blocked
    else begin
      (* The driver unwound with nothing runnable: every fiber is [Done]
         except the (at most one) [Frozen] victim. *)
      outcome := Survived { engaged = ctx.suspended };
      if consult then verdict := Some (check ())
    end
  in
  (try
     match_with body ()
       {
         retc = (fun () -> ());
         exnc = (fun e -> outcome := Crashed (Printexc.to_string e));
         effc = (fun eff -> setup_effc ctx eff);
       }
   with e -> outcome := Crashed (Printexc.to_string e));
  (!outcome, !verdict)

let suspended_run ?(quantum = 8) ?(max_steps = 20_000) ~victim ~after scenario
    =
  let ctx =
    make_ctx ~suspend:(victim, after) ~strategy:`Exhaustive ~quantum
      ~max_steps ~placements:[] ~collecting:false ~max_extensions:0 ()
  in
  fst (run_frozen ctx scenario)

let crashed_run ?(quantum = 8) ?(max_steps = 20_000) ~victim ~after scenario =
  let ctx =
    make_ctx ~suspend:(victim, after) ~strategy:`Exhaustive ~quantum
      ~max_steps ~placements:[] ~collecting:false ~max_extensions:0 ()
  in
  run_frozen ~consult:true ctx scenario

type classification = {
  verdict : progress_class;
  witness : (int * int) option;
      (* (victim, access index) whose suspension blocked the peers *)
  runs : int; (* suspension runs performed *)
}

(* Sweep every single-fiber suspension point: for each victim fiber,
   freeze it just before its 1st, 2nd, ... access (under the fair
   round-robin baseline, so the schedule up to the freeze is
   deterministic) and ask whether the remaining fibers still complete.

   - Any run that exhausts the step budget is a blocking witness: some
     peer waits on a write the frozen fiber will never perform (a held
     lock, an unfrozen batch, an unserved combiner slot). Verdict
     [Blocking], with the witness point for reproduction via
     {!suspended_run}.
   - If for every victim the sweep runs off the end of the victim's own
     execution (the victim completes before reaching the point — no
     suspension point remains) with all peers completing every time, no
     single suspension can stop the system: verdict [Lock_free].

   This is lock-freedom in the operational, crash-failure sense the
   progress literature uses (Herlihy & Shavit): the system as a whole
   completes operations even if any single thread stops forever. It is a
   *bounded* check — one victim at a time, fair baseline, [max_suspensions]
   cap per victim — so [Lock_free] is evidence over the swept space, while
   [Blocking] verdicts are definitive witnesses. *)
let classify ?(quantum = 8) ?(max_steps = 20_000) ?(max_suspensions = 2_000)
    ~fibers scenario =
  let runs = ref 0 in
  let blocked = ref None in
  (try
     for victim = 0 to fibers - 1 do
       let after = ref 1 in
       let sweeping = ref true in
       while !sweeping do
         if !after > max_suspensions then sweeping := false
         else begin
           incr runs;
           match suspended_run ~quantum ~max_steps ~victim ~after:!after
                   scenario
           with
           | Survived { engaged = true } -> incr after
           | Survived { engaged = false } ->
               (* the victim completed before its [!after]th access: this
                  victim has no further suspension points *)
               sweeping := false
           | Blocked ->
               blocked := Some (victim, !after);
               raise Stdlib.Exit
           | Crashed msg ->
               failwith
                 (Printf.sprintf
                    "Explore.classify: raised under suspension of fiber %d \
                     at access %d: %s"
                    victim !after msg)
         end
       done
     done
   with Stdlib.Exit -> ());
  match !blocked with
  | Some w -> { verdict = Blocking; witness = Some w; runs = !runs }
  | None -> { verdict = Lock_free; witness = None; runs = !runs }

let progress_class_to_string = function
  | Blocking -> "blocking"
  | Lock_free -> "lock_free"
