(** Blelloch–Wei-style concurrent fixed-size allocation: per-domain
    active slabs carved from larger chunks, constant-time alloc and
    free, and no cross-domain CAS on the common path.

    This is the refill layer below {!Magazine}: where the PR 5 depot
    exchanged one chain per global CAS (with retry loops under
    contention), the slab store exchanges whole slabs of
    [slab_chains] chains, and every shared-state transfer is a SINGLE
    compare_and_set attempt — a lost park keeps the slab local until
    the next boundary, a lost adopt degrades to fresh (bump)
    allocation — so every path is wait-free.

    The {!Make.Arena} submodule is the off-heap variant: fixed-size
    int slots in a Bigarray with integer-handle indirection, slots
    pinned to the slab that carved them, remote frees batched
    per-slab. Its lifecycle feeds the reclaim checker's shadow heap
    ([Slab_double_free] / [Alloc_from_live_slab]); see
    docs/ANALYSIS.md and docs/PERF.md ("Allocator"). *)

(** Process-wide slab/arena tallies, mirrored on {!Magazine.Global}:
    per-thread cells, [reset] brackets a measured run, [snapshot]
    sums. *)
module Global : sig
  type snapshot = {
    parks : int;  (** full slabs parked on the shared partial stack *)
    park_fails : int;  (** park CAS attempts that lost (slab kept local) *)
    adopts : int;  (** parked slabs adopted by a dry domain *)
    adopt_fails : int;  (** adopt CAS attempts that lost (treated as miss) *)
    chain_puts : int;  (** chains freed into slabs *)
    chain_gets : int;  (** chains taken out of slabs *)
    fresh : int;  (** misses: the caller constructed fresh nodes *)
    remote_batches : int;  (** arena remote-free batches spliced *)
    remote_cas : int;  (** arena remote-splice CAS attempts *)
    remote_cas_retries : int;  (** arena remote-splice CAS retries *)
    pooled : int;  (** nodes currently held inside slabs (gauge) *)
    capacity : int;  (** node capacity of every slab created (gauge) *)
  }

  val reset : unit -> unit
  val snapshot : unit -> snapshot

  (** Every cross-domain CAS the slab layer issued (park + adopt
      attempts + arena remote splices) — the number `sec_bench alloc`
      compares against the depot's tally. *)
  val cas_attempts : snapshot -> int

  val cas_retries : snapshot -> int

  (** [pooled / capacity], 0 when no slab exists. *)
  val occupancy : snapshot -> float
end

(** Per-instance tallies, shared nominally across every {!Make}
    instantiation (like {!Magazine.stats}). *)
type stats = {
  parks : int;
  park_fails : int;
  adopts : int;
  adopt_fails : int;
  chain_puts : int;
  chain_gets : int;
  fresh : int;
  pooled : int;  (** nodes currently inside this instance's slabs *)
  parked_slabs : int;
}

type arena_stats = {
  carved : int;  (** slabs bump-carved from the chunk *)
  live : int;  (** slots currently allocated *)
  remote_frees : int;
  remote_batches : int;
  adopted : int;  (** slots recovered from remote inboxes *)
}

module Make (_ : Sec_prim.Prim_intf.S) : sig
  (** GC-heap slab store over an arbitrary node type. Chains are the
      [(length, nodes)] pairs the magazine already trades in. *)
  type 'a t

  (** [chain_len] must equal the magazine capacity above this store;
      [slab_chains] chains make one slab. Single-threaded set-up. *)
  val create :
    ?chain_len:int -> ?slab_chains:int -> ?max_threads:int -> unit -> 'a t

  val chain_len : 'a t -> int

  (** O(1): pop the calling domain's active slab; when dry, ONE adopt
      CAS attempt; [None] means construct fresh nodes (wait-free
      miss). *)
  val alloc_chain : 'a t -> tid:int -> (int * 'a list) option

  (** O(1): push onto the calling domain's active slab (plain writes);
      at a full-slab boundary, ONE park CAS attempt. *)
  val free_chain : 'a t -> tid:int -> int * 'a list -> unit

  (** Node-granular face over the same store (a thread-private loose
      list exchanged with the active slab in whole chains). *)
  val alloc : 'a t -> tid:int -> 'a option

  val free : 'a t -> tid:int -> 'a -> unit

  type nonrec stats = stats = {
    parks : int;
    park_fails : int;
    adopts : int;
    adopt_fails : int;
    chain_puts : int;
    chain_gets : int;
    fresh : int;
    pooled : int;
    parked_slabs : int;
  }

  val stats : 'a t -> stats

  (** Off-heap arena: [max_slabs * slab_slots] two-word slots (value +
      link) in Bigarrays outside the OCaml heap, addressed by integer
      handles ([-1] is nil). Slabs are bump-carved by one wait-free
      fetch_and_add and owned by the carving domain; owner frees are
      plain stores, remote frees are batched per-slab ([remote_batch]
      per CAS) and adopted by the owner with one [exchange].

      Handle reuse is safe under the same argument as pointer reuse:
      run [free] from an EBR destructor and the grace period closes
      the ABA window. *)
  module Arena : sig
    type t

    val create :
      ?slab_slots:int ->
      ?max_slabs:int ->
      ?max_threads:int ->
      ?remote_batch:int ->
      unit ->
      t

    val slab_slots : t -> int

    (** Claim a free slot: private free-list pop, else adopt remote
        inboxes, else carve a fresh slab. Raises [Failure] when the
        chunk is exhausted — size the arena past the structure's
        live-slot bound. Feeds the reclaim checker; the slot's shadow
        id is {!chk_id}. *)
    val alloc : t -> tid:int -> int

    (** Release a slot. Owner-local: plain stores. Remote: batched in
        a per-domain outbox, spliced per [remote_batch]. Feeds the
        reclaim checker ([Slab_double_free] on a slot already free). *)
    val free : t -> tid:int -> int -> unit

    (** Publish any outbox batches still unflushed (end of run). *)
    val flush_remote : t -> tid:int -> unit

    val get_value : t -> int -> int
    val set_value : t -> int -> int -> unit

    (** The link word: free-list next while the slot is free, caller's
        next-handle while live. *)
    val get_link : t -> int -> int

    val set_link : t -> int -> int -> unit

    (** Shadow-heap id assigned at {!alloc} (0 when no checker ran). *)
    val chk_id : t -> int -> int

    (** End the arena's life: subsequent allocation anywhere in it
        reports [Alloc_from_live_slab]; accesses through stale ids
        report use-after-reclaim. *)
    val release : t -> tid:int -> unit

    val released : t -> bool

    val live : t -> int
    val carved_slots : t -> int

    (** [live / carved], 0 before the first carve. *)
    val occupancy : t -> float

    type stats = arena_stats = {
      carved : int;
      live : int;
      remote_frees : int;
      remote_batches : int;
      adopted : int;
    }

    val stats : t -> stats
  end
end
