(* Epoch-based reclamation in the style of DEBRA [Brown, PODC 2015], the
   scheme the paper's artifact uses to reclaim batches and stack nodes.

   OCaml's GC makes manual reclamation unnecessary for memory safety, but
   the substrate is still faithful: it defers a *destructor callback*
   until no thread can possibly hold a reference obtained inside an
   earlier critical section, which is exactly what frees memory in the C++
   original (and what releases external resources here).

   Protocol: a global epoch counter; each thread announces the epoch it
   observed on entering a critical section and a quiescent marker on
   leaving. Objects retired in epoch [e] may be destroyed once the global
   epoch reaches [e + 2], because every announcement then postdates the
   retirement. The epoch may only advance when every active thread has
   announced the current value. Retirement is per-thread (no shared limbo
   lists); advancing and sweeping are amortised over retirements.

   When a {!Sec_analysis.Reclaim_checker} is installed (simulated
   analysis runs), enter/exit/retire/destroy additionally feed its shadow
   heap: [retire ~chk] ties a retirement to the checker-assigned node id,
   so use-after-retire and double-retire become observable. With no
   checker installed each hook is a single ref read. *)

(* Epoch advance (checked statically by sec_lint rule 13): an
   announcement write is only legal against an epoch observed on the
   same path (enter re-reads and re-announces; exit writes the
   quiescent marker, which needs no observation and resets to idle);
   and the advance CAS is only legal after the epoch was read AND every
   slot's announcement scanned under it — advancing on a stale or
   unscanned epoch would free objects a reader still holds. *)
[@@@protocol
  "epoch: idle -read:global_epoch-> seen; seen -read:global_epoch-> seen; \
   scanned -read:global_epoch-> scanned; idle -write:announce-> idle; seen \
   -write:announce-> idle; scanned -write:announce-> idle; seen \
   -read:announce-> scanned; scanned -read:announce-> scanned; scanned \
   -rmw:global_epoch-> idle"]

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Chk = Sec_analysis.Reclaim_checker

  let quiescent = -1

  type retired = { epoch : int; chk : int; destroy : unit -> unit }

  type slot = {
    announce : int A.t; (* epoch the thread is reading under, or -1 *)
    mutable limbo : retired list;
        [@plain_ok "thread-private: only the owning thread's slot is touched"]
    mutable retire_count : int;
        [@plain_ok "thread-private: only the owning thread's slot is touched"]
    mutable reclaimed : int;
        [@plain_ok "thread-private: only the owning thread's slot is touched"]
  }

  type t = {
    global_epoch : int A.t;
    slots : slot array;
    sweep_threshold : int; (* retirements between advance attempts *)
  }

  let create ?(max_threads = 64) ?(sweep_threshold = 8) () =
    {
      global_epoch = A.make_padded 0;
      slots =
        Array.init max_threads (fun _ ->
            {
              announce = A.make_padded quiescent;
              limbo = [];
              retire_count = 0;
              reclaimed = 0;
            });
      sweep_threshold;
    }

  (* Enter a critical section: announce the current epoch. Re-announce if
     the epoch moved between read and announce, so that the announcement
     is never behind the epoch at entry. *)
  let enter t ~tid =
    Chk.note_enter ~fiber:tid;
    let slot = t.slots.(tid) in
    let rec announce () =
      let e = A.get t.global_epoch in
      A.set slot.announce e;
      if A.get t.global_epoch <> e then announce ()
    in
    announce ()

  let exit t ~tid =
    A.set t.slots.(tid).announce quiescent;
    Chk.note_exit ~fiber:tid

  (* The epoch can advance only when no thread is still reading under an
     older one. *)
  let try_advance t =
    let e = A.get t.global_epoch in
    let blocked = ref false in
    Array.iter
      (fun slot ->
        let a = A.get slot.announce in
        if a <> quiescent && a <> e then blocked := true)
      t.slots;
    if not !blocked then ignore (A.compare_and_set t.global_epoch e (e + 1))

  (* Destroy everything retired at least two epochs ago. *)
  let sweep t ~tid =
    let slot = t.slots.(tid) in
    let e = A.get t.global_epoch in
    let keep, free = List.partition (fun r -> r.epoch > e - 2) slot.limbo in
    slot.limbo <- keep;
    List.iter
      (fun r ->
        r.destroy ();
        Chk.note_reclaim ~fiber:tid ~node:r.chk;
        slot.reclaimed <- slot.reclaimed + 1)
      free

  (* [chk] is the checker-assigned id of the node being retired (0 /
     absent when the caller is not instrumented or no checker ran at
     allocation time). *)
  let retire t ~tid ?(chk = 0) destroy =
    Chk.note_retire ~fiber:tid ~node:chk;
    let slot = t.slots.(tid) in
    slot.limbo <- { epoch = A.get t.global_epoch; chk; destroy } :: slot.limbo;
    slot.retire_count <- slot.retire_count + 1;
    if slot.retire_count mod t.sweep_threshold = 0 then begin
      try_advance t;
      sweep t ~tid
    end

  (* Run [f] inside a critical section (exception-safe). *)
  let guard t ~tid f =
    enter t ~tid;
    match f () with
    | v ->
        exit t ~tid;
        v
    | exception exn ->
        exit t ~tid;
        raise exn

  (* Reclaim whatever is reclaimable now, e.g. at shutdown: sweep, then
     advance-and-sweep until either this thread's limbo list is empty or
     the epoch stops moving (an active reader pins it). Idempotent — with
     an empty limbo list it is a no-op (in particular it does not advance
     the epoch), and calling it again can only reclaim more, never less.
     With no readers active it always drains completely: objects retired
     under the current epoch age out after two advances. *)
  let flush t ~tid =
    sweep t ~tid;
    let rec drain () =
      if t.slots.(tid).limbo <> [] then begin
        let e = A.get t.global_epoch in
        try_advance t;
        if A.get t.global_epoch <> e then begin
          sweep t ~tid;
          drain ()
        end
      end
    in
    drain ()

  let epoch t = A.get t.global_epoch

  type stats = { retired : int; reclaimed : int; pending : int }

  let stats t =
    Array.fold_left
      (fun acc slot ->
        {
          retired = acc.retired + slot.retire_count;
          reclaimed = acc.reclaimed + slot.reclaimed;
          pending = acc.pending + List.length slot.limbo;
        })
      { retired = 0; reclaimed = 0; pending = 0 }
      t.slots
end
