(* Per-domain node magazines: fixed-size free-lists layered over EBR so
   the hot path stops allocating.

   The design follows "Concurrent Fixed-Size Allocation and Free in
   Constant Time" (PAPERS.md) in the shape popularised by slab-allocator
   magazines: each domain owns a private free-list — its magazine — that
   it pushes and pops with plain field operations: no atomics, no
   contention. Magazines exchange *whole chains* with a global lock-free
   depot in O(1), so even the refill/overflow slow path is a
   single CAS regardless of chain length.

   Since PR 10 the depot is the *default* backing, not the only one:
   [create ~backing:`Slab] routes the slow path through the wait-free
   slab store of {!Slab} instead — same chain currency, but one CAS
   attempt per slab of chains rather than one retried CAS per chain
   (docs/PERF.md, "Allocator").

   Layering over EBR: the structure's pop retires the node as before;
   when the grace period expires, the EBR destructor hands the node to
   [recycle] under the retiring thread's id instead of dropping it to
   the GC. At that moment no reader can still hold a reference (that is
   exactly what the grace period guarantees), so the next [alloc] may
   mutate the node's fields for its second life. The reclamation
   checker audits this hand-off: [Reclaim_checker.note_recycle]
   verifies the node's previous life completed the full
   alloc -> ... -> reclaim cycle, so a magazine can never silently mask
   a lifetime bug.

   Thread-safety contract: [alloc] and [recycle] for a given [tid] must
   only run on the thread (fiber) that owns that id — the same contract
   EBR's per-slot operations already impose, and EBR destructors run on
   the retiring thread, so routing them into [recycle ~tid] with the
   retiring tid satisfies it by construction. *)

[@@@progress "lock_free"]

(* Depot exchange (checked statically by sec_lint rule 13): every CAS on
   the depot head must be preceded by a fresh read of it on the same
   path — publishing or adopting a chain against a stale head would
   silently drop someone else's chain. *)
[@@@protocol
  "depot: idle -read:depot-> loaded; loaded -read:depot-> loaded; loaded \
   -rmw:depot-> idle"]

(* Process-wide tallies across every magazine instance (defined first so
   the functor can feed them).

   The harness benchmarks structures through the opaque
   {!Sec_spec.Stack_intf.S} face, which hides the magazine inside the
   functor; these global counters are how `sec_bench --emit-json`
   reports a magazine hit rate anyway. Cells are per-thread (written
   only by their owning thread; the harness reads them after joining
   the workers, which provides the ordering), and [reset] brackets one
   measured run. *)
module Global = struct
  type cell = {
    mutable hits : int;
        [@plain_ok "one cell per thread id; read only after worker join"]
    mutable misses : int; [@plain_ok "see [hits]"]
    mutable recycled : int; [@plain_ok "see [hits]"]
    mutable depot_cas : int; [@plain_ok "see [hits]"]
    mutable depot_cas_retries : int; [@plain_ok "see [hits]"]
  }

  (* Sized past any topology in lib/sim/topology.ml; ids are masked so a
     stray tid can never escape the array. *)
  let cells =
    Array.init 256 (fun _ ->
        { hits = 0; misses = 0; recycled = 0; depot_cas = 0;
          depot_cas_retries = 0 })

  let cell tid = cells.(tid land 255)

  let note_hit tid =
    let c = cell tid in
    c.hits <- c.hits + 1

  let note_miss tid =
    let c = cell tid in
    c.misses <- c.misses + 1

  let note_recycled tid =
    let c = cell tid in
    c.recycled <- c.recycled + 1

  let note_depot_cas tid =
    let c = cell tid in
    c.depot_cas <- c.depot_cas + 1

  let note_depot_cas_retry tid =
    let c = cell tid in
    c.depot_cas_retries <- c.depot_cas_retries + 1

  type snapshot = {
    hits : int;
    misses : int;
    recycled : int;
    depot_cas : int;  (** depot CAS attempts (cross-domain, contended) *)
    depot_cas_retries : int;  (** attempts that lost and had to loop *)
  }

  let reset () =
    Array.iter
      (fun (c : cell) ->
        c.hits <- 0;
        c.misses <- 0;
        c.recycled <- 0;
        c.depot_cas <- 0;
        c.depot_cas_retries <- 0)
      cells

  let snapshot () =
    Array.fold_left
      (fun (acc : snapshot) (c : cell) ->
        {
          hits = acc.hits + c.hits;
          misses = acc.misses + c.misses;
          recycled = acc.recycled + c.recycled;
          depot_cas = acc.depot_cas + c.depot_cas;
          depot_cas_retries = acc.depot_cas_retries + c.depot_cas_retries;
        })
      { hits = 0; misses = 0; recycled = 0; depot_cas = 0;
        depot_cas_retries = 0 }
      cells

  let hit_rate (s : snapshot) =
    let total = s.hits + s.misses in
    if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
end

(* Outside {!Make} so every instantiation shares one nominal type (and
   interfaces can name it without fixing the substrate). *)
type stats = {
  hits : int;  (** allocations served from a magazine or the refill store *)
  misses : int;  (** allocations that fell through to fresh nodes *)
  recycled : int;  (** nodes returned by EBR destructors *)
  depot_puts : int;  (** full chains emigrated (to depot or slab store) *)
  depot_gets : int;  (** chains adopted (from depot or slab store) *)
  depot_cas_retries : int;  (** depot CAS attempts that lost and looped *)
}

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)
  module Sl = Slab.Make (P)

  type 'a slot = {
    mutable free : 'a list;
        [@plain_ok
          "the whole slot record is private to its owning thread; \
           cross-thread traffic goes through the depot atomic"]
    mutable count : int; [@plain_ok "thread-private, see [free]"]
    (* Per-thread tallies, folded by [stats]. *)
    mutable hits : int; [@plain_ok "thread-private, see [free]"]
    mutable misses : int; [@plain_ok "thread-private, see [free]"]
    mutable recycled : int; [@plain_ok "thread-private, see [free]"]
    mutable depot_puts : int; [@plain_ok "thread-private, see [free]"]
    mutable depot_gets : int; [@plain_ok "thread-private, see [free]"]
    mutable cas_retries : int; [@plain_ok "thread-private, see [free]"]
  }

  (* Where the slow path trades chains: the PR 5 global depot (one
     atomic, CAS retry loops under contention) or the wait-free slab
     store of {!Slab} (PR 10). Selected once at [create]; the default
     stays [Depot] so existing pinned schedules are untouched. *)
  type 'a backing = Depot | Slabs of 'a Sl.t

  type 'a t = {
    slots : 'a slot array;
    capacity : int; (* nodes per magazine; depot chains have this length *)
    depot : (int * 'a list) list A.t;
        (* stack of (length, chain): chains move whole, in one CAS *)
    backing : 'a backing;
  }

  let fresh_slot () =
    {
      free = [];
      count = 0;
      hits = 0;
      misses = 0;
      recycled = 0;
      depot_puts = 0;
      depot_gets = 0;
      cas_retries = 0;
    }

  let default_capacity = 64

  let create ?(capacity = default_capacity) ?(max_threads = 64)
      ?(backing = `Depot) () =
    if capacity < 1 then
      invalid_arg "Magazine.create: capacity must be at least 1";
    {
      slots = Array.init max_threads (fun _ -> fresh_slot ());
      capacity;
      depot = A.make_padded [];
      backing =
        (match backing with
        | `Depot -> Depot
        | `Slab -> Slabs (Sl.create ~chain_len:capacity ~max_threads ()));
    }

  let capacity t = t.capacity
  let slab_backed t = match t.backing with Depot -> false | Slabs _ -> true

  (* Move one whole chain depot-ward. O(1): the chain is consed as a
     unit, never walked. Every CAS attempt (and every lost one) is
     tallied — the before/after evidence for taking the depot off the
     hot path; the tally writes are plain and emit no events, so
     counting is schedule-neutral. *)
  let depot_put t ~tid chain =
    let s = t.slots.(tid) in
    let backoff = Backoff.create () in
    let rec attempt () =
      let cur = A.get t.depot in
      Global.note_depot_cas tid;
      if A.compare_and_set t.depot cur (chain :: cur) then ()
      else begin
        s.cas_retries <- s.cas_retries + 1;
        Global.note_depot_cas_retry tid;
        Backoff.once backoff;
        attempt ()
      end
    in
    attempt ()

  (* Take one whole chain, or None when the depot is dry. O(1). *)
  let depot_get t ~tid =
    let s = t.slots.(tid) in
    let backoff = Backoff.create () in
    let rec attempt () =
      match A.get t.depot with
      | [] -> None
      | (chain :: rest) as cur ->
          Global.note_depot_cas tid;
          if A.compare_and_set t.depot cur rest then Some chain
          else begin
            s.cas_retries <- s.cas_retries + 1;
            Global.note_depot_cas_retry tid;
            Backoff.once backoff;
            attempt ()
          end
    in
    attempt ()

  (* [alloc t ~tid] pops the calling thread's magazine; on empty it
     adopts one full chain from the depot. [None] means the caller must
     construct a fresh node (and should say so with [P.note_alloc]). *)
  let alloc t ~tid =
    let s = t.slots.(tid) in
    match s.free with
    | n :: rest ->
        s.free <- rest;
        s.count <- s.count - 1;
        s.hits <- s.hits + 1;
        Global.note_hit tid;
        Some n
    | [] -> (
        let refill =
          match t.backing with
          | Depot -> depot_get t ~tid
          | Slabs sl -> Sl.alloc_chain sl ~tid
        in
        match refill with
        | Some (len, n :: chain) ->
            s.free <- chain;
            s.count <- len - 1;
            s.depot_gets <- s.depot_gets + 1;
            s.hits <- s.hits + 1;
            Global.note_hit tid;
            Some n
        | Some (_, []) | None ->
            s.misses <- s.misses + 1;
            Global.note_miss tid;
            None)

  (* [recycle t ~tid n] pushes [n] onto the calling thread's magazine;
     a full magazine first emigrates wholesale to the depot, so another
     thread's allocation stream can adopt it. *)
  let recycle t ~tid n =
    let s = t.slots.(tid) in
    s.recycled <- s.recycled + 1;
    Global.note_recycled tid;
    if s.count >= t.capacity then begin
      let full = s.free in
      s.free <- [];
      s.count <- 0;
      s.depot_puts <- s.depot_puts + 1;
      (match t.backing with
      | Depot -> depot_put t ~tid (t.capacity, full)
      | Slabs sl -> Sl.free_chain sl ~tid (t.capacity, full))
    end;
    s.free <- n :: s.free;
    s.count <- s.count + 1

  (* ---------------------------------------------------------------- *)
  (* Introspection                                                     *)

  type nonrec stats = stats = {
    hits : int;
    misses : int;
    recycled : int;
    depot_puts : int;
    depot_gets : int;
    depot_cas_retries : int;
  }

  let stats t =
    Array.fold_left
      (fun (acc : stats) (s : _ slot) ->
        {
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
          recycled = acc.recycled + s.recycled;
          depot_puts = acc.depot_puts + s.depot_puts;
          depot_gets = acc.depot_gets + s.depot_gets;
          depot_cas_retries = acc.depot_cas_retries + s.cas_retries;
        })
      {
        hits = 0;
        misses = 0;
        recycled = 0;
        depot_puts = 0;
        depot_gets = 0;
        depot_cas_retries = 0;
      }
      t.slots

  (* Slab-store tallies when slab-backed; [None] on the depot. *)
  let slab_stats t =
    match t.backing with Depot -> None | Slabs sl -> Some (Sl.stats sl)

  let hit_rate t =
    let s = stats t in
    let total = s.hits + s.misses in
    if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
end
