(* A Treiber stack integrated with epoch-based reclamation, following the
   paper's Section 4 methodology: traversals run inside an EBR critical
   section, and a node is retired the moment its value has been handed to
   the popping thread. In C++ the deferred destructor frees the node; in
   OCaml the GC frees memory, so the destructor instead releases whatever
   external resource rides on the node (and the tests use it to prove no
   node is destroyed while a reader might still hold it).

   Zero-allocation hot path: nodes are pooled in a per-domain
   {!Magazine}. The EBR destructor — which runs only once the grace
   period guarantees no reader can still reach the node — first fires
   the caller's [on_reclaim], then recycles the node into the retiring
   domain's magazine; the next push on any domain re-initialises it in
   place instead of allocating. Fresh nodes are constructed only on a
   magazine miss (cold start, or producers outrunning consumers) and
   are counted through [P.note_alloc].

   Every node carries a shadow-heap id ([chk], 0 outside analysis runs)
   and each lifecycle step notifies the reclamation checker, so
   [Explore.for_all ~check_reclamation:true] can verify the guard and
   retire discipline — see docs/ANALYSIS.md ("Reclamation prong"). A
   recycled node passes through [Chk.note_recycle], which checks its
   previous life really ended in reclamation and issues the id for its
   next one. *)

(* Treiber under EBR: a failed CAS means a peer succeeded, and epoch
   entry/exit never waits on another thread. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)
  module Ebr = Ebr.Make (P)
  module Mag = Magazine.Make (P)
  module Chk = Sec_analysis.Reclaim_checker

  (* All fields are mutable so a recycled node can be re-initialised in
     place. Until the publishing CAS on [top] the node is private to the
     pushing thread (fresh from the allocator, or handed over by the
     magazine after a grace period with no surviving readers). *)
  type 'a node = {
    mutable value : 'a;
        [@plain_ok
          "written only while the node is private to the pushing thread; \
           published by the CAS on [top]"]
    mutable next : 'a node option; [@plain_ok "see [value]"]
    mutable on_reclaim : unit -> unit; [@plain_ok "see [value]"]
    mutable chk : int;
        [@plain_ok "see [value]"]
        (* reclamation-checker node id; 0 when untracked *)
  }

  type 'a t = { top : 'a node option A.t; ebr : Ebr.t; mag : 'a node Mag.t }

  (* [backing] selects the magazine's slow-path store: the PR 5 global
     depot (default, pinned-schedule-stable) or the wait-free slab
     store (`Slab). *)
  let create ?(max_threads = 64) ?(backing = `Depot) () =
    {
      top = A.make_padded None;
      ebr = Ebr.create ~max_threads ();
      mag = Mag.create ~max_threads ~backing ();
    }

  (* [push t ~tid v ~on_reclaim] — [on_reclaim] runs once the node has
     been popped AND no concurrent operation can still reach it. *)
  let push t ~tid v ~on_reclaim =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        let node =
          match Mag.alloc t.mag ~tid with
          | Some n ->
              n.chk <- Chk.note_recycle ~fiber:tid ~node:n.chk;
              n.value <- v;
              n.on_reclaim <- on_reclaim;
              n
          | None ->
              let chk = Chk.note_alloc ~fiber:tid in
              P.note_alloc ();
              ({ value = v; next = None; on_reclaim; chk }
              [@fresh_ok "magazine miss: cold start or pop-starved run"])
        in
        let rec attempt () =
          let cur = A.get t.top in
          node.next <- cur;
          if A.compare_and_set t.top cur (Some node) then
            Chk.note_publish ~fiber:tid ~node:node.chk
          else begin
            Backoff.once backoff;
            attempt ()
          end
        in
        attempt ())

  let pop t ~tid =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        let rec attempt () =
          match A.get t.top with
          | None -> None
          | Some n as cur ->
              Chk.note_access ~fiber:tid ~node:n.chk;
              if A.compare_and_set t.top cur n.next then begin
                Chk.note_unlink ~fiber:tid ~node:n.chk;
                let v = n.value in
                (* The destructor runs after the grace period, on the
                   retiring thread: user clean-up first, then the node
                   re-enters this domain's magazine. *)
                Ebr.retire t.ebr ~tid ~chk:n.chk (fun () ->
                    n.on_reclaim ();
                    Mag.recycle t.mag ~tid n);
                Some v
              end
              else begin
                Backoff.once backoff;
                attempt ()
              end
        in
        attempt ())

  let peek t ~tid =
    Ebr.guard t.ebr ~tid (fun () ->
        match A.get t.top with
        | None -> None
        | Some n ->
            Chk.note_access ~fiber:tid ~node:n.chk;
            Some n.value)

  (* Drain deferred destructors (shutdown / tests). *)
  let flush t ~tid = Ebr.flush t.ebr ~tid

  let reclamation_stats t = Ebr.stats t.ebr
  let magazine_stats t = Mag.stats t.mag
  let slab_stats t = Mag.slab_stats t.mag
end
