(* A Treiber stack integrated with epoch-based reclamation, following the
   paper's Section 4 methodology: traversals run inside an EBR critical
   section, and a node is retired the moment its value has been handed to
   the popping thread. In C++ the deferred destructor frees the node; in
   OCaml the GC frees memory, so the destructor instead releases whatever
   external resource rides on the node (and the tests use it to prove no
   node is destroyed while a reader might still hold it).

   Every node carries a shadow-heap id ([chk], 0 outside analysis runs)
   and each lifecycle step notifies the reclamation checker, so
   [Explore.for_all ~check_reclamation:true] can verify the guard and
   retire discipline — see docs/ANALYSIS.md ("Reclamation prong"). *)

(* Treiber under EBR: a failed CAS means a peer succeeded, and epoch
   entry/exit never waits on another thread. *)
[@@@progress "lock_free"]

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)
  module Ebr = Ebr.Make (P)
  module Chk = Sec_analysis.Reclaim_checker

  type 'a node = {
    value : 'a;
    next : 'a node option;
    on_reclaim : unit -> unit;
    chk : int; (* reclamation-checker node id; 0 when untracked *)
  }

  type 'a t = { top : 'a node option A.t; ebr : Ebr.t }

  let create ?(max_threads = 64) () =
    { top = A.make_padded None; ebr = Ebr.create ~max_threads () }

  (* [push t ~tid v ~on_reclaim] — [on_reclaim] runs once the node has
     been popped AND no concurrent operation can still reach it. *)
  let push t ~tid v ~on_reclaim =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        let chk = Chk.note_alloc ~fiber:tid in
        let rec attempt () =
          let cur = A.get t.top in
          if
            A.compare_and_set t.top cur
              (Some { value = v; next = cur; on_reclaim; chk })
          then Chk.note_publish ~fiber:tid ~node:chk
          else begin
            Backoff.once backoff;
            attempt ()
          end
        in
        attempt ())

  let pop t ~tid =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        let rec attempt () =
          match A.get t.top with
          | None -> None
          | Some n as cur ->
              Chk.note_access ~fiber:tid ~node:n.chk;
              if A.compare_and_set t.top cur n.next then begin
                Chk.note_unlink ~fiber:tid ~node:n.chk;
                Ebr.retire t.ebr ~tid ~chk:n.chk n.on_reclaim;
                Some n.value
              end
              else begin
                Backoff.once backoff;
                attempt ()
              end
        in
        attempt ())

  let peek t ~tid =
    Ebr.guard t.ebr ~tid (fun () ->
        match A.get t.top with
        | None -> None
        | Some n ->
            Chk.note_access ~fiber:tid ~node:n.chk;
            Some n.value)

  (* Drain deferred destructors (shutdown / tests). *)
  let flush t ~tid = Ebr.flush t.ebr ~tid

  let reclamation_stats t = Ebr.stats t.ebr
end
