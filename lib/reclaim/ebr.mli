(** Epoch-based reclamation (DEBRA-style): defer a destructor until no
    thread can hold a reference obtained in an earlier critical section.

    Usage per thread [tid]: wrap reads of shared nodes in
    [guard t ~tid (fun () -> ...)]; call [retire t ~tid destroy] on nodes
    unlinked from the structure. [destroy] runs once the global epoch has
    advanced twice past the retirement.

    Under the simulated substrate an installed
    {!Sec_analysis.Reclaim_checker} is fed by enter/exit/retire/destroy,
    making guard-discipline and lifetime bugs observable; see
    docs/ANALYSIS.md ("Reclamation prong"). *)

module Make (_ : Sec_prim.Prim_intf.S) : sig
  type t

  val create : ?max_threads:int -> ?sweep_threshold:int -> unit -> t

  (** Announce the current epoch; must precede any access to nodes that
      may concurrently be retired. *)
  val enter : t -> tid:int -> unit

  (** Announce quiescence. *)
  val exit : t -> tid:int -> unit

  (** [retire t ~tid destroy] defers [destroy] until safe. Amortised: every
      [sweep_threshold] retirements also tries to advance the epoch and
      sweeps this thread's limbo list. [chk] is the reclamation checker's
      id for the retired node (from
      {!Sec_analysis.Reclaim_checker.note_alloc}); omit it (or pass 0)
      for untracked callers. *)
  val retire : t -> tid:int -> ?chk:int -> (unit -> unit) -> unit

  (** [guard t ~tid f] runs [f] between {!enter} and {!exit},
      exception-safely. *)
  val guard : t -> tid:int -> (unit -> 'a) -> 'a

  (** Attempt to advance the global epoch (succeeds only when every active
      thread has announced it). *)
  val try_advance : t -> unit

  (** Sweep the caller's limbo list, then advance-and-sweep until it is
      empty or an active reader pins the epoch; for shutdown and tests.
      Idempotent: with nothing pending it is a no-op (the epoch does not
      move), and repeated calls only ever reclaim more. Once every thread
      is quiescent, flushing each thread leaves [stats t] with
      [pending = 0]. *)
  val flush : t -> tid:int -> unit

  val epoch : t -> int

  type stats = { retired : int; reclaimed : int; pending : int }

  val stats : t -> stats
end
