(* Off-heap Treiber stack ("TRB-OFH"): the node store is a
   {!Slab.Make.Arena} — value and next-link live in Bigarray words
   outside the OCaml heap, and integer handles replace pointers, so the
   steady-state hot path allocates nothing the GC can see.

   The payload is a bare [int]. That is not laziness: OCaml's uniform
   representation puts any non-immediate payload behind a heap pointer
   the GC must trace, and the only ways around it ([Obj] tag games)
   are confined to lib/prim/padding.ml by lint rule 3. So the honest
   off-heap structure is monomorphic; it is exercised by `sec_bench
   alloc`, test/test_slab.ml, and the reclaim checker rather than
   registered behind the polymorphic {!Sec_spec.Stack_intf.S} face
   (docs/PERF.md, "Allocator").

   Safety of handle reuse is the usual EBR argument, transplanted from
   pointers to handles: a popped slot is freed only by the deferred
   destructor, after a grace period, so no guard-holding reader can
   observe a handle's next life — which also closes the CAS ABA window
   on [top], exactly as the grace period does for pointer ABA in
   {!Reclaimed_stack}. Every slot passes through the reclaim checker's
   slab lifecycle ([note_slot_alloc]/[note_slot_free]), so double
   frees and use-after-release in the arena are observable. *)

(* Treiber under EBR: a failed CAS means a peer succeeded; arena alloc
   and free never loop on shared state (the one batched splice is paced
   and bounded by contention on a single slab's inbox). *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)
  module Ebr = Ebr.Make (P)
  module Sl = Slab.Make (P)
  module Chk = Sec_analysis.Reclaim_checker

  let nil = -1

  type t = {
    top : int A.t; (* handle of the top node, [nil] when empty *)
    ebr : Ebr.t;
    arena : Sl.Arena.t;
  }

  let name = "TRB-OFH"

  let create ?(max_threads = 64) ?slab_slots ?max_slabs () =
    {
      top = A.make_padded nil;
      ebr = Ebr.create ~max_threads ();
      arena = Sl.Arena.create ?slab_slots ?max_slabs ~max_threads ();
    }

  let push t ~tid v =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        (* Slot alloc feeds the checker ([note_slot_alloc]) and starts
           the node's shadow life; no OCaml-heap node exists at all, so
           rule 8 has no literal to police here. *)
        let h = Sl.Arena.alloc t.arena ~tid in
        Sl.Arena.set_value t.arena h v;
        let rec attempt () =
          let cur = A.get t.top in
          Sl.Arena.set_link t.arena h cur;
          if A.compare_and_set t.top cur h then
            Chk.note_publish ~fiber:tid ~node:(Sl.Arena.chk_id t.arena h)
          else begin
            Backoff.once backoff;
            attempt ()
          end
        in
        attempt ())

  let pop t ~tid =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        let rec attempt () =
          let cur = A.get t.top in
          if cur = nil then None
          else begin
            let chk = Sl.Arena.chk_id t.arena cur in
            Chk.note_access ~fiber:tid ~node:chk;
            (* Reading the link of a node a peer may pop concurrently is
               safe under the guard: its slot is freed only by the
               deferred destructor, after the grace period. *)
            let next = Sl.Arena.get_link t.arena cur in
            if A.compare_and_set t.top cur next then begin
              Chk.note_unlink ~fiber:tid ~node:chk;
              let v = Sl.Arena.get_value t.arena cur in
              Ebr.retire t.ebr ~tid ~chk (fun () ->
                  Sl.Arena.free t.arena ~tid cur);
              Some v
            end
            else begin
              Backoff.once backoff;
              attempt ()
            end
          end
        in
        attempt ())

  let peek t ~tid =
    Ebr.guard t.ebr ~tid (fun () ->
        let cur = A.get t.top in
        if cur = nil then None
        else begin
          Chk.note_access ~fiber:tid ~node:(Sl.Arena.chk_id t.arena cur);
          Some (Sl.Arena.get_value t.arena cur)
        end)

  (* Drain deferred destructors, then publish any outbox batches they
     produced (shutdown / tests). *)
  let flush t ~tid =
    Ebr.flush t.ebr ~tid;
    Sl.Arena.flush_remote t.arena ~tid

  (* End the arena's life (tests drive use-after-release through this;
     production callers flush every tid first). *)
  let release t ~tid = Sl.Arena.release t.arena ~tid
  let reclamation_stats t = Ebr.stats t.ebr
  let arena_stats t = Sl.Arena.stats t.arena
  let arena_occupancy t = Sl.Arena.occupancy t.arena
end
