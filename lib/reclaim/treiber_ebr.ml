(* Treiber's stack with real node reclamation ("TRB-EBR"): the
   {!Stack_intf.S} face of {!Reclaimed_stack}, registered in the harness
   registry so it runs under `sec_bench --backend sim|native` next to the
   GC-backed "TRB". The only difference from lib/stacks/treiber.ml is the
   EBR protocol cost: every operation enters and exits a critical section
   and every pop retires its node — exactly the overhead the C++ artifact
   pays, which the benchmark comparison is meant to expose.

   Destructors are no-ops here (the harness attaches no resource to a
   node); the reclamation checker still tracks every node through the
   instrumented {!Reclaimed_stack}. *)

(* Thin wrapper over the lock-free {!Reclaimed_stack}. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module R = Reclaimed_stack.Make (P)

  type 'a t = 'a R.t

  let name = "TRB-EBR"
  let create ?max_threads () = R.create ?max_threads ()
  let push t ~tid v = R.push t ~tid v ~on_reclaim:ignore
  let pop = R.pop
  let peek = R.peek
end

(* Same stack, slab-backed magazines ("TRB-SLAB"): the PR 10 wait-free
   slab store replaces the depot on the refill/overflow slow path. The
   atomic sequence of push/pop is identical to TRB-EBR — only the
   magazine's backing differs — so a lockstep differential against it
   isolates the allocator. *)
module Make_slab (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module R = Reclaimed_stack.Make (P)

  type 'a t = 'a R.t

  let name = "TRB-SLAB"
  let create ?max_threads () = R.create ?max_threads ~backing:`Slab ()
  let push t ~tid v = R.push t ~tid v ~on_reclaim:ignore
  let pop = R.pop
  let peek = R.peek
end
