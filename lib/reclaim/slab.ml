(* Blelloch–Wei-style concurrent fixed-size allocation: per-domain active
   slabs carved from larger chunks, with constant-time alloc and free and
   no cross-domain CAS on the common path ("Concurrent Fixed-Size
   Allocation and Free in Constant Time", PAPERS.md).

   This is the layer below {!Magazine}. The magazine remains each
   thread's private L1 free-list; what changes is the slow path. PR 5
   funnelled every magazine refill and overflow through ONE global
   depot atomic — a single contention point that every domain's misses
   CAS against, with unbounded retry loops under contention. Here the
   exchange currency grows from a chain (one magazine, [chain_len]
   nodes) to a *slab* ([slab_chains] chains), and the transfer protocol
   becomes wait-free:

   - [free_chain] pushes the chain onto the calling domain's *active
     slab* with plain field writes (owner-private, no atomics). Only
     when the slab is full does the domain attempt to park it on the
     shared partial-slab stack — with a SINGLE compare_and_set attempt.
     If the attempt loses, the slab simply stays active and the park is
     retried at the next boundary; nothing spins.
   - [alloc_chain] pops the active slab with plain writes. Only when it
     is dry does the domain attempt to adopt a parked slab — again one
     CAS attempt; losing means "behave as a miss" (the caller bump-
     allocates fresh nodes, which in OCaml is the minor heap doing the
     chunk carving for us). No operation ever loops on a shared atomic,
     so every path is wait-free, and the common paths touch no shared
     cache line at all.

   Cross-domain CAS accounting: the depot pays one CAS (plus retries)
   per chain per direction; the slab pays at most one CAS attempt per
   [slab_chains] chains. `sec_bench alloc` measures both tallies side
   by side (docs/PERF.md, "Allocator").

   Nodes are GC-heap values here ('a is the structure's node record);
   they migrate freely between slabs, so every free is owner-local by
   construction. The {!Arena} submodule is the off-heap variant: slots
   of a Bigarray with integer-handle indirection, where slots are pinned
   to the slab that carved them and remote frees are batched per-slab —
   see its header. *)

[@@@progress "lock_free"]

(* Process-wide tallies across every slab and arena instance, mirroring
   {!Magazine.Global}: the harness benchmarks structures through the
   opaque {!Sec_spec.Stack_intf.S} face, and these counters are how
   `sec_bench` reports slab traffic anyway. Cells are per-thread
   (written only by their owning thread; read after worker join) and
   [reset] brackets one measured run. [pooled]/[capacity] are signed
   deltas — a chain parked by one thread and adopted by another nets to
   zero across cells — summed by [snapshot] into a gauge. *)
module Global = struct
  type cell = {
    mutable parks : int;
        [@plain_ok "one cell per thread id; read only after worker join"]
    mutable park_fails : int; [@plain_ok "see [parks]"]
    mutable adopts : int; [@plain_ok "see [parks]"]
    mutable adopt_fails : int; [@plain_ok "see [parks]"]
    mutable chain_puts : int; [@plain_ok "see [parks]"]
    mutable chain_gets : int; [@plain_ok "see [parks]"]
    mutable fresh : int; [@plain_ok "see [parks]"]
    mutable remote_batches : int; [@plain_ok "see [parks]"]
    mutable remote_cas : int; [@plain_ok "see [parks]"]
    mutable remote_cas_retries : int; [@plain_ok "see [parks]"]
    mutable pooled : int; [@plain_ok "see [parks]"]
    mutable capacity : int; [@plain_ok "see [parks]"]
  }

  let fresh_cell () =
    {
      parks = 0;
      park_fails = 0;
      adopts = 0;
      adopt_fails = 0;
      chain_puts = 0;
      chain_gets = 0;
      fresh = 0;
      remote_batches = 0;
      remote_cas = 0;
      remote_cas_retries = 0;
      pooled = 0;
      capacity = 0;
    }

  (* Sized past any topology in lib/sim/topology.ml; ids are masked so a
     stray tid can never escape the array. *)
  let cells = Array.init 256 (fun _ -> fresh_cell ())
  let cell tid = cells.(tid land 255)

  type snapshot = {
    parks : int;  (** full slabs parked on the shared partial stack *)
    park_fails : int;  (** park CAS attempts that lost (slab kept local) *)
    adopts : int;  (** parked slabs adopted by a dry domain *)
    adopt_fails : int;  (** adopt CAS attempts that lost (treated as miss) *)
    chain_puts : int;  (** chains freed into slabs *)
    chain_gets : int;  (** chains taken out of slabs *)
    fresh : int;  (** misses: the caller had to construct fresh nodes *)
    remote_batches : int;  (** arena remote-free batches spliced *)
    remote_cas : int;  (** arena remote-splice CAS attempts *)
    remote_cas_retries : int;  (** arena remote-splice CAS retries *)
    pooled : int;  (** nodes currently held inside slabs (gauge) *)
    capacity : int;  (** node capacity of every slab created (gauge) *)
  }

  let reset () =
    Array.iter
      (fun (c : cell) ->
        c.parks <- 0;
        c.park_fails <- 0;
        c.adopts <- 0;
        c.adopt_fails <- 0;
        c.chain_puts <- 0;
        c.chain_gets <- 0;
        c.fresh <- 0;
        c.remote_batches <- 0;
        c.remote_cas <- 0;
        c.remote_cas_retries <- 0;
        c.pooled <- 0;
        c.capacity <- 0)
      cells

  let snapshot () =
    Array.fold_left
      (fun (acc : snapshot) (c : cell) ->
        {
          parks = acc.parks + c.parks;
          park_fails = acc.park_fails + c.park_fails;
          adopts = acc.adopts + c.adopts;
          adopt_fails = acc.adopt_fails + c.adopt_fails;
          chain_puts = acc.chain_puts + c.chain_puts;
          chain_gets = acc.chain_gets + c.chain_gets;
          fresh = acc.fresh + c.fresh;
          remote_batches = acc.remote_batches + c.remote_batches;
          remote_cas = acc.remote_cas + c.remote_cas;
          remote_cas_retries = acc.remote_cas_retries + c.remote_cas_retries;
          pooled = acc.pooled + c.pooled;
          capacity = acc.capacity + c.capacity;
        })
      {
        parks = 0;
        park_fails = 0;
        adopts = 0;
        adopt_fails = 0;
        chain_puts = 0;
        chain_gets = 0;
        fresh = 0;
        remote_batches = 0;
        remote_cas = 0;
        remote_cas_retries = 0;
        pooled = 0;
        capacity = 0;
      }
      cells

  (* Every cross-domain CAS the slab layer issued: park and adopt
     attempts (successes and losses) plus arena remote splices. The
     number `sec_bench alloc` compares against the depot's tally. *)
  let cas_attempts (s : snapshot) =
    s.parks + s.park_fails + s.adopts + s.adopt_fails + s.remote_cas

  let cas_retries (s : snapshot) =
    s.park_fails + s.adopt_fails + s.remote_cas_retries

  let occupancy (s : snapshot) =
    if s.capacity <= 0 then 0.0
    else float_of_int s.pooled /. float_of_int s.capacity
end

(* Distinguishes arena (and slab) instances in the reclaim checker's
   shadow heap: each {!Arena.create} takes a block of slab uids. Plain
   ref: arenas are created during single-threaded set-up, before workers
   run (the same assumption every [create] in this library makes). *)
let next_slab_uid = ref 1

let take_slab_uids n =
  let base = !next_slab_uid in
  next_slab_uid := base + n;
  base

(* Outside {!Make} so every instantiation shares one nominal type (and
   interfaces can name them without fixing the substrate), mirroring
   {!Magazine.stats}. *)
type stats = {
  parks : int;
  park_fails : int;
  adopts : int;
  adopt_fails : int;
  chain_puts : int;
  chain_gets : int;
  fresh : int;
  pooled : int;  (** nodes currently inside this instance's slabs *)
  parked_slabs : int;
}

type arena_stats = {
  carved : int;  (** slabs bump-carved from the chunk *)
  live : int;  (** slots currently allocated *)
  remote_frees : int;
  remote_batches : int;
  adopted : int;  (** slots recovered from remote inboxes *)
}

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)
  module Chk = Sec_analysis.Reclaim_checker

  (* One slab: a bounded bundle of whole chains. Owner-private while
     active (plain fields), immutable-in-practice while parked: the
     parking store-release is the CAS on [partial], and the adopting
     domain's CAS acquires it — the usual publication idiom. *)
  type 'a slab = {
    mutable chains : (int * 'a list) list;
        [@plain_ok
          "owner-private while active; ownership is transferred wholesale \
           by the single CAS on the shared partial-slab stack"]
    mutable n_chains : int; [@plain_ok "see [chains]"]
    mutable pooled : int; [@plain_ok "see [chains]"]
  }

  (* Per-domain state: only [tid] touches its dstate (the contract
     {!Magazine} and EBR already impose). *)
  type 'a dstate = {
    mutable active : 'a slab;
        [@plain_ok "the whole dstate record is private to its owning thread"]
    mutable loose : 'a list; [@plain_ok "thread-private, see [active]"]
    mutable loose_n : int; [@plain_ok "thread-private, see [active]"]
    (* per-thread tallies, folded by [stats] *)
    mutable s_parks : int; [@plain_ok "thread-private, see [active]"]
    mutable s_park_fails : int; [@plain_ok "thread-private, see [active]"]
    mutable s_adopts : int; [@plain_ok "thread-private, see [active]"]
    mutable s_adopt_fails : int; [@plain_ok "thread-private, see [active]"]
    mutable s_chain_puts : int; [@plain_ok "thread-private, see [active]"]
    mutable s_chain_gets : int; [@plain_ok "thread-private, see [active]"]
    mutable s_fresh : int; [@plain_ok "thread-private, see [active]"]
  }

  type 'a t = {
    dstates : 'a dstate array;
    chain_len : int; (* nodes per chain = the magazine capacity above *)
    slab_chains : int; (* chains per slab *)
    partial : 'a slab list A.t; (* parked (full) slabs *)
  }

  (* [nodes] = slab_chains * chain_len: the Global capacity gauge is in
     node units, matching [pooled], so occupancy is a plain ratio. *)
  let fresh_slab ~nodes tid =
    let c = Global.cell tid in
    c.Global.capacity <- c.Global.capacity + nodes;
    { chains = []; n_chains = 0; pooled = 0 }

  let default_chain_len = 64
  let default_slab_chains = 4

  let create ?(chain_len = default_chain_len)
      ?(slab_chains = default_slab_chains) ?(max_threads = 64) () =
    if chain_len < 1 then
      invalid_arg "Slab.create: chain_len must be at least 1";
    if slab_chains < 1 then
      invalid_arg "Slab.create: slab_chains must be at least 1";
    let nodes = chain_len * slab_chains in
    {
      dstates =
        Array.init max_threads (fun tid ->
            {
              active = fresh_slab ~nodes tid;
              loose = [];
              loose_n = 0;
              s_parks = 0;
              s_park_fails = 0;
              s_adopts = 0;
              s_adopt_fails = 0;
              s_chain_puts = 0;
              s_chain_gets = 0;
              s_fresh = 0;
            });
      chain_len;
      slab_chains;
      partial = A.make_padded [];
    }

  let chain_len t = t.chain_len

  (* Park the full active slab: ONE CAS attempt. Losing is fine — the
     slab stays active (temporarily above its nominal bound) and the
     next boundary crossing tries again. Never loops: wait-free. *)
  let try_park t d ~tid =
    let c = Global.cell tid in
    let cur = A.get t.partial in
    if A.compare_and_set t.partial cur (d.active :: cur) then begin
      d.s_parks <- d.s_parks + 1;
      c.Global.parks <- c.Global.parks + 1;
      d.active <- fresh_slab ~nodes:(t.chain_len * t.slab_chains) tid
    end
    else begin
      d.s_park_fails <- d.s_park_fails + 1;
      c.Global.park_fails <- c.Global.park_fails + 1
    end

  (* Adopt a parked slab: ONE CAS attempt. Losing (or an empty partial
     stack) means the caller treats it as a miss and constructs fresh
     nodes — allocation pressure instead of waiting. Never loops. *)
  let try_adopt t d ~tid =
    let c = Global.cell tid in
    match A.get t.partial with
    | [] -> false
    | (s :: rest) as cur ->
        if A.compare_and_set t.partial cur rest then begin
          d.s_adopts <- d.s_adopts + 1;
          c.Global.adopts <- c.Global.adopts + 1;
          (* The active slab is dry (that is why we are here); replace
             it wholesale with the adopted one. *)
          d.active <- s;
          true
        end
        else begin
          d.s_adopt_fails <- d.s_adopt_fails + 1;
          c.Global.adopt_fails <- c.Global.adopt_fails + 1;
          false
        end

  (* [free_chain t ~tid (len, chain)] — O(1): the chain is consed as a
     unit, never walked. Plain owner-private writes; at most one CAS
     when the slab fills. *)
  let free_chain t ~tid ((len, _) as chain) =
    let d = t.dstates.(tid) in
    let c = Global.cell tid in
    d.active.chains <- chain :: d.active.chains;
    d.active.n_chains <- d.active.n_chains + 1;
    d.active.pooled <- d.active.pooled + len;
    d.s_chain_puts <- d.s_chain_puts + 1;
    c.Global.chain_puts <- c.Global.chain_puts + 1;
    c.Global.pooled <- c.Global.pooled + len;
    if d.active.n_chains >= t.slab_chains then try_park t d ~tid

  (* [alloc_chain t ~tid] — O(1) plain pop; at most one CAS when dry.
     [None] means the caller must construct a fresh chain (bump
     allocation: the minor heap is the chunk). *)
  let alloc_chain t ~tid =
    let d = t.dstates.(tid) in
    let c = Global.cell tid in
    let take () =
      match d.active.chains with
      | ((len, _) as chain) :: rest ->
          d.active.chains <- rest;
          d.active.n_chains <- d.active.n_chains - 1;
          d.active.pooled <- d.active.pooled - len;
          d.s_chain_gets <- d.s_chain_gets + 1;
          c.Global.chain_gets <- c.Global.chain_gets + 1;
          c.Global.pooled <- c.Global.pooled - len;
          Some chain
      | [] -> None
    in
    match take () with
    | Some _ as got -> got
    | None ->
        if try_adopt t d ~tid then take ()
        else begin
          d.s_fresh <- d.s_fresh + 1;
          c.Global.fresh <- c.Global.fresh + 1;
          None
        end

  (* Node-granular face over the same store, for callers without their
     own private free-list (the magazine keeps one; direct users get
     [loose] here). Constant-time: pop/push the loose list, exchanging
     whole chains with the active slab at the boundaries. *)
  let alloc t ~tid =
    let d = t.dstates.(tid) in
    match d.loose with
    | n :: rest ->
        d.loose <- rest;
        d.loose_n <- d.loose_n - 1;
        Some n
    | [] -> (
        match alloc_chain t ~tid with
        | Some (len, n :: chain) ->
            d.loose <- chain;
            d.loose_n <- len - 1;
            Some n
        | Some (_, []) | None -> None)

  let free t ~tid n =
    let d = t.dstates.(tid) in
    d.loose <- n :: d.loose;
    d.loose_n <- d.loose_n + 1;
    if d.loose_n >= t.chain_len then begin
      let chain = d.loose in
      d.loose <- [];
      d.loose_n <- 0;
      free_chain t ~tid (t.chain_len, chain)
    end

  (* ---------------------------------------------------------------- *)
  (* Introspection                                                     *)

  type nonrec stats = stats = {
    parks : int;
    park_fails : int;
    adopts : int;
    adopt_fails : int;
    chain_puts : int;
    chain_gets : int;
    fresh : int;
    pooled : int;
    parked_slabs : int;
  }

  let stats t =
    let parked = A.get t.partial in
    let pooled_parked =
      List.fold_left (fun acc (s : _ slab) -> acc + s.pooled) 0 parked
    in
    Array.fold_left
      (fun (acc : stats) (d : _ dstate) ->
        {
          acc with
          parks = acc.parks + d.s_parks;
          park_fails = acc.park_fails + d.s_park_fails;
          adopts = acc.adopts + d.s_adopts;
          adopt_fails = acc.adopt_fails + d.s_adopt_fails;
          chain_puts = acc.chain_puts + d.s_chain_puts;
          chain_gets = acc.chain_gets + d.s_chain_gets;
          fresh = acc.fresh + d.s_fresh;
          pooled = acc.pooled + d.active.pooled + d.loose_n;
        })
      {
        parks = 0;
        park_fails = 0;
        adopts = 0;
        adopt_fails = 0;
        chain_puts = 0;
        chain_gets = 0;
        fresh = 0;
        pooled = pooled_parked;
        parked_slabs = List.length parked;
      }
      t.dstates

  (* ================================================================ *)
  (* Off-heap arena: fixed-size int slots in a Bigarray, integer-handle
     indirection, per-slab batched remote frees.

     Layout: [max_slabs * slab_slots] slots, each two off-heap words —
     a value and a link. The link threads the per-domain private
     free-list while the slot is free (and remote-free batches in
     flight); a structure built over the arena (see
     {!Treiber_arena.Make}) uses it as the node's next-handle while the
     slot is live. -1 is the nil handle throughout.

     Ownership: a slab belongs to the domain that carved it (bump-
     carved from the chunk by one wait-free fetch_and_add on
     [next_slab]). Frees by the owner push the private free-list with
     plain stores. Frees by any other domain are *batched per-slab* in
     a small direct-mapped outbox and spliced into the owning slab's
     remote inbox with one CAS per batch — this is where the depot's
     per-chain global CAS becomes a per-[remote_batch] distributed one.
     The owner adopts a whole inbox with a single [exchange] (wait-free)
     when its free-list runs dry.

     The payload is a bare int — OCaml's uniform representation puts
     any other payload behind a heap pointer the GC must trace, and
     rule 3 confines [Obj] tricks to lib/prim/padding.ml, so the honest
     off-heap arena is monomorphic (docs/PERF.md, "Allocator").

     The reclaim checker's shadow heap follows slot lifecycles through
     [note_slot_alloc]/[note_slot_free]/[note_slab_release]: handing
     out a live slot or allocating from a released arena reports
     [Alloc_from_live_slab]; freeing a free slot reports
     [Slab_double_free] (docs/ANALYSIS.md). *)

  module Arena = struct
    type outbox = {
      mutable o_slab : int;
          [@plain_ok "outboxes are per-domain, touched only by their owner"]
      mutable o_head : int; [@plain_ok "see [o_slab]"]
      mutable o_tail : int; [@plain_ok "see [o_slab]"]
      mutable o_n : int; [@plain_ok "see [o_slab]"]
    }

    type adstate = {
      mutable free_head : int;
          [@plain_ok
            "per-domain free-list head; remote traffic goes through the \
             per-slab inbox atomics"]
      mutable owned : int list; [@plain_ok "thread-private, see [free_head]"]
      outboxes : outbox array; (* direct-mapped by slab index *)
      (* per-thread tallies *)
      mutable a_carved : int; [@plain_ok "thread-private, see [free_head]"]
      mutable a_remote_frees : int;
          [@plain_ok "thread-private, see [free_head]"]
      mutable a_remote_batches : int;
          [@plain_ok "thread-private, see [free_head]"]
      mutable a_adopted : int; [@plain_ok "thread-private, see [free_head]"]
    }

    type t = {
      values : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
      links : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
      chk : int array; (* shadow-heap ids of live slots; 0 = untracked *)
      owner : int array;
          (* writing domain of each slab: stored by the carver before any
             handle from the slab escapes (handles escape only through the
             structure's atomics, which order the plain store) *)
      remote : int A.t array; (* per-slab remote-free inbox head, -1 empty *)
      adstates : adstate array;
      next_slab : int A.t; (* bump pointer over the chunk, in slabs *)
      slab_slots : int;
      max_slabs : int;
      remote_batch : int;
      uid_base : int; (* checker slab ids: uid_base + slab index *)
      mutable released : bool;
          [@plain_ok
            "set once at end-of-life on the releasing thread; concurrent \
             operations against a released arena are exactly the bug the \
             reclaim checker reports"]
    }

    let nil = -1
    let default_slab_slots = 256
    let default_max_slabs = 256
    let default_remote_batch = 64
    let outbox_ways = 8

    let create ?(slab_slots = default_slab_slots)
        ?(max_slabs = default_max_slabs) ?(max_threads = 64)
        ?(remote_batch = default_remote_batch) () =
      if slab_slots < 1 then
        invalid_arg "Slab.Arena.create: slab_slots must be at least 1";
      if max_slabs < 1 then
        invalid_arg "Slab.Arena.create: max_slabs must be at least 1";
      if remote_batch < 1 then
        invalid_arg "Slab.Arena.create: remote_batch must be at least 1";
      let slots = slab_slots * max_slabs in
      {
        values = Bigarray.Array1.create Bigarray.int Bigarray.c_layout slots;
        links = Bigarray.Array1.create Bigarray.int Bigarray.c_layout slots;
        chk = Array.make slots 0;
        owner = Array.make max_slabs (-1);
        remote = Array.init max_slabs (fun _ -> A.make_padded nil);
        adstates =
          Array.init max_threads (fun _ ->
              {
                free_head = nil;
                owned = [];
                outboxes =
                  Array.init outbox_ways (fun _ ->
                      { o_slab = -1; o_head = nil; o_tail = nil; o_n = 0 });
                a_carved = 0;
                a_remote_frees = 0;
                a_remote_batches = 0;
                a_adopted = 0;
              });
        next_slab = A.make_padded 0;
        slab_slots;
        max_slabs;
        remote_batch;
        uid_base = take_slab_uids max_slabs;
        released = false;
      }

    let slab_slots t = t.slab_slots
    let slab_of t h = h / t.slab_slots
    let uid_of t h = t.uid_base + slab_of t h
    let get_value t h = Bigarray.Array1.get t.values h
    let set_value t h v = Bigarray.Array1.set t.values h v
    let get_link t h = Bigarray.Array1.get t.links h
    let set_link t h l = Bigarray.Array1.set t.links h l
    let chk_id t h = t.chk.(h)

    (* Carve one fresh slab out of the chunk: a single wait-free
       fetch_and_add claims it; the slots are threaded onto the private
       free-list with plain stores (nothing from the slab has escaped
       yet). *)
    let carve t ~tid d =
      let s = A.fetch_and_add t.next_slab 1 in
      if s >= t.max_slabs then
        failwith
          (Printf.sprintf
             "Slab.Arena: chunk exhausted (%d slabs of %d slots): size the \
              arena past the structure's live-node bound"
             t.max_slabs t.slab_slots);
      t.owner.(s) <- tid;
      d.owned <- s :: d.owned;
      d.a_carved <- d.a_carved + 1;
      let base = s * t.slab_slots in
      for i = 0 to t.slab_slots - 1 do
        set_link t (base + i)
          (if i = t.slab_slots - 1 then d.free_head else base + i + 1)
      done;
      d.free_head <- base

    (* Adopt every batched remote free parked on this domain's slabs:
       one wait-free [exchange] per owned slab, splicing each inbox list
       onto the private free-list. Called only when the free-list is
       dry, so the walk to each batch's tail is amortised O(1) per
       recovered slot. *)
    let adopt_remote t ~tid:_ d =
      List.iter
        (fun s ->
          let head = A.exchange t.remote.(s) nil in
          if head <> nil then begin
            (* One walk finds the tail and sizes the batch. The slots
               were already counted pooled when their freer spliced the
               batch in ([flush_outbox]); adoption only moves them to
               this domain's private list, so no gauge update here. *)
            let rec walk h n =
              if get_link t h = nil then (h, n + 1)
              else walk (get_link t h) (n + 1)
            in
            let last, n = walk head 0 in
            set_link t last d.free_head;
            d.free_head <- head;
            d.a_adopted <- d.a_adopted + n
          end)
        d.owned

    let alloc t ~tid =
      let d = t.adstates.(tid) in
      let c = Global.cell tid in
      if d.free_head = nil then begin
        adopt_remote t ~tid d;
        if d.free_head = nil then begin
          carve t ~tid d;
          c.Global.capacity <- c.Global.capacity + t.slab_slots;
          c.Global.pooled <- c.Global.pooled + t.slab_slots
        end
      end;
      let h = d.free_head in
      d.free_head <- get_link t h;
      c.Global.pooled <- c.Global.pooled - 1;
      set_link t h nil;
      t.chk.(h) <-
        Chk.note_slot_alloc ~fiber:tid ~slab:(uid_of t h)
          ~slot:(h mod t.slab_slots);
      h

    (* Splice one outbox batch into its slab's remote inbox. The only
       retry loop in the arena — and it runs once per [remote_batch]
       frees, against a per-slab cell instead of one global depot, so
       contention (and the retry tally) is what `sec_bench alloc`
       measures shrinking. *)
    let flush_outbox t ~tid (o : outbox) =
      if o.o_n > 0 then begin
        let d = t.adstates.(tid) in
        let c = Global.cell tid in
        let inbox = t.remote.(o.o_slab) in
        let backoff = Backoff.create () in
        let rec attempt () =
          let cur = A.get inbox in
          set_link t o.o_tail cur;
          c.Global.remote_cas <- c.Global.remote_cas + 1;
          if A.compare_and_set inbox cur o.o_head then ()
          else begin
            c.Global.remote_cas_retries <- c.Global.remote_cas_retries + 1;
            Backoff.once backoff;
            attempt ()
          end
        in
        attempt ();
        d.a_remote_batches <- d.a_remote_batches + 1;
        c.Global.remote_batches <- c.Global.remote_batches + 1;
        c.Global.pooled <- c.Global.pooled + o.o_n;
        o.o_slab <- -1;
        o.o_head <- nil;
        o.o_tail <- nil;
        o.o_n <- 0
      end

    let free t ~tid h =
      Chk.note_slot_free ~fiber:tid ~slab:(uid_of t h)
        ~slot:(h mod t.slab_slots);
      t.chk.(h) <- 0;
      let d = t.adstates.(tid) in
      let c = Global.cell tid in
      let s = slab_of t h in
      if t.owner.(s) = tid then begin
        (* Owner-local: plain stores, no shared cache line touched. *)
        set_link t h d.free_head;
        d.free_head <- h;
        c.Global.pooled <- c.Global.pooled + 1
      end
      else begin
        (* Remote: batch in the per-slab outbox; one CAS per batch. *)
        let o = d.outboxes.(s land (outbox_ways - 1)) in
        if o.o_n > 0 && o.o_slab <> s then flush_outbox t ~tid o;
        set_link t h o.o_head;
        if o.o_n = 0 then begin
          o.o_slab <- s;
          o.o_tail <- h
        end;
        o.o_head <- h;
        o.o_n <- o.o_n + 1;
        d.a_remote_frees <- d.a_remote_frees + 1;
        if o.o_n >= t.remote_batch then flush_outbox t ~tid o
      end

    (* Drain this domain's outboxes (end of run, or before a blocking
       wait): remote frees must not linger unpublished. *)
    let flush_remote t ~tid =
      Array.iter (flush_outbox t ~tid) t.adstates.(tid).outboxes

    (* End the arena's life: every live handle becomes dangling, which
       the shadow heap models by reporting subsequent allocation
       ([Alloc_from_live_slab]) and flagging accesses through stale chk
       ids ([Use_after_reclaim]). *)
    let release t ~tid =
      flush_remote t ~tid;
      let carved = A.get t.next_slab in
      for s = 0 to min carved t.max_slabs - 1 do
        Chk.note_slab_release ~fiber:tid ~slab:(t.uid_base + s)
      done;
      t.released <- true

    let released t = t.released
    let carved_slots t = min (A.get t.next_slab) t.max_slabs * t.slab_slots

    let live t =
      let pooled =
        Array.fold_left
          (fun acc (d : adstate) ->
            let rec count h acc =
              if h = nil then acc else count (get_link t h) (acc + 1)
            in
            let outboxed =
              Array.fold_left (fun a (o : outbox) -> a + o.o_n) 0 d.outboxes
            in
            count d.free_head acc + outboxed)
          0 t.adstates
      in
      let remote =
        Array.fold_left
          (fun acc inbox ->
            let rec count h acc =
              if h = nil then acc else count (get_link t h) (acc + 1)
            in
            count (A.get inbox) acc)
          0 t.remote
      in
      carved_slots t - pooled - remote

    let occupancy t =
      let cap = carved_slots t in
      if cap = 0 then 0.0 else float_of_int (live t) /. float_of_int cap

    type stats = arena_stats = {
      carved : int;
      live : int;
      remote_frees : int;
      remote_batches : int;
      adopted : int;
    }

    let stats t =
      Array.fold_left
        (fun (acc : stats) (d : adstate) ->
          {
            acc with
            carved = acc.carved + d.a_carved;
            remote_frees = acc.remote_frees + d.a_remote_frees;
            remote_batches = acc.remote_batches + d.a_remote_batches;
            adopted = acc.adopted + d.a_adopted;
          })
        {
          carved = 0;
          live = live t;
          remote_frees = 0;
          remote_batches = 0;
          adopted = 0;
        }
        t.adstates
  end
end
