(* The interval timestamped stack with real node reclamation ("TSI-EBR"):
   lib/stacks/ts_stack.ml reworked so that taken nodes are actually
   retired through {!Ebr} instead of lingering for the GC.

   Two disciplined deviations from the GC-backed version:

   - every operation (push, pop, peek) runs inside an EBR critical
     section, because scans traverse pool chains whose nodes a concurrent
     owner may retire;
   - unlinking is owner-only. The original lets *any* popper swing a pool
     head past a taken prefix (losing the CAS to the owner is harmless
     when nodes are immortal), but with reclamation that helper CAS could
     race the owner's trim and retire the same prefix twice. Here only
     the owner unlinks — on its next push — and retires exactly what it
     unlinked, so retire-once holds by construction.

   Nodes carry a shadow-heap id ([chk]) and notify the reclamation
   checker at each lifecycle step, like {!Reclaimed_stack}. Node-field
   reads outside a syntactic [Ebr.guard] extent carry
   [@unguarded_ok "reason"] — the static ebr-guard lint's annotation for
   helpers whose callers hold the guard (docs/ANALYSIS.md).

   Zero-allocation hot path: like {!Reclaimed_stack}, retired nodes are
   recycled through a per-domain {!Magazine} once their grace period
   expires, and push re-initialises a recycled node in place (interval
   reset to pending, [taken] cleared, [next] relinked) while it is
   still private to the owner. Only magazine misses construct nodes. *)

(* Same argument as the plain TS stack: losing the [taken] CAS means a
   peer popped the node, and pool scans never wait on a specific thread. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

(* The algorithm is generic in the magazine's backing store; {!Make}
   ("TSI-EBR", depot) and {!Make_slab} ("TSI-SLAB", wait-free slab
   store) below instantiate it. The push/pop atomic sequences are
   identical across the two — only the refill slow path differs. *)
module Make_backed (B : sig
  val backing : [ `Depot | `Slab ]
  val name : string
end)
(P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module A = P.Atomic
  module Ebr = Ebr.Make (P)
  module Mag = Magazine.Make (P)
  module Chk = Sec_analysis.Reclaim_checker

  (* Interval [ts_start, ts_end]; [max_int] until the pusher assigns it,
     which makes an in-flight node "youngest" (taken-immediately).
     [value]/[chk] are mutable for in-place re-initialisation of a
     recycled node (private to the pusher until the pool-head store). *)
  type 'a node = {
    mutable value : 'a;
        [@plain_ok
          "written only while the node is private to the pushing owner; \
           published by the pool-head store"]
    ts : (int64 * int64) A.t;
    taken : bool A.t;
    next : 'a node option A.t;
    mutable chk : int;
        [@plain_ok "see [value]"]
        (* reclamation-checker node id; 0 when untracked *)
  }

  type 'a t = {
    pools : 'a node option A.t array; (* pool head per thread, padded *)
    delay : int; (* relax units between the two clock reads *)
    ebr : Ebr.t;
    mag : 'a node Mag.t;
  }

  let name = B.name

  let pending = (Int64.max_int, Int64.max_int)

  (* Same interval tuning as lib/stacks/ts_stack.ml. *)
  let default_delay = 400

  let create ?(max_threads = 64) () =
    {
      pools = Array.init max_threads (fun _ -> A.make_padded None);
      delay = default_delay;
      ebr = Ebr.create ~max_threads ();
      mag = Mag.create ~max_threads ~backing:B.backing ();
    }

  let push t ~tid value =
    Ebr.guard t.ebr ~tid (fun () ->
        (* Owner-only cleanup: unlink the prefix of taken nodes, then
           retire each. This is the only place a TSI-EBR node is
           unlinked, and the unlinking store to the pool head is private
           to [tid]. *)
        let rec skip acc = function
          | Some n when A.get n.taken -> skip (n :: acc) (A.get n.next)
          | head -> (acc, head)
        in
        let head = A.get t.pools.(tid) in
        let skipped, head' = skip [] head in
        if head != head' then begin
          A.set t.pools.(tid) head';
          List.iter
            (fun n ->
              Chk.note_unlink ~fiber:tid ~node:n.chk;
              (Ebr.retire t.ebr ~tid ~chk:n.chk (fun () ->
                   Mag.recycle t.mag ~tid n)
              [@retire_ok
                "owner-only unlink: the pool-head store above is private \
                 to tid, so each skipped node is retired exactly once"]))
            skipped
        end;
        let node =
          match Mag.alloc t.mag ~tid with
          | Some n ->
              (* Grace period over: no scanner can still hold [n], so the
                 re-initialising stores below are private until the
                 pool-head store publishes the node again. *)
              n.chk <- Chk.note_recycle ~fiber:tid ~node:n.chk;
              n.value <- value;
              A.set n.ts pending;
              A.set n.taken false;
              A.set n.next (A.get t.pools.(tid));
              n
          | None ->
              let chk = Chk.note_alloc ~fiber:tid in
              P.note_alloc ();
              ({
                 value;
                 (* Written once at publication, then only read by scanning
                    poppers; padding every per-push node would be a real
                    allocation-rate regression. *)
                 ts =
                   (A.make pending
                   [@unpadded_ok "written once, then read-only"]);
                 (* [taken] is the CAS-contended cell: pad it so a popper's
                    CAS does not invalidate readers of [ts]/[next] in the
                    same node. *)
                 taken = A.make_padded false;
                 next =
                   (A.make
                      (A.get t.pools.(tid))
                   [@unpadded_ok "written once at creation, then read-only"]);
                 chk;
               }
              [@fresh_ok "magazine miss: cold start or pop-starved run"])
        in
        (* Publish first, then timestamp: the interval must cover a moment
           at which the node was already visible. *)
        A.set t.pools.(tid) (Some node);
        Chk.note_publish ~fiber:tid ~node:node.chk;
        let a = P.now_ns () in
        if t.delay > 0 then P.relax t.delay;
        let b = P.now_ns () in
        A.set node.ts (a, b))

  (* First untaken node from the pool head — the pool's youngest. *)
  let rec youngest n =
    match n with
    | None -> None
    | Some n -> if A.get n.taken then youngest (A.get n.next) else Some n

  (* [n] is strictly younger than interval [(_, e)] if its interval starts
     after [e] ends. Overlapping intervals are unordered: either may win. *)
  let younger (s, _) (_, e') = Int64.compare s e' > 0

  type 'a scan_outcome =
    | Take_now of 'a node (* pushed during our operation: eliminate *)
    | Candidate of 'a node
    | Empty_if of 'a node option array (* heads seen; empty if unchanged *)

  (* Scan all pools starting at the caller's own index, so concurrent
     pops spread their first probes instead of stampeding pool 0. Reads
     only — see the header on owner-only unlinking. *)
  let scan t ~started ~from =
    let num_pools = Array.length t.pools in
    let heads = Array.make num_pools None in
    let best = ref None in
    let rec loop k =
      if k >= num_pools then
        match !best with
        | Some (n, _) -> Candidate n
        | None -> Empty_if heads
      else begin
        let i = (from + k) mod num_pools in
        let head = A.get t.pools.(i) in
        let young = youngest head in
        heads.(i) <- head;
        match young with
        | None -> loop (k + 1)
        | Some n ->
            let ts = A.get n.ts in
            let start_of_interval = fst ts in
            if Int64.compare start_of_interval started > 0 then Take_now n
            else begin
              (match !best with
              | Some (_, best_ts) when not (younger ts best_ts) -> ()
              | _ -> best := Some (n, ts));
              loop (k + 1)
            end
      end
    in
    loop 0

  let try_take n = A.compare_and_set n.taken false true

  let unchanged t heads =
    let ok = ref true in
    Array.iteri
      (fun i h ->
        if A.get t.pools.(i) != h || youngest h <> None then ok := false)
      heads;
    !ok

  let pop t ~tid =
    Ebr.guard t.ebr ~tid (fun () ->
        let started = P.now_ns () in
        let rec attempt () =
          match scan t ~started ~from:(tid mod Array.length t.pools) with
          | Take_now n | Candidate n ->
              Chk.note_access ~fiber:tid ~node:n.chk;
              if try_take n then Some n.value
              else begin
                P.relax 8;
                attempt ()
              end
          | Empty_if heads -> if unchanged t heads then None else attempt ()
        in
        attempt ())

  let peek t ~tid =
    Ebr.guard t.ebr ~tid (fun () ->
        let started = P.now_ns () in
        let rec attempt () =
          match scan t ~started ~from:(tid mod Array.length t.pools) with
          | Take_now n | Candidate n ->
              Chk.note_access ~fiber:tid ~node:n.chk;
              if A.get n.taken then attempt () else Some n.value
          | Empty_if heads -> if unchanged t heads then None else attempt ()
        in
        attempt ())
end

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S =
  Make_backed
    (struct
      let backing = `Depot
      let name = "TSI-EBR"
    end)
    (P)

module Make_slab (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S =
  Make_backed
    (struct
      let backing = `Slab
      let name = "TSI-SLAB"
    end)
    (P)
