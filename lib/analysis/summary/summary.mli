(** Interprocedural atomic-effect summaries over [lib/**].

    The static prong's second stage (docs/ANALYSIS.md, "Static prong:
    interprocedural summaries"). The per-file lint
    ({!Sec_lint_rules.Lint_rules}) is syntactic; this module builds a
    whole-library view:

    - one {e function record} per top-level or [let]-bound function
      (nested [let rec]s are separate functions; anonymous lambdas
      inline into their enclosing function), carrying an ordered event
      stream of atomic reads, plain stores, RMWs, pacing calls, guard
      entries, retire sites, node-literal constructions and calls;
    - an {e effect summary} per function — the transitive union of its
      own events and its callees' (bottom-up fixpoint over the call
      graph, convergent because the lattice is finite sets + booleans);
    - a {e context fixpoint} per obligation kind (guarded / CAS-gated /
      awaited / fresh-sanctioned): a non-entry function's obligations
      are discharged when {e every} call site is covered, lexically or
      by the caller's own context (greatest fixpoint, initialised true
      for internal functions so cycles resolve optimistically and
      entry points pin the result);
    - rule 10, [plain-publication]: replaying each function's event
      stream, a plain [Atomic.set c] (or a call whose callee plain-sets
      [c]) fires when [c] was read earlier on the same path (own events
      or callee totals), no ordering RMW has intervened (own or callee),
      the store is not under [@publication_ok "reason"], and [c] is
      written by two or more entry points — the static mirror of the
      dynamic detector's write-write-race model.

    Atomic cells are keyed by the typed path of their defining record
    field when the file's [.cmt] typedtree is available (dune emits
    them for every library; the key is ["stem:TypePath.field"]), and by
    ["stem.field"] otherwise; unresolvable cells (function parameters,
    local [Atomic.make]s) get per-function pseudo-keys so they can
    never alias a shared field.

    Facts produced here only ever {e discharge} lint obligations; they
    cannot create rule 1–9 diagnostics, so adding summaries to a lint
    run can only shrink its diagnostic set (rule 10 is the one additive
    check, and it is this module's own). *)

module L = Sec_lint_rules.Lint_rules

module String_set : Set.S with type elt = string

(** Transitive effect of calling a function. [retires]/[allocs] are
    reachability bits (does any retire / node construction happen);
    per-site positions live on the function records. *)
type effects = {
  reads : String_set.t;  (** atomic cells read *)
  writes : String_set.t;  (** atomic cells plain-[set] *)
  rmws : String_set.t;  (** atomic cells RMW'd (CAS/exchange/FAA/incr) *)
  paces : bool;  (** performs a Backoff/relax/yield pacing call *)
  has_rmw : bool;  (** performs any ordering RMW *)
  guards : bool;  (** enters a [guard] extent *)
  retires : bool;
  allocs : bool;
}

val no_effects : effects

type env

(** Analyse source files from disk. [use_cmt] (default [true]) overlays
    typed field paths from each file's [.cmt] when one is found beside
    the build tree and its source digest matches. [scope] overrides
    {!L.scope_of_path} for every file (fixtures). Files that fail to
    parse contribute nothing (the lint reports the parse error). *)
val analyze : ?scope:L.scope -> ?use_cmt:bool -> string list -> env

(** Analyse in-memory sources [(filename, contents)] — unit tests. *)
val analyze_sources : ?scope:L.scope -> (string * string) list -> env

(** {2 Lint integration} *)

(** The discharge predicates for [file], to pass to
    {!L.check_file} / {!L.check_string}. *)
val facts_for : env -> file:string -> L.facts

(** Rule-10 diagnostics across the whole environment, sorted by
    (file, line, col). *)
val publication_diagnostics : env -> L.diagnostic list

(** Every syntactic atomic plain-store or RMW site, as
    [(file, line)] — the static may-race set. Independent of call and
    cell resolution, so the dynamic detector's write-write races must
    be a subset of it (cross-validation test). *)
val may_write_sites : env -> (string * int) list

(** {2 Introspection (tests, [--audit] reporting)} *)

(** Keys of the entry-point functions: a module's signature-exported
    top-level functions (export sets resolve through [module type]
    constraints, including functor-result constraints such as
    [Stack_intf.S]); modules without a resolvable constraint export
    every top-level binding. *)
val entries : env -> String_set.t

(** All function keys, in definition order. Keys look like
    ["stem:Make.pop.attempt"]. *)
val functions : env -> string list

(** Transitive effects of a function; {!no_effects} for unknown keys. *)
val total_effects : env -> string -> effects

(** Top-level functions of [file] as [(key, (start_line, end_line))] in
    definition order — the unit list the typestate analysis
    ({!Sec_typestate.Typestate}) builds one CFG per entry of. *)
val file_functions : env -> file:string -> (string * (int * int)) list

(** Every resolved call site in [file]:
    [((line, col), (callee_key, callee_file, callee_span))], sorted.
    Positions are of the whole application expression, matching the
    call ops the typestate CFG records, so the pair serves as a join
    key between the two analyses. *)
val resolved_calls :
  env -> file:string -> ((int * int) * (string * string * (int * int))) list

(** Entry points whose transitive effect plain-writes or RMWs the
    cell. *)
val cell_writers : env -> string -> String_set.t

(** Rounds the bottom-up effect fixpoint took to converge. *)
val effect_rounds : env -> int

(** Max rounds any context fixpoint took to converge. *)
val ctx_rounds : env -> int

(** Context-fixpoint results for a function key. *)
val ctx_guarded : env -> string -> bool

val ctx_gated : env -> string -> bool
val ctx_awaited : env -> string -> bool
val ctx_fresh : env -> string -> bool
