(* Interprocedural atomic-effect summaries. See summary.mli for the
   model; docs/ANALYSIS.md ("Static prong: interprocedural summaries")
   for the prose version. *)

module L = Sec_lint_rules.Lint_rules
module String_set = Set.Make (String)
open Parsetree

type effects = {
  reads : String_set.t;
  writes : String_set.t;
  rmws : String_set.t;
  paces : bool;
  has_rmw : bool;
  guards : bool;
  retires : bool;
  allocs : bool;
}

let no_effects =
  {
    reads = String_set.empty;
    writes = String_set.empty;
    rmws = String_set.empty;
    paces = false;
    has_rmw = false;
    guards = false;
    retires = false;
    allocs = false;
  }

let union_effects a b =
  {
    reads = String_set.union a.reads b.reads;
    writes = String_set.union a.writes b.writes;
    rmws = String_set.union a.rmws b.rmws;
    paces = a.paces || b.paces;
    has_rmw = a.has_rmw || b.has_rmw;
    guards = a.guards || b.guards;
    retires = a.retires || b.retires;
    allocs = a.allocs || b.allocs;
  }

let eq_effects a b =
  String_set.equal a.reads b.reads
  && String_set.equal a.writes b.writes
  && String_set.equal a.rmws b.rmws
  && a.paces = b.paces && a.has_rmw = b.has_rmw && a.guards = b.guards
  && a.retires = b.retires && a.allocs = b.allocs

(* ------------------------------------------------------------------ *)
(* Function records and events                                         *)
(* ------------------------------------------------------------------ *)

type call = {
  clid : Longident.t;
  cline : int;
  ccol : int;
  cg : bool;  (* lexically under a guard (or [@unguarded_ok] extent) *)
  cc : bool;  (* lexically in a CAS-selected branch / [@retire_ok] *)
  ca : bool;  (* under an [@await_ok] extent *)
  cf : bool;  (* under a [@fresh_ok] extent *)
  cp : bool;  (* under a [@publication_ok] extent *)
  lam_spans : (int * int) list;  (* line spans of literal lambda args *)
  mutable callee : string option;  (* resolved function key *)
}

type event =
  | Read of string
  | Write of { wcell : string; wline : int; wcol : int; supp : bool }
  | Rmw of { rcell : string; rline : int }
  | Pace
  | Guard_enter
  | Retire
  | Alloc
  | Call of call

type fn = {
  key : string;
  file : string;
  ns : string;
  parent : string option;
  span : int * int;  (* line span of the defining binding *)
  params : (string, unit) Hashtbl.t;
  locals : (string, string) Hashtbl.t;  (* nested fn name -> key *)
  top_level : bool;
  mutable events : event list;  (* reversed during construction *)
  mutable wrapper : bool;  (* guard wrapper: guards a bare fn parameter *)
  mutable exported : bool;
}

let events_of fn = List.rev fn.events

type env = {
  fns : (string, fn) Hashtbl.t;
  mutable order : string list;  (* reversed definition order *)
  members : (string, string) Hashtbl.t;  (* "ns.name" -> fn key *)
  subs : (string, string) Hashtbl.t;  (* "ns.Name" -> child ns *)
  raw_aliases : (string, string * Longident.t) Hashtbl.t;
      (* "ns.Name" -> (defining ns, rhs head path) *)
  stems : (string, string) Hashtbl.t;  (* "Exchanger" -> "exchanger" *)
  modtypes_full : (string, String_set.t) Hashtbl.t;  (* "stem.S" -> vals *)
  modtypes_name : (string, String_set.t option) Hashtbl.t;
      (* bare name -> vals, None once ambiguous *)
  mutable constraints : (string * Longident.t) list;  (* ns, sig path *)
  ns_top : (string, (string * string) list ref) Hashtbl.t;
  file_scope : (string, L.scope) Hashtbl.t;
  mutable file_order : string list;  (* reversed *)
  mutable anon : int;
  totals : (string, effects) Hashtbl.t;
  mutable entry_set : String_set.t;
  mutable eff_rounds : int;
  mutable ctx_rounds_v : int;
  cg_tbl : (string, bool) Hashtbl.t;
  cc_tbl : (string, bool) Hashtbl.t;
  ca_tbl : (string, bool) Hashtbl.t;
  cf_tbl : (string, bool) Hashtbl.t;
  guard_spans : (string, (int * int) list ref) Hashtbl.t;  (* per file *)
  writers_tbl : (string, String_set.t) Hashtbl.t;  (* cell -> entries *)
}

let new_env () =
  {
    fns = Hashtbl.create 128;
    order = [];
    members = Hashtbl.create 128;
    subs = Hashtbl.create 16;
    raw_aliases = Hashtbl.create 16;
    stems = Hashtbl.create 32;
    modtypes_full = Hashtbl.create 16;
    modtypes_name = Hashtbl.create 16;
    constraints = [];
    ns_top = Hashtbl.create 32;
    file_scope = Hashtbl.create 32;
    file_order = [];
    anon = 0;
    totals = Hashtbl.create 128;
    entry_set = String_set.empty;
    eff_rounds = 0;
    ctx_rounds_v = 0;
    cg_tbl = Hashtbl.create 128;
    cc_tbl = Hashtbl.create 128;
    ca_tbl = Hashtbl.create 128;
    cf_tbl = Hashtbl.create 128;
    guard_spans = Hashtbl.create 16;
    writers_tbl = Hashtbl.create 64;
  }

let make_fn env ~key ~file ~ns ~parent ~span ~top_level =
  let fn =
    {
      key;
      file;
      ns;
      parent;
      span;
      params = Hashtbl.create 4;
      locals = Hashtbl.create 4;
      top_level;
      events = [];
      wrapper = false;
      exported = top_level;
    }
  in
  Hashtbl.replace env.fns key fn;
  env.order <- key :: env.order;
  fn

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let line_span (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_end.pos_lnum)

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let stem_of file = Filename.remove_extension (Filename.basename file)

let pat_vars pat =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it pat;
  !acc

let expr_has_cas e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when L.is_cas_ident txt -> found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let collect_node_fields str =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record labels when has_substring td.ptype_name.txt "node" ->
              List.iter (fun ld -> acc := ld.pld_name.txt :: !acc) labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it str;
  !acc

let attr_reason name attrs =
  match L.find_attr name attrs with
  | Some a -> (
      match L.string_payload a with
      | Some s -> String.trim s <> ""
      | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* .cmt overlay: (line, col) of a field access -> typed cell key        *)
(* ------------------------------------------------------------------ *)

let typed_key (ld : Types.label_description) =
  match Types.get_desc ld.lbl_res with
  | Types.Tconstr (p, _, _) -> Path.name p ^ "." ^ ld.lbl_name
  | _ -> ld.lbl_name

let cmt_path_for path =
  let dir = Filename.dirname path in
  let mname = String.capitalize_ascii (stem_of path) in
  let want_suffix = "__" ^ mname ^ ".cmt" in
  let want_exact = stem_of path ^ ".cmt" in
  try
    let objs =
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun e ->
             String.length e > 6
             && e.[0] = '.'
             && Filename.check_suffix e ".objs")
      |> List.sort compare
    in
    List.find_map
      (fun o ->
        let byte = Filename.concat (Filename.concat dir o) "byte" in
        try
          Array.to_list (Sys.readdir byte)
          |> List.sort compare
          |> List.find_map (fun f ->
                 if Filename.check_suffix f want_suffix || f = want_exact then
                   Some (Filename.concat byte f)
                 else None)
        with Sys_error _ -> None)
      objs
  with Sys_error _ -> None

let no_overlay : int * int -> string option = fun _ -> None

let overlay_for ~file ~src =
  match cmt_path_for file with
  | None -> no_overlay
  | Some cmt -> (
      try
        let info = Cmt_format.read_cmt cmt in
        let fresh =
          match info.Cmt_format.cmt_source_digest with
          | Some d -> d = Digest.string src
          | None -> false
        in
        if not fresh then no_overlay
        else
          match info.Cmt_format.cmt_annots with
          | Cmt_format.Implementation tstr ->
              let tbl = Hashtbl.create 64 in
              let it =
                {
                  Tast_iterator.default_iterator with
                  expr =
                    (fun it e ->
                      (match e.Typedtree.exp_desc with
                      | Typedtree.Texp_field (_, lid, ld) ->
                          Hashtbl.replace tbl (L.pos_of lid.loc) (typed_key ld)
                      | _ -> ());
                      Tast_iterator.default_iterator.expr it e);
                }
              in
              it.structure it tstr;
              fun pos -> Hashtbl.find_opt tbl pos
          | _ -> no_overlay
      with _ -> no_overlay)

(* ------------------------------------------------------------------ *)
(* Extraction walker                                                   *)
(* ------------------------------------------------------------------ *)

type fctx = {
  file : string;
  stem : string;
  overlay : int * int -> string option;
  node_fields : string list;
}

type wctx = {
  fc : fctx;
  f : fn;
  g : bool;
  cas : bool;
  aw : bool;
  fr : bool;
  pb : bool;
  al : (string * string) list;  (* local alias -> cell key *)
}

let emit ctx ev = ctx.f.events <- ev :: ctx.f.events

let enter_attrs ctx (attrs : attributes) =
  if attrs = [] then ctx
  else
    {
      ctx with
      g = ctx.g || attr_reason "unguarded_ok" attrs;
      cas = ctx.cas || attr_reason "retire_ok" attrs;
      aw = ctx.aw || attr_reason "await_ok" attrs;
      fr = ctx.fr || attr_reason "fresh_ok" attrs;
      pb = ctx.pb || attr_reason "publication_ok" attrs;
    }

let field_key ctx (lid : Longident.t Location.loc) =
  match ctx.fc.overlay (L.pos_of lid.loc) with
  | Some k -> ctx.fc.stem ^ ":" ^ k
  | None -> ctx.fc.stem ^ "." ^ L.last_component lid.txt

(* A cell expression that denotes a record field (through array
   indexing and type constraints), or nothing. *)
let rec syntactic_cell ctx e =
  match e.pexp_desc with
  | Pexp_field (_, lid) -> Some (field_key ctx lid)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arr) :: _)
    when L.is_array_get txt ->
      syntactic_cell ctx arr
  | Pexp_constraint (e', _) -> syntactic_cell ctx e'
  | _ -> None

let cell_key env ctx e =
  match syntactic_cell ctx e with
  | Some c -> c
  | None -> (
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } -> (
          match List.assoc_opt x ctx.al with
          | Some c -> c
          | None -> ctx.f.key ^ ".$" ^ x)
      | _ ->
          env.anon <- env.anon + 1;
          ctx.f.key ^ ".?" ^ string_of_int env.anon)

let is_node_literal ctx fields =
  ctx.fc.node_fields <> [] && fields <> []
  && List.for_all
       (fun ((lid : Longident.t Location.loc), _) ->
         List.mem (L.last_component lid.txt) ctx.fc.node_fields)
       fields

(* The lint's [is_rmw_ident] matches on the last path component alone,
   which is fine for its lexical rules but would classify e.g.
   [Exchanger.exchange] as an atomic RMW here — swallowing the call
   (losing pacing propagation) and inventing an ordering RMW. Require
   an atomic-looking owner for qualified names; unqualified, only the
   unambiguous operation names count. *)
let is_atomic_rmw lid =
  L.is_rmw_ident lid
  &&
  match List.rev (L.flatten_longident lid) with
  | _ :: owner :: _ -> owner = "A" || owner = "Atomic" || owner = "Counter"
  | [ op ] -> op = "compare_and_set" || op = "fetch_and_add"
  | [] -> false

let is_lambda e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let var_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let rec walk env ctx e =
  let ctx = enter_attrs ctx e.pexp_attributes in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args) ->
      walk_apply env ctx e lid args
  | Pexp_let (_, vbs, body) -> walk_let env ctx vbs body
  | Pexp_ifthenelse (c, t, f) ->
      walk env ctx c;
      let branch = { ctx with cas = ctx.cas || expr_has_cas c } in
      walk env branch t;
      Option.iter (walk env branch) f
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      walk env ctx scr;
      let branch = { ctx with cas = ctx.cas || expr_has_cas scr } in
      List.iter
        (fun c ->
          Option.iter (walk env ctx) c.pc_guard;
          walk env branch c.pc_rhs)
        cases
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (walk env ctx) c.pc_guard;
          walk env ctx c.pc_rhs)
        cases
  | Pexp_fun (_, dflt, _, body) ->
      (* anonymous lambda: inline into the enclosing function *)
      Option.iter (walk env ctx) dflt;
      walk env ctx body
  | Pexp_record (fields, base) ->
      Option.iter (walk env ctx) base;
      List.iter (fun (_, fe) -> walk env ctx fe) fields;
      if is_node_literal ctx fields then emit ctx Alloc
  | Pexp_sequence (a, b) ->
      walk env ctx a;
      walk env ctx b
  | Pexp_while (cond, body) ->
      walk env ctx cond;
      walk env ctx body
  | _ -> walk_children env ctx e

and walk_children env ctx e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e' -> walk env ctx e');
    }
  in
  Ast_iterator.default_iterator.expr it e

and walk_apply env ctx e lid args =
  let pos_args =
    List.filter_map
      (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
      args
  in
  let walk_args ctx = List.iter (fun (_, a) -> walk env ctx a) args in
  if L.is_atomic_get lid then (
    walk_args ctx;
    match pos_args with
    | cell :: _ -> emit ctx (Read (cell_key env ctx cell))
    | [] -> ())
  else if L.is_atomic_set lid then (
    (* argument (the stored value) evaluates before the store *)
    walk_args ctx;
    match pos_args with
    | cell :: _ ->
        let wline, wcol = L.pos_of e.pexp_loc in
        emit ctx
          (Write { wcell = cell_key env ctx cell; wline; wcol; supp = ctx.pb })
    | [] -> ())
  else if is_atomic_rmw lid then (
    walk_args ctx;
    match pos_args with
    | cell :: _ ->
        let rline, _ = L.pos_of e.pexp_loc in
        emit ctx (Rmw { rcell = cell_key env ctx cell; rline })
    | [] -> ())
  else if L.is_pacing_ident lid || L.is_spin_wait_ident lid then (
    emit ctx Pace;
    walk_args ctx)
  else if L.is_guard_call lid then (
    emit ctx Guard_enter;
    (match List.rev pos_args with
    | { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ } :: _
      when Hashtbl.mem ctx.f.params x ->
        ctx.f.wrapper <- true
    | _ -> ());
    walk_args { ctx with g = true })
  else if L.is_retire_call lid then (
    emit ctx Retire;
    walk_args ctx)
  else if L.is_array_get lid || L.is_atomic_make lid then walk_args ctx
  else (
    (let cline, ccol = L.pos_of e.pexp_loc in
     let lam_spans =
       List.filter_map
         (fun (_, a) ->
           if is_lambda a then Some (line_span a.pexp_loc) else None)
         args
     in
     emit ctx
       (Call
          {
            clid = lid;
            cline;
            ccol;
            cg = ctx.g;
            cc = ctx.cas;
            ca = ctx.aw;
            cf = ctx.fr;
            cp = ctx.pb;
            lam_spans;
            callee = None;
          }));
    walk_args ctx)

and walk_let env ctx vbs body =
  let fns, vals =
    List.partition
      (fun vb -> is_lambda vb.pvb_expr && var_name vb.pvb_pat <> None)
      vbs
  in
  (* register every sibling name before walking any body: mutual
     recursion resolves, and a nested fn shadows outer bindings *)
  let children =
    List.map
      (fun vb ->
        let name = Option.get (var_name vb.pvb_pat) in
        let key = ctx.f.key ^ "." ^ name in
        let child =
          make_fn env ~key ~file:ctx.fc.file ~ns:ctx.f.ns
            ~parent:(Some ctx.f.key) ~span:(line_span vb.pvb_loc)
            ~top_level:false
        in
        Hashtbl.replace ctx.f.locals name key;
        (vb, child))
      fns
  in
  List.iter
    (fun (vb, child) ->
      let cctx = enter_attrs { ctx with f = child } vb.pvb_attributes in
      walk_fn_body env cctx vb.pvb_expr)
    children;
  let ctx =
    List.fold_left
      (fun ctx vb ->
        let vctx = enter_attrs ctx vb.pvb_attributes in
        walk env vctx vb.pvb_expr;
        match (var_name vb.pvb_pat, syntactic_cell ctx vb.pvb_expr) with
        | Some x, Some cell -> { ctx with al = (x, cell) :: ctx.al }
        | _ -> ctx)
      ctx vals
  in
  walk env ctx body

and walk_fn_body env ctx e =
  let ctx = enter_attrs ctx e.pexp_attributes in
  match e.pexp_desc with
  | Pexp_fun (_, dflt, pat, body) ->
      Option.iter (walk env ctx) dflt;
      List.iter (fun x -> Hashtbl.replace ctx.f.params x ()) (pat_vars pat);
      walk_fn_body env ctx body
  | Pexp_newtype (_, body) -> walk_fn_body env ctx body
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (walk env ctx) c.pc_guard;
          walk env ctx c.pc_rhs)
        cases
  | _ -> walk env ctx e

(* ------------------------------------------------------------------ *)
(* Module structure walking                                            *)
(* ------------------------------------------------------------------ *)

let init_fn env fc ns =
  let key = ns ^ ".(init)" in
  match Hashtbl.find_opt env.fns key with
  | Some fn -> fn
  | None ->
      (* module-initialisation code: runs at functor application, so it
         is always an entry; the (0, -1) span contains no line *)
      make_fn env ~key ~file:fc.file ~ns ~parent:None ~span:(0, -1)
        ~top_level:true

let base_ctx fc fn =
  { fc; f = fn; g = false; cas = false; aw = false; fr = false; pb = false;
    al = [] }

let register_ns env ns =
  if not (Hashtbl.mem env.ns_top ns) then Hashtbl.replace env.ns_top ns (ref [])

let record_modtype env ~full ~name vals =
  Hashtbl.replace env.modtypes_full full vals;
  (match Hashtbl.find_opt env.modtypes_name name with
  | None -> Hashtbl.replace env.modtypes_name name (Some vals)
  | Some (Some prior) when String_set.equal prior vals -> ()
  | Some _ -> Hashtbl.replace env.modtypes_name name None)

let sig_val_names (mt : module_type) =
  match mt.pmty_desc with
  | Pmty_signature items ->
      Some
        (List.filter_map
           (fun si ->
             match si.psig_desc with
             | Psig_value vd -> Some vd.pval_name.txt
             | _ -> None)
           items
        |> String_set.of_list)
  | _ -> None

let rec walk_structure env fc ns str =
  register_ns env ns;
  List.iter (walk_item env fc ns) str

and walk_item env fc ns si =
  match si.pstr_desc with
  | Pstr_value (_, vbs) -> walk_top_bindings env fc ns vbs
  | Pstr_module mb -> walk_module_binding env fc ns mb
  | Pstr_recmodule mbs -> List.iter (walk_module_binding env fc ns) mbs
  | Pstr_modtype mtd -> (
      match mtd.pmtd_type with
      | Some mt -> (
          match sig_val_names mt with
          | Some vals ->
              record_modtype env
                ~full:(fc.stem ^ "." ^ mtd.pmtd_name.txt)
                ~name:mtd.pmtd_name.txt vals
          | None -> ())
      | None -> ())
  | Pstr_eval (e, _) -> walk env (base_ctx fc (init_fn env fc ns)) e
  | _ -> ()

and walk_module_binding env fc ns mb =
  match mb.pmb_name.txt with
  | None -> ()
  | Some name -> walk_module_expr env fc ns name mb.pmb_expr

and walk_module_expr env fc ns name me =
  match me.pmod_desc with
  | Pmod_structure str ->
      let child = ns ^ ":" ^ name in
      Hashtbl.replace env.subs (ns ^ "." ^ name) child;
      walk_structure env fc child str
  | Pmod_functor (_, body) -> walk_module_expr env fc ns name body
  | Pmod_constraint (inner, mt) ->
      (match mt.pmty_desc with
      | Pmty_ident { txt; _ } ->
          env.constraints <- (ns ^ ":" ^ name, txt) :: env.constraints
      | _ -> ());
      walk_module_expr env fc ns name inner
  | Pmod_ident { txt; _ } ->
      Hashtbl.replace env.raw_aliases (ns ^ "." ^ name) (ns, txt)
  | Pmod_apply _ -> (
      let rec head m =
        match m.pmod_desc with
        | Pmod_apply (f, _) -> head f
        | Pmod_ident { txt; _ } -> Some txt
        | _ -> None
      in
      match head me with
      | Some lid -> Hashtbl.replace env.raw_aliases (ns ^ "." ^ name) (ns, lid)
      | None -> ())
  | _ -> ()

and walk_top_bindings env fc ns vbs =
  let fns, vals =
    List.partition
      (fun vb -> is_lambda vb.pvb_expr && var_name vb.pvb_pat <> None)
      vbs
  in
  let children =
    List.map
      (fun vb ->
        let name = Option.get (var_name vb.pvb_pat) in
        let key = ns ^ "." ^ name in
        let child =
          make_fn env ~key ~file:fc.file ~ns ~parent:None
            ~span:(line_span vb.pvb_loc) ~top_level:true
        in
        Hashtbl.replace env.members (ns ^ "." ^ name) key;
        let l = Hashtbl.find env.ns_top ns in
        l := (name, key) :: !l;
        (vb, child))
      fns
  in
  List.iter
    (fun (vb, child) ->
      let cctx = enter_attrs (base_ctx fc child) vb.pvb_attributes in
      walk_fn_body env cctx vb.pvb_expr)
    children;
  List.iter
    (fun vb ->
      let ctx =
        enter_attrs (base_ctx fc (init_fn env fc ns)) vb.pvb_attributes
      in
      walk env ctx vb.pvb_expr)
    vals

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)
(* ------------------------------------------------------------------ *)

let rec ns_chain ns =
  match String.rindex_opt ns ':' with
  | Some i -> ns :: ns_chain (String.sub ns 0 i)
  | None -> [ ns ]

(* Resolve a module path [comps] seen from namespace [from_ns] to a
   namespace. [skip] breaks the self-reference of
   [module Ebr = Ebr.Make (P)] (the rhs [Ebr] must resolve past the
   alias being defined). *)
let rec resolve_mod env depth skip from_ns comps =
  if depth > 20 then None
  else
    match comps with
    | [] -> Some from_ns
    | c :: rest -> (
        let rec search = function
          | [] -> Hashtbl.find_opt env.stems c
          | n :: chain_rest -> (
              let k = n ^ "." ^ c in
              match Hashtbl.find_opt env.subs k with
              | Some child -> Some child
              | None -> (
                  match Hashtbl.find_opt env.raw_aliases k with
                  | Some (def_ns, lid) when k <> skip ->
                      resolve_mod env (depth + 1) k def_ns
                        (L.flatten_longident lid)
                  | _ -> search chain_rest))
        in
        match search (ns_chain from_ns) with
        | Some ns' -> resolve_mod env depth skip ns' rest
        | None -> None)

let resolve_call env f lid =
  match L.flatten_longident lid with
  | [] -> None
  | [ g ] -> (
      let rec local_chain = function
        | None -> None
        | Some (fn : fn) -> (
            match Hashtbl.find_opt fn.locals g with
            | Some k -> Some k
            | None ->
                local_chain (Option.bind fn.parent (Hashtbl.find_opt env.fns)))
      in
      match local_chain (Some f) with
      | Some k -> Some k
      | None ->
          List.find_map
            (fun n -> Hashtbl.find_opt env.members (n ^ "." ^ g))
            (ns_chain f.ns))
  | comps -> (
      let n = List.length comps in
      let prefix = List.filteri (fun i _ -> i < n - 1) comps in
      let g = List.nth comps (n - 1) in
      match resolve_mod env 0 "" f.ns prefix with
      | Some ns' -> Hashtbl.find_opt env.members (ns' ^ "." ^ g)
      | None -> None)

let lookup_modtype env ns lid =
  let comps = L.flatten_longident lid in
  let n = List.length comps in
  if n = 0 then None
  else
    let last = List.nth comps (n - 1) in
    let stem = List.hd (ns_chain ns |> List.rev) in
    match Hashtbl.find_opt env.modtypes_full (stem ^ "." ^ last) with
    | Some vals -> Some vals
    | None -> (
        let by_stem2 =
          if n >= 2 then
            let stem2 = String.uncapitalize_ascii (List.nth comps (n - 2)) in
            Hashtbl.find_opt env.modtypes_full (stem2 ^ "." ^ last)
          else None
        in
        match by_stem2 with
        | Some vals -> Some vals
        | None -> (
            match Hashtbl.find_opt env.modtypes_name last with
            | Some (Some vals) -> Some vals
            | _ -> None))

let apply_constraints env =
  List.iter
    (fun (ns, lid) ->
      match lookup_modtype env ns lid with
      | Some vals -> (
          match Hashtbl.find_opt env.ns_top ns with
          | Some l ->
              List.iter
                (fun (name, key) ->
                  match Hashtbl.find_opt env.fns key with
                  | Some fn -> fn.exported <- String_set.mem name vals
                  | None -> ())
                !l
          | None -> ())
      | None -> ())
    env.constraints

(* ------------------------------------------------------------------ *)
(* Fixpoints                                                           *)
(* ------------------------------------------------------------------ *)

let own_effects fn =
  List.fold_left
    (fun e ev ->
      match ev with
      | Read c -> { e with reads = String_set.add c e.reads }
      | Write { wcell; _ } -> { e with writes = String_set.add wcell e.writes }
      | Rmw { rcell; _ } ->
          { e with rmws = String_set.add rcell e.rmws; has_rmw = true }
      | Pace -> { e with paces = true }
      | Guard_enter -> { e with guards = true }
      | Retire -> { e with retires = true }
      | Alloc -> { e with allocs = true }
      | Call _ -> e)
    no_effects (events_of fn)

let total env key =
  match Hashtbl.find_opt env.totals key with Some e -> e | None -> no_effects

let effect_fixpoint env =
  let keys = List.rev env.order in
  let own = Hashtbl.create 128 in
  List.iter
    (fun key ->
      let e = own_effects (Hashtbl.find env.fns key) in
      Hashtbl.replace own key e;
      Hashtbl.replace env.totals key e)
    keys;
  let changed = ref true in
  while !changed do
    changed := false;
    env.eff_rounds <- env.eff_rounds + 1;
    List.iter
      (fun key ->
        let fn = Hashtbl.find env.fns key in
        let t =
          List.fold_left
            (fun acc ev ->
              match ev with
              | Call { callee = Some g; _ } -> union_effects acc (total env g)
              | _ -> acc)
            (Hashtbl.find own key) fn.events
        in
        if not (eq_effects t (total env key)) then (
          Hashtbl.replace env.totals key t;
          changed := true))
      keys
  done

let compute_entries env =
  env.entry_set <-
    Hashtbl.fold
      (fun key fn acc ->
        if fn.top_level && fn.exported then String_set.add key acc else acc)
      env.fns String_set.empty

let compute_guard_spans env =
  Hashtbl.iter
    (fun _ (fn : fn) ->
      List.iter
        (function
          | Call { callee = Some w; lam_spans; _ }
            when (match Hashtbl.find_opt env.fns w with
                 | Some wf -> wf.wrapper
                 | None -> false) ->
              let l =
                match Hashtbl.find_opt env.guard_spans fn.file with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.replace env.guard_spans fn.file l;
                    l
              in
              l := lam_spans @ !l
          | _ -> ())
        fn.events)
    env.fns

let in_guard_span env file line =
  match Hashtbl.find_opt env.guard_spans file with
  | Some l -> List.exists (fun (a, b) -> a <= line && line <= b) !l
  | None -> false

let call_sites env =
  let sites = Hashtbl.create 128 in
  Hashtbl.iter
    (fun _ fn ->
      List.iter
        (function
          | Call ({ callee = Some g; _ } as c) -> Hashtbl.add sites g (fn, c)
          | _ -> ())
        fn.events)
    env.fns;
  sites

(* Greatest fixpoint: a non-entry function with at least one resolved
   call site starts covered; a site left uncovered (lexically, by the
   guard-wrapper spans, or by its caller's own context) withdraws it. *)
let ctx_fixpoint env sites tbl site_ok =
  let keys = List.rev env.order in
  List.iter
    (fun key ->
      Hashtbl.replace tbl key
        ((not (String_set.mem key env.entry_set)) && Hashtbl.mem sites key))
    keys;
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    List.iter
      (fun key ->
        if Hashtbl.find tbl key then
          let ok =
            List.for_all
              (fun ((encl : fn), c) ->
                site_ok encl c
                || Hashtbl.find_opt tbl encl.key = Some true)
              (Hashtbl.find_all sites key)
          in
          if not ok then (
            Hashtbl.replace tbl key false;
            changed := true))
      keys
  done;
  if !rounds > env.ctx_rounds_v then env.ctx_rounds_v <- !rounds

let compute_ctx env =
  let sites = call_sites env in
  ctx_fixpoint env sites env.cg_tbl (fun encl c ->
      c.cg || in_guard_span env encl.file c.cline);
  ctx_fixpoint env sites env.cc_tbl (fun _ c -> c.cc);
  ctx_fixpoint env sites env.ca_tbl (fun _ c -> c.ca);
  ctx_fixpoint env sites env.cf_tbl (fun _ c -> c.cf)

let compute_writers env =
  String_set.iter
    (fun ek ->
      let t = total env ek in
      String_set.iter
        (fun cell ->
          let prior =
            match Hashtbl.find_opt env.writers_tbl cell with
            | Some s -> s
            | None -> String_set.empty
          in
          Hashtbl.replace env.writers_tbl cell (String_set.add ek prior))
        (String_set.union t.writes t.rmws))
    env.entry_set

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                     *)
(* ------------------------------------------------------------------ *)

let analyze_common ?scope sources =
  let env = new_env () in
  List.iter
    (fun (file, _, _) ->
      let stem = stem_of file in
      Hashtbl.replace env.stems (String.capitalize_ascii stem) stem)
    sources;
  List.iter
    (fun (file, src, overlay) ->
      let sc =
        match scope with Some s -> s | None -> L.scope_of_path file
      in
      Hashtbl.replace env.file_scope file sc;
      env.file_order <- file :: env.file_order;
      match (try Some (L.parse_string ~file src) with _ -> None) with
      | None -> ()
      | Some str ->
          let fc =
            {
              file;
              stem = stem_of file;
              overlay;
              node_fields = collect_node_fields str;
            }
          in
          walk_structure env fc fc.stem str)
    sources;
  Hashtbl.iter
    (fun _ fn ->
      List.iter
        (function
          | Call c -> c.callee <- resolve_call env fn c.clid
          | _ -> ())
        fn.events)
    env.fns;
  apply_constraints env;
  compute_entries env;
  effect_fixpoint env;
  compute_guard_spans env;
  compute_ctx env;
  compute_writers env;
  env

let analyze ?scope ?(use_cmt = true) files =
  analyze_common ?scope
    (List.filter_map
       (fun file ->
         match (try Some (L.read_file file) with _ -> None) with
         | None -> None
         | Some src ->
             let overlay =
               if use_cmt then overlay_for ~file ~src else no_overlay
             in
             Some (file, src, overlay))
       files)

let analyze_sources ?scope sources =
  analyze_common ?scope
    (List.map (fun (file, src) -> (file, src, no_overlay)) sources)

(* ------------------------------------------------------------------ *)
(* Lint integration                                                    *)
(* ------------------------------------------------------------------ *)

let tbl_true tbl key = Hashtbl.find_opt tbl key = Some true

let facts_for env ~file =
  let fns =
    List.rev env.order
    |> List.filter_map (fun k ->
           let fn : fn = Hashtbl.find env.fns k in
           if fn.file = file then Some fn else None)
  in
  let innermost line =
    List.fold_left
      (fun best fn ->
        let l1, l2 = fn.span in
        if l1 <= line && line <= l2 then
          match best with
          | Some (b : fn) when snd b.span - fst b.span <= l2 - l1 -> best
          | _ -> Some fn
        else best)
      None fns
  in
  let at tbl (line, _col) =
    match innermost line with
    | Some fn -> tbl_true tbl fn.key
    | None -> false
  in
  let guarded_at (line, col) =
    at env.cg_tbl (line, col) || in_guard_span env file line
  in
  let paced_within (l1, l2) =
    List.exists
      (fun fn ->
        List.exists
          (function
            | Call { callee = Some g; cline; _ } ->
                l1 <= cline && cline <= l2 && (total env g).paces
            | _ -> false)
          fn.events)
      fns
  in
  {
    L.guarded_at;
    gated_at = at env.cc_tbl;
    awaited_at = at env.ca_tbl;
    fresh_at = at env.cf_tbl;
    paced_within;
  }

let cell_writers env cell =
  match Hashtbl.find_opt env.writers_tbl cell with
  | Some s -> s
  | None -> String_set.empty

let publication_diagnostics env =
  let diags = ref [] in
  let seen = Hashtbl.create 16 in
  let fire (fn : fn) cell line col via =
    let ws = cell_writers env cell in
    if String_set.cardinal ws >= 2 && not (Hashtbl.mem seen (fn.file, line, cell))
    then (
      Hashtbl.replace seen (fn.file, line, cell) ();
      let head =
        match via with
        | None -> "plain store to"
        | Some g -> Printf.sprintf "call resolving to '%s' plain-stores" g
      in
      let msg =
        Printf.sprintf
          "%s atomic cell '%s' completes a read-modify-plain-write chain \
           (no ordering RMW since '%s' began) on a cell written from %d \
           entry points (%s): a concurrent write between the read and this \
           store is lost -- the dynamic detector's write-write-race model; \
           make the update a compare_and_set/exchange or annotate \
           [@publication_ok \"why the lost update is benign\"]"
          head cell fn.key (String_set.cardinal ws)
          (String.concat ", " (String_set.elements ws))
      in
      diags :=
        { L.file = fn.file; line; col; rule = "plain-publication";
          message = msg }
        :: !diags)
  in
  List.iter
    (fun key ->
      let fn = Hashtbl.find env.fns key in
      let sc = Hashtbl.find_opt env.file_scope fn.file in
      if (match sc with Some s -> s.L.check_discipline | None -> false) then (
        let reads = ref String_set.empty in
        let rmw = ref false in
        List.iter
          (fun ev ->
            match ev with
            | Read c -> reads := String_set.add c !reads
            | Rmw _ -> rmw := true
            | Write { wcell; wline; wcol; supp } ->
                if (not supp) && (not !rmw) && String_set.mem wcell !reads
                then fire fn wcell wline wcol None
            | Call ({ callee = Some g; _ } as c) ->
                let tg = total env g in
                (if (not c.cp) && (not !rmw) && not tg.has_rmw then
                   match
                     String_set.choose_opt (String_set.inter tg.writes !reads)
                   with
                   | Some cell -> fire fn cell c.cline c.ccol (Some g)
                   | None -> ());
                reads := String_set.union !reads tg.reads;
                if tg.has_rmw then rmw := true
            | _ -> ())
          (events_of fn)))
    (List.rev env.order);
  List.sort
    (fun (a : L.diagnostic) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    !diags

let may_write_sites env =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ (fn : fn) ->
      List.iter
        (function
          | Write { wline; _ } -> acc := (fn.file, wline) :: !acc
          | Rmw { rline; _ } -> acc := (fn.file, rline) :: !acc
          | _ -> ())
        fn.events)
    env.fns;
  List.sort_uniq compare !acc

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let entries env = env.entry_set
let functions env = List.rev env.order

(* Top-level functions of [file] with their binding line spans, in
   definition order — the typestate analysis' unit list. *)
let file_functions env ~file =
  List.rev env.order
  |> List.filter_map (fun k ->
         let fn : fn = Hashtbl.find env.fns k in
         if fn.file = file && fn.top_level then Some (k, fn.span) else None)

(* Every resolved call site in [file]: the (line, col) of the whole
   application expression, mapped to the callee's key, defining file and
   binding span. The typestate CFG records call ops at the same
   position, so the pair is a join key. *)
let resolved_calls env ~file =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ (fn : fn) ->
      if fn.file = file then
        List.iter
          (function
            | Call { cline; ccol; callee = Some key; _ } -> (
                match Hashtbl.find_opt env.fns key with
                | Some callee ->
                    acc :=
                      ((cline, ccol), (key, callee.file, callee.span)) :: !acc
                | None -> ())
            | _ -> ())
          fn.events)
    env.fns;
  List.sort compare !acc
let total_effects env key = total env key
let effect_rounds env = env.eff_rounds
let ctx_rounds env = env.ctx_rounds_v
let ctx_guarded env key = tbl_true env.cg_tbl key
let ctx_gated env key = tbl_true env.cc_tbl key
let ctx_awaited env key = tbl_true env.ca_tbl key
let ctx_fresh env key = tbl_true env.cf_tbl key
