(** Vector-clock happens-before tracker over the simulated substrate's
    atomic-access events.

    The model encodes the repo's access discipline, not OCaml's memory
    model: [get] acquires, RMWs acquire and release, and a plain [set]
    releases without acquiring (a blind store). Two plain stores to the
    same cell that are unordered under this relation are reported as a
    {e write-write race} — the lost-update / double-release idiom — while
    CAS-retry loops, lock hand-offs and publication-by-RMW stay clean. A
    successful CAS whose cell was overwritten at least twice since the
    fiber last read it is reported separately as an {e ABA hazard}.

    See [docs/ANALYSIS.md] for the full model and its soundness notes. *)

type kind = Write_write_race | Aba_hazard

type hazard = {
  kind : kind;
  loc : int;  (** simulator location id of the atomic cell *)
  fiber_a : int;  (** fiber of the earlier access *)
  fiber_b : int;  (** fiber whose access triggered the report *)
  site_a : string;  (** source location ([file:line]) of the earlier access *)
  site_b : string;  (** source location of the triggering access *)
  alloc_site : string;  (** where the cell was allocated *)
}

type t

(** [create ()] makes an empty detector. [max_hazards] bounds the report
    list (further hazards are counted in {!dropped}); [capture_sites]
    disables backtrace capture for speed-sensitive sweeps. *)
val create : ?max_hazards:int -> ?capture_sites:bool -> unit -> t

(** {2 Event feed}

    Called by {!Sec_sim.Sim} / {!Sec_sim.Explore} and the simulated
    substrate; fibers are identified by their public ids (negative ids
    denote the main/setup context). *)

val on_make : t -> fiber:int -> loc:int -> unit
val on_read : t -> fiber:int -> loc:int -> unit
val on_write : t -> fiber:int -> loc:int -> unit
val on_rmw : t -> fiber:int -> loc:int -> unit
val on_cas : t -> fiber:int -> loc:int -> success:bool -> unit
val on_spawn : t -> parent:int -> child:int -> unit
val on_exit : t -> fiber:int -> unit
val on_join : t -> fiber:int -> unit

(** {2 Reports} *)

val hazards : t -> hazard list
(** All hazards, in detection order. *)

val races : t -> hazard list
(** Write-write races only — the hard failures. *)

val aba_hazards : t -> hazard list
(** ABA hazards only — warnings, frequently benign under a GC. *)

val dropped : t -> int
(** Hazards discarded past [max_hazards]. *)

val pp_hazard : Format.formatter -> hazard -> unit
val hazard_to_string : hazard -> string

(** {2 Installation}

    The simulated substrate consults [active] on every atomic operation;
    the schedulers install a detector for the duration of a run. *)

val active : t option ref
val install : t -> unit
val uninstall : unit -> unit

(** [with_detector t f] installs [t] around [f], restoring the previous
    detector afterwards. *)
val with_detector : t -> (unit -> 'a) -> 'a
