(** Per-fiber progress watermarks for simulated runs: flags starvation (a
    fiber makes no operation progress while peers complete >= K ops) and
    suspected livelock (retry volume grows with no completions anywhere).
    The dynamic half of the progress prong — see docs/ANALYSIS.md; the
    mechanical Blocking/Lock_free verdict is {!Sec_sim.Explore.classify}. *)

type t

type kind = Starvation | Livelock_suspected

type report = {
  kind : kind;
  fiber : int;
      (** the starved fiber, or the fiber whose event tripped the
          livelock bound *)
  peer_completions : int;
      (** completions by other fibers since the starved operation began
          (0 for livelock reports) *)
  events : int;  (** global scheduling events at the report *)
  detail : string;
}

val create :
  ?starvation_ops:int ->
  ?livelock_events:int ->
  ?max_reports:int ->
  unit ->
  t
(** [starvation_ops] (default 64): peer completions tolerated while one
    operation stays in flight before a [Starvation] report.
    [livelock_events] (default 50_000): scheduling events tolerated since
    the last completion (with >= 1 operation in flight) before a
    [Livelock_suspected] report. Reports beyond [max_reports] (default
    64) are counted in {!dropped}. *)

(** {1 Event feed}

    Fed by the workload loop ({!on_op_start}/{!on_op_end} around each
    stack operation) and by the schedulers ({!on_event} at every atomic
    access, {!on_fiber_exit} at fiber teardown). Starvation is checked at
    completions — a frozen fiber performs no events of its own, so the
    peers' completions must carry the check. *)

val on_op_start : t -> fiber:int -> unit
val on_op_end : t -> fiber:int -> unit
val on_event : t -> fiber:int -> unit
val on_fiber_exit : t -> fiber:int -> unit

(** {1 Reports} *)

val reports : t -> report list
(** In detection order. *)

val dropped : t -> int
val completions : t -> int
val events : t -> int
val kind_to_string : kind -> string
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(** {1 Global installation}

    Same pattern as {!Race_detector.active} / {!Reclaim_checker.active}:
    the simulated schedulers interleave fibers within one domain, so a
    single global slot is safe, and the [note_*] hooks cost one ref read
    when no monitor is installed. *)

val active : t option ref
val install : t -> unit
val uninstall : unit -> unit
val with_monitor : t -> (unit -> 'a) -> 'a
val note_op_start : fiber:int -> unit
val note_op_end : fiber:int -> unit
val note_event : fiber:int -> unit
