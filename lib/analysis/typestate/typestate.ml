(* Path-sensitive typestate analysis: per-function CFGs preserving
   branch/loop/exception structure, a small forward abstract-
   interpretation engine, and three rules on top of it — guard balance
   (rule 11), loop progress (rule 12) and protocol automata (rule 13).
   See typestate.mli and docs/ANALYSIS.md, "Typestate prong".

   The walk is syntactic over the same parsetree the lint reads,
   sharing its idiom recognisers (module L); interprocedural knowledge
   (call resolution, callee atomic effects) comes from the summary
   environment built over the same corpus. Everything here is total:
   an expression shape the builder does not model falls back to a
   sequential walk of its children, so an unmodelled construct can
   cost precision, never a crash or a missed edge out of a node. *)

module L = Sec_lint_rules.Lint_rules
module Summary = Sec_summary.Summary
open Parsetree

type pos = int * int

let line_span (loc : Location.t) =
  (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_end.Lexing.pos_lnum)

(* ------------------------------------------------------------------ *)
(* Protocol DSL                                                        *)
(* ------------------------------------------------------------------ *)

type akind = Kread | Kwrite | Krmw

let kind_to_string = function
  | Kread -> "read"
  | Kwrite -> "write"
  | Krmw -> "rmw"

type automaton = {
  a_name : string;
  a_states : string array; (* index 0 = start state *)
  a_trans : (int * akind * string, int list) Hashtbl.t;
  a_declared : (akind * string, unit) Hashtbl.t;
}

let split_once s sep =
  let ls = String.length s and lb = String.length sep in
  let rec scan i =
    if i + lb > ls then None
    else if String.sub s i lb = sep then
      Some (String.sub s 0 i, String.sub s (i + lb) (ls - i - lb))
    else scan (i + 1)
  in
  scan 0

(* "name: s1 -kind:field-> s2; s2 -kind:field-> s3; ...". The first
   transition's source is the start state. *)
let parse_automaton payload =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* name, rest =
    match split_once payload ":" with
    | Some (n, rest) when String.trim n <> "" -> Ok (String.trim n, rest)
    | _ -> Error "missing \"name:\" prefix"
  in
  let states = ref [] (* (name, index) *) in
  let nstates = ref 0 in
  let intern s =
    match List.assoc_opt s !states with
    | Some i -> i
    | None ->
        let i = !nstates in
        incr nstates;
        states := (s, i) :: !states;
        i
  in
  let trans = Hashtbl.create 16 in
  let declared = Hashtbl.create 16 in
  let parse_transition s =
    let* lhs, dst =
      match split_once s "->" with
      | Some (l, d) when String.trim d <> "" -> Ok (l, String.trim d)
      | _ -> Error (Printf.sprintf "transition %S: missing \"-> state\"" s)
    in
    let* src, label =
      match String.index_opt lhs '-' with
      | Some i ->
          let src = String.trim (String.sub lhs 0 i) in
          let label =
            String.trim (String.sub lhs (i + 1) (String.length lhs - i - 1))
          in
          if src = "" then
            Error (Printf.sprintf "transition %S: empty source state" s)
          else Ok (src, label)
      | None ->
          Error (Printf.sprintf "transition %S: missing \"-kind:field->\"" s)
    in
    let* kind, field =
      match split_once label ":" with
      | Some (k, f) when String.trim f <> "" ->
          Ok (String.trim k, String.trim f)
      | _ -> Error (Printf.sprintf "transition %S: label must be kind:field" s)
    in
    let* kind =
      match kind with
      | "read" -> Ok Kread
      | "write" -> Ok Kwrite
      | "rmw" -> Ok Krmw
      | k ->
          Error
            (Printf.sprintf "transition %S: kind %S is not read/write/rmw" s k)
    in
    let si = intern src in
    let di = intern dst in
    Hashtbl.replace declared (kind, field) ();
    let prev =
      Option.value (Hashtbl.find_opt trans (si, kind, field)) ~default:[]
    in
    Hashtbl.replace trans (si, kind, field) (di :: prev);
    Ok ()
  in
  let parts =
    String.split_on_char ';' rest
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let* () = if parts = [] then Error "no transitions" else Ok () in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        parse_transition p)
      (Ok ()) parts
  in
  let* () = if !nstates > 62 then Error "too many states (max 62)" else Ok () in
  let arr = Array.make !nstates "" in
  List.iter (fun (s, i) -> arr.(i) <- s) !states;
  Ok { a_name = name; a_states = arr; a_trans = trans; a_declared = declared }

(* ------------------------------------------------------------------ *)
(* CFG                                                                 *)
(* ------------------------------------------------------------------ *)

type op =
  | Atomic of akind * string * pos (* kind, field (last component), pos *)
  | Enter of pos (* direct EBR enter / guard-wrapper entry *)
  | Exit of pos
  | Callsite of pos (* application, resolvable through the summary *)
  | Mark of pos (* record-field access: a guard-depth probe (rule 4) *)

type node = { id : int; mutable op : op option; mutable succs : int list }

type cfg = {
  nodes : node array;
  entry : int;
  normal_exit : int;
  exn_exit : int;
  n_loop_heads : int;
}

type builder = {
  mutable bnodes : node list;
  mutable nid : int;
  mutable heads : int;
}

let new_node b =
  let n = { id = b.nid; op = None; succs = [] } in
  b.nid <- b.nid + 1;
  b.bnodes <- n :: b.bnodes;
  n

let link a c = if not (List.mem c.id a.succs) then a.succs <- c.id :: a.succs

let op_node b cur o =
  let n = new_node b in
  n.op <- Some o;
  link cur n;
  n

(* ------------------------------------------------------------------ *)
(* Idiom recognition shared by the builder and the loop classifier     *)
(* ------------------------------------------------------------------ *)

let attr_reason name attrs =
  match L.find_attr name attrs with
  | Some attr -> (
      match L.string_payload attr with
      | Some s when String.trim s <> "" ->
          Some (L.pos_of attr.attr_name.Location.loc)
      | _ -> None)
  | None -> None

let is_lambda e =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

let rec peel_fun e =
  match e.pexp_desc with Pexp_fun (_, _, _, b) -> peel_fun b | _ -> e

(* The cell a substrate atomic access touches, keyed by the last path
   component of the field (or the variable name for a bare ident):
   [A.get batch.elimination.(seq)] -> "elimination". *)
let rec cell_field (e : expression) =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> L.last_component txt
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (Asttypes.Nolabel, a) :: _)
    when L.is_array_get txt ->
      cell_field a
  | Pexp_ident { txt; _ } -> L.last_component txt
  | Pexp_constraint (inner, _) -> cell_field inner
  | _ -> "?"

(* The base variable a cell expression dereferences from:
   [t.slots.(tid).announce] -> "t". *)
let rec cell_root (e : expression) =
  match e.pexp_desc with
  | Pexp_field (inner, _) -> cell_root inner
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (Asttypes.Nolabel, a) :: _)
    when L.is_array_get txt ->
      cell_root a
  | Pexp_ident { txt; _ } -> Some (L.last_component txt)
  | Pexp_constraint (inner, _) -> cell_root inner
  | _ -> None

let atomic_kind lid =
  if L.is_atomic_get lid then Some Kread
  else if L.is_atomic_set lid then Some Kwrite
  else if L.is_rmw_ident lid then Some Krmw
  else None

let has_tid_label args =
  List.exists
    (fun (lbl, _) ->
      match lbl with Asttypes.Labelled "tid" -> true | _ -> false)
    args

(* Direct EBR enter/exit: the repo idiom is [enter t ~tid] /
   [exit t ~tid] (ebr.ml and its callers); requiring the [~tid] label
   keeps [Stdlib.exit] and unrelated enters out. *)
let enter_exit_kind lid args =
  match L.last_component lid with
  | "enter" when has_tid_label args -> Some `Enter
  | "exit" when has_tid_label args -> Some `Exit
  | _ -> None

let is_raise_ident lid =
  match L.flatten_longident lid with
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] -> true
  | _ -> false

(* Direct sub-expressions of [e], in syntactic order — the generic
   fallback of the builder and the scanners. *)
let children e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ c -> acc := c :: !acc);
    }
  in
  Ast_iterator.default_iterator.expr it e;
  List.rev !acc

let expr_mentions name e =
  L.expr_contains_ident
    (fun lid ->
      match L.flatten_longident lid with [ n ] -> n = name | _ -> false)
    e

(* ------------------------------------------------------------------ *)
(* CFG construction                                                    *)
(* ------------------------------------------------------------------ *)

type local_fn = {
  lf_body : expression; (* peeled past the fun parameters *)
  lf_locals : (string * local_fn) list; (* scope at the definition *)
  lf_recs : (string * (node * node)) list;
}

type wenv = {
  exn : node; (* where raises on the current path land *)
  locals : (string * local_fn) list; (* non-recursive local functions *)
  recs : (string * (node * node)) list; (* rec fn -> (entry, exit) *)
  depth : int; (* inlining depth guard *)
}

let rec walk env b cur (e : expression) =
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable -> cur
  | Pexp_fun _ | Pexp_function _ ->
      (* a lambda value that is not the argument of a recognised call is
         not executed here; its body is analysed when a call site
         inlines it *)
      cur
  | Pexp_field (inner, { loc; _ }) ->
      let cur = walk env b cur inner in
      op_node b cur (Mark (L.pos_of loc))
  | Pexp_setfield (lhs, _, rhs) ->
      let cur = walk env b cur lhs in
      walk env b cur rhs
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      walk_apply env b cur e txt args
  | Pexp_apply (f, args) ->
      let cur = walk env b cur f in
      let cur = List.fold_left (fun cur (_, a) -> walk env b cur a) cur args in
      let call = op_node b cur (Callsite (L.pos_of e.pexp_loc)) in
      link call env.exn;
      call
  | Pexp_ifthenelse (c, t, eo) ->
      let c_end = walk env b cur c in
      let t_end = walk env b c_end t in
      let e_end =
        match eo with Some el -> walk env b c_end el | None -> c_end
      in
      let join = new_node b in
      link t_end join;
      link e_end join;
      join
  | Pexp_match (scr, cases) -> (
      let exn_cases, val_cases =
        List.partition
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception _ -> true
            | _ -> false)
          cases
      in
      match exn_cases with
      | [] ->
          let s_end = walk env b cur scr in
          join_cases env b s_end val_cases
      | _ ->
          (* [match e with ... | exception p -> ...]: the handler
             catches raises from the scrutinee only *)
          let handler = new_node b in
          let s_end = walk { env with exn = handler } b cur scr in
          let v_join = join_cases env b s_end val_cases in
          let h_join = join_cases env b handler exn_cases in
          let join = new_node b in
          link v_join join;
          link h_join join;
          join)
  | Pexp_try (body, cases) ->
      let handler = new_node b in
      let b_end = walk { env with exn = handler } b cur body in
      let h_join = join_cases env b handler cases in
      let join = new_node b in
      link b_end join;
      link h_join join;
      join
  | Pexp_sequence (a, rest) ->
      let cur = walk env b cur a in
      walk env b cur rest
  | Pexp_let (Asttypes.Nonrecursive, vbs, cont) ->
      let env' =
        List.fold_left
          (fun env' vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = name; _ } when is_lambda vb.pvb_expr ->
                {
                  env' with
                  locals =
                    ( name,
                      {
                        lf_body = peel_fun vb.pvb_expr;
                        lf_locals = env'.locals;
                        lf_recs = env'.recs;
                      } )
                    :: env'.locals;
                }
            | _ -> env')
          env vbs
      in
      let cur =
        List.fold_left
          (fun cur vb ->
            if is_lambda vb.pvb_expr then cur else walk env b cur vb.pvb_expr)
          cur vbs
      in
      walk env' b cur cont
  | Pexp_let (Asttypes.Recursive, vbs, cont) ->
      let env' = bind_rec_group env b vbs in
      walk env' b cur cont
  | Pexp_while (c, body) ->
      let head = new_node b in
      b.heads <- b.heads + 1;
      link cur head;
      let c_end = walk env b head c in
      let exit_n = new_node b in
      link c_end exit_n;
      let b_end = walk env b c_end body in
      link b_end head;
      exit_n
  | Pexp_for (_, lo, hi, _, body) ->
      let cur = walk env b cur lo in
      let cur = walk env b cur hi in
      let head = new_node b in
      b.heads <- b.heads + 1;
      link cur head;
      let b_end = walk env b head body in
      link b_end head;
      let exit_n = new_node b in
      link head exit_n;
      exit_n
  | Pexp_assert
      {
        pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
        _;
      } ->
      link cur env.exn;
      new_node b (* dead *)
  | Pexp_assert cond ->
      let cur = walk env b cur cond in
      link cur env.exn;
      cur
  | Pexp_constraint (inner, _)
  | Pexp_coerce (inner, _, _)
  | Pexp_open (_, inner)
  | Pexp_letmodule (_, _, inner)
  | Pexp_letexception (_, inner)
  | Pexp_newtype (_, inner) ->
      walk env b cur inner
  | Pexp_lazy _ -> cur (* deferred; not executed here *)
  | _ ->
      (* tuples, records, arrays, constructors, variants, ...: walk the
         direct children in order *)
      List.fold_left (fun cur c -> walk env b cur c) cur (children e)

and join_cases env b from cases =
  let ends =
    List.map
      (fun c ->
        let g_end =
          match c.pc_guard with Some g -> walk env b from g | None -> from
        in
        walk env b g_end c.pc_rhs)
      cases
  in
  let join = new_node b in
  (match ends with
  | [] -> link from join
  | _ -> List.iter (fun e -> link e join) ends);
  join

(* A [let rec] group: each binding's body is built once between a
   dedicated entry and exit node; call sites link to the entry and
   resume from the exit. Recursion becomes a back edge; the shared
   return node merges contexts from all call sites (standard
   context-insensitive collapse — join-over-paths stays a superset). *)
and bind_rec_group env b vbs =
  let fns =
    List.filter_map
      (fun vb ->
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt = name; _ } when is_lambda vb.pvb_expr ->
            let entry = new_node b in
            b.heads <- b.heads + 1;
            let exit_n = new_node b in
            Some (name, vb, entry, exit_n)
        | _ -> None)
      vbs
  in
  let env' =
    {
      env with
      recs = List.map (fun (n, _, en, ex) -> (n, (en, ex))) fns @ env.recs;
    }
  in
  List.iter
    (fun (_, vb, entry, exit_n) ->
      let b_end = walk_lambda_body env' b entry (peel_fun vb.pvb_expr) in
      link b_end exit_n)
    fns;
  env'

(* The body of an inlined lambda: a peeled [function] is a one-argument
   match whose scrutinee (the argument) was already walked. *)
and walk_lambda_body env b cur body =
  match body.pexp_desc with
  | Pexp_function cases -> join_cases env b cur cases
  | _ -> walk env b cur body

and walk_apply env b cur e lid args =
  let apos = L.pos_of e.pexp_loc in
  let walk_args cur =
    List.fold_left (fun cur (_, a) -> walk env b cur a) cur args
  in
  match atomic_kind lid with
  | Some kind ->
      let field =
        match List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args with
        | Some (_, cell) -> cell_field cell
        | None -> "?"
      in
      let cur = walk_args cur in
      op_node b cur (Atomic (kind, field, apos))
  | None -> (
      if L.is_guard_call lid then begin
        (* [guard t ~tid (fun () -> body)]: Enter, body, Exit — with
           raises inside the body routed through an Exit first, because
           the wrapper is exception-safe (ebr.mli) *)
        let lambdas, rest = List.partition (fun (_, a) -> is_lambda a) args in
        let cur =
          List.fold_left (fun cur (_, a) -> walk env b cur a) cur rest
        in
        let cur = op_node b cur (Enter apos) in
        let exn_relay = new_node b in
        exn_relay.op <- Some (Exit apos);
        link exn_relay env.exn;
        let benv = { env with exn = exn_relay } in
        let cur =
          match lambdas with
          | [] ->
              (* wrapper-of-a-wrapper: the guarded callable is opaque *)
              let n = new_node b in
              link cur n;
              link n exn_relay;
              n
          | _ ->
              List.fold_left
                (fun cur (_, l) -> walk_lambda_body benv b cur (peel_fun l))
                cur lambdas
        in
        op_node b cur (Exit apos)
      end
      else
        match enter_exit_kind lid args with
        | Some `Enter ->
            let cur = walk_args cur in
            op_node b cur (Enter apos)
        | Some `Exit ->
            let cur = walk_args cur in
            op_node b cur (Exit apos)
        | None ->
            if is_raise_ident lid then begin
              let cur = walk_args cur in
              link cur env.exn;
              new_node b (* dead *)
            end
            else if L.is_spin_wait_ident lid then
              (* the predicate runs at least once; its reads matter for
                 the guard-depth probes — the wait itself is rule 12's
                 business (the loop classifier, not the CFG) *)
              List.fold_left
                (fun cur (_, a) ->
                  if is_lambda a then walk_lambda_body env b cur (peel_fun a)
                  else walk env b cur a)
                cur args
            else if L.is_pacing_ident lid then walk_args cur
            else if
              L.is_atomic_make lid || L.is_array_get lid
              || L.flatten_longident lid = [ "Array"; "make" ]
              || L.flatten_longident lid = [ "Array"; "init" ]
            then walk_args cur
            else
              match lid with
              | Longident.Lident n when List.mem_assoc n env.recs ->
                  let entry, exit_n = List.assoc n env.recs in
                  let cur = walk_args cur in
                  link cur entry;
                  let ret = new_node b in
                  link exit_n ret;
                  ret
              | Longident.Lident n
                when List.mem_assoc n env.locals && env.depth < 20 ->
                  (* local non-recursive helper: inline its body at the
                     call site (scoped to its definition) *)
                  let lf = List.assoc n env.locals in
                  let cur = walk_args cur in
                  walk_lambda_body
                    {
                      env with
                      locals = lf.lf_locals;
                      recs = lf.lf_recs;
                      depth = env.depth + 1;
                    }
                    b cur lf.lf_body
              | _ ->
                  (* generic call: immediate-lambda arguments run as
                     one-or-more-iteration loops (Array.iter & co); the
                     callee itself may raise *)
                  let cur =
                    List.fold_left
                      (fun cur (_, a) ->
                        if is_lambda a then begin
                          let head = new_node b in
                          b.heads <- b.heads + 1;
                          link cur head;
                          let b_end =
                            walk_lambda_body env b head (peel_fun a)
                          in
                          link b_end head;
                          let after = new_node b in
                          link b_end after;
                          after
                        end
                        else walk env b cur a)
                      cur args
                  in
                  let call = op_node b cur (Callsite apos) in
                  link call env.exn;
                  call)

(* Build the CFG of one unit body (already peeled past its formal
   parameters). *)
let build_cfg body =
  let b = { bnodes = []; nid = 0; heads = 0 } in
  let entry = new_node b in
  let exn_exit = new_node b in
  let env = { exn = exn_exit; locals = []; recs = []; depth = 0 } in
  let last = walk_lambda_body env b entry body in
  let normal_exit = new_node b in
  link last normal_exit;
  let nodes = Array.make b.nid entry in
  List.iter (fun n -> nodes.(n.id) <- n) b.bnodes;
  {
    nodes;
    entry = entry.id;
    normal_exit = normal_exit.id;
    exn_exit = exn_exit.id;
    n_loop_heads = b.heads;
  }

(* ------------------------------------------------------------------ *)
(* Forward dataflow engine                                             *)
(* ------------------------------------------------------------------ *)

(* Worklist iteration to a fixpoint; [state.(i)] is the abstract state
   at the *entry* of node [i]. The lattices used here are finite by
   construction (the guard depth saturates, protocol states form a
   finite power set), which is the widening: every ascending chain
   stabilises. *)
let forward cfg ~bot ~init ~join ~eq ~transfer =
  let n = Array.length cfg.nodes in
  let state = Array.make n bot in
  state.(cfg.entry) <- init;
  let in_queue = Array.make n false in
  let queue = Queue.create () in
  Queue.push cfg.entry queue;
  in_queue.(cfg.entry) <- true;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    in_queue.(i) <- false;
    let out = transfer cfg.nodes.(i) state.(i) in
    List.iter
      (fun s ->
        let merged = join state.(s) out in
        if not (eq merged state.(s)) then begin
          state.(s) <- merged;
          if not in_queue.(s) then begin
            Queue.push s queue;
            in_queue.(s) <- true
          end
        end)
      cfg.nodes.(i).succs
  done;
  state

let mk_diag ~file ~pos ~rule message =
  { L.file; L.line = fst pos; L.col = snd pos; L.rule; L.message }

(* ------------------------------------------------------------------ *)
(* Rule 11: guard balance                                              *)
(* ------------------------------------------------------------------ *)

(* Depth lattice: Bot (unreachable), D n (exact depth, saturating at
   4 = the widening), Top (paths disagree). *)
type gdepth = GBot | GD of int | GTop

let gjoin a b =
  match (a, b) with
  | GBot, x | x, GBot -> x
  | GD m, GD n when m = n -> GD m
  | GTop, _ | _, GTop | GD _, GD _ -> GTop

let gtransfer node st =
  match (node.op, st) with
  | Some (Enter _), GD n -> if n >= 4 then GTop else GD (n + 1)
  | Some (Exit _), GD n -> GD (max 0 (n - 1))
  | _ -> st

let op_pos = function
  | Atomic (_, _, p) | Enter p | Exit p | Callsite p | Mark p -> p

(* Returns the definitely-guarded positions (depth >= 1 on every
   reaching path) and the imbalance diagnostics of one CFG. *)
let guard_analysis ~file cfg =
  let has_guard =
    Array.exists
      (fun n -> match n.op with Some (Enter _ | Exit _) -> true | _ -> false)
      cfg.nodes
  in
  if not has_guard then ([], [])
  else begin
    let state =
      forward cfg ~bot:GBot ~init:(GD 0) ~join:gjoin ~eq:( = )
        ~transfer:gtransfer
    in
    let first_enter = ref None in
    Array.iter
      (fun n ->
        match n.op with
        | Some (Enter p) -> (
            match !first_enter with
            | Some q when q <= p -> ()
            | _ -> first_enter := Some p)
        | _ -> ())
      cfg.nodes;
    let guarded = ref [] in
    let diags = ref [] in
    let add pos msg =
      let d = mk_diag ~file ~pos ~rule:"guard-balance" msg in
      if not (List.mem d !diags) then diags := d :: !diags
    in
    Array.iter
      (fun n ->
        (match (n.op, state.(n.id)) with
        | Some (Exit p), GD 0 ->
            add p
              "guard exit without a matching enter on some path (depth 0 \
               here): the epoch was never pinned"
        | _ -> ());
        match (n.op, state.(n.id)) with
        | Some o, GD d when d >= 1 -> guarded := op_pos o :: !guarded
        | _ -> ())
      cfg.nodes;
    (match (state.(cfg.normal_exit), !first_enter) with
    | GD d, Some anchor when d >= 1 ->
        add anchor
          "guard enter is not matched by an exit on every normal path: the \
           pinned epoch leaks when the operation returns"
    | GTop, Some anchor ->
        add anchor
          "guard depth differs across paths reaching the function's return: \
           some path enters without exiting (or vice versa)"
    | _ -> ());
    (match (state.(cfg.exn_exit), !first_enter) with
    | GD d, Some anchor when d >= 1 ->
        add anchor
          "guard enter is not matched by an exit on every exception path: a \
           raise inside the critical section leaks the pinned epoch; exit in \
           the handler too (compare Ebr.guard)"
    | GTop, Some anchor ->
        add anchor
          "guard depth differs across exception paths: some raising path \
           skips the exit"
    | _ -> ());
    (!guarded, !diags)
  end

(* ------------------------------------------------------------------ *)
(* Rule 12: loop classification                                        *)
(* ------------------------------------------------------------------ *)

type loop_class = Bounded | Cas_retry | Stuck_spin

let loop_class_to_string = function
  | Bounded -> "bounded"
  | Cas_retry -> "cas_retry"
  | Stuck_spin -> "stuck_spin"

type verdict = Blocking | Lock_free

let verdict_to_string = function
  | Blocking -> "blocking"
  | Lock_free -> "lock_free"

type loop_rec = {
  lr_name : string;
  lr_pos : pos;
  lr_class : loop_class;
  lr_reason : string;
}

(* Syntactic effect scans, widened by the summary's transitive callee
   effects at resolved call sites within the expression's line span. *)
type effect_env = {
  call_effects : (pos * Summary.effects) list; (* resolved, this file *)
  deadline_names : (string, unit) Hashtbl.t;
}

let span_effect eenv (l1, l2) pred =
  List.exists
    (fun (((cl, _) : pos), eff) -> cl >= l1 && cl <= l2 && pred eff)
    eenv.call_effects

let eff_touches (e : Summary.effects) =
  (not (Summary.String_set.is_empty e.reads))
  || (not (Summary.String_set.is_empty e.writes))
  || (not (Summary.String_set.is_empty e.rmws))
  || e.has_rmw

let eff_writes (e : Summary.effects) =
  (not (Summary.String_set.is_empty e.writes))
  || (not (Summary.String_set.is_empty e.rmws))
  || e.has_rmw

let expr_has_atomic e =
  L.expr_contains_ident
    (fun lid ->
      L.is_atomic_get lid || L.is_atomic_set lid || L.is_rmw_ident lid)
    e

let expr_has_atomic_write e =
  L.expr_contains_ident
    (fun lid -> L.is_atomic_set lid || L.is_rmw_ident lid)
    e

let touches_atomics eenv e =
  expr_has_atomic e || span_effect eenv (line_span e.pexp_loc) eff_touches

let writes_atomics eenv e =
  expr_has_atomic_write e || span_effect eenv (line_span e.pexp_loc) eff_writes

let mentions_deadline eenv e =
  L.expr_contains_ident
    (fun lid ->
      let c = L.last_component lid in
      c = "now_ns" || Hashtbl.mem eenv.deadline_names c)
    e

(* Every name bound by a pattern inside the expressions (plus the
   seeds): the "loop-local" set a change-conditioned retry reads
   against. *)
let bound_names seeds exprs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace tbl s ()) seeds;
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> Hashtbl.replace tbl txt ()
          | Ppat_alias (_, { txt; _ }) -> Hashtbl.replace tbl txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  List.iter (fun e -> it.expr it e) exprs;
  tbl

let atomic_get_cells e =
  let acc = ref [] in
  let rec scan e =
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt; _ }; _ },
          (Asttypes.Nolabel, cell) :: _ )
      when L.is_atomic_get txt ->
        acc := cell :: !acc
    | _ -> ());
    List.iter scan (children e)
  in
  scan e;
  !acc

let comparison_idents = [ "="; "=="; "<>"; "!="; "<"; "<="; ">"; ">=" ]

let is_comparison lid =
  match L.flatten_longident lid with
  | [ op ] -> List.mem op comparison_idents
  | _ -> false

(* A condition "observes change" when it compares an atomic read with a
   loop-local value ([A.get t.top == cur]), or when every atomic read
   in it has a loop-local root (chasing freshly read links). *)
let cond_observes_change locals cond =
  let local_root cell =
    match cell_root cell with Some r -> Hashtbl.mem locals r | None -> false
  in
  let eq_with_local =
    let found = ref false in
    let rec scan e =
      (match e.pexp_desc with
      | Pexp_apply
          ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, a); (_, b) ])
        when is_comparison txt ->
          let has_get x = atomic_get_cells x <> [] in
          let mentions_local x =
            L.expr_contains_ident
              (fun lid ->
                match L.flatten_longident lid with
                | [ n ] -> Hashtbl.mem locals n
                | _ -> false)
              x
          in
          if (has_get a && mentions_local b) || (has_get b && mentions_local a)
          then found := true
      | _ -> ());
      List.iter scan (children e)
    in
    scan cond;
    !found
  in
  eq_with_local
  ||
  let cells = atomic_get_cells cond in
  cells <> [] && List.for_all local_root cells

(* --- recursive groups ---------------------------------------------- *)

type rec_call = {
  rc_args : expression list; (* positional arguments *)
  rc_conds : expression list; (* enclosing if-conds / match scrutinees *)
}

let collect_rec_calls group_names body =
  let calls = ref [] in
  let rec scan conds e =
    match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident n; _ }; _ }, args)
      when List.mem n group_names ->
        calls :=
          {
            rc_args =
              List.filter_map
                (fun (lbl, a) ->
                  if lbl = Asttypes.Nolabel then Some a else None)
                args;
            rc_conds = conds;
          }
          :: !calls;
        List.iter (fun (_, a) -> scan conds a) args
    | Pexp_ident { txt = Longident.Lident n; _ } when List.mem n group_names ->
        (* passed as a value: a call with unknown arguments *)
        calls := { rc_args = []; rc_conds = conds } :: !calls
    | Pexp_ifthenelse (c, t, eo) ->
        scan conds c;
        scan (c :: conds) t;
        Option.iter (scan (c :: conds)) eo
    | Pexp_match (scr, cases) ->
        scan conds scr;
        List.iter
          (fun cs ->
            Option.iter (scan (scr :: conds)) cs.pc_guard;
            scan (scr :: conds) cs.pc_rhs)
          cases
    | _ -> List.iter (scan conds) (children e)
  in
  scan [] body;
  !calls

let param_names vb =
  let rec go acc e =
    match e.pexp_desc with
    | Pexp_fun (_, _, p, b) ->
        let n =
          match p.ppat_desc with Ppat_var { txt; _ } -> txt | _ -> "_"
        in
        go (n :: acc) b
    | _ -> List.rev acc
  in
  go [] vb.pvb_expr

let expr_has_comparison_on p e =
  let found = ref false in
  let rec scan e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when is_comparison txt ->
        if List.exists (fun (_, a) -> expr_mentions p a) args then
          found := true
    | _ -> ());
    List.iter scan (children e)
  in
  scan e;
  !found

(* [go (remaining - 1)] with a comparison exit anywhere in the body, or
   [attempt (tries + 1)] with every recursive call under a condition
   that compares the counter (so the bound is re-checked each lap). *)
let counter_bounded vb calls =
  let params = param_names vb in
  let body = peel_fun vb.pvb_expr in
  let arg_shape p i call =
    match List.nth_opt call.rc_args i with
    | Some
        {
          pexp_desc =
            Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
                ( _,
                  { pexp_desc = Pexp_ident { txt = Longident.Lident a; _ }; _ }
                )
                :: _ );
          _;
        }
      when a = p ->
        if op = "-" then `Down else if op = "+" then `Up else `Other
    | _ -> `Other
  in
  List.exists
    (fun (i, p) ->
      p <> "_" && calls <> []
      &&
      let shapes = List.map (arg_shape p i) calls in
      if List.for_all (( = ) `Down) shapes then expr_has_comparison_on p body
      else if List.for_all (( = ) `Up) shapes then
        List.for_all
          (fun call ->
            List.exists
              (fun c -> expr_mentions p c && expr_has_comparison_on p c)
              call.rc_conds)
          calls
      else false)
    (List.mapi (fun i p -> (i, p)) params)

(* --- per-binding scan: spin sites, while/for loops, rec groups ------ *)

(* [disabled]: one [@await_ok] occurrence (attr-name position) treated
   as absent — the audit's rule-12 probe. [group] is the full binding
   group when this binding heads a structure-level [let rec]. *)
let classify_binding ?disabled eenv ~group vb =
  let loops = ref [] in
  let stuck = ref [] in
  let enabled p = match disabled with Some d -> d <> p | None -> true in
  let awaited_attr attrs =
    match attr_reason "await_ok" attrs with
    | Some p when enabled p -> Some p
    | _ -> None
  in
  let subtree_awaited e =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            if awaited_attr e.pexp_attributes <> None then found := true;
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e;
    !found
  in
  let record name lpos cls reason =
    loops :=
      { lr_name = name; lr_pos = lpos; lr_class = cls; lr_reason = reason }
      :: !loops;
    if cls = Stuck_spin then stuck := (lpos, reason) :: !stuck
  in
  let classify_while aw e c body =
    let lpos = L.pos_of e.pexp_loc in
    let name = Printf.sprintf "while@%d" (fst lpos) in
    if aw <> None || subtree_awaited e then
      record name lpos Bounded "author-certified bounded wait ([@await_ok])"
    else if mentions_deadline eenv c || mentions_deadline eenv body then
      record name lpos Bounded "deadline-bounded (reads now_ns)"
    else if not (touches_atomics eenv e) then
      record name lpos Bounded "no shared atomic state"
    else if writes_atomics eenv body then
      record name lpos Cas_retry "retries a shared-state update"
    else if atomic_get_cells c <> [] then
      record name lpos Stuck_spin
        "read-only wait on an atomic another thread must change"
    else record name lpos Cas_retry "read-only retry on freshly read state"
  in
  let classify_group aw grp =
    let names = List.map fst grp in
    let bodies = List.map (fun (_, vb) -> peel_fun vb.pvb_expr) grp in
    let participating =
      List.exists
        (fun b -> List.exists (fun n -> expr_mentions n b) names)
        bodies
    in
    if participating then begin
      let name = String.concat "/" names in
      let _, vb0 = List.hd grp in
      let lpos = L.pos_of vb0.pvb_loc in
      let calls = List.concat_map (collect_rec_calls names) bodies in
      let group_awaited =
        aw <> None
        || List.for_all
             (fun (_, vb) ->
               awaited_attr vb.pvb_attributes <> None
               || subtree_awaited vb.pvb_expr)
             grp
      in
      if group_awaited then
        record name lpos Bounded "author-certified bounded wait ([@await_ok])"
      else if
        calls <> []
        && List.for_all
             (fun call -> List.exists (mentions_deadline eenv) call.rc_conds)
             calls
      then
        record name lpos Bounded
          "deadline-bounded (every retry re-checks now_ns)"
      else if
        match grp with
        | [ (n, vb) ] ->
            counter_bounded vb (collect_rec_calls [ n ] (peel_fun vb.pvb_expr))
        | _ -> false
      then record name lpos Bounded "monotone counter with a comparison exit"
      else if not (List.exists (touches_atomics eenv) bodies) then
        record name lpos Bounded "no shared atomic state"
      else if List.exists (writes_atomics eenv) bodies then
        record name lpos Cas_retry "CAS/exchange retry with a fresh read"
      else begin
        (* read-only recursion: stuck unless every retry is gated on
           observed change *)
        let params = List.concat_map (fun (_, vb) -> param_names vb) grp in
        let locals = bound_names params bodies in
        let gated call =
          List.exists
            (L.expr_contains_ident L.is_retry_rmw_ident)
            call.rc_conds
          || List.exists (cond_observes_change locals) call.rc_conds
          (* a retry whose argument is itself freshly read state is a
             structural traversal chasing links, not a wait *)
          || List.exists (fun a -> atomic_get_cells a <> []) call.rc_args
        in
        if calls <> [] && List.for_all gated calls then
          record name lpos Cas_retry "read-only retry gated on observed change"
        else
          record name lpos Stuck_spin
            "read-only recursion waiting for another thread's write"
      end
    end
  in
  let rec scan aw e =
    let aw =
      match awaited_attr e.pexp_attributes with Some p -> Some p | None -> aw
    in
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when L.is_spin_wait_ident txt ->
        let lpos = L.pos_of e.pexp_loc in
        let name = Printf.sprintf "spin@%d" (fst lpos) in
        (if aw <> None then
           record name lpos Bounded
             "author-certified bounded wait ([@await_ok])"
         else
           record name lpos Stuck_spin
             "unbounded wait on another thread's write \
              (spin_until/spin_while)");
        List.iter (fun (_, a) -> scan aw a) args
    | Pexp_while (c, body) ->
        classify_while aw e c body;
        scan aw c;
        scan aw body
    | Pexp_for (_, lo, hi, _, body) ->
        record
          (Printf.sprintf "for@%d" (fst (L.pos_of e.pexp_loc)))
          (L.pos_of e.pexp_loc) Bounded "for-loop with static bounds";
        scan aw lo;
        scan aw hi;
        scan aw body
    | Pexp_let (Asttypes.Recursive, vbs, cont) ->
        let grp =
          List.filter_map
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when is_lambda vb.pvb_expr ->
                  Some (txt, vb)
              | _ -> None)
            vbs
        in
        if grp <> [] then classify_group aw grp;
        List.iter
          (fun vb ->
            let aw' =
              match awaited_attr vb.pvb_attributes with
              | Some p -> Some p
              | None -> aw
            in
            scan aw' vb.pvb_expr)
          vbs;
        scan aw cont
    | _ -> List.iter (scan aw) (children e)
  in
  (match group with
  | Some grp when grp <> [] -> classify_group None grp
  | _ -> ());
  scan (awaited_attr vb.pvb_attributes) vb.pvb_expr;
  (List.rev !loops, List.rev !stuck)

(* ------------------------------------------------------------------ *)
(* Units, files, the analysis state                                    *)
(* ------------------------------------------------------------------ *)

type unit_info = {
  u_id : int;
  u_name : string;
  u_file : string;
  u_span : int * int;
  u_cfg : cfg;
  u_vb : value_binding;
  u_group : (string * value_binding) list option;
  u_eenv : effect_env;
  mutable u_calls : int list; (* resolved callee unit ids (global) *)
  u_stuck : (pos * string) list;
  u_loops : loop_rec list;
}

type file_info = {
  f_units : int list; (* global unit ids, definition order *)
  f_automata : automaton list;
  f_progress : (string * pos) option;
  f_guarded : (pos, unit) Hashtbl.t;
  f_awaits : pos list; (* [@await_ok] attr-name occurrences *)
  mutable f_base : L.diagnostic list; (* guard + protocol diags *)
  mutable f_blocking : bool;
}

type t = {
  units : unit_info array;
  files : (string * file_info) list;
  progress_diags : L.diagnostic list; (* baseline rule-12 diags *)
}

(* --- structure -> units ------------------------------------------- *)

let collect_structure structure =
  let raw = ref [] in
  let progress = ref None in
  let protocols = ref [] in
  let awaits = ref [] in
  let rec do_structure str = List.iter do_item str
  and do_item si =
    match si.pstr_desc with
    | Pstr_value (rf, vbs) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> raw := (txt, vb, rf, vbs) :: !raw
            | _ -> ())
          vbs
    | Pstr_attribute attr when attr.attr_name.Location.txt = "progress" -> (
        match (L.string_payload attr, !progress) with
        | Some p, None -> progress := Some (p, L.pos_of attr.attr_loc)
        | _ -> ())
    | Pstr_attribute attr when attr.attr_name.Location.txt = "protocol" ->
        protocols :=
          (L.string_payload attr, L.pos_of attr.attr_loc) :: !protocols
    | Pstr_module mb -> do_module mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> do_module mb.pmb_expr) mbs
    | _ -> ()
  and do_module me =
    match me.pmod_desc with
    | Pmod_structure str -> do_structure str
    | Pmod_functor (_, body) -> do_module body
    | Pmod_constraint (m, _) -> do_module m
    | _ -> ()
  in
  do_structure structure;
  (* every reasoned [@await_ok] occurrence, for the audit probe *)
  let it =
    {
      Ast_iterator.default_iterator with
      attribute =
        (fun it a ->
          (if a.attr_name.Location.txt = "await_ok" then
             match L.string_payload a with
             | Some s when String.trim s <> "" ->
                 awaits := L.pos_of a.attr_name.Location.loc :: !awaits
             | _ -> ());
          Ast_iterator.default_iterator.attribute it a);
    }
  in
  it.structure it structure;
  (List.rev !raw, !progress, List.rev !protocols, List.rev !awaits)

let deadline_names_of vbs =
  let tbl = Hashtbl.create 4 in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ }
            when L.expr_contains_ident
                   (fun lid -> L.last_component lid = "now_ns")
                   vb.pvb_expr ->
              Hashtbl.replace tbl txt ()
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  List.iter (fun vb -> it.value_binding it vb) vbs;
  tbl

(* ------------------------------------------------------------------ *)
(* Rule 13 over the CFGs                                               *)
(* ------------------------------------------------------------------ *)

let step auto mask kind field =
  if not (Hashtbl.mem auto.a_declared (kind, field)) then `Ignore
  else begin
    let next = ref 0 in
    Array.iteri
      (fun s _ ->
        if mask land (1 lsl s) <> 0 then
          match Hashtbl.find_opt auto.a_trans (s, kind, field) with
          | Some ds -> List.iter (fun d -> next := !next lor (1 lsl d)) ds
          | None -> ())
      auto.a_states;
    if !next = 0 && mask <> 0 then `Violation else `Next !next
  end

let mask_states auto mask =
  let acc = ref [] in
  Array.iteri
    (fun s name -> if mask land (1 lsl s) <> 0 then acc := name :: !acc)
    auto.a_states;
  String.concat "," (List.rev !acc)

(* Check one automaton over every top-level unit of [file], each from
   the start state. Calls resolving to same-file top-level units are
   stepped through by running the callee's CFG from the caller's state
   set (memoised per (unit, entry mask); recursion falls back to
   identity). Violations are reported after the fixpoint, from the
   final entry states, so each faulting access is diagnosed once. *)
let protocol_check ~file ~units ~file_unit_ids ~call_unit auto =
  let memo = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 16 in
  let rec run (u : unit_info) init_mask =
    let transfer node mask =
      if mask = 0 then 0
      else
        match node.op with
        | Some (Atomic (kind, field, _)) -> (
            match step auto mask kind field with
            | `Ignore -> mask
            | `Next m -> m
            | `Violation ->
                (* poison: kill the path so the violation doesn't feed
                   a loop back edge a recovered state set that would
                   mask it at the post-fixpoint check (and so one fault
                   doesn't cascade into downstream diagnostics) *)
                0)
        | Some (Callsite cpos) -> (
            match Hashtbl.find_opt call_unit cpos with
            | Some cid when cid <> u.u_id -> callee_exit units.(cid) mask
            | _ -> mask)
        | _ -> mask
    in
    forward u.u_cfg ~bot:0 ~init:init_mask ~join:( lor ) ~eq:( = ) ~transfer
  and callee_exit (u : unit_info) mask =
    match Hashtbl.find_opt memo (u.u_id, mask) with
    | Some m -> m
    | None ->
        if Hashtbl.mem on_stack (u.u_id, mask) then mask
        else begin
          Hashtbl.replace on_stack (u.u_id, mask) ();
          let st = run u mask in
          Hashtbl.remove on_stack (u.u_id, mask);
          let out = st.(u.u_cfg.normal_exit) in
          let out = if out = 0 then mask else out in
          Hashtbl.replace memo (u.u_id, mask) out;
          out
        end
  in
  let diags = ref [] in
  List.iter
    (fun uid ->
      let u = units.(uid) in
      let st = run u 1 in
      Array.iter
        (fun node ->
          match node.op with
          | Some (Atomic (kind, field, apos)) when st.(node.id) <> 0 -> (
              match step auto st.(node.id) kind field with
              | `Violation ->
                  diags :=
                    mk_diag ~file ~pos:apos ~rule:"protocol"
                      (Printf.sprintf
                         "automaton '%s': %s of '%s' has no enabled \
                          transition from state {%s} — the declared order \
                          of atomic accesses is violated on this path"
                         auto.a_name (kind_to_string kind) field
                         (mask_states auto st.(node.id)))
                    :: !diags
              | _ -> ())
          | _ -> ())
        u.u_cfg.nodes)
    file_unit_ids;
  List.sort_uniq compare !diags

(* ------------------------------------------------------------------ *)
(* Rule 12: reachability + verdicts                                    *)
(* ------------------------------------------------------------------ *)

(* A witness: [(file, pos, reason)] of a stuck wait reachable through
   the resolved call graph, or [None]. [stuck_of] abstracts the
   per-unit stuck sets so the audit probe can override one file's. *)
let progress_view units files ~stuck_of =
  let n = Array.length units in
  let state = Array.make n 0 (* 0 unvisited, 1 visiting, 2 done *) in
  let witness = Array.make n None in
  let rec go i =
    if state.(i) = 2 then witness.(i)
    else if state.(i) = 1 then None
    else begin
      state.(i) <- 1;
      let w =
        match stuck_of i with
        | (p, r) :: _ -> Some (units.(i).u_file, p, r)
        | [] ->
            List.fold_left
              (fun acc c -> match acc with Some _ -> acc | None -> go c)
              None units.(i).u_calls
      in
      state.(i) <- 2;
      witness.(i) <- w;
      w
    end
  in
  let blocking = ref [] in
  let diags = ref [] in
  List.iter
    (fun (fname, fi) ->
      let w =
        List.fold_left
          (fun acc u -> match acc with Some _ -> acc | None -> go u)
          None fi.f_units
      in
      blocking := (fname, w <> None) :: !blocking;
      match fi.f_progress with
      | None -> ()
      | Some (decl, dpos) -> (
          match (w, String.trim decl) with
          | Some (wf, (wl, _), reason), "lock_free" ->
              diags :=
                mk_diag ~file:fname ~pos:dpos ~rule:"loop-progress"
                  (Printf.sprintf
                     "declared lock_free, but a stuck wait is statically \
                      reachable from a top-level operation: %s:%d (%s)"
                     (Filename.basename wf) wl reason)
                :: !diags
          | None, "blocking" ->
              diags :=
                mk_diag ~file:fname ~pos:dpos ~rule:"loop-progress"
                  "declared blocking, but no stuck wait is statically \
                   reachable from any top-level operation: the static \
                   verdict is lock_free (either the declaration or the \
                   analysis is out of date)"
                :: !diags
          | _ -> ()))
    files;
  (!blocking, List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let diag_order (a : L.diagnostic) (b : L.diagnostic) =
  compare
    (a.L.file, a.L.line, a.L.col, a.L.rule)
    (b.L.file, b.L.line, b.L.col, b.L.rule)

let analyze_sources ~summary ?scope sources =
  let parsed =
    List.filter_map
      (fun (file, contents) ->
        let sc =
          match scope with Some s -> s | None -> L.scope_of_path file
        in
        if not sc.L.check_discipline then None
        else
          match L.parse_string ~file contents with
          | str -> Some (file, str)
          | exception _ -> None)
      sources
  in
  let units = ref [] (* reversed *) in
  let n_units = ref 0 in
  let files =
    List.map
      (fun (file, str) ->
        let raw, progress, protocols, awaits = collect_structure str in
        let call_effects =
          List.map
            (fun (cpos, (key, _, _)) ->
              (cpos, Summary.total_effects summary key))
            (Summary.resolved_calls summary ~file)
        in
        let automata = ref [] in
        let proto_diags = ref [] in
        List.iter
          (fun (payload, ppos) ->
            match payload with
            | None ->
                proto_diags :=
                  mk_diag ~file ~pos:ppos ~rule:"protocol"
                    "[@@@protocol] needs a string payload: \"name: s1 \
                     -kind:field-> s2; ...\""
                  :: !proto_diags
            | Some p -> (
                match parse_automaton p with
                | Ok a -> automata := a :: !automata
                | Error e ->
                    proto_diags :=
                      mk_diag ~file ~pos:ppos ~rule:"protocol"
                        (Printf.sprintf "malformed [@@@protocol] payload: %s"
                           e)
                      :: !proto_diags))
          protocols;
        let guarded = Hashtbl.create 64 in
        let base = ref (List.rev !proto_diags) in
        let ids =
          List.map
            (fun (name, vb, rf, vbs) ->
              let group =
                match rf with
                | Asttypes.Nonrecursive -> None
                | Asttypes.Recursive -> (
                    match vbs with
                    | first :: _ when first == vb ->
                        let grp =
                          List.filter_map
                            (fun vb ->
                              match vb.pvb_pat.ppat_desc with
                              | Ppat_var { txt; _ }
                                when is_lambda vb.pvb_expr ->
                                  Some (txt, vb)
                              | _ -> None)
                            vbs
                        in
                        if grp = [] then None else Some grp
                    | _ -> None)
              in
              let eenv =
                {
                  call_effects;
                  deadline_names =
                    deadline_names_of
                      (match group with
                      | Some grp -> List.map snd grp
                      | None -> [ vb ]);
                }
              in
              let cfg = build_cfg (peel_fun vb.pvb_expr) in
              let gpos, gdiags = guard_analysis ~file cfg in
              List.iter (fun p -> Hashtbl.replace guarded p ()) gpos;
              base := gdiags @ !base;
              let lps, stk = classify_binding eenv ~group vb in
              let u =
                {
                  u_id = !n_units;
                  u_name = name;
                  u_file = file;
                  u_span = line_span vb.pvb_loc;
                  u_cfg = cfg;
                  u_vb = vb;
                  u_group = group;
                  u_eenv = eenv;
                  u_calls = [];
                  u_stuck = stk;
                  u_loops = lps;
                }
              in
              incr n_units;
              units := u :: !units;
              u.u_id)
            raw
        in
        ( file,
          {
            f_units = ids;
            f_automata = List.rev !automata;
            f_progress = progress;
            f_guarded = guarded;
            f_awaits = awaits;
            f_base = !base;
            f_blocking = false;
          } ))
      parsed
  in
  let units = Array.of_list (List.rev !units) in
  (* resolve call edges (rule 12, cross-file) and run the protocol
     automata (rule 13, same-file) now that every unit exists *)
  let unit_containing file line =
    match List.assoc_opt file files with
    | None -> None
    | Some fi ->
        List.find_opt
          (fun uid ->
            let l1, l2 = units.(uid).u_span in
            line >= l1 && line <= l2)
          fi.f_units
  in
  List.iter
    (fun (file, fi) ->
      (* same-file call table for the protocol transfer: only calls
         whose callee is itself a top-level unit of this file *)
      let key_unit = Hashtbl.create 32 in
      List.iter
        (fun (key, (kl, _)) ->
          match unit_containing file kl with
          | Some uid when fst units.(uid).u_span = kl ->
              Hashtbl.replace key_unit key uid
          | _ -> ())
        (Summary.file_functions summary ~file);
      let call_unit = Hashtbl.create 64 in
      List.iter
        (fun ((cpos : pos), (key, cfile, (cs, _))) ->
          (* rule-12 edge: caller unit -> callee unit, any file *)
          (match
             (unit_containing file (fst cpos), unit_containing cfile cs)
           with
          | Some caller, Some callee ->
              if not (List.mem callee units.(caller).u_calls) then
                units.(caller).u_calls <- callee :: units.(caller).u_calls
          | _ -> ());
          (* rule-13 transfer: same-file, top-level callees only *)
          if cfile = file then
            match Hashtbl.find_opt key_unit key with
            | Some uid -> Hashtbl.replace call_unit cpos uid
            | None -> ())
        (Summary.resolved_calls summary ~file);
      List.iter
        (fun auto ->
          fi.f_base <-
            fi.f_base
            @ protocol_check ~file ~units ~file_unit_ids:fi.f_units ~call_unit
                auto)
        fi.f_automata)
    files;
  let blocking, pdiags =
    progress_view units files ~stuck_of:(fun i -> units.(i).u_stuck)
  in
  List.iter
    (fun (file, fi) ->
      fi.f_blocking <- List.assoc_opt file blocking = Some true)
    files;
  { units; files; progress_diags = pdiags }

let analyze ~summary ?scope paths =
  let sources =
    List.filter_map
      (fun p ->
        match L.read_file p with
        | contents -> Some (p, contents)
        | exception _ -> None)
      paths
  in
  analyze_sources ~summary ?scope sources

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let diagnostics t =
  List.sort diag_order
    (t.progress_diags @ List.concat_map (fun (_, fi) -> fi.f_base) t.files)

let facts_with t ~file (base : L.facts) =
  match List.assoc_opt file t.files with
  | None -> base
  | Some fi ->
      {
        base with
        L.guarded_at =
          (fun p -> base.L.guarded_at p || Hashtbl.mem fi.f_guarded p);
      }

let verdict_of t ~file =
  match List.assoc_opt file t.files with
  | Some fi when fi.f_units <> [] ->
      Some (if fi.f_blocking then Blocking else Lock_free)
  | _ -> None

let declared_progress t ~file =
  match List.assoc_opt file t.files with
  | Some fi -> Option.map (fun (d, _) -> String.trim d) fi.f_progress
  | None -> None

let loops t ~file =
  match List.assoc_opt file t.files with
  | None -> []
  | Some fi ->
      List.concat_map
        (fun uid ->
          let u = t.units.(uid) in
          List.map
            (fun lr ->
              (u.u_name, lr.lr_name, fst lr.lr_pos, lr.lr_class, lr.lr_reason))
            u.u_loops)
        fi.f_units
      |> List.sort (fun (_, _, a, _, _) (_, _, b, _, _) -> compare a b)

let automata_of t ~file =
  match List.assoc_opt file t.files with
  | None -> []
  | Some fi -> List.map (fun a -> a.a_name) fi.f_automata

let audit_await t ~file ~line ~col =
  match List.assoc_opt file t.files with
  | None -> None
  | Some fi ->
      if not (List.mem (line, col) fi.f_awaits) then None
      else begin
        (* reclassify this file's units with the occurrence disabled;
           await extents are file-local, so only these stuck sets can
           change — then recompute every verdict (reachability crosses
           files) and compare the rule-12 diagnostic sets *)
        let override = Hashtbl.create 16 in
        List.iter
          (fun uid ->
            let u = t.units.(uid) in
            let _, stk =
              classify_binding ~disabled:(line, col) u.u_eenv ~group:u.u_group
                u.u_vb
            in
            Hashtbl.replace override uid stk)
          fi.f_units;
        let _, pdiags =
          progress_view t.units t.files ~stuck_of:(fun i ->
              match Hashtbl.find_opt override i with
              | Some stk -> stk
              | None -> t.units.(i).u_stuck)
        in
        Some
          (List.sort diag_order pdiags
          <> List.sort diag_order t.progress_diags)
      end

let cfg_stats t ~file =
  match List.assoc_opt file t.files with
  | None -> (0, 0, 0)
  | Some fi ->
      List.fold_left
        (fun (nu, nn, nh) uid ->
          let u = t.units.(uid) in
          (nu + 1, nn + Array.length u.u_cfg.nodes, nh + u.u_cfg.n_loop_heads))
        (0, 0, 0) fi.f_units

let guarded_positions t ~file =
  match List.assoc_opt file t.files with
  | None -> []
  | Some fi ->
      Hashtbl.fold (fun p () acc -> p :: acc) fi.f_guarded []
      |> List.sort compare
