(** Path-sensitive typestate analysis over per-function control-flow
    graphs — the static prong's third stage (docs/ANALYSIS.md,
    "Typestate prong").

    Where {!Sec_lint_rules.Lint_rules} matches syntactic extents and
    {!Sec_summary.Summary} flattens each function to an event stream,
    this module keeps branch, loop and exception structure: one CFG per
    top-level binding (expression-level [let rec] groups become
    intra-CFG back edges, immediate-lambda arguments of higher-order
    calls become one-or-more-iteration loops, [try]/[match ... with
    exception] handlers become exception edges), plus a forward
    abstract-interpretation engine over join-semilattices, widened at
    loop heads by capping the lattices (guard depth saturates, protocol
    states form a finite power set). Call sites are resolved through
    the summary environment ({!Sec_summary.Summary.resolved_calls}),
    which is also where callee atomic effects come from.

    Three rules run on top of the engine:

    - rule 11, [guard-balance] — direct EBR [enter]/[exit] pairs (an
      application of an ident whose last component is [enter]/[exit]
      with a labelled [~tid] argument) must balance on {e every} path,
      including exception edges; an [exit] at depth zero, a path that
      returns or raises with the epoch still pinned, and paths that
      disagree on the depth are each diagnosed. Positions that are
      {e definitely} guarded (depth >= 1 on all paths) are exported as
      facts ({!facts_with}) that discharge rule 4 the same way summary
      facts do — which is how every [[@unguarded_ok]] is re-proved or
      stale-flagged by [sec_lint --audit].
    - rule 12, [loop-progress] — every loop (a [while], a recursive
      binding group, a [spin_until]/[spin_while] call site) is
      classified {!Bounded} (for-loops, monotone counters with a
      comparison exit, deadline checks reading [now_ns], no shared
      atomic state, or an author-certified [[@await_ok]] extent),
      {!Cas_retry} (retries that update shared state or chase freshly
      read links) or {!Stuck_spin} (waits that only another thread's
      write can end). A module's static verdict is {!Blocking} iff a
      stuck wait is reachable from one of its top-level functions
      through the resolved call graph (so [fc_stack.ml] is blocking
      {e via} [fc.ml]'s combiner wait); a [[@@@progress]] declaration
      disagreeing with the verdict is diagnosed at the declaration.
    - rule 13, [protocol] — a [[@@@protocol "name: s1 -kind:field-> s2;
      ..."]] floating attribute declares a state machine over the
      file's atomic fields (kind is [read]/[write]/[rmw]; field is the
      last path component of the accessed cell; the first-listed source
      state is the start state). Every top-level function is checked
      from the start state: an access to a declared [(kind, field)]
      event with no enabled transition from any current state is a
      violation at that access. Calls resolving to same-file functions
      are stepped through by running the callee's CFG from the caller's
      state set (memoised; recursion falls back to identity).

    Like summary facts, the facts exported here only ever discharge
    rule 1-9 obligations; rules 11-13 are this module's own additive
    checks. *)

module L = Sec_lint_rules.Lint_rules
module Summary = Sec_summary.Summary

type t

type loop_class = Bounded | Cas_retry | Stuck_spin
type verdict = Blocking | Lock_free

val loop_class_to_string : loop_class -> string
val verdict_to_string : verdict -> string

(** Analyse source files from disk. Only files whose (effective) scope
    has [check_discipline] set are analysed — the rest contribute no
    CFGs, no diagnostics and no facts. [summary] must have been built
    over the same corpus (it supplies call resolution and callee
    effects). [scope] overrides {!L.scope_of_path} for every file
    (fixtures / selftest). Files that fail to parse contribute nothing
    (the lint reports the parse error). *)
val analyze : summary:Summary.env -> ?scope:L.scope -> string list -> t

(** Analyse in-memory sources [(filename, contents)] — unit tests.
    [summary] should come from {!Summary.analyze_sources} over the same
    pairs. *)
val analyze_sources :
  summary:Summary.env -> ?scope:L.scope -> (string * string) list -> t

(** All rule 11-13 diagnostics, sorted by (file, line, col, rule). *)
val diagnostics : t -> L.diagnostic list

(** Extend a facts bundle with this analysis' definitely-guarded
    positions (guard depth >= 1 on every path): composes with
    {!Summary.facts_for} by disjunction on [guarded_at]. *)
val facts_with : t -> file:string -> L.facts -> L.facts

(** The static progress verdict for [file]; [None] when the file has no
    analysed functions. *)
val verdict_of : t -> file:string -> verdict option

(** The file's [[@@@progress]] payload, if declared. *)
val declared_progress : t -> file:string -> string option

(** Every classified loop in [file]:
    [(enclosing unit, name, line, class, reason)]. Spin-wait call sites
    appear as ["spin@<line>"] entries. *)
val loops :
  t -> file:string -> (string * string * int * loop_class * string) list

(** Names of the protocol automata declared in [file]. *)
val automata_of : t -> file:string -> string list

(** Rule-12 staleness probe for one [[@await_ok]] occurrence (position
    of the attribute name): [Some true] if deleting it would change the
    rule-12 diagnostic set (the annotation is what keeps a wait out of
    the stuck class of a declared-lock_free module), [Some false] if
    deleting it changes nothing for rule 12, [None] if the analysis
    never saw that occurrence. Merged by [sec_lint --audit] with the
    syntactic probe by disjunction. *)
val audit_await : t -> file:string -> line:int -> col:int -> bool option

(** [(units, cfg nodes, loop heads)] for [file] — introspection. *)
val cfg_stats : t -> file:string -> int * int * int

(** Positions (line, col) proved guarded on every path — introspection. *)
val guarded_positions : t -> file:string -> (int * int) list
