(* Static enforcement of the repo's shared-memory discipline, over the
   compiler-libs parsetree. Ten rule classes (see docs/ANALYSIS.md):

   1. [mutable-field] — algorithm modules (lib/stacks, lib/core,
      lib/reclaim, lib/funnel) may not declare [mutable] record fields
      unless the field carries [@plain_ok "why it is safely published"].
      The simulator cannot intercept plain loads/stores, so an
      unannotated mutable field silently invalidates every simulator
      result and linearizability verdict (lib/prim/prim_intf.ml).

   2. [unpadded-atomic] — in the same modules, an [Atomic.t] stored into
      a record or array (a long-lived shared block) must be created with
      [make_padded], or carry [@unpadded_ok "why false sharing is
      acceptable"] (e.g. short-lived per-operation nodes).

   3. [obj-confinement] — [Obj.*] is confined to lib/prim/padding.ml;
      everywhere else it can break the GC invariants padding relies on.

   4. [ebr-guard] — in discipline modules that use [Ebr], a field read of
      a node-typed record (any record type whose name contains "node")
      must happen inside a syntactic [guard ...] call, or carry
      [@unguarded_ok "why the caller holds the guard"]. The annotation
      may sit on any enclosing expression (e.g. a helper's whole body):
      it marks its subtree as guarded.

   5. [retire-once] — in the same modules, a [retire] call must be
      syntactically gated by an unlink CAS (the enclosing if-condition or
      match-scrutinee contains [compare_and_set]), or carry
      [@retire_ok "why the node is unlinked exactly once"]. Retiring a
      node twice is the double-free of deferred reclamation; the dynamic
      {!Sec_analysis.Reclaim_checker} catches the interleavings, this
      rule catches the call sites.

   6. [retry-discipline] — a retry loop on shared atomic state (a [while]
      whose condition reads an atomic, or a recursive function whose body
      both performs a CAS/exchange and calls itself) must pace itself: it
      must contain a [Backoff]/[relax]/[yield] call, or carry
      [@await_ok "why the wait is bounded"]. An unpaced loop hammers the
      contended line (the paper's central performance concern) and is the
      syntactic shape of every starvation/livelock hazard the dynamic
      {!Sec_analysis.Progress_monitor} flags.

   7. [progress-class] — a module that implements the stack interface
      (binds both [push] and [pop]) must declare its progress class with
      a floating attribute: [[@@@progress "lock_free"]] or
      [[@@@progress "blocking"]]. The declaration is checked dynamically
      by the suspension classifier ({!Sec_sim.Explore.classify}, via the
      harness registry); statically, a module declared lock_free must not
      wait unboundedly on another thread's write ([spin_until] /
      [spin_while] outside an [@await_ok] extent) — such a wait requires
      the blocking declaration.

   8. [fresh-node] — in discipline modules that recycle nodes through
      {!Sec_reclaim.Magazine} or the {!Sec_reclaim.Slab} store, a node
      record literal (a record whose labels are all fields of a node
      type) is a hot-path allocation the recycler was built to avoid.
      Allocation must go through the recycler's alloc, with the literal
      only as the miss fallback, annotated
      [@fresh_ok "why a fresh node is acceptable here"]. Like the other
      intent annotations, [@fresh_ok] covers its whole subtree.

   9. [spec-class] — a module that implements the stack interface
      (binds both [push] and [pop]) must declare which sequential spec
      its histories refine with a floating attribute:
      [[@@@spec "stack"]] (strict LIFO, checked by
      {!Sec_spec.Lin_check}) or [[@@@spec "pool"]] (the order-relaxed
      bag semantics). The declaration mirrors the registry entry's
      [spec] field ({!Sec_harness.Registry.semantics}) and selects the
      default refinement properties {!Sec_refine.Refine} verifies
      dynamically.

   10. [plain-publication] — a read-modify-plain-write chain ([get x]
       then a plain [set x] on the same atomic cell, with no ordering
       RMW on the path between them) on a cell written from two or more
       entry points is the lost-update idiom the dynamic
       {!Sec_analysis.Race_detector} models as a write-write race. The
       rule is interprocedural — the chain may span helper calls — so
       it lives in {!Sec_summary.Summary} (the summary side of this
       checker); it is listed here because it shares the diagnostic
       surface, the annotation discipline ([@publication_ok "reason"])
       and the driver. See docs/ANALYSIS.md, "Static prong".

   The per-file checker is syntactic by design: it recognises the repo
   idiom ([module A = P.Atomic], [A.make] / [Atomic.make], [module Ebr
   = Ebr.Make (P)], [Ebr.guard] / [Ebr.retire]) rather than doing
   type-driven analysis, which keeps it dependency-free and fast enough
   to run on every build. Interprocedural knowledge enters through
   {!facts}: a bundle of location predicates computed by
   {!Sec_summary.Summary} from per-function atomic-effect summaries
   propagated over the whole-library call graph. Facts only ever
   *discharge* obligations (a callee that paces, a caller that holds
   the guard, a call site gated by the unlink CAS), never add new ones,
   so running without facts is always sound but may demand annotations
   the interprocedural analysis proves unnecessary ([--audit] reports
   those).

   The intent annotations — [@unguarded_ok], [@retire_ok], [@await_ok],
   [@fresh_ok] — share one subtree-covering discipline
   ({!covering_annotations}): each needs a non-empty reason string, and
   each marks its whole subtree, so one annotation on a helper's body
   covers every occurrence inside it. *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type scope = {
  check_discipline : bool;
      (* rules 1, 2, 4, 5: algorithm modules written against Prim_intf *)
  allow_obj : bool; (* rule 3 exemption: lib/prim/padding.ml *)
}

(* Interprocedural facts, supplied by Sec_summary.Summary (or {!no_facts}
   when running purely syntactically). Positions are (line, col) pairs of
   the would-be diagnostic; spans are (start_line, end_line) of the
   expression whose obligation is being discharged. Facts are consulted
   only to *suppress* a diagnostic, never to create one. *)
type facts = {
  guarded_at : int * int -> bool;
      (* rule 4: the enclosing function runs under a guard at every call
         site (or the position sits inside a guard-wrapper call) *)
  gated_at : int * int -> bool;
      (* rule 5: every call site of the enclosing function is gated by an
         unlink compare_and_set *)
  awaited_at : int * int -> bool;
      (* rules 6/7: every call site sits under an [@await_ok] extent *)
  fresh_at : int * int -> bool;
      (* rule 8: every call site sits under a [@fresh_ok] extent *)
  paced_within : int * int -> bool;
      (* rule 6: some call inside the span resolves to a function whose
         transitive effect paces (Backoff/relax/yield) *)
}

let no_facts =
  let f _ = false in
  {
    guarded_at = f;
    gated_at = f;
    awaited_at = f;
    fresh_at = f;
    paced_within = f;
  }

(* Identity of one annotation occurrence, for the audit's
   disable-and-recheck probe: the position of the attribute *name*
   distinguishes two same-named annotations on one line. *)
type annotation = {
  ann_name : string;
  ann_line : int;
  ann_col : int;
  ann_reason : string;
}

(* Directories whose modules implement the stack/prim interfaces and are
   therefore subject to the access-discipline rules. *)
let discipline_dirs = [ "lib/stacks"; "lib/core"; "lib/reclaim"; "lib/funnel" ]

let scope_of_path path =
  let path =
    String.concat "/" (String.split_on_char '\\' path) (* windows-proof *)
  in
  let contains_dir dir =
    (* match ".../lib/stacks/foo.ml" and "lib/stacks/foo.ml" *)
    let re = dir ^ "/" in
    let len_p = String.length path and len_r = String.length re in
    let rec scan i =
      if i + len_r > len_p then false
      else if String.sub path i len_r = re then
        i = 0 || path.[i - 1] = '/'
      else scan (i + 1)
    in
    scan 0
  in
  {
    check_discipline = List.exists contains_dir discipline_dirs;
    allow_obj =
      contains_dir "lib/prim" && Filename.basename path = "padding.ml";
  }

(* ------------------------------------------------------------------ *)
(* Attribute helpers                                                    *)

open Parsetree

let string_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let find_attr name attrs =
  List.find_opt (fun a -> a.attr_name.Location.txt = name) attrs

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ------------------------------------------------------------------ *)
(* Idiom recognition                                                    *)

let flatten_longident lid = Longident.flatten lid

let last_component lid =
  match List.rev (flatten_longident lid) with c :: _ -> c | [] -> ""

(* [A.make] / [Atomic.make] / [P.Atomic.make]: the repo idiom for
   creating an atomic cell on the substrate. *)
let is_atomic_make lid =
  match List.rev (flatten_longident lid) with
  | "make" :: owner :: _ -> owner = "A" || owner = "Atomic"
  | _ -> false

let is_array_builder lid =
  match flatten_longident lid with
  | [ "Array"; ("make" | "init") ] -> true
  | _ -> false

(* [Ebr.guard] / [E.guard] / bare [guard]: entering a critical section. *)
let is_guard_call lid = last_component lid = "guard"
let is_retire_call lid = last_component lid = "retire"
let is_cas_ident lid = last_component lid = "compare_and_set"

(* [A.get] / [Atomic.get]: reading an atomic cell (rule 6's while-loop
   condition shape). *)
let is_atomic_get lid =
  match List.rev (flatten_longident lid) with
  | "get" :: owner :: _ -> owner = "A" || owner = "Atomic"
  | _ -> false

(* [A.set] / [Atomic.set]: the plain (blind) store — a release without
   an acquire in the dynamic detector's model, and the write half of the
   rule-10 lost-update chain. *)
let is_atomic_set lid =
  match List.rev (flatten_longident lid) with
  | "set" :: owner :: _ -> owner = "A" || owner = "Atomic"
  | _ -> false

(* The RMWs whose failure is what a retry loop retries on. *)
let is_retry_rmw_ident lid =
  match last_component lid with
  | "compare_and_set" | "exchange" -> true
  | _ -> false

(* Every ordering RMW of the substrate vocabulary: an acquire+release
   access whose presence on a path discharges the rule-10 chain. *)
let is_rmw_ident lid =
  match last_component lid with
  | "compare_and_set" | "exchange" | "fetch_and_add" | "incr" | "decr" ->
      true
  | _ -> false

(* [a.(i)] desugars to [Array.get a i]; summaries trace the array
   expression through it to key the cell. *)
let is_array_get lid =
  match flatten_longident lid with
  | [ "Array"; ("get" | "unsafe_get") ] -> true
  | _ -> false

(* Pacing calls that discharge rule 6: the substrate's waiting vocabulary
   ([relax]/[cpu_relax]/[yield]) and the Backoff module's entry points
   ([once] and the spin helpers, which escalate to yield internally). *)
let is_pacing_ident lid =
  match last_component lid with
  | "relax" | "cpu_relax" | "yield" | "once" | "spin_until" | "spin_while" ->
      true
  | _ -> false

(* Unbounded waits on another thread's write (rule 7): under a lock_free
   declaration these need an [@await_ok] bound or a blocking declaration. *)
let is_spin_wait_ident lid =
  match last_component lid with
  | "spin_until" | "spin_while" -> true
  | _ -> false

let contains_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec scan i =
    if i + lb > ls then false
    else String.sub s i lb = sub || scan (i + 1)
  in
  scan 0

(* The ebr rules apply only to modules that actually reference [Ebr]
   (aliasing it, applying [Ebr.Make], or calling through it); likewise
   the fresh-node rule arms only in modules that reference [Magazine].
   Both scans share this iterator shape. *)
let structure_references pred structure =
  let found = ref false in
  let check_lid lid =
    if List.exists pred (flatten_longident lid) then found := true
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> check_lid txt
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; _ } -> check_lid txt
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it me);
    }
  in
  it.structure it structure;
  !found

let structure_uses_ebr = structure_references (fun c -> c = "Ebr")
let structure_uses_magazine =
  structure_references (fun c -> c = "Magazine" || c = "Slab")

(* Field names of reclaimable-node records: every record type whose name
   contains "node". Dereferencing these is what the guard protects (rule
   4); a literal built from nothing but these fields is what the
   fresh-node rule flags (rule 8). *)
let collect_node_fields structure =
  let fields = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record labels
            when contains_sub td.ptype_name.Location.txt "node" ->
              List.iter
                (fun ld -> Hashtbl.replace fields ld.pld_name.Location.txt ())
                labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  fields

(* Does [e]'s subtree contain an identifier satisfying [pred]? *)
let expr_contains_ident pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when pred txt -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let expr_contains_cas e = expr_contains_ident is_cas_ident e

(* A bare reference to [name] anywhere in [e] — the self-call of a
   recursive retry loop. *)
let expr_references_self name e =
  expr_contains_ident
    (fun lid -> match flatten_longident lid with [ n ] -> n = name | _ -> false)
    e

(* ------------------------------------------------------------------ *)
(* The checker                                                          *)

(* Context threaded through the expression walk. *)
type ctx = {
  in_shared_block : bool;
      (* inside a record literal or Array.make/init arguments (rule 2) *)
  in_guard : bool; (* inside a [guard ...] call's arguments (rule 4) *)
  in_cas_branch : bool;
      (* inside a branch selected by a compare_and_set (rule 5) *)
  retire_covered : bool; (* inside an [@retire_ok "..."] subtree (rule 5) *)
  await_covered : bool;
      (* inside an [@await_ok "..."] subtree (rules 6 and 7) *)
  fresh_covered : bool; (* inside a [@fresh_ok "..."] subtree (rule 8) *)
}

let covering_annotations =
  [
    ("unguarded_ok", fun ctx -> { ctx with in_guard = true });
    ("retire_ok", fun ctx -> { ctx with retire_covered = true });
    ("await_ok", fun ctx -> { ctx with await_covered = true });
    ("fresh_ok", fun ctx -> { ctx with fresh_covered = true });
  ]

(* Edit distance, for the unknown-annotation suggestions. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <-
        min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* The names the audit probes, with the rules each one suppresses. *)
let auditable_annotations =
  [
    ("unguarded_ok", [ "ebr-guard" ]);
    ("retire_ok", [ "retire-once" ]);
    ("await_ok", [ "retry-discipline"; "progress-class" ]);
    ("fresh_ok", [ "fresh-node" ]);
    ("unpadded_ok", [ "unpadded-atomic" ]);
    ("plain_ok", [ "mutable-field" ]);
    (* counted but never staleness-probed: rule 10 is computed by the
       summary analysis, not by the syntactic recheck the probe runs *)
    ("publication_ok", [ "plain-publication" ]);
  ]

let check_structure ?(facts = no_facts) ?disabled ~file ~scope structure =
  (* [disabled] names one annotation occurrence to treat as absent: the
     audit's probe. Identity is (name, position of the attribute name),
     so two same-named annotations on one line stay distinct. *)
  let attr_enabled (attr : attribute) =
    match disabled with
    | None -> true
    | Some d ->
        not
          (attr.attr_name.Location.txt = d.ann_name
          && pos_of attr.attr_name.Location.loc = (d.ann_line, d.ann_col))
  in
  (* The shared subtree-covering annotation discipline: an annotation
     with a non-empty reason string marks the whole subtree it sits on,
     so one annotation on a helper's body covers every occurrence inside
     it. [@unguarded_ok] discharges rule 4, [@retire_ok] rule 5,
     [@await_ok] rules 6 and 7, [@fresh_ok] rule 8. *)
  let attr_has_reason name attrs =
    match find_attr name attrs with
    | Some attr when attr_enabled attr -> (
        match string_payload attr with
        | Some s -> String.trim s <> ""
        | None -> false)
    | _ -> false
  in
  let enter_covering (e : expression) ctx =
    List.fold_left
      (fun ctx (name, mark) ->
        if attr_has_reason name e.pexp_attributes then mark ctx else ctx)
      ctx covering_annotations
  in
  (* Does any sub-expression of [e] (including [e] itself) carry a
     justified [@await_ok]? Used where rule 6 anchors on the whole
     binding but the annotation may sit on an inner expression. *)
  let subtree_has_await_ok e =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            if attr_has_reason "await_ok" e.pexp_attributes then
              found := true;
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e;
    !found
  in
  let diags = ref [] in
  let add loc rule message =
    let line, col = pos_of loc in
    diags := { file; line; col; rule; message } :: !diags
  in

  let ebr_rules = scope.check_discipline && structure_uses_ebr structure in
  let magazine_rules =
    scope.check_discipline && structure_uses_magazine structure
  in
  let node_fields =
    if ebr_rules || magazine_rules then collect_node_fields structure
    else Hashtbl.create 0
  in

  (* Rules 7 and 9 pre-pass: [@@@progress] / [@@@spec] declarations and
     push/pop bindings anywhere in the structure (including submodules —
     a file is one progress/spec unit, matching how the registry
     declares one class per algorithm). The missing-declaration
     diagnostics anchor at the later of the two bindings. *)
  let progress_decls = ref [] (* (payload, loc), reversed *) in
  let spec_decls = ref [] (* (payload, loc), reversed *) in
  let push_loc = ref None and pop_loc = ref None in
  (if scope.check_discipline then
     let note_binding (vb : value_binding) =
       match vb.pvb_pat.ppat_desc with
       | Ppat_var { txt = "push"; _ } -> push_loc := Some vb.pvb_loc
       | Ppat_var { txt = "pop"; _ } -> pop_loc := Some vb.pvb_loc
       | _ -> ()
     in
     let it =
       {
         Ast_iterator.default_iterator with
         structure_item =
           (fun it si ->
             (match si.pstr_desc with
             | Pstr_attribute attr
               when attr.attr_name.Location.txt = "progress" ->
                 progress_decls :=
                   (string_payload attr, attr.attr_loc) :: !progress_decls
             | Pstr_attribute attr when attr.attr_name.Location.txt = "spec"
               ->
                 spec_decls :=
                   (string_payload attr, attr.attr_loc) :: !spec_decls
             | Pstr_value (_, vbs) -> List.iter note_binding vbs
             | _ -> ());
             Ast_iterator.default_iterator.structure_item it si);
       }
     in
     it.structure it structure);
  let progress_decls = List.rev !progress_decls in
  let spec_decls = List.rev !spec_decls in
  let declared_lock_free =
    List.exists (fun (p, _) -> p = Some "lock_free") progress_decls
  in

  (* Rule 1: mutable record fields need [@plain_ok "..."]. *)
  let check_label (ld : label_declaration) =
    match ld.pld_mutable with
    | Asttypes.Immutable -> ()
    | Asttypes.Mutable -> (
        match find_attr "plain_ok" ld.pld_attributes with
        | Some attr when attr_enabled attr -> (
            match string_payload attr with
            | Some arg when String.trim arg <> "" -> ()
            | Some _ | None ->
                add ld.pld_loc "mutable-field"
                  (Printf.sprintf
                     "[@plain_ok] on mutable field '%s' needs a publication \
                      argument, e.g. [@plain_ok \"thread-private\"]"
                     ld.pld_name.Location.txt))
        | Some _ | None ->
            add ld.pld_loc "mutable-field"
              (Printf.sprintf
                 "mutable field '%s' in an algorithm module: shared-memory \
                  communication must go through Atomic (the simulator cannot \
                  intercept plain stores); if the field is safely published, \
                  annotate it [@plain_ok \"how it is published\"]"
                 ld.pld_name.Location.txt))
  in

  (* Rule 2: [A.make]/[Atomic.make] results stored in records or arrays. *)
  let check_unpadded loc =
    add loc "unpadded-atomic"
      "Atomic cell stored in a long-lived shared block is created with \
       'make', not 'make_padded': contended neighbours will false-share a \
       cache line; use make_padded, or annotate the call [@unpadded_ok \
       \"why false sharing is acceptable here\"]"
  in

  (* Rule 3: Obj confinement. *)
  let check_obj lid loc =
    match flatten_longident lid with
    | "Obj" :: _ when not scope.allow_obj ->
        add loc "obj-confinement"
          "Obj.* outside lib/prim/padding.ml: unsafe representation \
           shenanigans are confined there so the GC invariants the padding \
           relies on are reviewed in one place"
    | _ -> ()
  in

  (* Rule 4: node-field reads outside a guard extent. *)
  let check_unguarded loc field =
    add loc "ebr-guard"
      (Printf.sprintf
         "read of node field '%s' outside a guard extent in an EBR module: \
          a concurrent retirement makes this a use-after-free; wrap the \
          access in Ebr.guard, or annotate it [@unguarded_ok \"why the \
          caller holds the guard\"]"
         field)
  in

  (* Rule 5: retire calls not gated by an unlink CAS. *)
  let check_retire loc =
    add loc "retire-once"
      "retire call not gated by an unlink compare_and_set: whoever loses \
       the unlink race must not also retire the node (double-free); gate \
       the call on the winning CAS, or annotate it [@retire_ok \"why the \
       node is unlinked exactly once\"]"
  in

  (* Rule 6: unpaced retry loops on shared atomics. *)
  let retry_message shape =
    Printf.sprintf
      "%s retries on a shared atomic without pacing: add a Backoff \
       call (once/spin_until/spin_while), a substrate relax/yield, or — \
       if the wait is bounded by protocol — annotate it [@await_ok \
       \"why the wait is bounded\"]"
      shape
  in
  let line_span (loc : Location.t) =
    (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_end.Lexing.pos_lnum)
  in
  let check_retry_vb ctx (vb : value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = fname; _ } ->
        let body = vb.pvb_expr in
        if
          expr_contains_ident is_retry_rmw_ident body
          && expr_references_self fname body
          && (not (expr_contains_ident is_pacing_ident body))
          && (not ctx.await_covered)
          && (not (attr_has_reason "await_ok" vb.pvb_attributes))
          && (not (subtree_has_await_ok body))
          && (not (facts.paced_within (line_span vb.pvb_loc)))
          && not (facts.awaited_at (pos_of vb.pvb_loc))
        then
          add vb.pvb_loc "retry-discipline"
            (retry_message
               (Printf.sprintf "recursive CAS/exchange loop '%s'" fname))
    | _ -> ()
  in

  (* Rule 7: the progress-class declaration obligations. *)
  (if scope.check_discipline then begin
     List.iter
       (fun (payload, loc) ->
         match payload with
         | Some "lock_free" | Some "blocking" -> ()
         | Some other ->
             add loc "progress-class"
               (Printf.sprintf
                  "invalid progress class %S: declare [@@@progress \
                   \"lock_free\"] or [@@@progress \"blocking\"]"
                  other)
         | None ->
             add loc "progress-class"
               "[@@@progress] needs a class string: declare [@@@progress \
                \"lock_free\"] or [@@@progress \"blocking\"]")
       progress_decls;
     match (!push_loc, !pop_loc) with
     | Some ploc, Some qloc when progress_decls = [] ->
         let anchor =
           if fst (pos_of qloc) >= fst (pos_of ploc) then qloc else ploc
         in
         add anchor "progress-class"
           "module implements the stack interface (binds both push and \
            pop) but declares no progress class: add [@@@progress \
            \"lock_free\"] or [@@@progress \"blocking\"]; the declared \
            class is checked mechanically by the suspension classifier \
            (docs/ANALYSIS.md, \"Progress prong\")"
     | _ -> ()
   end);
  (* Rule 9: the spec-class declaration obligations. *)
  (if scope.check_discipline then begin
     List.iter
       (fun (payload, loc) ->
         match payload with
         | Some "stack" | Some "pool" -> ()
         | Some other ->
             add loc "spec-class"
               (Printf.sprintf
                  "invalid spec class %S: declare [@@@spec \"stack\"] \
                   (strict LIFO, checked by Lin_check) or [@@@spec \
                   \"pool\"] (order-relaxed bag)"
                  other)
         | None ->
             add loc "spec-class"
               "[@@@spec] needs a class string: declare [@@@spec \
                \"stack\"] or [@@@spec \"pool\"]")
       spec_decls;
     match (!push_loc, !pop_loc) with
     | Some ploc, Some qloc when spec_decls = [] ->
         let anchor =
           if fst (pos_of qloc) >= fst (pos_of ploc) then qloc else ploc
         in
         add anchor "spec-class"
           "module implements the stack interface (binds both push and \
            pop) but declares no sequential spec: add [@@@spec \
            \"stack\"] or [@@@spec \"pool\"]; the declared spec selects \
            the refinement property the checker verifies (docs/ANALYSIS.md, \
            \"Refinement prong\") and must match the registry entry's \
            [spec] field"
     | _ -> ()
   end);
  (* Rule 8: node literals outside the magazine-miss fallback. *)
  let check_fresh_node loc =
    add loc "fresh-node"
      "node record constructed directly in a module that recycles nodes \
       through Magazine or Slab: the hot path must try the recycler's \
       alloc first and only fall back to a literal on a miss; annotate \
       that fallback [@fresh_ok \"why a fresh node is acceptable here\"]"
  in

  let check_lock_free_spin loc =
    add loc "progress-class"
      "module declared [@@@progress \"lock_free\"] but waits unboundedly \
       on another thread's write (spin_until/spin_while): bound the wait \
       and annotate it [@await_ok \"why the wait is bounded\"], or \
       declare [@@@progress \"blocking\"]"
  in

  let rec expr ctx (e : expression) =
    let has_reason name = attr_has_reason name e.pexp_attributes in
    (* The shared covering discipline: a justified [@unguarded_ok] /
       [@retire_ok] / [@await_ok] marks this whole subtree. *)
    let ctx = enter_covering e ctx in
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_obj txt loc
    | Pexp_field (inner, { txt = field; loc = floc }) ->
        (if
           ebr_rules && (not ctx.in_guard)
           && Hashtbl.mem node_fields (last_component field)
           && not (facts.guarded_at (pos_of floc))
         then check_unguarded floc (last_component field));
        expr ctx inner
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        check_obj txt loc;
        (if
           scope.check_discipline && ctx.in_shared_block
           && is_atomic_make txt
           && not (has_reason "unpadded_ok")
         then check_unpadded e.pexp_loc);
        (if
           ebr_rules && is_retire_call txt
           && (not ctx.in_cas_branch)
           && (not ctx.retire_covered)
           && not (facts.gated_at (pos_of e.pexp_loc))
         then check_retire e.pexp_loc);
        (if
           scope.check_discipline && declared_lock_free
           && is_spin_wait_ident txt
           && (not ctx.await_covered)
           && not (facts.awaited_at (pos_of e.pexp_loc))
         then check_lock_free_spin e.pexp_loc);
        let arg_ctx =
          {
            ctx with
            (* Entering Array.make/Array.init arguments counts as entering
               a shared block: the cells live together in one array. *)
            in_shared_block = ctx.in_shared_block || is_array_builder txt;
            (* Entering a [guard] call's arguments enters its extent. *)
            in_guard = ctx.in_guard || is_guard_call txt;
          }
        in
        List.iter (fun (_, a) -> expr arg_ctx a) args
    | Pexp_ifthenelse (cond, then_, else_) ->
        expr ctx cond;
        let branch_ctx =
          if expr_contains_cas cond then { ctx with in_cas_branch = true }
          else ctx
        in
        expr branch_ctx then_;
        Option.iter (expr branch_ctx) else_
    | Pexp_match (scrutinee, cases) ->
        expr ctx scrutinee;
        let branch_ctx =
          if expr_contains_cas scrutinee then { ctx with in_cas_branch = true }
          else ctx
        in
        List.iter
          (fun c ->
            Option.iter (expr branch_ctx) c.pc_guard;
            expr branch_ctx c.pc_rhs)
          cases
    | Pexp_record (fields, base) ->
        (if
           magazine_rules && Option.is_none base
           && (not ctx.fresh_covered)
           && fields <> []
           && List.for_all
                (fun (({ txt; _ } : Longident.t Location.loc), _) ->
                  Hashtbl.mem node_fields (last_component txt))
                fields
           && not (facts.fresh_at (pos_of e.pexp_loc))
         then check_fresh_node e.pexp_loc);
        Option.iter (expr ctx) base;
        List.iter
          (fun (_, v) -> expr { ctx with in_shared_block = true } v)
          fields
    | Pexp_array items ->
        List.iter (expr { ctx with in_shared_block = true }) items
    | Pexp_while (cond, body) ->
        (if
           scope.check_discipline
           && expr_contains_ident is_atomic_get cond
           && (not ctx.await_covered)
           && (not
                 (expr_contains_ident is_pacing_ident cond
                 || expr_contains_ident is_pacing_ident body))
           && (not (subtree_has_await_ok body))
           && (not (facts.paced_within (line_span e.pexp_loc)))
           && not (facts.awaited_at (pos_of e.pexp_loc))
         then
           add e.pexp_loc "retry-discipline"
             (retry_message "while loop on an atomic read"));
        expr ctx cond;
        expr ctx body
    | Pexp_let (rflag, vbs, cont) ->
        (if scope.check_discipline && rflag = Asttypes.Recursive then
           List.iter (check_retry_vb ctx) vbs);
        List.iter (fun vb -> expr ctx vb.pvb_expr) vbs;
        expr ctx cont
    | _ ->
        (* Generic descent that preserves the context:
           [default_iterator.expr it e] iterates [e]'s children through
           [it.expr], i.e. back through this function. *)
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> expr ctx child);
            type_declaration = (fun _ td -> type_declaration td);
          }
        in
        Ast_iterator.default_iterator.expr it e
  and type_declaration (td : type_declaration) =
    match td.ptype_kind with
    | Ptype_record labels when scope.check_discipline ->
        List.iter check_label labels
    | _ -> ()
  in

  let top_ctx =
    {
      in_shared_block = false;
      in_guard = false;
      in_cas_branch = false;
      retire_covered = false;
      await_covered = false;
      fresh_covered = false;
    }
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> expr top_ctx e);
      type_declaration = (fun _ td -> type_declaration td);
      structure_item =
        (fun it si ->
          (* Structure-level [let rec] retry loops (rule 6); expression-
             level ones are handled by the walk's [Pexp_let] case. *)
          (match si.pstr_desc with
          | Pstr_value (Asttypes.Recursive, vbs) when scope.check_discipline
            ->
              List.iter (check_retry_vb top_ctx) vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  iterator.structure iterator structure;

  (* Unknown-annotation rule: a typo'd suppression ([@awiat_ok]) or a
     typo'd floating declaration ([@@@progess]) silently suppresses or
     declares nothing — flag names that look like ours but are not. *)
  (if scope.check_discipline then begin
     let known = List.map fst auditable_annotations in
     let floating = [ "progress"; "spec"; "protocol" ] in
     let suggest candidates name =
       List.fold_left
         (fun best cand ->
           let d = levenshtein name cand in
           match best with
           | Some (_, bd) when bd <= d -> best
           | _ -> if d <= 2 then Some (cand, d) else best)
         None candidates
     in
     let check_suffix_ok (a : attribute) =
       let name = a.attr_name.Location.txt in
       if
         String.length name > 3
         && String.sub name (String.length name - 3) 3 = "_ok"
         && not (List.mem name known)
       then
         add a.attr_name.Location.loc "unknown-annotation"
           (match suggest known name with
           | Some (cand, _) ->
               Printf.sprintf
                 "[@%s] is not a recognised suppression annotation and \
                  suppresses nothing — did you mean [@%s]?"
                 name cand
           | None ->
               Printf.sprintf
                 "[@%s] is not a recognised suppression annotation and \
                  suppresses nothing (known: %s)"
                 name
                 (String.concat ", " (List.map (fun n -> "[@" ^ n ^ "]") known)))
     in
     let check_floating (a : attribute) =
       let name = a.attr_name.Location.txt in
       if
         (not (List.mem name floating))
         && (not (String.length name >= 6 && String.sub name 0 6 = "ocaml."))
       then
         match suggest floating name with
         | Some (cand, _) ->
             add a.attr_name.Location.loc "unknown-annotation"
               (Printf.sprintf
                  "[@@@%s] is not a recognised declaration — did you mean \
                   [@@@%s]?"
                  name cand)
         | None -> ()
     in
     let it =
       {
         Ast_iterator.default_iterator with
         attribute =
           (fun it a ->
             check_suffix_ok a;
             Ast_iterator.default_iterator.attribute it a);
         structure_item =
           (fun it si ->
             (match si.pstr_desc with
             | Pstr_attribute a -> check_floating a
             | _ -> ());
             Ast_iterator.default_iterator.structure_item it si);
       }
     in
     it.structure it structure
   end);

  (* Diagnostics in source order. *)
  List.sort
    (fun a b -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
    !diags

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

(* Both entry points parse from an in-memory string so location handling
   (notably [pos_bol] bookkeeping across multi-line tokens, which
   [Lexing.from_channel] refills mid-token) is byte-identical between
   fixture EXPECT markers ([check_string]) and real files
   ([check_file]). *)
let parse_string ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_string ?facts ?scope ~filename src =
  let scope = match scope with Some s -> s | None -> scope_of_path filename in
  match parse_string ~file:filename src with
  | structure -> check_structure ?facts ~file:filename ~scope structure
  | exception exn ->
      let loc, msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> (e.Location.main.Location.loc, "syntax error")
        | _ -> (Location.none, Printexc.to_string exn)
      in
      let line, col = pos_of loc in
      [ { file = filename; line; col; rule = "parse-error"; message = msg } ]

let check_file ?facts ?scope path =
  let scope = match scope with Some s -> s | None -> scope_of_path path in
  check_string ?facts ~scope ~filename:path (read_file path)

(* ------------------------------------------------------------------ *)
(* Annotation audit                                                     *)

(* Every auditable annotation occurrence in the structure, in source
   order. The attribute hook sees attributes wherever they syntactically
   attach (expressions, value bindings, label declarations), so one walk
   covers all of [@unguarded_ok]/[@retire_ok]/[@await_ok]/[@fresh_ok]/
   [@unpadded_ok]/[@plain_ok]. *)
let annotations_of_structure structure =
  let anns = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      attribute =
        (fun it a ->
          (match List.assoc_opt a.attr_name.Location.txt auditable_annotations
           with
          | Some _ ->
              let line, col = pos_of a.attr_name.Location.loc in
              anns :=
                {
                  ann_name = a.attr_name.Location.txt;
                  ann_line = line;
                  ann_col = col;
                  ann_reason = Option.value (string_payload a) ~default:"";
                }
                :: !anns
          | None -> ());
          Ast_iterator.default_iterator.attribute it a);
    }
  in
  it.structure it structure;
  List.sort
    (fun a b -> compare (a.ann_line, a.ann_col) (b.ann_line, b.ann_col))
    !anns

type audit_entry = {
  audit_annotation : annotation;
  audit_rules : string list; (* the rules this annotation can suppress *)
  audit_live : bool; (* deleting it would change the diagnostic set *)
}

(* Disable-and-recheck: an annotation is live iff treating that one
   occurrence as absent changes the diagnostic set. Precise by
   construction — whatever subtree/covering semantics the rules give an
   annotation, the probe inherits them. *)
let audit_structure ?facts ~file ~scope structure =
  let base = check_structure ?facts ~file ~scope structure in
  List.map
    (fun ann ->
      let live =
        (* The syntactic recheck cannot decide [@publication_ok]:
           conservatively live. *)
        ann.ann_name = "publication_ok"
        || check_structure ?facts ~disabled:ann ~file ~scope structure <> base
      in
      {
        audit_annotation = ann;
        audit_rules = List.assoc ann.ann_name auditable_annotations;
        audit_live = live;
      })
    (annotations_of_structure structure)

let audit_string ?facts ?scope ~filename src =
  let scope = match scope with Some s -> s | None -> scope_of_path filename in
  match parse_string ~file:filename src with
  | structure -> audit_structure ?facts ~file:filename ~scope structure
  | exception _ -> []

let audit_file ?facts ?scope path =
  let scope = match scope with Some s -> s | None -> scope_of_path path in
  audit_string ?facts ~scope ~filename:path (read_file path)

(* ------------------------------------------------------------------ *)
(* Output                                                               *)

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d

(* Minimal SARIF 2.1.0 document — one run, one result per diagnostic,
   columns converted from the 0-based compiler convention to SARIF's
   1-based one. Shape-checked by test/test_lint.ml against the repo's
   own Bench_json parser. *)
let sarif_of_diagnostics diags =
  let buf = Buffer.create 4096 in
  let str s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  in
  let raw = Buffer.add_string buf in
  let comma_sep f = function
    | [] -> ()
    | x :: rest ->
        f x;
        List.iter
          (fun y ->
            raw ",";
            f y)
          rest
  in
  let rule_ids =
    List.sort_uniq compare (List.map (fun d -> d.rule) diags)
  in
  raw "{";
  raw "\"$schema\":";
  str "https://json.schemastore.org/sarif-2.1.0.json";
  raw ",\"version\":";
  str "2.1.0";
  raw ",\"runs\":[{\"tool\":{\"driver\":{\"name\":";
  str "sec_lint";
  raw ",\"informationUri\":";
  str "docs/ANALYSIS.md";
  raw ",\"rules\":[";
  comma_sep
    (fun id ->
      raw "{\"id\":";
      str id;
      raw "}")
    rule_ids;
  raw "]}},\"results\":[";
  comma_sep
    (fun d ->
      raw "{\"ruleId\":";
      str d.rule;
      raw ",\"level\":";
      str "error";
      raw ",\"message\":{\"text\":";
      str d.message;
      raw "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
      str d.file;
      raw "},\"region\":{\"startLine\":";
      raw (string_of_int d.line);
      raw ",\"startColumn\":";
      raw (string_of_int (d.col + 1));
      raw "}}}]}")
    diags;
  raw "]}]}";
  Buffer.contents buf
