(* Static enforcement of the repo's shared-memory discipline, over the
   compiler-libs parsetree. Five rule classes (see docs/ANALYSIS.md):

   1. [mutable-field] — algorithm modules (lib/stacks, lib/core,
      lib/reclaim, lib/funnel) may not declare [mutable] record fields
      unless the field carries [@plain_ok "why it is safely published"].
      The simulator cannot intercept plain loads/stores, so an
      unannotated mutable field silently invalidates every simulator
      result and linearizability verdict (lib/prim/prim_intf.ml).

   2. [unpadded-atomic] — in the same modules, an [Atomic.t] stored into
      a record or array (a long-lived shared block) must be created with
      [make_padded], or carry [@unpadded_ok "why false sharing is
      acceptable"] (e.g. short-lived per-operation nodes).

   3. [obj-confinement] — [Obj.*] is confined to lib/prim/padding.ml;
      everywhere else it can break the GC invariants padding relies on.

   4. [ebr-guard] — in discipline modules that use [Ebr], a field read of
      a node-typed record (any record type whose name contains "node")
      must happen inside a syntactic [guard ...] call, or carry
      [@unguarded_ok "why the caller holds the guard"]. The annotation
      may sit on any enclosing expression (e.g. a helper's whole body):
      it marks its subtree as guarded.

   5. [retire-once] — in the same modules, a [retire] call must be
      syntactically gated by an unlink CAS (the enclosing if-condition or
      match-scrutinee contains [compare_and_set]), or carry
      [@retire_ok "why the node is unlinked exactly once"]. Retiring a
      node twice is the double-free of deferred reclamation; the dynamic
      {!Sec_analysis.Reclaim_checker} catches the interleavings, this
      rule catches the call sites.

   The checker is syntactic by design: it recognises the repo idiom
   ([module A = P.Atomic], [A.make] / [Atomic.make], [module Ebr =
   Ebr.Make (P)], [Ebr.guard] / [Ebr.retire]) rather than doing
   type-driven analysis, which keeps it dependency-free and fast enough
   to run on every build. *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type scope = {
  check_discipline : bool;
      (* rules 1, 2, 4, 5: algorithm modules written against Prim_intf *)
  allow_obj : bool; (* rule 3 exemption: lib/prim/padding.ml *)
}

(* Directories whose modules implement the stack/prim interfaces and are
   therefore subject to the access-discipline rules. *)
let discipline_dirs = [ "lib/stacks"; "lib/core"; "lib/reclaim"; "lib/funnel" ]

let scope_of_path path =
  let path =
    String.concat "/" (String.split_on_char '\\' path) (* windows-proof *)
  in
  let contains_dir dir =
    (* match ".../lib/stacks/foo.ml" and "lib/stacks/foo.ml" *)
    let re = dir ^ "/" in
    let len_p = String.length path and len_r = String.length re in
    let rec scan i =
      if i + len_r > len_p then false
      else if String.sub path i len_r = re then
        i = 0 || path.[i - 1] = '/'
      else scan (i + 1)
    in
    scan 0
  in
  {
    check_discipline = List.exists contains_dir discipline_dirs;
    allow_obj =
      contains_dir "lib/prim" && Filename.basename path = "padding.ml";
  }

(* ------------------------------------------------------------------ *)
(* Attribute helpers                                                    *)

open Parsetree

let string_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let find_attr name attrs =
  List.find_opt (fun a -> a.attr_name.Location.txt = name) attrs

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ------------------------------------------------------------------ *)
(* Idiom recognition                                                    *)

let flatten_longident lid = Longident.flatten lid

let last_component lid =
  match List.rev (flatten_longident lid) with c :: _ -> c | [] -> ""

(* [A.make] / [Atomic.make] / [P.Atomic.make]: the repo idiom for
   creating an atomic cell on the substrate. *)
let is_atomic_make lid =
  match List.rev (flatten_longident lid) with
  | "make" :: owner :: _ -> owner = "A" || owner = "Atomic"
  | _ -> false

let is_array_builder lid =
  match flatten_longident lid with
  | [ "Array"; ("make" | "init") ] -> true
  | _ -> false

(* [Ebr.guard] / [E.guard] / bare [guard]: entering a critical section. *)
let is_guard_call lid = last_component lid = "guard"
let is_retire_call lid = last_component lid = "retire"
let is_cas_ident lid = last_component lid = "compare_and_set"

let contains_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec scan i =
    if i + lb > ls then false
    else String.sub s i lb = sub || scan (i + 1)
  in
  scan 0

(* The ebr rules apply only to modules that actually reference [Ebr]
   (aliasing it, applying [Ebr.Make], or calling through it). *)
let structure_uses_ebr structure =
  let found = ref false in
  let check_lid lid =
    match flatten_longident lid with "Ebr" :: _ -> found := true | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> check_lid txt
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; _ } -> check_lid txt
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it me);
    }
  in
  it.structure it structure;
  !found

(* Field names of reclaimable-node records: every record type whose name
   contains "node". Dereferencing these is what the guard protects. *)
let collect_node_fields structure =
  let fields = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record labels
            when contains_sub td.ptype_name.Location.txt "node" ->
              List.iter
                (fun ld -> Hashtbl.replace fields ld.pld_name.Location.txt ())
                labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  fields

let expr_contains_cas e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when is_cas_ident txt -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* The checker                                                          *)

(* Context threaded through the expression walk. *)
type ctx = {
  in_shared_block : bool;
      (* inside a record literal or Array.make/init arguments (rule 2) *)
  in_guard : bool; (* inside a [guard ...] call's arguments (rule 4) *)
  in_cas_branch : bool;
      (* inside a branch selected by a compare_and_set (rule 5) *)
}

let check_structure ~file ~scope structure =
  let diags = ref [] in
  let add loc rule message =
    let line, col = pos_of loc in
    diags := { file; line; col; rule; message } :: !diags
  in

  let ebr_rules = scope.check_discipline && structure_uses_ebr structure in
  let node_fields =
    if ebr_rules then collect_node_fields structure else Hashtbl.create 0
  in

  (* Rule 1: mutable record fields need [@plain_ok "..."]. *)
  let check_label (ld : label_declaration) =
    match ld.pld_mutable with
    | Asttypes.Immutable -> ()
    | Asttypes.Mutable -> (
        match find_attr "plain_ok" ld.pld_attributes with
        | None ->
            add ld.pld_loc "mutable-field"
              (Printf.sprintf
                 "mutable field '%s' in an algorithm module: shared-memory \
                  communication must go through Atomic (the simulator cannot \
                  intercept plain stores); if the field is safely published, \
                  annotate it [@plain_ok \"how it is published\"]"
                 ld.pld_name.Location.txt)
        | Some attr -> (
            match string_payload attr with
            | Some arg when String.trim arg <> "" -> ()
            | Some _ | None ->
                add ld.pld_loc "mutable-field"
                  (Printf.sprintf
                     "[@plain_ok] on mutable field '%s' needs a publication \
                      argument, e.g. [@plain_ok \"thread-private\"]"
                     ld.pld_name.Location.txt)))
  in

  (* Rule 2: [A.make]/[Atomic.make] results stored in records or arrays. *)
  let check_unpadded loc =
    add loc "unpadded-atomic"
      "Atomic cell stored in a long-lived shared block is created with \
       'make', not 'make_padded': contended neighbours will false-share a \
       cache line; use make_padded, or annotate the call [@unpadded_ok \
       \"why false sharing is acceptable here\"]"
  in

  (* Rule 3: Obj confinement. *)
  let check_obj lid loc =
    match flatten_longident lid with
    | "Obj" :: _ when not scope.allow_obj ->
        add loc "obj-confinement"
          "Obj.* outside lib/prim/padding.ml: unsafe representation \
           shenanigans are confined there so the GC invariants the padding \
           relies on are reviewed in one place"
    | _ -> ()
  in

  (* Rule 4: node-field reads outside a guard extent. *)
  let check_unguarded loc field =
    add loc "ebr-guard"
      (Printf.sprintf
         "read of node field '%s' outside a guard extent in an EBR module: \
          a concurrent retirement makes this a use-after-free; wrap the \
          access in Ebr.guard, or annotate it [@unguarded_ok \"why the \
          caller holds the guard\"]"
         field)
  in

  (* Rule 5: retire calls not gated by an unlink CAS. *)
  let check_retire loc =
    add loc "retire-once"
      "retire call not gated by an unlink compare_and_set: whoever loses \
       the unlink race must not also retire the node (double-free); gate \
       the call on the winning CAS, or annotate it [@retire_ok \"why the \
       node is unlinked exactly once\"]"
  in

  let rec expr ctx (e : expression) =
    let has_reason name =
      match find_attr name e.pexp_attributes with
      | Some attr -> (
          match string_payload attr with
          | Some s -> String.trim s <> ""
          | None -> false)
      | None -> false
    in
    (* [@unguarded_ok "..."] marks its whole subtree as guarded, so one
       annotation can cover a helper body. *)
    let ctx =
      if has_reason "unguarded_ok" then { ctx with in_guard = true } else ctx
    in
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_obj txt loc
    | Pexp_field (inner, { txt = field; loc = floc }) ->
        (if
           ebr_rules && (not ctx.in_guard)
           && Hashtbl.mem node_fields (last_component field)
         then check_unguarded floc (last_component field));
        expr ctx inner
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        check_obj txt loc;
        (if
           scope.check_discipline && ctx.in_shared_block
           && is_atomic_make txt
           && not (has_reason "unpadded_ok")
         then check_unpadded e.pexp_loc);
        (if
           ebr_rules && is_retire_call txt
           && (not ctx.in_cas_branch)
           && not (has_reason "retire_ok")
         then check_retire e.pexp_loc);
        let arg_ctx =
          {
            ctx with
            (* Entering Array.make/Array.init arguments counts as entering
               a shared block: the cells live together in one array. *)
            in_shared_block = ctx.in_shared_block || is_array_builder txt;
            (* Entering a [guard] call's arguments enters its extent. *)
            in_guard = ctx.in_guard || is_guard_call txt;
          }
        in
        List.iter (fun (_, a) -> expr arg_ctx a) args
    | Pexp_ifthenelse (cond, then_, else_) ->
        expr ctx cond;
        let branch_ctx =
          if expr_contains_cas cond then { ctx with in_cas_branch = true }
          else ctx
        in
        expr branch_ctx then_;
        Option.iter (expr branch_ctx) else_
    | Pexp_match (scrutinee, cases) ->
        expr ctx scrutinee;
        let branch_ctx =
          if expr_contains_cas scrutinee then { ctx with in_cas_branch = true }
          else ctx
        in
        List.iter
          (fun c ->
            Option.iter (expr branch_ctx) c.pc_guard;
            expr branch_ctx c.pc_rhs)
          cases
    | Pexp_record (fields, base) ->
        Option.iter (expr ctx) base;
        List.iter
          (fun (_, v) -> expr { ctx with in_shared_block = true } v)
          fields
    | Pexp_array items ->
        List.iter (expr { ctx with in_shared_block = true }) items
    | _ ->
        (* Generic descent that preserves the context:
           [default_iterator.expr it e] iterates [e]'s children through
           [it.expr], i.e. back through this function. *)
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> expr ctx child);
            type_declaration = (fun _ td -> type_declaration td);
          }
        in
        Ast_iterator.default_iterator.expr it e
  and type_declaration (td : type_declaration) =
    match td.ptype_kind with
    | Ptype_record labels when scope.check_discipline ->
        List.iter check_label labels
    | _ -> ()
  in

  let top_ctx =
    { in_shared_block = false; in_guard = false; in_cas_branch = false }
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> expr top_ctx e);
      type_declaration = (fun _ td -> type_declaration td);
    }
  in
  iterator.structure iterator structure;
  (* Diagnostics in source order. *)
  List.sort
    (fun a b -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
    !diags

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let check_lexbuf ~file ~scope lexbuf =
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> check_structure ~file ~scope structure
  | exception exn ->
      let loc, msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) ->
            (e.Location.main.Location.loc, "syntax error")
        | _ -> (Location.none, Printexc.to_string exn)
      in
      let line, col = pos_of loc in
      [ { file; line; col; rule = "parse-error"; message = msg } ]

let check_string ?scope ~filename src =
  let scope = match scope with Some s -> s | None -> scope_of_path filename in
  check_lexbuf ~file:filename ~scope (Lexing.from_string src)

let check_file ?scope path =
  let scope = match scope with Some s -> s | None -> scope_of_path path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> check_lexbuf ~file:path ~scope (Lexing.from_channel ic))

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d
