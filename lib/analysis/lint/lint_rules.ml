(* Static enforcement of the repo's shared-memory discipline, over the
   compiler-libs parsetree. Three rule classes (see docs/ANALYSIS.md):

   1. [mutable-field] — algorithm modules (lib/stacks, lib/core,
      lib/reclaim, lib/funnel) may not declare [mutable] record fields
      unless the field carries [@plain_ok "why it is safely published"].
      The simulator cannot intercept plain loads/stores, so an
      unannotated mutable field silently invalidates every simulator
      result and linearizability verdict (lib/prim/prim_intf.ml).

   2. [unpadded-atomic] — in the same modules, an [Atomic.t] stored into
      a record or array (a long-lived shared block) must be created with
      [make_padded], or carry [@unpadded_ok "why false sharing is
      acceptable"] (e.g. short-lived per-operation nodes).

   3. [obj-confinement] — [Obj.*] is confined to lib/prim/padding.ml;
      everywhere else it can break the GC invariants padding relies on.

   The checker is syntactic by design: it recognises the repo idiom
   ([module A = P.Atomic], [A.make] / [Atomic.make]) rather than doing
   type-driven analysis, which keeps it dependency-free and fast enough
   to run on every build. *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type scope = {
  check_discipline : bool;
      (* rules 1 and 2: algorithm modules written against Prim_intf *)
  allow_obj : bool; (* rule 3 exemption: lib/prim/padding.ml *)
}

(* Directories whose modules implement the stack/prim interfaces and are
   therefore subject to the access-discipline rules. *)
let discipline_dirs = [ "lib/stacks"; "lib/core"; "lib/reclaim"; "lib/funnel" ]

let scope_of_path path =
  let path =
    String.concat "/" (String.split_on_char '\\' path) (* windows-proof *)
  in
  let contains_dir dir =
    (* match ".../lib/stacks/foo.ml" and "lib/stacks/foo.ml" *)
    let re = dir ^ "/" in
    let len_p = String.length path and len_r = String.length re in
    let rec scan i =
      if i + len_r > len_p then false
      else if String.sub path i len_r = re then
        i = 0 || path.[i - 1] = '/'
      else scan (i + 1)
    in
    scan 0
  in
  {
    check_discipline = List.exists contains_dir discipline_dirs;
    allow_obj =
      contains_dir "lib/prim" && Filename.basename path = "padding.ml";
  }

(* ------------------------------------------------------------------ *)
(* Attribute helpers                                                    *)

open Parsetree

let string_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let find_attr name attrs =
  List.find_opt (fun a -> a.attr_name.Location.txt = name) attrs

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ------------------------------------------------------------------ *)
(* The checker                                                          *)

let flatten_longident lid = Longident.flatten lid

(* [A.make] / [Atomic.make] / [P.Atomic.make]: the repo idiom for
   creating an atomic cell on the substrate. *)
let is_atomic_make lid =
  match List.rev (flatten_longident lid) with
  | "make" :: owner :: _ -> owner = "A" || owner = "Atomic"
  | _ -> false

let is_array_builder lid =
  match flatten_longident lid with
  | [ "Array"; ("make" | "init") ] -> true
  | _ -> false

let check_structure ~file ~scope structure =
  let diags = ref [] in
  let add loc rule message =
    let line, col = pos_of loc in
    diags := { file; line; col; rule; message } :: !diags
  in

  (* Rule 1: mutable record fields need [@plain_ok "..."]. *)
  let check_label (ld : label_declaration) =
    match ld.pld_mutable with
    | Asttypes.Immutable -> ()
    | Asttypes.Mutable -> (
        match find_attr "plain_ok" ld.pld_attributes with
        | None ->
            add ld.pld_loc "mutable-field"
              (Printf.sprintf
                 "mutable field '%s' in an algorithm module: shared-memory \
                  communication must go through Atomic (the simulator cannot \
                  intercept plain stores); if the field is safely published, \
                  annotate it [@plain_ok \"how it is published\"]"
                 ld.pld_name.Location.txt)
        | Some attr -> (
            match string_payload attr with
            | Some arg when String.trim arg <> "" -> ()
            | Some _ | None ->
                add ld.pld_loc "mutable-field"
                  (Printf.sprintf
                     "[@plain_ok] on mutable field '%s' needs a publication \
                      argument, e.g. [@plain_ok \"thread-private\"]"
                     ld.pld_name.Location.txt)))
  in

  (* Rule 2: [A.make]/[Atomic.make] results stored in records or arrays.
     [in_shared_block] is true while visiting the arguments of a record
     literal or an [Array.make]/[Array.init] call. *)
  let check_unpadded loc =
    add loc "unpadded-atomic"
      "Atomic cell stored in a long-lived shared block is created with \
       'make', not 'make_padded': contended neighbours will false-share a \
       cache line; use make_padded, or annotate the call [@unpadded_ok \
       \"why false sharing is acceptable here\"]"
  in

  (* Rule 3: Obj confinement. *)
  let check_obj lid loc =
    match flatten_longident lid with
    | "Obj" :: _ when not scope.allow_obj ->
        add loc "obj-confinement"
          "Obj.* outside lib/prim/padding.ml: unsafe representation \
           shenanigans are confined there so the GC invariants the padding \
           relies on are reviewed in one place"
    | _ -> ()
  in

  let rec expr ~in_shared_block (e : expression) =
    let has_unpadded_ok () =
      match find_attr "unpadded_ok" e.pexp_attributes with
      | Some attr -> (
          match string_payload attr with Some s -> String.trim s <> "" | None -> false)
      | None -> false
    in
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        check_obj txt loc
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        check_obj txt loc;
        (if
           scope.check_discipline && in_shared_block
           && is_atomic_make txt
           && not (has_unpadded_ok ())
         then check_unpadded e.pexp_loc);
        let arg_context =
          (* Entering Array.make/Array.init arguments counts as entering
             a shared block: the cells live together in one array. *)
          in_shared_block || is_array_builder txt
        in
        List.iter (fun (_, a) -> expr ~in_shared_block:arg_context a) args
    | Pexp_record (fields, base) ->
        Option.iter (expr ~in_shared_block) base;
        List.iter (fun (_, v) -> expr ~in_shared_block:true v) fields
    | Pexp_array items -> List.iter (expr ~in_shared_block:true) items
    | _ ->
        (* Generic descent that preserves the context flag:
           [default_iterator.expr it e] iterates [e]'s children through
           [it.expr], i.e. back through this function. *)
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> expr ~in_shared_block child);
            type_declaration = (fun _ td -> type_declaration td);
          }
        in
        Ast_iterator.default_iterator.expr it e
  and type_declaration (td : type_declaration) =
    match td.ptype_kind with
    | Ptype_record labels when scope.check_discipline ->
        List.iter check_label labels
    | _ -> ()
  in

  let iterator =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> expr ~in_shared_block:false e);
      type_declaration = (fun _ td -> type_declaration td);
    }
  in
  iterator.structure iterator structure;
  (* Diagnostics in source order. *)
  List.sort
    (fun a b -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
    !diags

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let check_lexbuf ~file ~scope lexbuf =
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> check_structure ~file ~scope structure
  | exception exn ->
      let loc, msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) ->
            (e.Location.main.Location.loc, "syntax error")
        | _ -> (Location.none, Printexc.to_string exn)
      in
      let line, col = pos_of loc in
      [ { file; line; col; rule = "parse-error"; message = msg } ]

let check_string ?scope ~filename src =
  let scope = match scope with Some s -> s | None -> scope_of_path filename in
  check_lexbuf ~file:filename ~scope (Lexing.from_string src)

let check_file ?scope path =
  let scope = match scope with Some s -> s | None -> scope_of_path path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> check_lexbuf ~file:path ~scope (Lexing.from_channel ic))

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d
