(** Static lint for the repo's shared-memory discipline.

    The syntactic rule classes, reported as [file:line:col] diagnostics
    (rules 11-13 — [guard-balance], [loop-progress], [protocol] — are
    path-sensitive and live in {!Sec_typestate.Typestate}):
    - [mutable-field]: no [mutable] record field in algorithm modules
      without [@plain_ok "publication argument"];
    - [unpadded-atomic]: atomics stored in long-lived shared blocks
      (records, arrays) must be [make_padded] or [@unpadded_ok "..."];
    - [obj-confinement]: [Obj.*] only in [lib/prim/padding.ml];
    - [ebr-guard]: in discipline modules referencing [Ebr], reads of
      node-record fields (record types named [*node*]) must sit inside a
      syntactic [guard ...] call or under [@unguarded_ok "reason"];
    - [retire-once]: in the same modules, [retire] calls must be inside
      a branch selected by a [compare_and_set] (the unlink CAS) or carry
      [@retire_ok "reason"];
    - [retry-discipline]: a retry loop on shared atomic state (a [while]
      on an atomic read, or a recursive CAS/exchange loop) must pace
      itself with a [Backoff]/[relax]/[yield] call or carry
      [@await_ok "why the wait is bounded"];
    - [progress-class]: a module binding both [push] and [pop] must
      declare [[@@@progress "lock_free"]] or [[@@@progress "blocking"]],
      and a lock_free module must not wait unboundedly on another
      thread's write ([spin_until]/[spin_while] outside an [@await_ok]
      extent);
    - [fresh-node]: in modules recycling nodes through
      {!Sec_reclaim.Magazine}, node record literals must be the
      magazine-miss fallback ([Mag.alloc] first), annotated
      [@fresh_ok "reason"];
    - [spec-class]: the same modules must declare the sequential spec
      their histories refine — [[@@@spec "stack"]] (strict LIFO) or
      [[@@@spec "pool"]] (order-relaxed bag) — matching the registry
      entry's [spec] field, which selects the refinement properties
      checked dynamically by {!Sec_refine.Refine};
    - [plain-publication]: a [get x … set x] read-modify-plain-write
      chain on an atomic cell written from two or more entry points,
      with no ordering RMW between the read and the plain store — the
      static mirror of the dynamic detector's write-write-race model.
      The chain may span helper calls, so the rule is computed by
      {!Sec_summary.Summary} over the interprocedural summaries; it
      shares this module's diagnostic surface and the
      [@publication_ok "reason"] annotation discipline.

    The intent annotations ([@unguarded_ok], [@retire_ok], [@await_ok],
    [@fresh_ok]) share one subtree-covering discipline: each needs a
    non-empty reason string, and each covers the whole subtree it sits
    on, so one annotation on a helper body covers every occurrence
    inside it.

    The per-file rules are syntactic; interprocedural knowledge enters
    through {!facts}, a bundle of location predicates computed by
    {!Sec_summary.Summary} that only ever {e discharge} obligations
    (never add new ones), so a no-facts run is sound but may demand
    annotations the analysis proves unnecessary — {!audit_file} finds
    those.

    The two EBR rules are the static prong of the reclamation-safety
    layer ({!Sec_analysis.Reclaim_checker} is the dynamic prong); the
    two progress rules are the static prong of the progress layer
    ({!Sec_analysis.Progress_monitor} and the suspension classifier
    {!Sec_sim.Explore.classify} are the dynamic prong). See
    docs/ANALYSIS.md.

    Run as [dune build @lint] via [bin/sec_lint]. *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type scope = {
  check_discipline : bool;
      (** apply the mutable-field, unpadded-atomic, ebr-guard,
          retire-once, retry-discipline and progress-class rules (the
          EBR pair also requires the module to reference [Ebr]) *)
  allow_obj : bool;  (** exempt from obj-confinement *)
}

(** Interprocedural facts supplied by {!Sec_summary.Summary}. Every
    predicate takes the (line, col) anchor of a would-be diagnostic
    (or, for [paced_within], the (start_line, end_line) span of the
    loop) and returns whether the interprocedural analysis discharges
    that obligation. Facts only suppress diagnostics. *)
type facts = {
  guarded_at : int * int -> bool;
      (** rule 4: every call site of the enclosing function runs under a
          guard (or the read sits inside a guard-wrapper call) *)
  gated_at : int * int -> bool;
      (** rule 5: every call site of the enclosing function is gated by
          an unlink compare_and_set *)
  awaited_at : int * int -> bool;
      (** rules 6/7: every call site sits under an [@await_ok] extent *)
  fresh_at : int * int -> bool;
      (** rule 8: every call site sits under a [@fresh_ok] extent *)
  paced_within : int * int -> bool;
      (** rule 6: a call inside the span resolves to a function whose
          transitive effect paces (Backoff/relax/yield) *)
}

(** The all-false bundle: a purely syntactic run. *)
val no_facts : facts

(** One annotation occurrence, identified by name and the position of
    the attribute name (so two same-named annotations on one line stay
    distinct). *)
type annotation = {
  ann_name : string;
  ann_line : int;
  ann_col : int;
  ann_reason : string;
}

(** The auditable annotation names paired with the rules each one can
    suppress. *)
val auditable_annotations : (string * string list) list

type audit_entry = {
  audit_annotation : annotation;
  audit_rules : string list;  (** the rules this annotation can suppress *)
  audit_live : bool;
      (** deleting the annotation would change the diagnostic set; a
          stale ([not audit_live]) annotation can be removed *)
}

(** Scope inferred from a path: discipline rules apply under
    [lib/stacks], [lib/core], [lib/reclaim] and [lib/funnel]; [Obj] is
    allowed only in [lib/prim/padding.ml]. *)
val scope_of_path : string -> scope

(** Check a source file on disk. [scope] defaults to
    [scope_of_path path]; [facts] defaults to {!no_facts}. Parses from
    an in-memory copy of the file so locations are computed exactly as
    in {!check_string}. *)
val check_file : ?facts:facts -> ?scope:scope -> string -> diagnostic list

(** Check source text directly (for fixtures and tests); [filename] is
    used for reporting and the default scope. *)
val check_string :
  ?facts:facts -> ?scope:scope -> filename:string -> string -> diagnostic list

(** Audit the annotations of a file: for each occurrence, recheck with
    that one occurrence treated as absent; unchanged diagnostics mean
    the annotation is stale. Parse failures audit as the empty list
    (the check entry points report the parse error). *)
val audit_file : ?facts:facts -> ?scope:scope -> string -> audit_entry list

val audit_string :
  ?facts:facts -> ?scope:scope -> filename:string -> string -> audit_entry list

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string

(** Serialise diagnostics as a minimal SARIF 2.1.0 document (one run,
    one result per diagnostic, 1-based columns). *)
val sarif_of_diagnostics : diagnostic list -> string

(** {2 Shared idiom vocabulary}

    The summary analysis ({!Sec_summary.Summary}) recognises the same
    source idioms as the lint; exporting the predicates keeps the two
    prongs in lockstep. *)

val flatten_longident : Longident.t -> string list
val last_component : Longident.t -> string

val is_atomic_make : Longident.t -> bool
(** [A.make] / [Atomic.make] *)

val is_atomic_get : Longident.t -> bool
val is_atomic_set : Longident.t -> bool

val is_retry_rmw_ident : Longident.t -> bool
(** [compare_and_set] / [exchange]: what a retry loop retries on *)

val is_rmw_ident : Longident.t -> bool
(** every ordering RMW ([compare_and_set], [exchange], [fetch_and_add],
    [incr], [decr]): presence on a path discharges a rule-10 chain *)

val is_cas_ident : Longident.t -> bool
val is_guard_call : Longident.t -> bool
val is_retire_call : Longident.t -> bool
val is_pacing_ident : Longident.t -> bool
val is_spin_wait_ident : Longident.t -> bool

val is_array_get : Longident.t -> bool
(** [Array.get] / [Array.unsafe_get], the desugaring of [a.(i)] *)

(** Does the expression's subtree contain an identifier satisfying the
    predicate? *)
val expr_contains_ident :
  (Longident.t -> bool) -> Parsetree.expression -> bool

(** Payload of a [\[@attr "reason"\]] attribute, when it is a string
    constant. *)
val string_payload : Parsetree.attribute -> string option

val find_attr : string -> Parsetree.attributes -> Parsetree.attribute option

(** (line, 0-based column) of a location's start. *)
val pos_of : Location.t -> int * int

(** Parse an implementation from source text, locations rooted at
    [file]. Raises on syntax errors. *)
val parse_string : file:string -> string -> Parsetree.structure

(** Whole-file read, binary-safe. *)
val read_file : string -> string
