(** Static lint for the repo's shared-memory discipline.

    Nine rule classes, reported as [file:line:col] diagnostics:
    - [mutable-field]: no [mutable] record field in algorithm modules
      without [@plain_ok "publication argument"];
    - [unpadded-atomic]: atomics stored in long-lived shared blocks
      (records, arrays) must be [make_padded] or [@unpadded_ok "..."];
    - [obj-confinement]: [Obj.*] only in [lib/prim/padding.ml];
    - [ebr-guard]: in discipline modules referencing [Ebr], reads of
      node-record fields (record types named [*node*]) must sit inside a
      syntactic [guard ...] call or under [@unguarded_ok "reason"];
    - [retire-once]: in the same modules, [retire] calls must be inside
      a branch selected by a [compare_and_set] (the unlink CAS) or carry
      [@retire_ok "reason"];
    - [retry-discipline]: a retry loop on shared atomic state (a [while]
      on an atomic read, or a recursive CAS/exchange loop) must pace
      itself with a [Backoff]/[relax]/[yield] call or carry
      [@await_ok "why the wait is bounded"];
    - [progress-class]: a module binding both [push] and [pop] must
      declare [[@@@progress "lock_free"]] or [[@@@progress "blocking"]],
      and a lock_free module must not wait unboundedly on another
      thread's write ([spin_until]/[spin_while] outside an [@await_ok]
      extent);
    - [fresh-node]: in modules recycling nodes through
      {!Sec_reclaim.Magazine}, node record literals must be the
      magazine-miss fallback ([Mag.alloc] first), annotated
      [@fresh_ok "reason"];
    - [spec-class]: the same modules must declare the sequential spec
      their histories refine — [[@@@spec "stack"]] (strict LIFO) or
      [[@@@spec "pool"]] (order-relaxed bag) — matching the registry
      entry's [spec] field, which selects the refinement properties
      checked dynamically by {!Sec_refine.Refine}.

    The three intent annotations ([@unguarded_ok], [@retire_ok],
    [@await_ok]) share one subtree-covering discipline: each needs a
    non-empty reason string, and each covers the whole subtree it sits
    on, so one annotation on a helper body covers every occurrence
    inside it.

    The two EBR rules are the static prong of the reclamation-safety
    layer ({!Sec_analysis.Reclaim_checker} is the dynamic prong); the
    two progress rules are the static prong of the progress layer
    ({!Sec_analysis.Progress_monitor} and the suspension classifier
    {!Sec_sim.Explore.classify} are the dynamic prong). See
    docs/ANALYSIS.md.

    Run as [dune build @lint] via [bin/sec_lint]. *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type scope = {
  check_discipline : bool;
      (** apply the mutable-field, unpadded-atomic, ebr-guard,
          retire-once, retry-discipline and progress-class rules (the
          EBR pair also requires the module to reference [Ebr]) *)
  allow_obj : bool;  (** exempt from obj-confinement *)
}

(** Scope inferred from a path: discipline rules apply under
    [lib/stacks], [lib/core], [lib/reclaim] and [lib/funnel]; [Obj] is
    allowed only in [lib/prim/padding.ml]. *)
val scope_of_path : string -> scope

(** Check a source file on disk. [scope] defaults to
    [scope_of_path path]. *)
val check_file : ?scope:scope -> string -> diagnostic list

(** Check source text directly (for fixtures and tests); [filename] is
    used for reporting and the default scope. *)
val check_string : ?scope:scope -> filename:string -> string -> diagnostic list

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
