(** Shadow heap for reclamation safety: tracks every reclaimable node
    through [alloc -> publish -> unlink -> retire -> reclaim] and reports
    lifetime bugs invisible to the race detector. Fed by instrumented
    algorithm code and by the EBR substrate (see lib/reclaim); installed
    globally for a simulation or exploration run like
    {!Race_detector.active}. See docs/ANALYSIS.md ("Reclamation prong"). *)

type kind =
  | Use_after_retire
      (** access inside a guard entered after the node's retirement *)
  | Use_after_reclaim  (** access after the destructor ran *)
  | Unguarded_access
      (** a shared node dereferenced by a fiber holding no guard *)
  | Retire_while_reachable  (** retired while still published *)
  | Double_retire  (** retired (or destructed) twice *)
  | Recycle_of_live
      (** a magazine recycled a node whose previous life had not reached
          the reclaimed state — recycling must never skip the grace
          period *)
  | Epoch_stalled
      (** a fiber pins the epoch while another's limbo grows past the
          bound *)
  | Guard_leak  (** fiber finished inside a guard, or unbalanced exit *)
  | Slab_double_free
      (** a slab/arena slot was freed while already free — the
          allocator-level double-free below {!Double_retire} *)
  | Alloc_from_live_slab
      (** an allocator handed out a slot that is still live, or carved
          from a slab/arena already released *)

type report = {
  kind : kind;
  node : int;  (** checker-assigned node id (0 when not about a node) *)
  fiber : int;  (** the fiber whose event triggered the report *)
  other_fiber : int;  (** the other party (retirer, pinner), or -1 *)
  site : string;  (** source location of the triggering event *)
  alloc_site : string;
  retire_site : string;
  detail : string;
}

type t

(** [stall_bound] is the pending-retirement count past which a pinned
    epoch is reported as {!Epoch_stalled}. *)
val create :
  ?max_reports:int -> ?stall_bound:int -> ?capture_sites:bool -> unit -> t

(** {2 Event feed} — direct, for unit tests. [on_alloc] returns the
    node's id; every other event identifies the node by it. *)

val on_alloc : t -> fiber:int -> int

val on_recycle : t -> fiber:int -> node:int -> int
(** A magazine handed the node out again. Legal only from the reclaimed
    state (the full [alloc -> ... -> reclaim] cycle completed); any other
    state is reported as {!Recycle_of_live}. Returns a fresh id for the
    node's next life; the old id is dropped from the shadow heap. *)

val on_publish : t -> fiber:int -> node:int -> unit
val on_unlink : t -> fiber:int -> node:int -> unit
val on_retire : t -> fiber:int -> node:int -> unit
val on_reclaim : t -> fiber:int -> node:int -> unit
val on_access : t -> fiber:int -> node:int -> unit
val on_enter : t -> fiber:int -> unit
val on_exit : t -> fiber:int -> unit
val on_fiber_exit : t -> fiber:int -> unit

(** {2 Slab/arena lifecycle} — the allocator below the node lifecycle
    (lib/reclaim/slab.ml). Slab ids are allocator-assigned and live in
    their own namespace; slot indices are per-slab. *)

val on_slot_alloc : t -> fiber:int -> slab:int -> slot:int -> int
(** The allocator handed out [slot] of [slab]: starts a node life
    ({!on_alloc}) bound to the slot and returns its id. A slot still
    live, or a slab already released, is {!Alloc_from_live_slab}. *)

val on_slot_free : t -> fiber:int -> slab:int -> slot:int -> unit
(** The slot returned to a free-list: unbinds and closes the node's
    life. A slot not currently live is {!Slab_double_free}. *)

val on_slab_release : t -> fiber:int -> slab:int -> unit
(** The slab's storage is gone: every still-bound node is forced to the
    reclaimed state (later touches report use-after-reclaim), and later
    allocations from the slab report {!Alloc_from_live_slab}. *)

(** {2 Reports} *)

val reports : t -> report list
(** In event order; bounded by [max_reports]. *)

val dropped : t -> int
val kind_to_string : kind -> string
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(** {2 Global installation}

    The simulated schedulers run fibers one at a time in one domain, so a
    plain ref is safe. Instrumented algorithms call the [note_*] hooks,
    which cost one ref read when no checker is installed. A node id of 0
    means "allocated while no checker was active" and is ignored. *)

val active : t option ref
val install : t -> unit
val uninstall : unit -> unit
val with_checker : t -> (unit -> 'a) -> 'a

val note_alloc : fiber:int -> int

val note_recycle : fiber:int -> node:int -> int
(** The recycling counterpart of {!note_alloc}: validates the previous
    life ended in reclamation and returns the fresh id (0 when no
    checker is installed). Pass the node's previous [chk] id. *)

val note_publish : fiber:int -> node:int -> unit
val note_unlink : fiber:int -> node:int -> unit
val note_retire : fiber:int -> node:int -> unit
val note_reclaim : fiber:int -> node:int -> unit
val note_access : fiber:int -> node:int -> unit
val note_slot_alloc : fiber:int -> slab:int -> slot:int -> int
val note_slot_free : fiber:int -> slab:int -> slot:int -> unit
val note_slab_release : fiber:int -> slab:int -> unit
val note_enter : fiber:int -> unit
val note_exit : fiber:int -> unit
