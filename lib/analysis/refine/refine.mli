(** Refinement-property checking: the fourth analysis prong
    (docs/ANALYSIS.md, "Refinement prong").

    A {!property} states, in a small DSL, that the concurrent histories
    of a registry entry refine a sequential specification — strict LIFO
    linearizability ({!Sec_harness.Registry.Stack_sem}, decided by
    {!Sec_spec.Lin_check}) or the order-relaxed bag semantics of the SEC
    pool ({!Sec_harness.Registry.Pool_sem}) — under every schedule a
    {!strategy} explores and under adversarial {!adversary} combinators
    (operation cancellation, crash mid-operation).

    Properties compile down to {!Sec_sim.Explore} scenarios: the
    workload's fibers run the structure through a
    {!Sec_spec.History.Instrument} recorder, the final check drains the
    survivors and asks the spec checker. A failing schedule is
    delta-debugged ({!Sec_sim.Explore.shrink_schedule}), the workload is
    greedily pruned, and the result is replayed before being reported as
    a {!witness} — a handful of placements, not a 500-event trace. *)

(** {1 The DSL} *)

(** One operation of a fiber's program (values are [int]s; use distinct
    values across the workload so the bag checker's accounting is
    exact). *)
type op = Push of int | Pop | Peek

type workload = {
  prefill : int list;  (** initial stack contents, top first (unrecorded) *)
  threads : op list list;  (** one program per fiber *)
  max_threads : int option;
      (** capacity passed to [create]; defaults to the fiber count. Set
          it *below* the fiber count to drive over-subscription paths. *)
}

type adversary =
  | No_adversary
  | Cancel of { victim : int; keep_ops : int }
      (** fiber [victim] abandons its program after [keep_ops] completed
          operations — a timeout/cancel that never issues the rest. The
          truncated workload must still refine the spec under the full
          schedule exploration of the property's strategy. *)
  | Crash_sweep of { max_points : int }
      (** every fiber in turn is crash-frozen just before each of its
          first [max_points] atomic accesses (fair baseline, as
          {!Sec_sim.Explore.classify}); peers must still refine the
          *bag* relaxation with the victim's in-flight pushes optional
          (a crashed pop may legitimately consume a value it never
          reported). [Blocked]/stalled-drain outcomes are allowed iff
          the entry is declared [Blocking]. *)

type strategy =
  | Dpor of { max_preemptions : int; max_schedules : int }
      (** bounded-preemption DFS with DPOR pruning
          ({!Sec_sim.Explore.for_all} [~strategy:`Dpor]) *)
  | Weighted of { seed : int64; runs : int; stay_weight : int }
      (** seeded weighted-random runs ({!Sec_sim.Explore.for_random}) *)

type property = {
  pname : string;
  refines : Sec_harness.Registry.semantics;
      (** the spec checked: [Stack_sem] via {!Sec_spec.Lin_check},
          [Pool_sem] via the bag checker *)
  workload : workload;
  adversary : adversary;
}

(** {1 Verdicts and witnesses} *)

type witness = {
  w_structure : string;
  w_property : string;
  w_strategy : string;  (** ["dpor"], ["weighted:0x<seed>"], ["crash:v<i>@<n>"] *)
  w_kind : string;
      (** violation category, stable across replay: ["check-failed"],
          ["raised"], ["livelock"], ["crash-blocked"] ... *)
  w_schedule : Sec_sim.Explore.placement list;  (** shrunk *)
  w_original_len : int;  (** placements before shrinking *)
  w_workload : workload;  (** possibly op-shrunk *)
  w_replayed : bool;
      (** the shrunk schedule was replayed once more and reproduced
          [w_kind] *)
}

type verdict =
  | Refines of { schedules : int; truncated : bool }
  | Violates of witness
  | Inconclusive of string
      (** the spec checker gave up within its budget — never reported as
          a pass *)

val witness_to_string : witness -> string
val verdict_to_string : verdict -> string

(** {1 Compiling and checking} *)

(** The {!Sec_sim.Explore} scenario a property's workload compiles to
    (exposed for tests that drive [Explore] directly). [gave_up] is set
    when the spec checker returns without a verdict; [adversary] here
    only applies [Cancel] truncation and crash-aware relaxation —
    [Crash_sweep] placement is the driver's business. *)
val scenario_of :
  maker:(module Sec_harness.Registry.MAKER) ->
  refines:Sec_harness.Registry.semantics ->
  gave_up:bool ref ->
  ?crash_victim:int ->
  workload ->
  unit ->
  (unit -> unit) list * (unit -> bool)

(** [check entry strategy prop] explores the property under the strategy
    (ignored by [Crash_sweep] properties, which sweep the fair baseline)
    and shrinks any counterexample before reporting it. *)
val check :
  ?quantum:int ->
  ?max_steps:int ->
  Sec_harness.Registry.entry ->
  strategy ->
  property ->
  verdict

(** The default property suite for an entry, selected by its declared
    [spec]: a concurrent push/pop mix, a peek interaction (stacks only),
    a cancelled-operation variant, and a crash sweep. *)
val default_properties : Sec_harness.Registry.entry -> property list

(** The pinned seeds CI and the test suite use (≥ 3). *)
val default_seeds : int64 list

(** The fault-revealing property for a seeded mutant
    ({!Sec_harness.Registry.mutants}), matched by registry name — the
    mutant is expected to {!Violates} it under both DPOR and the pinned
    seeds. [None] for entries that are not seeded mutants. *)
val mutant_property : Sec_harness.Registry.entry -> property option

(** [check_entry entry] runs every default property: the first (mix)
    property under DPOR and under every seed, the rest under DPOR —
    bounded budgets throughout. Returns
    [(property name, strategy label, verdict)] rows. *)
val check_entry :
  ?quantum:int ->
  ?max_steps:int ->
  ?max_schedules:int ->
  ?runs:int ->
  ?seeds:int64 list ->
  Sec_harness.Registry.entry ->
  (string * string * verdict) list
