(* Refinement-property checking — the fourth analysis prong (see
   docs/ANALYSIS.md, "Refinement prong", and refine.mli for the model).

   A property compiles to an {!Explore} scenario: each workload thread
   becomes a fiber driving the structure through the
   {!History.Instrument} recorder, and the final check drains what
   survived (through recorded pops, so the drain is part of the history)
   and hands the merged event list to the declared spec's checker —
   {!Lin_check} for [Stack_sem], the bag matcher below for [Pool_sem].
   Prefill goes through the *raw* stack before the fibers start and is
   accounted for via the checkers' [~init], so it adds no concurrent
   events.

   Counterexamples shrink in two alternating phases: ddmin over the
   schedule's forced preemptions ({!Explore.shrink_schedule}), then
   greedy removal of workload operations and prefill values (replaying
   the surviving schedule after each removal), under a global replay
   budget. Violation identity across replays is the coarse *category*
   (check-failed / raised / livelock), not the exact message — a shrunk
   run may fail at a different line of the same bug. *)

module Explore = Sec_sim.Explore
module History = Sec_spec.History
module Lin_check = Sec_spec.Lin_check
module Registry = Sec_harness.Registry
module SP = Sec_sim.Sim.Prim

type op = Push of int | Pop | Peek

type workload = {
  prefill : int list;
  threads : op list list;
  max_threads : int option;
}

type adversary =
  | No_adversary
  | Cancel of { victim : int; keep_ops : int }
  | Crash_sweep of { max_points : int }

type strategy =
  | Dpor of { max_preemptions : int; max_schedules : int }
  | Weighted of { seed : int64; runs : int; stay_weight : int }

type property = {
  pname : string;
  refines : Registry.semantics;
  workload : workload;
  adversary : adversary;
}

type witness = {
  w_structure : string;
  w_property : string;
  w_strategy : string;
  w_kind : string;
  w_schedule : Explore.placement list;
  w_original_len : int;
  w_workload : workload;
  w_replayed : bool;
}

type verdict =
  | Refines of { schedules : int; truncated : bool }
  | Violates of witness
  | Inconclusive of string

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                      *)

let op_to_string = function
  | Push v -> Printf.sprintf "push %d" v
  | Pop -> "pop"
  | Peek -> "peek"

let workload_to_string w =
  Printf.sprintf "prefill=[%s]%s"
    (String.concat ";" (List.map string_of_int w.prefill))
    (String.concat ""
       (List.mapi
          (fun i ops ->
            Printf.sprintf " t%d=[%s]" i
              (String.concat "," (List.map op_to_string ops)))
          w.threads))

let witness_to_string wt =
  String.concat "\n"
    [
      "structure: " ^ wt.w_structure;
      "property:  " ^ wt.w_property;
      "strategy:  " ^ wt.w_strategy;
      "violation: " ^ wt.w_kind;
      Printf.sprintf "schedule:  [%s]  (%d -> %d placements after shrinking)"
        (Explore.schedule_to_string wt.w_schedule)
        wt.w_original_len
        (List.length wt.w_schedule);
      "workload:  " ^ workload_to_string wt.w_workload;
      Printf.sprintf "replayed:  %b" wt.w_replayed;
    ]

let verdict_to_string = function
  | Refines { schedules; truncated } ->
      Printf.sprintf "refines (%d schedules%s)" schedules
        (if truncated then ", truncated" else "")
  | Violates w ->
      Printf.sprintf "VIOLATES (%s, %d-placement witness)" w.w_kind
        (List.length w.w_schedule)
  | Inconclusive msg -> "inconclusive: " ^ msg

(* ------------------------------------------------------------------ *)
(* The bag (pool) spec checker                                          *)

(* Order-relaxed refinement: every pop that returned a value must have a
   distinct producer — a prefill value, an [optional] producer (under
   the crash adversary: a push the frozen victim may or may not have
   completed), or a recorded push whose invocation does not follow the
   pop's response. Peeked values need a producer but consume nothing.
   [Pop None] is always allowed: a pool's emptiness is not synchronised
   across shards, which is exactly the relaxation [Pool_sem] names.
   Matching is per value, earliest producer to earliest consumer — with
   the only constraint being producer.inv <= consumer.resp, the greedy
   pairing is optimal. *)
let set_check ~init ~optional events =
  let add tbl v x =
    match Hashtbl.find_opt tbl v with
    | Some l -> l := x :: !l
    | None -> Hashtbl.add tbl v (ref [ x ])
  in
  let producers : (int, int64 list ref) Hashtbl.t = Hashtbl.create 16 in
  let consumers : (int, int64 list ref) Hashtbl.t = Hashtbl.create 16 in
  let peeked : (int, int64 list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun v -> add producers v Int64.min_int) init;
  List.iter (fun v -> add producers v Int64.min_int) optional;
  List.iter
    (fun (e : int History.event) ->
      match e.History.op with
      | History.Push v -> add producers v e.inv
      | History.Pop (Some v) -> add consumers v e.resp
      | History.Peek (Some v) -> add peeked v e.resp
      | History.Pop None | History.Peek None -> ())
    events;
  let ok = ref true in
  Hashtbl.iter
    (fun v resps ->
      let prods =
        match Hashtbl.find_opt producers v with
        | Some l -> List.sort Int64.compare !l
        | None -> []
      in
      let rec matchup prods resps =
        match resps with
        | [] -> ()
        | r :: rest -> (
            match prods with
            | p :: prest when Int64.compare p r <= 0 -> matchup prest rest
            | _ -> ok := false)
      in
      matchup prods (List.sort Int64.compare !resps))
    consumers;
  Hashtbl.iter
    (fun v resps ->
      let prods =
        match Hashtbl.find_opt producers v with Some l -> !l | None -> []
      in
      List.iter
        (fun r ->
          if not (List.exists (fun p -> Int64.compare p r <= 0) prods) then
            ok := false)
        !resps)
    peeked;
  !ok

(* ------------------------------------------------------------------ *)
(* Compiling a workload to an Explore scenario                          *)

let pushes_of ops = List.filter_map (function Push v -> Some v | _ -> None) ops

let scenario_of ~maker ~refines ~gave_up ?crash_victim w () =
  let module F = (val maker : Registry.MAKER) in
  let module S = F (SP) in
  let module R = History.Instrument (SP) (S) in
  let nthreads = List.length w.threads in
  let max_threads =
    match w.max_threads with Some m -> m | None -> max 1 nthreads
  in
  (* The recorder is sized for the fiber count, the stack for the
     requested capacity — they differ in over-subscription workloads
     (more fibers than [max_threads]), which some properties use to
     drive the capacity-excluded retry paths. *)
  let r =
    {
      R.stack = S.create ~max_threads ();
      history = History.create ~max_threads:(max 1 nthreads);
    }
  in
  List.iter (fun v -> S.push r.R.stack ~tid:0 v) (List.rev w.prefill);
  let bodies =
    List.mapi
      (fun i ops () ->
        List.iter
          (function
            | Push v -> R.push r ~tid:i v
            | Pop -> ignore (R.pop r ~tid:i)
            | Peek -> ignore (R.peek r ~tid:i))
          ops)
      w.threads
  in
  let drain_bound =
    List.length w.prefill + List.length (List.concat_map pushes_of w.threads) + 2
  in
  let check () =
    (* Drain through *recorded* pops: leftover contents become part of
       the checked history. The drain is bounded — a duplication bug
       could otherwise keep a pop returning values forever, and the spec
       checker convicts the duplicate regardless of where the drain
       stops. *)
    let rec drain k =
      if k > 0 then
        match R.pop r ~tid:0 with Some _ -> drain (k - 1) | None -> ()
    in
    drain drain_bound;
    let events = History.events r.R.history in
    match crash_victim with
    | Some victim ->
        (* Crash-aware relaxation (even for [Stack_sem]): the frozen
           victim's pushes may or may not have landed, so they are
           optional producers; a value its frozen pop consumed simply
           never reappears, which the bag matcher already tolerates. *)
        let optional =
          match List.nth_opt w.threads victim with
          | None -> []
          | Some ops -> pushes_of ops
        in
        set_check ~init:w.prefill ~optional events
    | None -> (
        match refines with
        | Registry.Pool_sem -> set_check ~init:w.prefill ~optional:[] events
        | Registry.Stack_sem -> (
            match Lin_check.check ~init:w.prefill events with
            | Lin_check.Linearizable -> true
            | Lin_check.Not_linearizable -> false
            | Lin_check.Gave_up ->
                gave_up := true;
                true))
  in
  (bodies, check)

(* ------------------------------------------------------------------ *)
(* Violation identity and shrinking                                     *)

let violation_category : Explore.violation_kind -> string = function
  | Explore.Check_failed -> "check-failed"
  | Explore.Fiber_raised _ -> "raised"
  | Explore.Livelock -> "livelock"
  | Explore.Race_detected _ -> "race"
  | Explore.Reclamation_violation _ -> "reclamation"

let outcome_category : Explore.one_outcome -> string option = function
  | Explore.Ok_run true -> None
  | Explore.Ok_run false -> Some "check-failed"
  | Explore.Raised _ -> Some "raised"
  | Explore.Livelocked -> Some "livelock"

let take n l = List.filteri (fun i _ -> i < n) l
let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let apply_cancel adversary w =
  match adversary with
  | Cancel { victim; keep_ops } ->
      {
        w with
        threads =
          List.mapi
            (fun i ops -> if i = victim then take keep_ops ops else ops)
            w.threads;
      }
  | No_adversary | Crash_sweep _ -> w

(* Every single-removal neighbour of a workload: one operation dropped
   from one thread (fiber count is preserved — the schedule's fiber
   indices must stay meaningful), or one prefill value dropped. *)
let workload_candidates w =
  let thread_variants =
    List.concat
      (List.mapi
         (fun i ops ->
           List.mapi
             (fun j _ ->
               {
                 w with
                 threads =
                   List.mapi
                     (fun i' ops' -> if i' = i then drop_nth j ops' else ops')
                     w.threads;
               })
             ops)
         w.threads)
  in
  let prefill_variants =
    List.mapi (fun k _ -> { w with prefill = drop_nth k w.prefill }) w.prefill
  in
  thread_variants @ prefill_variants

(* Shrink a failing (workload, schedule) pair: ddmin the schedule, then
   greedily drop operations (re-ddmin after each success), all under one
   replay budget. The predicate replays deterministically, so accepted
   candidates are genuine reproductions of the same violation
   category. *)
let shrink ~quantum ~max_steps ~maker ~refines ~category workload schedule =
  let budget = ref 400 in
  let still w s =
    !budget > 0
    && begin
         decr budget;
         let gave_up = ref false in
         let o =
           Explore.replay ~quantum ~max_steps ~schedule:s
             (scenario_of ~maker ~refines ~gave_up w)
         in
         match outcome_category o with
         | Some c -> c = category && not !gave_up
         | None -> false
       end
  in
  let sched = Explore.shrink_schedule ~still_fails:(still workload) schedule in
  let rec prune w s =
    if !budget <= 0 then (w, s)
    else
      match List.find_opt (fun w' -> still w' s) (workload_candidates w) with
      | Some w' ->
          let s' = Explore.shrink_schedule ~still_fails:(still w') s in
          prune w' s'
      | None -> (w, s)
  in
  prune workload sched

(* ------------------------------------------------------------------ *)
(* Checking                                                             *)

let strategy_label = function
  | Dpor _ -> "dpor"
  | Weighted { seed; _ } -> Printf.sprintf "weighted:0x%Lx" seed

let setup_budget_crash msg =
  (* The distinguished [Failure] from Explore's setup context: the
     check's drain inherited a stalled protocol state. *)
  let needle = "exceeded the step budget" in
  let n = String.length needle and m = String.length msg in
  let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
  scan 0

(* Crash sweep over the fair baseline, as {!Explore.classify} but
   consulting the (crash-aware) check whenever the peers complete. *)
let check_crash ~quantum ~max_steps entry prop ~max_points =
  let maker = entry.Registry.maker in
  let w = prop.workload in
  let n = List.length w.threads in
  let runs = ref 0 in
  let bad = ref None in
  (try
     for victim = 0 to n - 1 do
       let after = ref 1 in
       let sweeping = ref true in
       while !sweeping do
         if !after > max_points then sweeping := false
         else begin
           incr runs;
           let gave_up = ref false in
           let scenario =
             scenario_of ~maker ~refines:prop.refines ~gave_up
               ~crash_victim:victim w
           in
           let fail kind =
             bad := Some (victim, !after, kind);
             raise Stdlib.Exit
           in
           let consult verdict =
             match verdict with
             | Some false when not !gave_up -> fail "check-failed"
             | _ -> ()
           in
           match
             Explore.crashed_run ~quantum ~max_steps ~victim ~after:!after
               scenario
           with
           | Explore.Survived { engaged = false }, verdict ->
               (* The victim completed before the point: no further
                  suspension points on this victim. *)
               consult verdict;
               sweeping := false
           | Explore.Survived { engaged = true }, verdict ->
               consult verdict;
               incr after
           | Explore.Blocked, _ ->
               (* Peers stalled on the frozen victim — the definition of
                  a blocking protocol; a violation only for entries
                  declared lock-free (and those are test_progress's
                  business: report it here too, cheaply). *)
               if entry.Registry.progress = Registry.Blocking then incr after
               else fail "crash-blocked"
           | Explore.Crashed msg, _ ->
               if
                 setup_budget_crash msg
                 && entry.Registry.progress = Registry.Blocking
               then
                 (* The post-crash drain stalled on a held combiner/lock:
                    the blocking analogue of [Blocked], reached from the
                    setup context. *)
                 incr after
               else fail ("raised: " ^ msg)
         end
       done
     done
   with Stdlib.Exit -> ());
  match !bad with
  | None -> Refines { schedules = !runs; truncated = false }
  | Some (victim, after, kind) ->
      Violates
        {
          w_structure = entry.Registry.name;
          w_property = prop.pname;
          w_strategy = Printf.sprintf "crash:v%d@%d" victim after;
          w_kind = kind;
          w_schedule = [];
          w_original_len = 0;
          w_workload = w;
          w_replayed = true;
        }

let check ?(quantum = 6) ?(max_steps = 50_000) entry strategy prop =
  match prop.adversary with
  | Crash_sweep { max_points } ->
      check_crash ~quantum ~max_steps entry prop ~max_points
  | No_adversary | Cancel _ -> (
      let maker = entry.Registry.maker in
      let refines = prop.refines in
      let w = apply_cancel prop.adversary prop.workload in
      let gave_up = ref false in
      let scenario = scenario_of ~maker ~refines ~gave_up w in
      let result =
        match strategy with
        | Dpor { max_preemptions; max_schedules } ->
            Explore.for_all ~strategy:`Dpor ~max_preemptions ~max_schedules
              ~quantum ~max_steps scenario
        | Weighted { seed; runs; stay_weight } ->
            Explore.for_random ~quantum ~max_steps ~runs ~stay_weight ~seed
              scenario
      in
      match result with
      | Explore.Passed { schedules; truncated } ->
          if !gave_up then
            Inconclusive "the linearizability check gave up within its budget"
          else Refines { schedules; truncated }
      | Explore.Failed { kind; schedule; explored = _ } ->
          let category = violation_category kind in
          let original_len = List.length schedule in
          let w', s' =
            shrink ~quantum ~max_steps ~maker ~refines ~category w schedule
          in
          let replayed =
            let gu = ref false in
            match
              outcome_category
                (Explore.replay ~quantum ~max_steps ~schedule:s'
                   (scenario_of ~maker ~refines ~gave_up:gu w'))
            with
            | Some c -> c = category
            | None -> false
          in
          Violates
            {
              w_structure = entry.Registry.name;
              w_property = prop.pname;
              w_strategy = strategy_label strategy;
              w_kind = category;
              w_schedule = s';
              w_original_len = original_len;
              w_workload = w';
              w_replayed = replayed;
            })

(* ------------------------------------------------------------------ *)
(* Default property suites                                              *)

let mix_threads = [ [ Push 1; Pop ]; [ Push 2; Pop ] ]

let default_properties entry =
  match entry.Registry.spec with
  | Registry.Stack_sem ->
      [
        {
          pname = "lifo-mix";
          refines = Registry.Stack_sem;
          workload =
            { prefill = [ 91; 90 ]; threads = mix_threads; max_threads = None };
          adversary = No_adversary;
        };
        {
          pname = "lifo-peek";
          refines = Registry.Stack_sem;
          workload =
            {
              prefill = [ 90 ];
              threads = [ [ Push 1; Pop ]; [ Peek; Pop ] ];
              max_threads = None;
            };
          adversary = No_adversary;
        };
        {
          pname = "lifo-cancel";
          refines = Registry.Stack_sem;
          workload =
            { prefill = [ 90 ]; threads = mix_threads; max_threads = None };
          adversary = Cancel { victim = 1; keep_ops = 1 };
        };
        {
          pname = "crash-bag";
          refines = Registry.Stack_sem;
          workload =
            { prefill = [ 90 ]; threads = mix_threads; max_threads = None };
          adversary = Crash_sweep { max_points = 8 };
        };
      ]
  | Registry.Pool_sem ->
      [
        {
          pname = "bag-mix";
          refines = Registry.Pool_sem;
          workload =
            { prefill = [ 91; 90 ]; threads = mix_threads; max_threads = None };
          adversary = No_adversary;
        };
        {
          pname = "bag-cancel";
          refines = Registry.Pool_sem;
          workload =
            { prefill = [ 90 ]; threads = mix_threads; max_threads = None };
          adversary = Cancel { victim = 1; keep_ops = 1 };
        };
        {
          pname = "crash-bag";
          refines = Registry.Pool_sem;
          workload =
            { prefill = [ 90 ]; threads = mix_threads; max_threads = None };
          adversary = Crash_sweep { max_points = 8 };
        };
      ]

let default_seeds = [ 0x5ECL; 0xC0FFEEL; 0xBADC0DEL ]

(* The fault-revealing property for each seeded mutant
   (Sec_core.Config.mutation), keyed by the registry name. The default
   suite deliberately does not over-subscribe the stack, so the
   batch-overflow mutant needs its own workload: three announcers on a
   capacity-2 structure, all landing in one aggregator's batch. *)
let mutant_property entry =
  match entry.Registry.name with
  | "SEC!OVF" ->
      Some
        {
          pname = "batch-overflow";
          refines = Registry.Stack_sem;
          workload =
            {
              prefill = [];
              threads = [ [ Push 10 ]; [ Push 11 ]; [ Push 12 ] ];
              max_threads = Some 2;
            };
          adversary = No_adversary;
        }
  | "SEC!POP" ->
      Some
        {
          pname = "pop-reorder";
          refines = Registry.Stack_sem;
          workload =
            { prefill = [ 1; 2; 3 ]; threads = [ [ Pop ]; [ Pop ] ]; max_threads = None };
          adversary = No_adversary;
        }
  | _ -> None

let check_entry ?(quantum = 6) ?(max_steps = 50_000) ?(max_schedules = 400)
    ?(runs = 10) ?(seeds = default_seeds) entry =
  let props = default_properties entry in
  let dpor = Dpor { max_preemptions = 1; max_schedules } in
  List.concat
    (List.mapi
       (fun idx p ->
         let strategies =
           match p.adversary with
           | Crash_sweep _ -> [ dpor ] (* the sweep ignores the strategy *)
           | _ when idx = 0 ->
               (* The mix property carries the full strategy matrix:
                  DPOR plus every pinned seed. *)
               dpor
               :: List.map
                    (fun seed -> Weighted { seed; runs; stay_weight = 4 })
                    seeds
           | _ -> [ dpor ]
         in
         List.map
           (fun s ->
             let label =
               match p.adversary with
               | Crash_sweep _ -> "crash-sweep"
               | _ -> strategy_label s
             in
             (p.pname, label, check ~quantum ~max_steps entry s p))
           strategies)
       props)
