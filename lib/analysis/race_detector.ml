(* Vector-clock happens-before tracker for the simulated substrate.

   Every atomic access performed under {!Sec_sim.Sim} or
   {!Sec_sim.Explore} is fed to an installed detector as a
   (fiber, location, operation) event. The detector maintains:

   - a vector clock per fiber (program order);
   - per location, a *release clock* — the join of the clocks of every
     write so far — which readers and RMWs acquire;
   - per location, the epoch of the last *plain store* ([Atomic.set]);
   - per location, a write counter and, per fiber, the counter value
     observed at its last read — the ingredients of ABA detection.

   The happens-before model is deliberately weaker than OCaml's
   sequentially-consistent atomics and encodes the repo's *discipline*
   rather than the memory model:

   - [get] acquires (joins the location's release clock): reading a value
     orders you after every write that produced it;
   - [compare_and_set], [exchange], [fetch_and_add] acquire and release:
     an RMW is a synchronisation point in both directions;
   - [set] releases but does {e not} acquire: a plain store is blind — it
     overwrites whatever is there without looking.

   Under this model two plain stores to the same location that are not
   ordered by an acquire chain form a {e write-write race}: one of them
   clobbers the other and no reader can tell. This is exactly the
   get-then-set lost-update idiom, a double lock-release, or an unowned
   slot overwrite — while correct CAS-retry loops, combiner hand-offs and
   lock-protected stores all remain clean because ownership was acquired
   through an RMW or an observing read. Racing a plain store against a
   CAS is *not* flagged: CAS-managed locations are designed to race, and
   the loser of such a pair is the CAS, which detects it.

   An {e ABA hazard} is reported when a successful CAS matches a value
   that was overwritten at least twice since the CASing fiber last read
   the location: the value went A -> ... -> A and the CAS cannot tell.
   With immutable freshly-allocated nodes this is usually benign, so ABA
   hazards are reported separately from races.

   Reports carry best-effort source locations captured from the OCaml
   backtrace at the two accesses and at the cell's allocation site. *)

type kind = Write_write_race | Aba_hazard

type hazard = {
  kind : kind;
  loc : int;  (** simulator location id of the atomic cell *)
  fiber_a : int;  (** fiber of the earlier access *)
  fiber_b : int;  (** fiber whose access triggered the report *)
  site_a : string;  (** source location of the earlier access *)
  site_b : string;  (** source location of the triggering access *)
  alloc_site : string;  (** where the cell was allocated *)
}

(* ------------------------------------------------------------------ *)
(* Vector clocks, indexed by a dense fiber index.                        *)

module Clock = struct
  type t = int array ref

  let create () = ref (Array.make 8 0)

  let ensure (c : t) n =
    if Array.length !c <= n then begin
      let bigger = Array.make (max (2 * Array.length !c) (n + 1)) 0 in
      Array.blit !c 0 bigger 0 (Array.length !c);
      c := bigger
    end

  let get (c : t) i = if i < Array.length !c then !c.(i) else 0

  let bump (c : t) i =
    ensure c i;
    !c.(i) <- !c.(i) + 1

  let join (dst : t) (src : t) =
    ensure dst (Array.length !src - 1);
    Array.iteri (fun i v -> if v > !dst.(i) then !dst.(i) <- v) !src

  let copy (c : t) : t = ref (Array.copy !c)
end

(* ------------------------------------------------------------------ *)

type epoch = { by : int; by_fid : int; at : int; site : string }
(* [by]: dense fiber index of the writer; [by_fid]: its public fiber id;
   [at]: the writer's clock component at the time of the store. *)

type loc_state = {
  mutable release : Clock.t;  (* join of all writers' clocks *)
  mutable last_set : epoch option;  (* last plain store *)
  mutable writes : int;  (* total writes (set/rmw/make) *)
  mutable alloc_site : string;
  last_read_at : (int, int) Hashtbl.t;  (* fiber idx -> writes seen *)
}

type t = {
  clocks : (int, Clock.t) Hashtbl.t;  (* fiber id -> clock *)
  index : (int, int) Hashtbl.t;  (* fiber id -> dense index *)
  mutable next_index : int;
  locs : (int, loc_state) Hashtbl.t;
  exited : Clock.t;  (* join of the clocks of finished fibers *)
  mutable hazards_rev : hazard list;
  mutable dropped : int;
  max_hazards : int;
  capture_sites : bool;
}

let create ?(max_hazards = 64) ?(capture_sites = true) () =
  {
    clocks = Hashtbl.create 64;
    index = Hashtbl.create 64;
    next_index = 0;
    locs = Hashtbl.create 256;
    exited = Clock.create ();
    hazards_rev = [];
    dropped = 0;
    max_hazards;
    capture_sites;
  }

let fiber_index t fid =
  match Hashtbl.find_opt t.index fid with
  | Some i -> i
  | None ->
      let i = t.next_index in
      t.next_index <- i + 1;
      Hashtbl.add t.index fid i;
      i

let clock_of t fid =
  match Hashtbl.find_opt t.clocks fid with
  | Some c -> c
  | None ->
      let c = Clock.create () in
      Hashtbl.add t.clocks fid c;
      c

(* Source location of the innermost frame outside the substrate and this
   module — the algorithm code that performed the access. *)
let here t =
  if not t.capture_sites then "<sites off>"
  else
    let bt = Printexc.get_callstack 24 in
    match Printexc.backtrace_slots bt with
    | None -> "<no debug info>"
    | Some slots ->
        (* Engine frames live under lib/sim and lib/analysis; stdlib
           frames (effect.ml, fun.ml, list.ml, ...) are recorded with
           bare filenames, while workspace code always carries a
           directory. Everything else is the algorithm under test. *)
        let internal file =
          (not (String.contains file '/'))
          || String.starts_with ~prefix:"lib/sim/" file
          || String.starts_with ~prefix:"lib/analysis/" file
        in
        let rec scan i =
          if i >= Array.length slots then "<unknown>"
          else
            match Printexc.Slot.location slots.(i) with
            | Some { Printexc.filename; line_number; _ }
              when not (internal filename) ->
                Printf.sprintf "%s:%d" filename line_number
            | _ -> scan (i + 1)
        in
        scan 0

let loc_state t loc site =
  match Hashtbl.find_opt t.locs loc with
  | Some s -> s
  | None ->
      let s =
        {
          release = Clock.create ();
          last_set = None;
          writes = 0;
          alloc_site = site;
          last_read_at = Hashtbl.create 8;
        }
      in
      Hashtbl.add t.locs loc s;
      s

let report t hz =
  if List.length t.hazards_rev >= t.max_hazards then t.dropped <- t.dropped + 1
  else t.hazards_rev <- hz :: t.hazards_rev

(* ------------------------------------------------------------------ *)
(* Event feed                                                           *)

let on_make t ~fiber ~loc =
  let idx = fiber_index t fiber in
  let c = clock_of t fiber in
  Clock.bump c idx;
  let site = here t in
  let s = loc_state t loc site in
  s.alloc_site <- site;
  s.writes <- s.writes + 1;
  s.release <- Clock.copy c

let on_read t ~fiber ~loc =
  let idx = fiber_index t fiber in
  let c = clock_of t fiber in
  Clock.bump c idx;
  let s = loc_state t loc "<unallocated>" in
  Clock.join c s.release;
  Hashtbl.replace s.last_read_at idx s.writes

let on_write t ~fiber ~loc =
  let idx = fiber_index t fiber in
  let c = clock_of t fiber in
  Clock.bump c idx;
  let site = here t in
  let s = loc_state t loc "<unallocated>" in
  (match s.last_set with
  | Some e when e.by <> idx && Clock.get c e.by < e.at ->
      (* The previous plain store is not ordered before this one: two
         blind writes race. *)
      report t
        {
          kind = Write_write_race;
          loc;
          fiber_a = e.by_fid;
          fiber_b = fiber;
          site_a = e.site;
          site_b = site;
          alloc_site = s.alloc_site;
        }
  | _ -> ());
  s.writes <- s.writes + 1;
  s.last_set <- Some { by = idx; by_fid = fiber; at = Clock.get c idx; site };
  (* Release without acquiring: the location's clock learns about us, we
     learn nothing about prior writers. *)
  Clock.join s.release c

let on_rmw t ~fiber ~loc =
  let idx = fiber_index t fiber in
  let c = clock_of t fiber in
  Clock.bump c idx;
  let s = loc_state t loc "<unallocated>" in
  (* Acquire + release. *)
  Clock.join c s.release;
  Clock.join s.release c;
  s.writes <- s.writes + 1;
  Hashtbl.replace s.last_read_at idx s.writes

let on_cas t ~fiber ~loc ~success =
  let idx = fiber_index t fiber in
  let c = clock_of t fiber in
  Clock.bump c idx;
  let s = loc_state t loc "<unallocated>" in
  Clock.join c s.release;
  (if success then begin
     (match Hashtbl.find_opt s.last_read_at idx with
     | Some seen when s.writes - seen >= 2 ->
         (* The value matched, yet the location was overwritten at least
            twice since this fiber last looked: A -> B -> A. *)
         report t
           {
             kind = Aba_hazard;
             loc;
             fiber_a = fiber;
             fiber_b = fiber;
             site_a = s.alloc_site;
             site_b = here t;
             alloc_site = s.alloc_site;
           }
     | _ -> ());
     Clock.join s.release c;
     s.writes <- s.writes + 1
   end);
  Hashtbl.replace s.last_read_at idx s.writes

(* Fork/join edges of the scheduler itself. *)

let on_spawn t ~parent ~child =
  let pc = clock_of t parent in
  let cc = clock_of t child in
  ignore (fiber_index t child);
  Clock.join cc pc

let on_exit t ~fiber = Clock.join t.exited (clock_of t fiber)
let on_join t ~fiber = Clock.join (clock_of t fiber) t.exited

(* ------------------------------------------------------------------ *)
(* Reports                                                              *)

let hazards t = List.rev t.hazards_rev
let races t = List.filter (fun h -> h.kind = Write_write_race) (hazards t)
let aba_hazards t = List.filter (fun h -> h.kind = Aba_hazard) (hazards t)
let dropped t = t.dropped

let pp_hazard ppf h =
  match h.kind with
  | Write_write_race ->
      Format.fprintf ppf
        "write-write race on cell %d (alloc %s): fiber %d at %s vs fiber %d \
         at %s"
        h.loc h.alloc_site h.fiber_a h.site_a h.fiber_b h.site_b
  | Aba_hazard ->
      Format.fprintf ppf
        "ABA hazard on cell %d (alloc %s): fiber %d CAS at %s succeeded \
         after >= 2 intervening writes"
        h.loc h.alloc_site h.fiber_b h.site_b

let hazard_to_string h = Format.asprintf "%a" pp_hazard h

(* ------------------------------------------------------------------ *)
(* Global installation point used by the simulated substrate.

   The schedulers run fibers one at a time in a single domain, so a plain
   ref is safe; [install]/[uninstall] bracket a simulation or an
   exploration run. *)

let active : t option ref = ref None

let install t = active := Some t
let uninstall () = active := None

let with_detector t f =
  let saved = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := saved) f
