(* Progress watermarks for simulated runs: the dynamic half of the
   progress prong (docs/ANALYSIS.md, "Progress prong").

   The monitor watches two counters per run — operation completions and
   scheduling events (atomic accesses) — and keeps a per-fiber watermark
   of where each in-flight operation started:

   - {b starvation}: an operation is still in flight while its peers have
     completed at least [starvation_ops] operations since it began. The
     check runs at each completion (completions are much rarer than
     events), scanning the in-flight fibers; one report per stalled
     operation.
   - {b suspected livelock}: at least [livelock_events] scheduling events
     have elapsed since the last completion anywhere while at least one
     operation is in flight — the global retry volume grows but nobody
     finishes. One report per completion-less stretch.

   Both are heuristics over a single schedule: a starvation report says
   this schedule starved a fiber, not that the algorithm is unfair, and a
   quiet run proves nothing. The mechanical lock-freedom verdict is the
   suspension classifier ({!Sec_sim.Explore.classify}), which this module
   complements with cheap always-on watermarks.

   Like {!Race_detector} and {!Reclaim_checker}, the monitor installs
   globally for a run ([active]/[install]/[with_monitor]); the [note_*]
   hooks cost one ref read when no monitor is installed, so instrumented
   code (the harness workload loop, the simulators) runs unchanged
   outside analysis runs. *)

type kind = Starvation | Livelock_suspected

type report = {
  kind : kind;
  fiber : int;  (** the starved fiber, or the fiber whose event tripped
                    the livelock bound *)
  peer_completions : int;
      (** completions by other fibers since the watermark *)
  events : int;  (** global scheduling events at the report *)
  detail : string;
}

type fiber_state = {
  mutable in_op : bool;
  mutable completions_at_start : int;
      (* global completion count when the in-flight op began *)
  mutable own_completions : int;
  mutable starvation_reported : bool; (* throttle: once per operation *)
}

type t = {
  starvation_ops : int;
  livelock_events : int;
  max_reports : int;
  fibers : (int, fiber_state) Hashtbl.t;
  mutable completions : int;
  mutable events : int;
  mutable events_at_last_completion : int;
  mutable in_flight : int;
  mutable livelock_reported : bool; (* throttle: once per dry stretch *)
  mutable reports : report list; (* reversed *)
  mutable dropped : int;
}

let create ?(starvation_ops = 64) ?(livelock_events = 50_000)
    ?(max_reports = 64) () =
  if starvation_ops < 1 then
    invalid_arg "Progress_monitor.create: starvation_ops must be positive";
  if livelock_events < 1 then
    invalid_arg "Progress_monitor.create: livelock_events must be positive";
  {
    starvation_ops;
    livelock_events;
    max_reports;
    fibers = Hashtbl.create 16;
    completions = 0;
    events = 0;
    events_at_last_completion = 0;
    in_flight = 0;
    livelock_reported = false;
    reports = [];
    dropped = 0;
  }

let add_report t r =
  if List.length t.reports < t.max_reports then t.reports <- r :: t.reports
  else t.dropped <- t.dropped + 1

let state_of t fiber =
  match Hashtbl.find_opt t.fibers fiber with
  | Some s -> s
  | None ->
      let s =
        {
          in_op = false;
          completions_at_start = 0;
          own_completions = 0;
          starvation_reported = false;
        }
      in
      Hashtbl.add t.fibers fiber s;
      s

(* ------------------------------------------------------------------ *)
(* Event feed                                                           *)

let on_op_start t ~fiber =
  let s = state_of t fiber in
  if not s.in_op then begin
    s.in_op <- true;
    s.completions_at_start <- t.completions;
    s.starvation_reported <- false;
    t.in_flight <- t.in_flight + 1
  end

(* Starvation is checked here rather than per event: completions are the
   rare edge, and a fiber that performs no events at all (frozen by the
   suspension adversary, or descheduled forever) must still be seen. *)
let check_starvation t ~completer =
  Hashtbl.iter
    (fun fiber s ->
      if
        fiber <> completer && s.in_op
        && not s.starvation_reported
        && t.completions - s.completions_at_start >= t.starvation_ops
      then begin
        s.starvation_reported <- true;
        add_report t
          {
            kind = Starvation;
            fiber;
            peer_completions = t.completions - s.completions_at_start;
            events = t.events;
            detail =
              Printf.sprintf
                "fiber %d has an operation in flight while peers completed \
                 %d operations (bound %d)"
                fiber
                (t.completions - s.completions_at_start)
                t.starvation_ops;
          }
      end)
    t.fibers

let on_op_end t ~fiber =
  let s = state_of t fiber in
  if s.in_op then begin
    s.in_op <- false;
    s.own_completions <- s.own_completions + 1;
    t.in_flight <- t.in_flight - 1;
    t.completions <- t.completions + 1;
    t.events_at_last_completion <- t.events;
    t.livelock_reported <- false;
    check_starvation t ~completer:fiber
  end

let on_event t ~fiber =
  t.events <- t.events + 1;
  if
    t.in_flight > 0
    && not t.livelock_reported
    && t.events - t.events_at_last_completion > t.livelock_events
  then begin
    t.livelock_reported <- true;
    add_report t
      {
        kind = Livelock_suspected;
        fiber;
        peer_completions = 0;
        events = t.events;
        detail =
          Printf.sprintf
            "%d scheduling events since the last completion with %d \
             operation(s) in flight (bound %d)"
            (t.events - t.events_at_last_completion)
            t.in_flight t.livelock_events;
      }
  end

let on_fiber_exit t ~fiber =
  (* A fiber that finishes mid-operation (the workload loop never does;
     the suspension adversary can) stops counting as in flight so a
     finished run does not read as livelocked. Its starvation watermark
     has already been checked at each peer completion. *)
  let s = state_of t fiber in
  if s.in_op then begin
    s.in_op <- false;
    t.in_flight <- t.in_flight - 1
  end

(* ------------------------------------------------------------------ *)
(* Reports                                                              *)

let reports t = List.rev t.reports
let dropped t = t.dropped
let completions t = t.completions
let events t = t.events

let kind_to_string = function
  | Starvation -> "starvation"
  | Livelock_suspected -> "livelock-suspected"

let pp_report ppf r =
  Format.fprintf ppf "[%s] fiber %d: %s" (kind_to_string r.kind) r.fiber
    r.detail

let report_to_string r = Format.asprintf "%a" pp_report r

(* ------------------------------------------------------------------ *)
(* Global installation (same pattern as {!Race_detector.active}: the
   simulated schedulers run one fiber at a time in one domain). *)

let active : t option ref = ref None
let install m = active := Some m
let uninstall () = active := None

let with_monitor m f =
  install m;
  Fun.protect ~finally:uninstall f

let note_op_start ~fiber =
  match !active with None -> () | Some m -> on_op_start m ~fiber

let note_op_end ~fiber =
  match !active with None -> () | Some m -> on_op_end m ~fiber

let note_event ~fiber =
  match !active with None -> () | Some m -> on_event m ~fiber
