(* Shadow heap for reclamation safety under the simulated substrate.

   Epoch-based reclamation (lib/reclaim/ebr.ml) is only as safe as the
   discipline of its callers: every traversal of reclaimable nodes must
   happen between [enter] and [exit], a node must be retired exactly once
   and only after it has been unlinked, and no fiber may pin the epoch
   while the others' limbo lists grow without bound. None of that is
   visible to the race detector — a use-after-retire is not a data race,
   it is a lifetime bug.

   This module tracks every reclaimable node through the lifecycle

       alloc -> publish -> unlink -> retire -> reclaim

   fed by instrumented algorithm code (see {!Sec_reclaim.Reclaimed_stack})
   and by the EBR substrate itself ([enter]/[exit]/[retire]/destructor
   events). The schedulers run fibers one at a time, so plain state and a
   global installation ref are safe, mirroring {!Race_detector}.

   What each report means:

   - [Use_after_retire]: a fiber touched a node inside a critical section
     it entered *after* the node was retired. EBR only protects references
     obtained before the retirement; this access could see freed memory in
     the C++ original.
   - [Use_after_reclaim]: a fiber touched a node whose destructor has
     already run — the definitive use-after-free.
   - [Unguarded_access]: a published node was dereferenced by a fiber that
     holds no guard at all; any concurrent retirement makes this a
     use-after-free, whether or not this schedule exhibits one.
   - [Retire_while_reachable]: a node was retired while still published
     (never unlinked): a concurrent traversal starting *after* the
     retirement can still reach it legitimately.
   - [Double_retire]: the same node was retired (or its destructor run)
     twice — the classic double-free.
   - [Epoch_stalled]: a fiber has pinned the epoch since before the
     oldest of another fiber's > [stall_bound] pending retirements; limbo
     lists grow without bound (the liveness failure of EBR).
   - [Guard_leak]: a fiber finished while still inside a critical
     section, or exited a guard it never entered — the epoch would stay
     pinned forever.
   - [Slab_double_free]: a slab/arena slot was freed while already on a
     free-list — the allocator-level double-free (distinct from
     [Double_retire], which is about the EBR protocol above it).
   - [Alloc_from_live_slab]: an allocator handed out a slot that is
     still live, or carved from a slab/arena already released — either
     way two owners now hold the same storage.

   Node ids are assigned by the checker ([on_alloc]); id 0 means "not
   tracked" (allocated while no checker was installed) and is ignored by
   every [note_*] wrapper, so instrumented algorithms run unchanged and
   essentially for free outside analysis runs. *)

type kind =
  | Use_after_retire
  | Use_after_reclaim
  | Unguarded_access
  | Retire_while_reachable
  | Double_retire
  | Recycle_of_live
  | Epoch_stalled
  | Guard_leak
  | Slab_double_free
  | Alloc_from_live_slab

type report = {
  kind : kind;
  node : int;  (** checker-assigned node id (0 when not about a node) *)
  fiber : int;  (** the fiber whose event triggered the report *)
  other_fiber : int;  (** the other party (retirer, pinner), or -1 *)
  site : string;  (** source location of the triggering event *)
  alloc_site : string;  (** where the node was allocated *)
  retire_site : string;  (** where the node was retired *)
  detail : string;
}

type state = Allocated | Published | Unlinked | Retired | Reclaimed

let state_to_string = function
  | Allocated -> "allocated"
  | Published -> "published"
  | Unlinked -> "unlinked"
  | Retired -> "retired"
  | Reclaimed -> "reclaimed"

type node_info = {
  mutable state : state;
  alloc_site : string;
  mutable retire_fiber : int;
  mutable retire_site : string;
  mutable retire_seq : int;  (** global event number of the retirement *)
}

type fiber_info = {
  mutable guard_depth : int;
  mutable guard_seq : int;  (** event number of the outermost [enter] *)
  mutable pending : int;  (** retirements not yet reclaimed *)
  mutable oldest_pending_seq : int;
  mutable stall_reported : bool;  (** throttle: one stall per drain cycle *)
}

(* One slab (or arena slab) as the allocator below the node lifecycle
   sees it: which slots are bound to live shadow-heap nodes, and whether
   the slab's storage is still valid at all. *)
type slab_info = {
  mutable released : bool;
  slots : (int, int) Hashtbl.t;  (** slot index -> live node id *)
}

type t = {
  nodes : (int, node_info) Hashtbl.t;
  slabs : (int, slab_info) Hashtbl.t;
  fibers : (int, fiber_info) Hashtbl.t;
  mutable next_node : int;
  mutable seq : int;  (** global event counter ordering enters/retires *)
  mutable reports_rev : report list;
  mutable dropped : int;
  max_reports : int;
  stall_bound : int;
  capture_sites : bool;
}

let create ?(max_reports = 64) ?(stall_bound = 64) ?(capture_sites = true) () =
  {
    nodes = Hashtbl.create 256;
    slabs = Hashtbl.create 16;
    fibers = Hashtbl.create 16;
    next_node = 1;
    seq = 0;
    reports_rev = [];
    dropped = 0;
    max_reports;
    stall_bound;
    capture_sites;
  }

let fiber_info t fid =
  match Hashtbl.find_opt t.fibers fid with
  | Some fi -> fi
  | None ->
      let fi =
        {
          guard_depth = 0;
          guard_seq = 0;
          pending = 0;
          oldest_pending_seq = max_int;
          stall_reported = false;
        }
      in
      Hashtbl.add t.fibers fid fi;
      fi

(* Source location of the innermost frame outside the substrate, the
   analysis layer and the EBR engine — the algorithm code that caused the
   event (same heuristic as {!Race_detector.here}). *)
let here t =
  if not t.capture_sites then "<sites off>"
  else
    let bt = Printexc.get_callstack 24 in
    match Printexc.backtrace_slots bt with
    | None -> "<no debug info>"
    | Some slots ->
        let internal file =
          (not (String.contains file '/'))
          || String.starts_with ~prefix:"lib/sim/" file
          || String.starts_with ~prefix:"lib/analysis/" file
          || file = "lib/reclaim/ebr.ml"
        in
        let rec scan i =
          if i >= Array.length slots then "<unknown>"
          else
            match Printexc.Slot.location slots.(i) with
            | Some { Printexc.filename; line_number; _ }
              when not (internal filename) ->
                Printf.sprintf "%s:%d" filename line_number
            | _ -> scan (i + 1)
        in
        scan 0

let report t ~kind ~node ~fiber ?(other = -1) ?(detail = "") () =
  if List.length t.reports_rev >= t.max_reports then
    t.dropped <- t.dropped + 1
  else
    let alloc_site, retire_site =
      match Hashtbl.find_opt t.nodes node with
      | Some n -> (n.alloc_site, n.retire_site)
      | None -> ("<untracked>", "<untracked>")
    in
    t.reports_rev <-
      {
        kind;
        node;
        fiber;
        other_fiber = other;
        site = here t;
        alloc_site;
        retire_site;
        detail;
      }
      :: t.reports_rev

(* ------------------------------------------------------------------ *)
(* Event feed (unit-testable without a simulator)                       *)

let on_alloc t ~fiber:_ =
  t.seq <- t.seq + 1;
  let id = t.next_node in
  t.next_node <- id + 1;
  Hashtbl.add t.nodes id
    {
      state = Allocated;
      alloc_site = here t;
      retire_fiber = -1;
      retire_site = "<not retired>";
      retire_seq = max_int;
    };
  id

let on_publish t ~fiber ~node =
  t.seq <- t.seq + 1;
  match Hashtbl.find_opt t.nodes node with
  | None -> ()
  | Some n -> (
      match n.state with
      | Allocated | Unlinked | Published -> n.state <- Published
      | Retired ->
          report t ~kind:Use_after_retire ~node ~fiber ~other:n.retire_fiber
            ~detail:"node re-published after it was retired" ();
          n.state <- Published
      | Reclaimed ->
          report t ~kind:Use_after_reclaim ~node ~fiber ~other:n.retire_fiber
            ~detail:"node re-published after its destructor ran" ())

let on_unlink t ~fiber:_ ~node =
  t.seq <- t.seq + 1;
  match Hashtbl.find_opt t.nodes node with
  | None -> ()
  | Some n -> (
      match n.state with
      | Allocated | Published | Unlinked -> n.state <- Unlinked
      | Retired | Reclaimed -> ())

(* Stall check: does some *other* fiber hold a guard it entered before the
   oldest retirement this fiber is still waiting to reclaim? *)
let check_stall t ~fiber fi =
  if fi.pending > t.stall_bound && not fi.stall_reported then
    Hashtbl.iter
      (fun fid (other : fiber_info) ->
        if
          (not fi.stall_reported)
          && fid <> fiber && other.guard_depth > 0
          && other.guard_seq < fi.oldest_pending_seq
        then begin
          fi.stall_reported <- true;
          report t ~kind:Epoch_stalled ~node:0 ~fiber ~other:fid
            ~detail:
              (Printf.sprintf
                 "fiber %d has pinned the epoch since before the oldest of \
                  fiber %d's %d pending retirements"
                 fid fiber fi.pending)
            ()
        end)
      t.fibers

let on_retire t ~fiber ~node =
  t.seq <- t.seq + 1;
  match Hashtbl.find_opt t.nodes node with
  | None -> ()
  | Some n -> (
      match n.state with
      | Retired ->
          report t ~kind:Double_retire ~node ~fiber ~other:n.retire_fiber
            ~detail:"node retired twice" ()
      | Reclaimed ->
          report t ~kind:Double_retire ~node ~fiber ~other:n.retire_fiber
            ~detail:"node retired again after its destructor ran" ()
      | (Allocated | Published | Unlinked) as s ->
          if s = Published then
            report t ~kind:Retire_while_reachable ~node ~fiber
              ~detail:"node was never unlinked from the structure" ();
          n.state <- Retired;
          n.retire_fiber <- fiber;
          n.retire_site <- here t;
          n.retire_seq <- t.seq;
          let fi = fiber_info t fiber in
          fi.pending <- fi.pending + 1;
          if fi.pending = 1 then fi.oldest_pending_seq <- t.seq;
          check_stall t ~fiber fi)

let on_reclaim t ~fiber ~node =
  t.seq <- t.seq + 1;
  match Hashtbl.find_opt t.nodes node with
  | None -> ()
  | Some n -> (
      match n.state with
      | Reclaimed ->
          report t ~kind:Double_retire ~node ~fiber ~other:n.retire_fiber
            ~detail:"destructor ran twice" ()
      | Retired ->
          n.state <- Reclaimed;
          let fi = fiber_info t n.retire_fiber in
          fi.pending <- max 0 (fi.pending - 1);
          if fi.pending = 0 then begin
            fi.oldest_pending_seq <- max_int;
            fi.stall_reported <- false
          end
      | Allocated | Published | Unlinked ->
          (* A destructor without a retirement cannot happen through EBR;
             tolerate it (direct feeds in tests). *)
          n.state <- Reclaimed)

(* Magazine recycling: the node's previous life must have completed the
   whole alloc -> ... -> reclaim cycle before the recycler may hand it
   out again. A node that reaches a magazine without its destructor
   having run (e.g. recycled straight out of a pop, skipping the grace
   period) would mask every use-after-free the shadow heap exists to
   catch — so recycling a non-reclaimed node is itself a report. The
   reincarnation gets a fresh id; the old id is retired from the table
   (stale events against it become no-ops, exactly like untracked
   nodes). *)
let on_recycle t ~fiber ~node =
  t.seq <- t.seq + 1;
  (match Hashtbl.find_opt t.nodes node with
  | None -> ()
  | Some n ->
      (match n.state with
      | Reclaimed -> ()
      | s ->
          report t ~kind:Recycle_of_live ~node ~fiber ~other:n.retire_fiber
            ~detail:
              (Printf.sprintf
                 "node recycled while %s: only a reclaimed node (destructor \
                  run after a grace period) may re-enter a magazine"
                 (state_to_string s))
            ());
      Hashtbl.remove t.nodes node);
  on_alloc t ~fiber

(* ------------------------------------------------------------------ *)
(* Slab/arena lifecycle (lib/reclaim/slab.ml): the allocator below the
   node lifecycle. A slot allocation starts a node life ([on_alloc]) and
   binds the node to its (slab, slot); the free unbinds it and closes
   the life ([on_reclaim] — tolerant from any state, exactly like a
   direct destructor feed, because the EBR layer above already reported
   any protocol violation). Releasing a slab invalidates its storage
   wholesale: every still-bound node is forced to the reclaimed state so
   later accesses surface as use-after-reclaim, and later allocations
   from the slab are themselves reports. *)

let slab_info t sid =
  match Hashtbl.find_opt t.slabs sid with
  | Some si -> si
  | None ->
      let si = { released = false; slots = Hashtbl.create 64 } in
      Hashtbl.add t.slabs sid si;
      si

let on_slot_alloc t ~fiber ~slab ~slot =
  let si = slab_info t slab in
  if si.released then
    report t ~kind:Alloc_from_live_slab ~node:0 ~fiber
      ~detail:
        (Printf.sprintf
           "slot %d allocated from slab %d after the slab was released" slot
           slab)
      ();
  (match Hashtbl.find_opt si.slots slot with
  | None -> ()
  | Some prev ->
      report t ~kind:Alloc_from_live_slab ~node:prev ~fiber
        ~detail:
          (Printf.sprintf
             "slot %d of slab %d handed out while still live: two owners now \
              hold the same storage"
             slot slab)
        ());
  let id = on_alloc t ~fiber in
  Hashtbl.replace si.slots slot id;
  id

let on_slot_free t ~fiber ~slab ~slot =
  t.seq <- t.seq + 1;
  let si = slab_info t slab in
  match Hashtbl.find_opt si.slots slot with
  | None ->
      report t ~kind:Slab_double_free ~node:0 ~fiber
        ~detail:
          (Printf.sprintf
             "slot %d of slab %d freed while not live (double free, or free \
              of a slot this slab never handed out)"
             slot slab)
        ()
  | Some node ->
      Hashtbl.remove si.slots slot;
      on_reclaim t ~fiber ~node

let on_slab_release t ~fiber:_ ~slab =
  t.seq <- t.seq + 1;
  let si = slab_info t slab in
  si.released <- true;
  Hashtbl.iter
    (fun _slot node ->
      match Hashtbl.find_opt t.nodes node with
      | None -> ()
      | Some n ->
          (* The storage under the node is gone whatever protocol state
             it was in; later touches are definitive use-after-free. *)
          n.state <- Reclaimed)
    si.slots;
  Hashtbl.reset si.slots

let on_access t ~fiber ~node =
  t.seq <- t.seq + 1;
  match Hashtbl.find_opt t.nodes node with
  | None -> ()
  | Some n -> (
      let fi = fiber_info t fiber in
      match n.state with
      | Reclaimed ->
          report t ~kind:Use_after_reclaim ~node ~fiber ~other:n.retire_fiber
            ~detail:"the destructor has already run" ()
      | Allocated -> () (* still private to the allocating fiber *)
      | Published | Unlinked | Retired ->
          if fi.guard_depth = 0 then
            report t ~kind:Unguarded_access ~node ~fiber
              ~detail:
                (Printf.sprintf "node is %s; the fiber holds no guard"
                   (state_to_string n.state))
              ()
          else if n.state = Retired && fi.guard_seq > n.retire_seq then
            report t ~kind:Use_after_retire ~node ~fiber ~other:n.retire_fiber
              ~detail:"the guard was entered after the retirement" ())

let on_enter t ~fiber =
  t.seq <- t.seq + 1;
  let fi = fiber_info t fiber in
  fi.guard_depth <- fi.guard_depth + 1;
  if fi.guard_depth = 1 then fi.guard_seq <- t.seq

let on_exit t ~fiber =
  t.seq <- t.seq + 1;
  let fi = fiber_info t fiber in
  if fi.guard_depth = 0 then
    report t ~kind:Guard_leak ~node:0 ~fiber
      ~detail:"exit without a matching enter" ()
  else fi.guard_depth <- fi.guard_depth - 1

let on_fiber_exit t ~fiber =
  match Hashtbl.find_opt t.fibers fiber with
  | Some fi when fi.guard_depth > 0 ->
      report t ~kind:Guard_leak ~node:0 ~fiber
        ~detail:
          (Printf.sprintf
             "fiber finished still holding %d guard(s): the epoch stays \
              pinned forever"
             fi.guard_depth)
        ();
      fi.guard_depth <- 0
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Reports                                                              *)

let reports t = List.rev t.reports_rev
let dropped t = t.dropped

let kind_to_string = function
  | Use_after_retire -> "use-after-retire"
  | Use_after_reclaim -> "use-after-reclaim"
  | Unguarded_access -> "unguarded-access"
  | Retire_while_reachable -> "retire-while-reachable"
  | Double_retire -> "double-retire"
  | Recycle_of_live -> "recycle-of-live"
  | Epoch_stalled -> "epoch-stalled"
  | Guard_leak -> "guard-leak"
  | Slab_double_free -> "slab-double-free"
  | Alloc_from_live_slab -> "alloc-from-live-slab"

let pp_report ppf r =
  if r.node = 0 then
    Format.fprintf ppf "%s: fiber %d at %s%s%s" (kind_to_string r.kind)
      r.fiber r.site
      (if r.other_fiber >= 0 then
         Printf.sprintf " (other fiber %d)" r.other_fiber
       else "")
      (if r.detail = "" then "" else ": " ^ r.detail)
  else
    Format.fprintf ppf
      "%s: fiber %d at %s touched node %d (alloc %s, retired%s at %s)%s"
      (kind_to_string r.kind) r.fiber r.site r.node r.alloc_site
      (if r.other_fiber >= 0 then
         Printf.sprintf " by fiber %d" r.other_fiber
       else "")
      r.retire_site
      (if r.detail = "" then "" else ": " ^ r.detail)

let report_to_string r = Format.asprintf "%a" pp_report r

(* ------------------------------------------------------------------ *)
(* Global installation point, mirroring {!Race_detector.active}: the
   schedulers run fibers one at a time in a single domain. *)

let active : t option ref = ref None

let install t = active := Some t
let uninstall () = active := None

let with_checker t f =
  let saved = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := saved) f

(* [note_*]: the hooks instrumented algorithms call. One ref read when no
   checker is installed; node id 0 (allocated while inactive) is skipped. *)

let note_alloc ~fiber =
  match !active with None -> 0 | Some t -> on_alloc t ~fiber

let note_recycle ~fiber ~node =
  match !active with None -> 0 | Some t -> on_recycle t ~fiber ~node

let note_publish ~fiber ~node =
  if node <> 0 then
    match !active with None -> () | Some t -> on_publish t ~fiber ~node

let note_unlink ~fiber ~node =
  if node <> 0 then
    match !active with None -> () | Some t -> on_unlink t ~fiber ~node

let note_retire ~fiber ~node =
  if node <> 0 then
    match !active with None -> () | Some t -> on_retire t ~fiber ~node

let note_reclaim ~fiber ~node =
  if node <> 0 then
    match !active with None -> () | Some t -> on_reclaim t ~fiber ~node

let note_access ~fiber ~node =
  if node <> 0 then
    match !active with None -> () | Some t -> on_access t ~fiber ~node

let note_slot_alloc ~fiber ~slab ~slot =
  match !active with
  | None -> 0
  | Some t -> on_slot_alloc t ~fiber ~slab ~slot

let note_slot_free ~fiber ~slab ~slot =
  match !active with
  | None -> ()
  | Some t -> on_slot_free t ~fiber ~slab ~slot

let note_slab_release ~fiber ~slab =
  match !active with
  | None -> ()
  | Some t -> on_slab_release t ~fiber ~slab

let note_enter ~fiber =
  match !active with None -> () | Some t -> on_enter t ~fiber

let note_exit ~fiber =
  match !active with None -> () | Some t -> on_exit t ~fiber
