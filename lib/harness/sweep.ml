(* Parallel fan-out of independent simulation jobs across a native
   domain pool, built on {!Sec_prim.Native}'s executor (spawn /
   await_all) rather than raw [Domain.spawn] so the pool shares the
   harness's one execution capability.

   Jobs are claimed from a shared atomic index and every result is
   written to its own slot, so the output array is in canonical (input)
   order regardless of completion order: [map ~jobs:n f a] is
   bit-identical to [Array.map f a] for any [n] as long as [f] is a pure
   function of its argument — which simulator runs are, since each
   [Sim.run] owns a fresh cache model, heap and RNG, and the substrate's
   allocation tally is domain-local. A worker never lets an exception
   escape (an escaping exception would abandon the sibling domains
   mid-join); the first failing job's exception, in job order, is
   re-raised after the pool drains. *)

let recommended () = max 1 (Domain.recommended_domain_count ())

(* Clamp a requested pool size to [1 .. recommended_domain_count]:
   oversubscribing domains only adds scheduling noise, and a
   non-positive request means "serial". *)
let clamp_jobs n =
  let r = recommended () in
  if n < 1 then 1 else if n > r then r else n

let default_jobs () = recommended ()

(* [map] takes the pool size literally (floored at 1, capped at the job
   count): the policy clamp to the host's recommended domain count is
   the caller's ({!clamp_jobs}, applied by `sec_bench figures`), so
   tests can force a multi-domain pool even on a single-core host. *)
let map ~jobs f items =
  let n = Array.length items in
  let jobs = min (max 1 jobs) (max 1 n) in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Stdlib.Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Stdlib.Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f items.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          loop ()
        end
      in
      loop ()
    in
    for _ = 1 to jobs do
      Sec_prim.Native.spawn worker
    done;
    Sec_prim.Native.await_all ();
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end
