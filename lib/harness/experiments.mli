(** The experiment registry: one entry per figure and table of the paper's
    evaluation (DESIGN.md holds the index). Experiments are defined over
    {!Runner.BACKEND}s, so the same entry runs simulated (paper-scale) and
    native sweeps. *)

type backend_choice = [ `Sim | `Native | `Both ]

type opts = {
  scale : float;  (** duration multiplier (1.0 = default run length) *)
  csv_dir : string option;  (** write CSV series here if set *)
  backend : backend_choice;  (** which execution substrate(s) to sweep *)
  seed : int;  (** run seed; simulated results are deterministic per seed *)
}

val default_opts : opts

type t = { id : string; title : string; run : opts -> unit }

(** Simulated duration for one data point under [opts]. *)
val duration_cycles : opts -> int

(** Native wall-clock duration for one data point under [opts]. *)
val native_duration : opts -> float

(** Thread counts swept on a given machine profile. *)
val threads_for : Sec_sim.Topology.t -> int list

(** The backends selected by [opts.backend], simulating [topology]. *)
val backends_of :
  opts -> topology:Sec_sim.Topology.t -> (module Runner.BACKEND) list

(** All experiments: fig2..fig12, table1..table3, ablations, extensions
    and the pinned [smoke] run the @bench-smoke alias golden-diffs. *)
val all : t list

val find : string -> t option
val ids : unit -> string list

(** Print an experiment's header and run it. *)
val run_one : opts -> t -> unit

(** {!run_one} over {!all}, blank-line separated. *)
val run_all : opts -> unit
