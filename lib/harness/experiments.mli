(** The experiment registry: one entry per figure and table of the paper's
    evaluation (DESIGN.md holds the index). Experiments are defined over
    {!Runner.BACKEND}s, so the same entry runs simulated (paper-scale) and
    native sweeps. *)

type backend_choice = [ `Sim | `Native | `Both ]

type opts = {
  scale : float;  (** duration multiplier (1.0 = default run length) *)
  csv_dir : string option;  (** write CSV series here if set *)
  backend : backend_choice;  (** which execution substrate(s) to sweep *)
  seed : int;  (** run seed; simulated results are deterministic per seed *)
}

val default_opts : opts

(** A paper figure/table additionally carries a [plan]: its decomposition
    into [cell]s whose jobs are independent simulations, the unit of
    parallelism for `sec_bench figures` (see {!run_figures}). The serial
    [run] path executes the same plan in order, so both paths produce
    byte-identical CSVs. Ablations/extensions have no plan. *)
type t = {
  id : string;
  title : string;
  run : opts -> unit;
  plan : (opts -> cell list) option;
}

and cell = {
  cell_id : string;  (** e.g. ["fig2/100%upd"]; tables use the bare id *)
  cell_fig : string;  (** owning experiment id *)
  cell_topology : string;
  cell_jobs : (unit -> job_result) array;
      (** independent simulations, canonical (row-major) order *)
  cell_render : job_result array -> output;  (** pure *)
}

and job_result =
  | Mops of float * int  (** throughput point, schedule digest *)
  | Degrees of (float * float * float) * int
      (** (batching degree, %elimination, %combining), schedule digest *)

and output =
  | Series of {
      title : string;
      file : string;
      columns : int list;
      rows : (string * float array) list;
    }
  | Keyed of {
      title : string;
      file : string;
      columns : string list;
      rows : (string * string list) list;
    }

(** The schedule digest a job's simulation reported
    ([Sim.stats.schedule_digest]). *)
val digest_of : job_result -> int

(** Simulated duration for one data point under [opts]. *)
val duration_cycles : opts -> int

(** Native wall-clock duration for one data point under [opts]. *)
val native_duration : opts -> float

(** Thread counts swept on a given machine profile. *)
val threads_for : Sec_sim.Topology.t -> int list

(** The backends selected by [opts.backend], simulating [topology]. *)
val backends_of :
  opts -> topology:Sec_sim.Topology.t -> (module Runner.BACKEND) list

(** All experiments: fig2..fig12, table1..table3, ablations, extensions
    and the pinned [smoke] run the @bench-smoke alias golden-diffs. *)
val all : t list

val find : string -> t option
val ids : unit -> string list

(** Print an experiment's header and run it. *)
val run_one : opts -> t -> unit

(** {!run_one} over {!all}, blank-line separated. *)
val run_all : opts -> unit

(** The experiments that carry a figure plan (fig2..fig12, table1..3). *)
val figure_ids : unit -> string list

(** [run_figures opts ~jobs ()] regenerates the paper figure set: every
    plan's cells are decomposed into independent simulation jobs, fanned
    out over a [jobs]-domain {!Sweep} pool (clamped to the host's
    recommended domain count) and merged in canonical order — stdout
    tables, CSVs (under [opts.csv_dir]), the optional [report_path]
    REPORT.md (curve shapes vs EXPERIMENTS.md's recorded claims) and the
    optional [digest_path] per-job schedule-digest CSV are bit-identical
    for every pool size, including [~jobs:1]. [?topology] restricts to
    one machine's cells; [?only] filters by experiment id ("fig2") or
    cell id ("fig2/100%upd") and raises [Invalid_argument] on unknown
    filters. *)
val run_figures :
  opts ->
  jobs:int ->
  ?topology:string ->
  ?only:string list ->
  ?report_path:string ->
  ?digest_path:string ->
  unit ->
  unit
