(** Named constructors for every benchmarked algorithm, as
    substrate-polymorphic functors so the same entry drives both the
    native runner and the simulator. *)

module type MAKER = Sec_spec.Stack_intf.MAKER

type progress_class = Sec_sim.Explore.progress_class = Blocking | Lock_free

(** The sequential specification an entry's concurrent histories must
    refine, checked by the refinement prong (docs/ANALYSIS.md,
    "Refinement prong"): [Stack_sem] is strict LIFO linearizability,
    [Pool_sem] the order-relaxed bag semantics of the SEC pool. Each
    matches the implementing module's [@@@spec] lint declaration (rule
    9). *)
type semantics = Stack_sem | Pool_sem

type entry = {
  name : string;
  maker : (module MAKER);
  progress : progress_class;
      (** the declared progress class of the algorithm's protocol,
          checked against the suspension classifier's verdict
          ({!Sec_sim.Explore.classify}) by [test/test_progress.ml]. For
          SEC this is the class of the combining protocol (same-batch
          announcers wait on their freezer); the sharded/elimination
          fast path — operations alone on a shard — is itself
          lock-free. *)
  spec : semantics;
      (** the sequential spec the structure refines; selects the default
          refinement properties applied by [test/test_refine.ml] and
          [sec_bench check]. *)
}

val semantics_to_string : semantics -> string

(** SEC under an explicit configuration, displayed as [label]. *)
val sec_with :
  ?freeze_backoff:int -> aggregators:int -> label:string -> unit -> entry

(** SEC with the paper's default configuration (2 aggregators). *)
val sec : entry

(** SEC under an arbitrary configuration, displayed as [label]. *)
val sec_configured : label:string -> config:Sec_core.Config.t -> entry

(** SEC with node recycling through per-domain magazines ("SEC+MAG");
    see docs/PERF.md. *)
val sec_recycling : entry

(** [sec_recycling] plus the contention-adaptive sharding controller
    ("SEC+ADPT"). *)
val sec_adaptive : entry

val treiber : entry
val eb : entry
val fc : entry
val cc : entry
val tsi : entry
val lock : entry

(** Hierarchical H-Synch combining (extension, not in the paper). *)
val hsynch : entry

(** Treiber with epoch-based reclamation ("TRB-EBR"): every operation
    pays the EBR enter/exit and every pop retires its node, like the C++
    artifact. *)
val treiber_ebr : entry

(** The interval timestamped stack with epoch-based reclamation
    ("TSI-EBR", owner-only unlinking). *)
val tsi_ebr : entry

(** Slab-backed twins (PR 10): [treiber_ebr]/[tsi_ebr]/[sec_recycling]
    with the magazines' slow path routed through the wait-free
    {!Sec_reclaim.Slab} store instead of the global depot. Identical
    push/pop atomic sequences to their originals. *)
val treiber_slab : entry

val tsi_slab : entry
val sec_slab : entry

(** The six algorithms of the paper's comparison (Figure 2). *)
val paper_set : entry list

(** The EBR-reclaimed variants ([treiber_ebr], [tsi_ebr]). *)
val reclaimed_set : entry list

(** [paper_set] plus the spinlock baseline, H-Synch and
    [reclaimed_set]. *)
val all : entry list

(** The slab-backed variants ([treiber_slab], [tsi_slab], [sec_slab]).
    Not part of [all] (the progress and refinement default sweeps stay
    as seeded); benchmarked by {!Bench_json.bench_entries} and
    reachable through {!find}. *)
val slab_set : entry list

(** SEC_Agg1 .. SEC_Agg5 (Figure 4's self-comparison). *)
val sec_aggregator_sweep : entry list

(** The SEC-style pool ({!Sec_core.Sec_pool}) behind the stack interface
    ([peek] is always [None]), declared {!Pool_sem}. Not part of [all]:
    the stack benchmark sets and the progress suite are unchanged. *)
val pool : entry

(** [all] plus {!pool} — everything the refinement prong checks by
    default. *)
val refine_set : entry list

(** Seeded correctness mutants ("SEC!OVF" batch-capacity overflow,
    "SEC!POP" pop-side reorder; see {!Sec_core.Config.mutation}) —
    known-bad targets for the refinement prong's detection and shrinking
    tests. Never part of [all] or [find]. *)
val mutants : entry list

(** Find by display name; raises [Invalid_argument] for unknown names. *)
val find : string -> entry
