(* The experiment registry: one entry per figure and table of the paper's
   evaluation (see DESIGN.md for the index). Each experiment prints its
   series tables and optionally dumps CSVs.

   Experiments are backend-agnostic: they iterate over the
   {!Runner.BACKEND}s selected by [opts.backend], so the same definition
   produces paper-scale simulated sweeps (this host has a single core)
   and small native-domain sanity sweeps. *)

type backend_choice = [ `Sim | `Native | `Both ]

type opts = {
  scale : float; (* duration multiplier; 1.0 ~ a few seconds per figure *)
  csv_dir : string option;
  backend : backend_choice;
  seed : int;
}

let default_opts = { scale = 1.0; csv_dir = None; backend = `Sim; seed = 1 }

(* Paper figures additionally carry a [plan]: a decomposition into
   [cell]s (one table, or one mix's series) whose jobs are independent
   simulations — one (algorithm × thread-count) point each. The serial
   [run] path executes the same plan in order, so `sec_bench run fig2`
   and a parallel `sec_bench figures --only fig2` produce byte-identical
   CSVs. Ablations/extensions have no plan and only the legacy [run]. *)
type t = {
  id : string;
  title : string;
  run : opts -> unit;
  plan : (opts -> cell list) option;
}

and cell = {
  cell_id : string;  (* "fig2/100%upd"; tables use the bare id *)
  cell_fig : string;  (* experiment id this cell belongs to *)
  cell_topology : string;
  cell_jobs : (unit -> job_result) array;
  cell_render : job_result array -> output;  (* pure *)
}

and job_result =
  | Mops of float * int  (* throughput point, schedule digest *)
  | Degrees of (float * float * float) * int
      (* (batching degree, %elimination, %combining), schedule digest *)

and output =
  | Series of {
      title : string;
      file : string;
      columns : int list;
      rows : (string * float array) list;
    }
  | Keyed of {
      title : string;
      file : string;
      columns : string list;
      rows : (string * string list) list;
    }

let digest_of = function Mops (_, d) -> d | Degrees (_, d) -> d
let mops_of = function Mops (v, _) -> v | Degrees _ -> assert false

(* ------------------------------------------------------------------ *)
(* Sweep helpers                                                        *)

let base_cycles = 300_000

let duration_cycles opts =
  max 10_000 (int_of_float (float_of_int base_cycles *. opts.scale))

let native_duration opts = 0.25 *. opts.scale
let threads_for = Sim_runner.threads_for

(* The backends an experiment should run on, in report order. Simulated
   experiments are topology-specific; the native backend ignores the
   topology (it runs on whatever this host is). *)
let backends_of opts ~topology : (module Runner.BACKEND) list =
  let sim () =
    Sim_runner.backend ~topology ~duration_cycles:(duration_cycles opts)
  in
  let native () = Native_runner.backend ~duration:(native_duration opts) in
  match opts.backend with
  | `Sim -> [ sim () ]
  | `Native -> [ native () ]
  | `Both -> [ sim (); native () ]

(* One throughput sweep (a figure's worth of lines) on one backend. *)
let sweep opts (module B : Runner.BACKEND) ?threads ~mix ~entries ~tag ~title
    () =
  let threads = Option.value threads ~default:B.sweep_threads in
  let prefill = B.prefill_for mix in
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let values =
          List.map
            (fun n ->
              (B.run_mix e.Registry.maker ~threads:n ~mix ~prefill
                 ~seed:opts.seed ())
                .Measurement.mops)
            threads
        in
        (e.Registry.name, Array.of_list values))
      entries
  in
  Report.series
    ~title:(Printf.sprintf "%s [%s, %s]" title mix.Workload.label B.label)
    ~columns:threads ~rows;
  Option.iter
    (fun dir ->
      Report.csv_of_series ~dir
        ~file:
          (Printf.sprintf "%s_%s%s.csv" tag mix.Workload.label B.file_suffix)
        ~columns:threads ~rows)
    opts.csv_dir

(* ------------------------------------------------------------------ *)
(* Figure cells: the job-level decomposition behind [plan]               *)

(* One mix's series on one simulated topology: jobs in (entry, thread)
   row-major order — exactly the order the serial sweep ran them in. *)
let series_cell opts ~topology ~entries ~tag ~title mix =
  let threads = threads_for topology in
  let nt = List.length threads in
  let duration = duration_cycles opts in
  let prefill = Sim_runner.prefill_for mix in
  let seed = opts.seed in
  let jobs =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.map
          (fun n () ->
            let m, stats =
              Sim_runner.run_with_stats e.Registry.maker ~topology ~threads:n
                ~duration_cycles:duration ~mix ~prefill ~seed ()
            in
            Mops (m.Measurement.mops, stats.Sec_sim.Sim.schedule_digest))
          threads)
      entries
  in
  let names = List.map (fun e -> e.Registry.name) entries in
  let render results =
    let rows =
      List.mapi
        (fun i name ->
          (name, Array.init nt (fun j -> mops_of results.((i * nt) + j))))
        names
    in
    Series
      {
        title =
          Printf.sprintf "%s [%s, simulated %s]" title mix.Workload.label
            topology.Sec_sim.Topology.name;
        file = Printf.sprintf "%s_%s.csv" tag mix.Workload.label;
        columns = threads;
        rows;
      }
  in
  {
    cell_id = tag ^ "/" ^ mix.Workload.label;
    cell_fig = tag;
    cell_topology = topology.Sec_sim.Topology.name;
    cell_jobs = Array.of_list jobs;
    cell_render = render;
  }

(* Batching/elimination/combining degrees (Tables 1/2/3): jobs in
   (mix, thread) row-major order; the render averages each mix's column
   over its thread points, the same fold order as the serial path. *)
let degrees_cell opts ~topology ~id ~paper_ref =
  let thread_points = List.filter (fun n -> n >= 8) (threads_for topology) in
  let np = List.length thread_points in
  let mixes = [ Workload.update_heavy; Workload.mixed; Workload.read_heavy ] in
  let duration = duration_cycles opts in
  let seed = opts.seed in
  let jobs =
    List.concat_map
      (fun mix ->
        List.map
          (fun n () ->
            let s, sim_stats =
              Sim_runner.run_sec_stats_with ~config:Sec_core.Config.default
                ~topology ~threads:n ~duration_cycles:duration ~mix ~seed ()
            in
            Degrees
              ( ( Sec_core.Sec_stats.batching_degree s,
                  Sec_core.Sec_stats.pct_eliminated s,
                  Sec_core.Sec_stats.pct_combined s ),
                sim_stats.Sec_sim.Sim.schedule_digest ))
          thread_points)
      mixes
  in
  let render results =
    let per_mix =
      List.mapi
        (fun i _mix ->
          let avg f =
            let sum = ref 0. in
            for j = 0 to np - 1 do
              (match results.((i * np) + j) with
              | Degrees (d, _) -> sum := !sum +. f d
              | Mops _ -> assert false)
            done;
            !sum /. float_of_int np
          in
          ( avg (fun (d, _, _) -> d),
            avg (fun (_, e, _) -> e),
            avg (fun (_, _, c) -> c) ))
        mixes
    in
    let columns = List.map (fun m -> m.Workload.label) mixes in
    let row f = List.map (fun v -> Printf.sprintf "%.1f" (f v)) per_mix in
    let rows =
      [
        ("Batching Degree", row (fun (d, _, _) -> d));
        ("%Elimination", row (fun (_, e, _) -> e));
        ("%Combining", row (fun (_, _, c) -> c));
      ]
    in
    Keyed
      {
        title =
          Printf.sprintf "%s [simulated %s, averaged over %s threads]"
            paper_ref topology.Sec_sim.Topology.name
            (String.concat "," (List.map string_of_int thread_points));
        file = id ^ ".csv";
        columns;
        rows;
      }
  in
  {
    cell_id = id;
    cell_fig = id;
    cell_topology = topology.Sec_sim.Topology.name;
    cell_jobs = Array.of_list jobs;
    cell_render = render;
  }

let render_output opts = function
  | Series { title; file; columns; rows } ->
      Report.series ~title ~columns ~rows;
      Option.iter
        (fun dir -> Report.csv_of_series ~dir ~file ~columns ~rows)
        opts.csv_dir
  | Keyed { title; file; columns; rows } ->
      Report.keyed ~title ~columns ~rows;
      Option.iter
        (fun dir ->
          Report.csv ~dir ~file
            ~header:("metric" :: columns)
            ~rows:(List.map (fun (name, vs) -> name :: vs) rows))
        opts.csv_dir

(* Serial plan execution: jobs in order, one cell at a time. *)
let run_cells opts cells =
  List.iter
    (fun c ->
      let results = Array.map (fun job -> job ()) c.cell_jobs in
      render_output opts (c.cell_render results))
    cells

(* Throughput figures: update mixes (Figures 2/5/9). *)
let throughput_figure ~id ~topology ~paper_ref =
  let mixes = [ Workload.update_heavy; Workload.mixed; Workload.read_heavy ] in
  let plan opts =
    List.map
      (series_cell opts ~topology ~entries:Registry.paper_set ~tag:id
         ~title:paper_ref)
      mixes
  in
  {
    id;
    title =
      Printf.sprintf "%s: throughput, 100%%/50%%/10%% updates on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        (match opts.backend with
        | `Sim | `Both -> run_cells opts (plan opts)
        | `Native -> ());
        match opts.backend with
        | `Native | `Both ->
            let backend =
              Native_runner.backend ~duration:(native_duration opts)
            in
            List.iter
              (fun mix ->
                sweep opts backend ~mix ~entries:Registry.paper_set ~tag:id
                  ~title:paper_ref ())
              mixes
        | `Sim -> ());
    plan = Some plan;
  }

(* Push-only / pop-only figures (Figures 3/6/10). *)
let homogeneous_figure ~id ~topology ~paper_ref =
  let mixes = [ Workload.push_only; Workload.pop_only ] in
  let plan opts =
    List.map
      (series_cell opts ~topology ~entries:Registry.paper_set ~tag:id
         ~title:paper_ref)
      mixes
  in
  {
    id;
    title =
      Printf.sprintf "%s: push-only and pop-only on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        (match opts.backend with
        | `Sim | `Both -> run_cells opts (plan opts)
        | `Native -> ());
        match opts.backend with
        | `Native | `Both ->
            let backend =
              Native_runner.backend ~duration:(native_duration opts)
            in
            List.iter
              (fun mix ->
                sweep opts backend ~mix ~entries:Registry.paper_set ~tag:id
                  ~title:paper_ref ())
              mixes
        | `Sim -> ());
    plan = Some plan;
  }

(* Aggregator self-comparison (Figures 4/7/8/11/12). Simulator-only. *)
let aggregator_figure ~id ~topology ~paper_ref ~mixes =
  let plan opts =
    List.map
      (series_cell opts ~topology ~entries:Registry.sec_aggregator_sweep
         ~tag:id ~title:paper_ref)
      mixes
  in
  {
    id;
    title =
      Printf.sprintf "%s: SEC with 1..5 aggregators on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run = (fun opts -> run_cells opts (plan opts));
    plan = Some plan;
  }

(* Batching/elimination/combining degrees (Tables 1/2/3). Simulator-only:
   the cell reads SEC's internal statistics counters. *)
let degrees_table ~id ~topology ~paper_ref =
  let plan opts = [ degrees_cell opts ~topology ~id ~paper_ref ] in
  {
    id;
    title =
      Printf.sprintf "%s: SEC batching/elimination/combining on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run = (fun opts -> run_cells opts (plan opts));
    plan = Some plan;
  }

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md)                   *)

let ablation_backoff =
  {
    id = "ablation-backoff";
    title =
      "Ablation: SEC freezer wait budget (0 / 512 / 1024 / 2048 / 8192 relax \
       units)";
    run =
      (fun opts ->
        let entries =
          List.map
            (fun b ->
              Registry.sec_with ~freeze_backoff:b ~aggregators:2
                ~label:(Printf.sprintf "SEC_bo%d" b) ())
            [ 0; 512; 1024; 2048; 8192 ]
        in
        List.iter
          (fun mix ->
            sweep opts
              (Sim_runner.backend ~topology:Sec_sim.Topology.emerald
                 ~duration_cycles:(duration_cycles opts))
              ~mix ~entries ~tag:"ablation_backoff"
              ~title:"Freezer backoff ablation" ())
          [ Workload.update_heavy; Workload.push_only ]);
    plan = None;
  }

let ablation_funnel =
  let module SP = Sec_sim.Sim.Prim in
  let module R = Runner.Make (SP) in
  (* Not a stack benchmark, but the same driver fits: a push-only "stack"
     whose push is one fetch&add. The loop's extra random draws are
     schedule-free in the simulator, so the numbers match the dedicated
     loop this replaces. Runs without jitter: FAA throughput has no
     lockstep fixed points to break. *)
  let faa_throughput opts ~threads ~variant =
    let duration = duration_cycles opts in
    let ops, _ =
      Sec_sim.Sim.run ~seed:opts.seed ~topology:Sec_sim.Topology.emerald
        (fun () ->
          let module Faa = Sec_funnel.Agg_faa.Make (SP) in
          let shards = match variant with `Funnel s -> s | `Central -> 1 in
          let funnel = Faa.create ~shards () in
          let central = SP.Atomic.make 0 in
          let outcome =
            R.drive ~threads ~stop:(R.Timed duration) ~mix:Workload.push_only
              ~push:(fun ~tid _ ->
                match variant with
                | `Central -> ignore (SP.Atomic.fetch_and_add central 1)
                | `Funnel _ -> ignore (Faa.fetch_and_add funnel ~tid 1))
              ~pop:(fun ~tid:_ -> None)
              ~peek:(fun ~tid:_ -> None)
              ()
          in
          R.total outcome)
    in
    (Measurement.of_simulated ~algorithm:"faa" ~threads ~ops ~cycles:duration)
      .Measurement.mops
  in
  {
    id = "ablation-funnel";
    title = "Ablation: sharded (aggregating-funnel style) vs central fetch&add";
    run =
      (fun opts ->
        let threads = threads_for Sec_sim.Topology.emerald in
        let variants =
          [
            ("central FAA", `Central);
            ("funnel x2", `Funnel 2);
            ("funnel x4", `Funnel 4);
          ]
        in
        let rows =
          List.map
            (fun (name, v) ->
              ( name,
                Array.of_list
                  (List.map
                     (fun n -> faa_throughput opts ~threads:n ~variant:v)
                     threads) ))
            variants
        in
        Report.series
          ~title:"Fetch&add throughput (Mops/s) [simulated emerald]"
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"ablation_funnel.csv"
              ~columns:threads ~rows)
          opts.csv_dir);
    plan = None;
  }

let ablation_hsynch =
  {
    id = "ablation-hsynch";
    title =
      "Ablation: SEC vs hierarchical combining (H-Synch) vs flat CC-Synch";
    run =
      (fun opts ->
        let entries = [ Registry.sec; Registry.hsynch; Registry.cc ] in
        List.iter
          (fun mix ->
            sweep opts
              (Sim_runner.backend ~topology:Sec_sim.Topology.sapphire
                 ~duration_cycles:(duration_cycles opts))
              ~mix ~entries ~tag:"ablation_hsynch"
              ~title:"NUMA-aware combining ablation" ())
          [ Workload.update_heavy ]);
    plan = None;
  }

(* The SEC-style pool as a registry-shaped entry: push/pop only ([peek]
   is always [None]; none of the pool mixes draw peeks), so it runs
   through the same unified driver as every stack. *)
let pool_entry ~aggregators ~label =
  let module M =
    functor
      (P : Sec_prim.Prim_intf.S)
      ->
      struct
        module Pool = Sec_core.Sec_pool.Make (P)

        type 'a t = 'a Pool.t

        let name = label

        let create ?(max_threads = 64) () =
          Pool.create ~aggregators ~max_threads ()

        let push = Pool.push
        let pop = Pool.pop
        let peek _ ~tid:_ = None
      end
  in
  {
    Registry.name = label;
    maker = (module M : Registry.MAKER);
    progress = Registry.Blocking (* SEC combining protocol, same as sec *);
    spec = Registry.Pool_sem;
  }

let extension_pool =
  {
    id = "extension-pool";
    title =
      "Extension: SEC-style pool (sharded backing stores) vs SEC stack vs TRB";
    run =
      (fun opts ->
        let (module B : Runner.BACKEND) =
          Sim_runner.backend ~topology:Sec_sim.Topology.emerald
            ~duration_cycles:(duration_cycles opts)
        in
        let entries =
          [
            pool_entry ~aggregators:2 ~label:"SEC-pool x2";
            pool_entry ~aggregators:4 ~label:"SEC-pool x4";
            Registry.sec;
            Registry.treiber;
          ]
        in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              ( e.Registry.name,
                Array.of_list
                  (List.map
                     (fun n ->
                       (B.run_mix e.Registry.maker ~threads:n
                          ~mix:Workload.update_heavy ~seed:opts.seed ())
                         .Measurement.mops)
                     B.sweep_threads) ))
            entries
        in
        Report.series
          ~title:"Pool extension, 100% updates (Mops/s) [simulated emerald]"
          ~columns:B.sweep_threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"extension_pool.csv"
              ~columns:B.sweep_threads ~rows)
          opts.csv_dir);
    plan = None;
  }

let variance_check =
  {
    id = "variance";
    title =
      "Supporting: seed-to-seed spread at 28 threads (paper: <5% over 5 runs)";
    run =
      (fun opts ->
        let seeds = List.init 5 (fun i -> opts.seed + i) in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              let v =
                Variance.of_sim_runs e ~topology:Sec_sim.Topology.emerald
                  ~threads:28 ~duration_cycles:(duration_cycles opts)
                  ~mix:Workload.update_heavy ~seeds
              in
              ( e.Registry.name,
                [
                  Printf.sprintf "%.2f" v.Variance.mean;
                  Printf.sprintf "%.2f" v.Variance.min;
                  Printf.sprintf "%.2f" v.Variance.max;
                  Printf.sprintf "%.1f%%" v.Variance.relative_spread;
                ] ))
            Registry.paper_set
        in
        Report.keyed
          ~title:
            "Throughput over 5 seeds [100%upd, 28 threads, simulated emerald]"
          ~columns:[ "mean"; "min"; "max"; "spread" ]
          ~rows;
        Option.iter
          (fun dir ->
            Report.csv ~dir ~file:"variance.csv"
              ~header:[ "algorithm"; "mean"; "min"; "max"; "spread" ]
              ~rows:(List.map (fun (n, vs) -> n :: vs) rows))
          opts.csv_dir);
    plan = None;
  }

let latency_distribution =
  {
    id = "latency-dist";
    title =
      "Supporting: per-operation latency distribution at 28 threads (emerald)";
    run =
      (fun opts ->
        List.iter
          (fun (module B : Runner.BACKEND) ->
            let threads = B.latency_point in
            let rows =
              List.map
                (fun (e : Registry.entry) ->
                  let h =
                    B.run_latency e.Registry.maker ~threads
                      ~mix:Workload.update_heavy ~seed:opts.seed ()
                  in
                  ( e.Registry.name,
                    [
                      Printf.sprintf "%.0f" (Latency.mean h);
                      string_of_int (Latency.percentile h 50.);
                      string_of_int (Latency.percentile h 90.);
                      string_of_int (Latency.percentile h 99.);
                      string_of_int (Latency.percentile h 99.9);
                    ] ))
                Registry.paper_set
            in
            Report.keyed
              ~title:
                (Printf.sprintf "Per-op latency in %s [100%%upd, %d threads, %s]"
                   B.latency_unit threads B.label)
              ~columns:[ "mean"; "p50"; "p90"; "p99"; "p99.9" ]
              ~rows;
            Option.iter
              (fun dir ->
                Report.csv ~dir
                  ~file:(Printf.sprintf "latency_dist%s.csv" B.file_suffix)
                  ~header:[ "algorithm"; "mean"; "p50"; "p90"; "p99"; "p99.9" ]
                  ~rows:(List.map (fun (n, vs) -> n :: vs) rows))
              opts.csv_dir)
          (backends_of opts ~topology:Sec_sim.Topology.emerald));
    plan = None;
  }

(* A deliberately tiny, fixed-size simulated run for the @bench-smoke
   golden-file check: topology, duration, threads and mix are pinned
   (scale and backend options are ignored) so that for a fixed --seed the
   CSV is reproducible byte for byte. *)
let smoke =
  {
    id = "smoke";
    title = "Smoke: SEC vs TRB, tiny pinned simulated run (golden-diffed)";
    run =
      (fun opts ->
        let (module B : Runner.BACKEND) =
          Sim_runner.backend ~topology:Sec_sim.Topology.testbox
            ~duration_cycles:10_000
        in
        let threads = [ 1; 2; 4 ] in
        let mix = Workload.update_heavy in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              ( e.Registry.name,
                Array.of_list
                  (List.map
                     (fun n ->
                       (B.run_mix e.Registry.maker ~threads:n ~mix
                          ~seed:opts.seed ())
                         .Measurement.mops)
                     threads) ))
            [ Registry.sec; Registry.treiber ]
        in
        Report.series
          ~title:(Printf.sprintf "Smoke [%s, %s]" mix.Workload.label B.label)
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"smoke.csv" ~columns:threads ~rows)
          opts.csv_dir);
    plan = None;
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

let all =
  [
    throughput_figure ~id:"fig2" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 2";
    homogeneous_figure ~id:"fig3" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 3";
    aggregator_figure ~id:"fig4" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 4"
      ~mixes:
        [
          Workload.update_heavy;
          Workload.mixed;
          Workload.read_heavy;
          Workload.push_only;
        ];
    degrees_table ~id:"table1" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Table 1";
    throughput_figure ~id:"fig5" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 5";
    homogeneous_figure ~id:"fig6" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 6";
    aggregator_figure ~id:"fig7" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 7"
      ~mixes:[ Workload.update_heavy; Workload.mixed; Workload.read_heavy ];
    aggregator_figure ~id:"fig8" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 8" ~mixes:[ Workload.push_only; Workload.pop_only ];
    degrees_table ~id:"table2" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Table 2";
    throughput_figure ~id:"fig9" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 9";
    homogeneous_figure ~id:"fig10" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 10";
    aggregator_figure ~id:"fig11" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 11"
      ~mixes:
        [
          Workload.update_heavy;
          Workload.mixed;
          Workload.read_heavy;
          Workload.push_only;
        ];
    aggregator_figure ~id:"fig12" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 12" ~mixes:[ Workload.push_only; Workload.pop_only ];
    degrees_table ~id:"table3" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Table 3";
    ablation_backoff;
    ablation_funnel;
    ablation_hsynch;
    extension_pool;
    latency_distribution;
    variance_check;
    smoke;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

(* Shared driver plumbing for bin/sec_bench and bench/main. *)
let run_one opts e =
  Printf.printf "== %s: %s ==\n%!" e.id e.title;
  e.run opts

let run_all opts =
  List.iter
    (fun e ->
      print_newline ();
      run_one opts e)
    all

(* ------------------------------------------------------------------ *)
(* One-command figure set: `sec_bench figures`                          *)

let figure_ids () =
  List.filter_map (fun e -> if Option.is_some e.plan then Some e.id else None) all

(* EXPERIMENTS.md's recorded curve shapes, re-checked by every figures
   run. [Best]/[Worst] name the expected winner/weakest line at the top
   thread count ("*" applies to every mix of the figure); the tables'
   claim is that elimination dominates combining. These encode what the
   reproduction *measured* (including its recorded deviations from the
   paper, e.g. TSI overtaking SEC at 100% updates on icelake/sapphire),
   so a DEVIATION in REPORT.md means the code drifted from
   EXPERIMENTS.md, not from the paper. *)
type claim = Best of string | Worst of string | Elim_dominates

let claims =
  [
    ("fig2", "100%upd", Best "SEC");
    ("fig2", "50%upd", Best "SEC");
    ("fig2", "10%upd", Best "SEC");
    ("fig3", "push-only", Best "TSI");
    ("fig3", "pop-only", Best "SEC");
    ("fig4", "*", Worst "SEC_Agg1");
    ("table1", "*", Elim_dominates);
    ("fig5", "100%upd", Best "TSI");
    ("fig5", "50%upd", Best "SEC");
    ("fig5", "10%upd", Best "SEC");
    ("fig6", "push-only", Best "TSI");
    ("fig6", "pop-only", Best "SEC");
    ("fig7", "*", Worst "SEC_Agg1");
    ("fig8", "*", Worst "SEC_Agg1");
    ("table2", "*", Elim_dominates);
    ("fig9", "100%upd", Best "TSI");
    ("fig9", "50%upd", Best "SEC");
    ("fig9", "10%upd", Best "SEC");
    ("fig10", "push-only", Best "TSI");
    ("fig10", "pop-only", Best "SEC");
    ("fig11", "*", Worst "SEC_Agg1");
    ("fig12", "*", Worst "SEC_Agg1");
    ("table3", "*", Elim_dominates);
  ]

let claim_for ~fig ~label =
  List.find_map
    (fun (f, l, c) -> if f = fig && (l = label || l = "*") then Some c else None)
    claims

(* One REPORT.md section per cell: who wins by what factor at the top
   thread count, checked against the recorded claim. Returns the lines
   and whether the cell matched. *)
let report_section c out =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let matched =
    match out with
    | Series { columns; rows; title; _ } ->
        line "## %s (%s)" c.cell_id c.cell_topology;
        line "";
        line "%s" title;
        line "";
        let top = List.nth columns (List.length columns - 1) in
        let at_top (_, vs) = vs.(Array.length vs - 1) in
        let ranked =
          List.sort (fun x y -> compare (at_top y) (at_top x)) rows
        in
        let name_of = fst in
        let winner = List.hd ranked in
        let weakest = List.nth ranked (List.length ranked - 1) in
        let factor a b = if b > 0. then a /. b else Float.infinity in
        (match ranked with
        | w :: ru :: _ ->
            line
              "- At %d threads: **%s** leads with %.2f Mops/s; runner-up %s \
               at %.2f (%.2fx behind); weakest %s at %.2f."
              top (name_of w) (at_top w) (name_of ru) (at_top ru)
              (factor (at_top w) (at_top ru))
              (name_of weakest) (at_top weakest)
        | _ -> ());
        let label =
          match String.index_opt c.cell_id '/' with
          | Some i ->
              String.sub c.cell_id (i + 1) (String.length c.cell_id - i - 1)
          | None -> "*"
        in
        (match claim_for ~fig:c.cell_fig ~label with
        | Some (Best expect) ->
            let ok = name_of winner = expect in
            line
              "- EXPERIMENTS.md records **%s** as the winner here — %s."
              expect
              (if ok then "**MATCH**"
               else
                 Printf.sprintf "**DEVIATION** (%s leads)" (name_of winner));
            Some ok
        | Some (Worst expect) ->
            let ok = name_of weakest = expect in
            line
              "- EXPERIMENTS.md records **%s** as the weakest line here — %s."
              expect
              (if ok then "**MATCH**"
               else
                 Printf.sprintf "**DEVIATION** (%s is weakest)"
                   (name_of weakest));
            Some ok
        | Some Elim_dominates | None -> None)
    | Keyed { rows; title; _ } ->
        line "## %s (%s)" c.cell_id c.cell_topology;
        line "";
        line "%s" title;
        line "";
        let avg name =
          match List.assoc_opt name rows with
          | Some vs ->
              let fs = List.filter_map float_of_string_opt vs in
              if fs = [] then None
              else
                Some (List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs))
          | None -> None
        in
        (match (avg "%Elimination", avg "%Combining") with
        | Some e, Some cmb ->
            let ok = e > cmb in
            line
              "- Elimination %.1f%% vs combining %.1f%% (averaged over \
               mixes) — EXPERIMENTS.md records elimination dominating — %s."
              e cmb
              (if ok then "**MATCH**" else "**DEVIATION**");
            Some ok
        | _ -> None)
  in
  line "";
  (Buffer.contents b, matched)

let write_report ~path opts rendered elapsed =
  let sections = List.map (fun (c, out) -> report_section c out) rendered in
  let matches =
    List.filter_map (fun (_, m) -> m) sections |> List.filter (fun m -> m)
  in
  let checked = List.filter_map (fun (_, m) -> m) sections in
  let header =
    [
      "# Figure reproduction report";
      "";
      Printf.sprintf
        "Generated by `sec_bench figures` (seed %d, scale %g): %d cells, \
         %.1fs wall clock."
        opts.seed opts.scale (List.length rendered) elapsed;
      Printf.sprintf
        "Curve shapes checked against EXPERIMENTS.md's recorded claims: \
         **%d/%d match**. A deviation means the code drifted from the \
         recorded reproduction, not necessarily from the paper."
        (List.length matches) (List.length checked);
      "";
    ]
  in
  Report.markdown ~path
    ~lines:(header @ List.map (fun (s, _) -> s) sections)

(* The parallel path: flatten every selected cell's jobs into one array,
   fan them out over {!Sweep.map}, then render cells in canonical order.
   Jobs are pure (each owns a fresh simulated machine), so the output —
   stdout tables, CSVs, report, digests — is bit-identical for every
   [jobs] value, including the serial [jobs = 1] fallback. *)
let run_figures opts ~jobs ?topology ?(only = []) ?report_path ?digest_path ()
    =
  let plans =
    List.filter_map (fun e -> Option.map (fun p -> p opts) e.plan) all
  in
  let cells = List.concat plans in
  List.iter
    (fun o ->
      if
        not
          (List.exists (fun c -> o = c.cell_fig || o = c.cell_id) cells)
      then
        invalid_arg
          (Printf.sprintf
             "figures: unknown --only filter %S (try e.g. fig2 or \
              \"fig2/100%%upd\")"
             o))
    only;
  let cells =
    List.filter
      (fun c ->
        (match topology with Some t -> c.cell_topology = t | None -> true)
        && match only with
           | [] -> true
           | l -> List.exists (fun o -> o = c.cell_fig || o = c.cell_id) l)
      cells
  in
  if cells = [] then invalid_arg "figures: no cells selected";
  let jobs = Sweep.clamp_jobs jobs in
  let total_jobs =
    List.fold_left (fun n c -> n + Array.length c.cell_jobs) 0 cells
  in
  Printf.printf "figures: %d cells, %d simulation jobs, %d domain%s\n%!"
    (List.length cells) total_jobs jobs
    (if jobs = 1 then "" else "s");
  let thunks = Array.concat (List.map (fun c -> c.cell_jobs) cells) in
  let t0 = Unix.gettimeofday () in
  let results = Sweep.map ~jobs (fun job -> job ()) thunks in
  let elapsed = Unix.gettimeofday () -. t0 in
  let rendered =
    let off = ref 0 in
    List.map
      (fun c ->
        let n = Array.length c.cell_jobs in
        let slice = Array.sub results !off n in
        off := !off + n;
        (c, slice))
      cells
  in
  let outputs = List.map (fun (c, rs) -> (c, rs, c.cell_render rs)) rendered in
  List.iter (fun (_, _, out) -> render_output opts out) outputs;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc "cell,job,digest\n";
      List.iter
        (fun (c, rs, _) ->
          Array.iteri
            (fun j r -> Printf.fprintf oc "%s,%d,%d\n" c.cell_id j (digest_of r))
            rs)
        outputs;
      close_out oc;
      Printf.printf "  [digests] wrote %s\n%!" path)
    digest_path;
  Option.iter
    (fun path ->
      write_report ~path opts (List.map (fun (c, _, out) -> (c, out)) outputs)
        elapsed)
    report_path;
  Printf.printf "figures: done in %.1fs (%d jobs on %d domain%s)\n%!" elapsed
    total_jobs jobs
    (if jobs = 1 then "" else "s")
