(* The experiment registry: one entry per figure and table of the paper's
   evaluation (see DESIGN.md for the index). Each experiment prints its
   series tables and optionally dumps CSVs.

   Experiments are backend-agnostic: they iterate over the
   {!Runner.BACKEND}s selected by [opts.backend], so the same definition
   produces paper-scale simulated sweeps (this host has a single core)
   and small native-domain sanity sweeps. *)

type backend_choice = [ `Sim | `Native | `Both ]

type opts = {
  scale : float; (* duration multiplier; 1.0 ~ a few seconds per figure *)
  csv_dir : string option;
  backend : backend_choice;
  seed : int;
}

let default_opts = { scale = 1.0; csv_dir = None; backend = `Sim; seed = 1 }

type t = { id : string; title : string; run : opts -> unit }

(* ------------------------------------------------------------------ *)
(* Sweep helpers                                                        *)

let base_cycles = 300_000

let duration_cycles opts =
  max 10_000 (int_of_float (float_of_int base_cycles *. opts.scale))

let native_duration opts = 0.25 *. opts.scale
let threads_for = Sim_runner.threads_for

(* The backends an experiment should run on, in report order. Simulated
   experiments are topology-specific; the native backend ignores the
   topology (it runs on whatever this host is). *)
let backends_of opts ~topology : (module Runner.BACKEND) list =
  let sim () =
    Sim_runner.backend ~topology ~duration_cycles:(duration_cycles opts)
  in
  let native () = Native_runner.backend ~duration:(native_duration opts) in
  match opts.backend with
  | `Sim -> [ sim () ]
  | `Native -> [ native () ]
  | `Both -> [ sim (); native () ]

(* One throughput sweep (a figure's worth of lines) on one backend. *)
let sweep opts (module B : Runner.BACKEND) ?threads ~mix ~entries ~tag ~title
    () =
  let threads = Option.value threads ~default:B.sweep_threads in
  let prefill = B.prefill_for mix in
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let values =
          List.map
            (fun n ->
              (B.run_mix e.Registry.maker ~threads:n ~mix ~prefill
                 ~seed:opts.seed ())
                .Measurement.mops)
            threads
        in
        (e.Registry.name, Array.of_list values))
      entries
  in
  Report.series
    ~title:(Printf.sprintf "%s [%s, %s]" title mix.Workload.label B.label)
    ~columns:threads ~rows;
  Option.iter
    (fun dir ->
      Report.csv_of_series ~dir
        ~file:
          (Printf.sprintf "%s_%s%s.csv" tag mix.Workload.label B.file_suffix)
        ~columns:threads ~rows)
    opts.csv_dir

let sweep_mixes opts ~topology ~mixes ~entries ~tag ~title =
  List.iter
    (fun mix ->
      List.iter
        (fun backend -> sweep opts backend ~mix ~entries ~tag ~title ())
        (backends_of opts ~topology))
    mixes

(* Throughput figures: update mixes (Figures 2/5/9). *)
let throughput_figure ~id ~topology ~paper_ref =
  {
    id;
    title =
      Printf.sprintf "%s: throughput, 100%%/50%%/10%% updates on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        sweep_mixes opts ~topology
          ~mixes:[ Workload.update_heavy; Workload.mixed; Workload.read_heavy ]
          ~entries:Registry.paper_set ~tag:id ~title:paper_ref);
  }

(* Push-only / pop-only figures (Figures 3/6/10). *)
let homogeneous_figure ~id ~topology ~paper_ref =
  {
    id;
    title =
      Printf.sprintf "%s: push-only and pop-only on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        sweep_mixes opts ~topology
          ~mixes:[ Workload.push_only; Workload.pop_only ]
          ~entries:Registry.paper_set ~tag:id ~title:paper_ref);
  }

(* Aggregator self-comparison (Figures 4/7/8/11/12). *)
let aggregator_figure ~id ~topology ~paper_ref ~mixes =
  {
    id;
    title =
      Printf.sprintf "%s: SEC with 1..5 aggregators on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        List.iter
          (fun mix ->
            sweep opts
              (Sim_runner.backend ~topology
                 ~duration_cycles:(duration_cycles opts))
              ~mix ~entries:Registry.sec_aggregator_sweep ~tag:id
              ~title:paper_ref ())
          mixes);
  }

(* Batching/elimination/combining degrees (Tables 1/2/3). The paper
   reports averages across thread counts. Simulator-only: it reads SEC's
   internal statistics counters. *)
let degrees_table ~id ~topology ~paper_ref =
  {
    id;
    title =
      Printf.sprintf "%s: SEC batching/elimination/combining on %s" paper_ref
        topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        let thread_points =
          List.filter (fun n -> n >= 8) (threads_for topology)
        in
        let mixes =
          [ Workload.update_heavy; Workload.mixed; Workload.read_heavy ]
        in
        let per_mix =
          List.map
            (fun mix ->
              let snapshots =
                List.map
                  (fun n ->
                    Sim_runner.run_sec_stats ~config:Sec_core.Config.default
                      ~topology ~threads:n
                      ~duration_cycles:(duration_cycles opts) ~mix
                      ~seed:opts.seed ())
                  thread_points
              in
              let avg f =
                List.fold_left (fun acc s -> acc +. f s) 0. snapshots
                /. float_of_int (List.length snapshots)
              in
              ( avg Sec_core.Sec_stats.batching_degree,
                avg Sec_core.Sec_stats.pct_eliminated,
                avg Sec_core.Sec_stats.pct_combined ))
            mixes
        in
        let columns = List.map (fun m -> m.Workload.label) mixes in
        let row f = List.map (fun v -> Printf.sprintf "%.1f" (f v)) per_mix in
        let rows =
          [
            ("Batching Degree", row (fun (d, _, _) -> d));
            ("%Elimination", row (fun (_, e, _) -> e));
            ("%Combining", row (fun (_, _, c) -> c));
          ]
        in
        Report.keyed
          ~title:
            (Printf.sprintf "%s [simulated %s, averaged over %s threads]"
               paper_ref topology.Sec_sim.Topology.name
               (String.concat "," (List.map string_of_int thread_points)))
          ~columns ~rows;
        Option.iter
          (fun dir ->
            Report.csv ~dir ~file:(id ^ ".csv")
              ~header:("metric" :: columns)
              ~rows:(List.map (fun (name, vs) -> name :: vs) rows))
          opts.csv_dir);
  }

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md)                   *)

let ablation_backoff =
  {
    id = "ablation-backoff";
    title =
      "Ablation: SEC freezer wait budget (0 / 512 / 1024 / 2048 / 8192 relax \
       units)";
    run =
      (fun opts ->
        let entries =
          List.map
            (fun b ->
              Registry.sec_with ~freeze_backoff:b ~aggregators:2
                ~label:(Printf.sprintf "SEC_bo%d" b) ())
            [ 0; 512; 1024; 2048; 8192 ]
        in
        List.iter
          (fun mix ->
            sweep opts
              (Sim_runner.backend ~topology:Sec_sim.Topology.emerald
                 ~duration_cycles:(duration_cycles opts))
              ~mix ~entries ~tag:"ablation_backoff"
              ~title:"Freezer backoff ablation" ())
          [ Workload.update_heavy; Workload.push_only ]);
  }

let ablation_funnel =
  let module SP = Sec_sim.Sim.Prim in
  let module R = Runner.Make (SP) in
  (* Not a stack benchmark, but the same driver fits: a push-only "stack"
     whose push is one fetch&add. The loop's extra random draws are
     schedule-free in the simulator, so the numbers match the dedicated
     loop this replaces. Runs without jitter: FAA throughput has no
     lockstep fixed points to break. *)
  let faa_throughput opts ~threads ~variant =
    let duration = duration_cycles opts in
    let ops, _ =
      Sec_sim.Sim.run ~seed:opts.seed ~topology:Sec_sim.Topology.emerald
        (fun () ->
          let module Faa = Sec_funnel.Agg_faa.Make (SP) in
          let shards = match variant with `Funnel s -> s | `Central -> 1 in
          let funnel = Faa.create ~shards () in
          let central = SP.Atomic.make 0 in
          let outcome =
            R.drive ~threads ~stop:(R.Timed duration) ~mix:Workload.push_only
              ~push:(fun ~tid _ ->
                match variant with
                | `Central -> ignore (SP.Atomic.fetch_and_add central 1)
                | `Funnel _ -> ignore (Faa.fetch_and_add funnel ~tid 1))
              ~pop:(fun ~tid:_ -> None)
              ~peek:(fun ~tid:_ -> None)
              ()
          in
          R.total outcome)
    in
    (Measurement.of_simulated ~algorithm:"faa" ~threads ~ops ~cycles:duration)
      .Measurement.mops
  in
  {
    id = "ablation-funnel";
    title = "Ablation: sharded (aggregating-funnel style) vs central fetch&add";
    run =
      (fun opts ->
        let threads = threads_for Sec_sim.Topology.emerald in
        let variants =
          [
            ("central FAA", `Central);
            ("funnel x2", `Funnel 2);
            ("funnel x4", `Funnel 4);
          ]
        in
        let rows =
          List.map
            (fun (name, v) ->
              ( name,
                Array.of_list
                  (List.map
                     (fun n -> faa_throughput opts ~threads:n ~variant:v)
                     threads) ))
            variants
        in
        Report.series
          ~title:"Fetch&add throughput (Mops/s) [simulated emerald]"
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"ablation_funnel.csv"
              ~columns:threads ~rows)
          opts.csv_dir);
  }

let ablation_hsynch =
  {
    id = "ablation-hsynch";
    title =
      "Ablation: SEC vs hierarchical combining (H-Synch) vs flat CC-Synch";
    run =
      (fun opts ->
        let entries = [ Registry.sec; Registry.hsynch; Registry.cc ] in
        List.iter
          (fun mix ->
            sweep opts
              (Sim_runner.backend ~topology:Sec_sim.Topology.sapphire
                 ~duration_cycles:(duration_cycles opts))
              ~mix ~entries ~tag:"ablation_hsynch"
              ~title:"NUMA-aware combining ablation" ())
          [ Workload.update_heavy ]);
  }

(* The SEC-style pool as a registry-shaped entry: push/pop only ([peek]
   is always [None]; none of the pool mixes draw peeks), so it runs
   through the same unified driver as every stack. *)
let pool_entry ~aggregators ~label =
  let module M =
    functor
      (P : Sec_prim.Prim_intf.S)
      ->
      struct
        module Pool = Sec_core.Sec_pool.Make (P)

        type 'a t = 'a Pool.t

        let name = label

        let create ?(max_threads = 64) () =
          Pool.create ~aggregators ~max_threads ()

        let push = Pool.push
        let pop = Pool.pop
        let peek _ ~tid:_ = None
      end
  in
  {
    Registry.name = label;
    maker = (module M : Registry.MAKER);
    progress = Registry.Blocking (* SEC combining protocol, same as sec *);
    spec = Registry.Pool_sem;
  }

let extension_pool =
  {
    id = "extension-pool";
    title =
      "Extension: SEC-style pool (sharded backing stores) vs SEC stack vs TRB";
    run =
      (fun opts ->
        let (module B : Runner.BACKEND) =
          Sim_runner.backend ~topology:Sec_sim.Topology.emerald
            ~duration_cycles:(duration_cycles opts)
        in
        let entries =
          [
            pool_entry ~aggregators:2 ~label:"SEC-pool x2";
            pool_entry ~aggregators:4 ~label:"SEC-pool x4";
            Registry.sec;
            Registry.treiber;
          ]
        in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              ( e.Registry.name,
                Array.of_list
                  (List.map
                     (fun n ->
                       (B.run_mix e.Registry.maker ~threads:n
                          ~mix:Workload.update_heavy ~seed:opts.seed ())
                         .Measurement.mops)
                     B.sweep_threads) ))
            entries
        in
        Report.series
          ~title:"Pool extension, 100% updates (Mops/s) [simulated emerald]"
          ~columns:B.sweep_threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"extension_pool.csv"
              ~columns:B.sweep_threads ~rows)
          opts.csv_dir);
  }

let variance_check =
  {
    id = "variance";
    title =
      "Supporting: seed-to-seed spread at 28 threads (paper: <5% over 5 runs)";
    run =
      (fun opts ->
        let seeds = List.init 5 (fun i -> opts.seed + i) in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              let v =
                Variance.of_sim_runs e ~topology:Sec_sim.Topology.emerald
                  ~threads:28 ~duration_cycles:(duration_cycles opts)
                  ~mix:Workload.update_heavy ~seeds
              in
              ( e.Registry.name,
                [
                  Printf.sprintf "%.2f" v.Variance.mean;
                  Printf.sprintf "%.2f" v.Variance.min;
                  Printf.sprintf "%.2f" v.Variance.max;
                  Printf.sprintf "%.1f%%" v.Variance.relative_spread;
                ] ))
            Registry.paper_set
        in
        Report.keyed
          ~title:
            "Throughput over 5 seeds [100%upd, 28 threads, simulated emerald]"
          ~columns:[ "mean"; "min"; "max"; "spread" ]
          ~rows;
        Option.iter
          (fun dir ->
            Report.csv ~dir ~file:"variance.csv"
              ~header:[ "algorithm"; "mean"; "min"; "max"; "spread" ]
              ~rows:(List.map (fun (n, vs) -> n :: vs) rows))
          opts.csv_dir);
  }

let latency_distribution =
  {
    id = "latency-dist";
    title =
      "Supporting: per-operation latency distribution at 28 threads (emerald)";
    run =
      (fun opts ->
        List.iter
          (fun (module B : Runner.BACKEND) ->
            let threads = B.latency_point in
            let rows =
              List.map
                (fun (e : Registry.entry) ->
                  let h =
                    B.run_latency e.Registry.maker ~threads
                      ~mix:Workload.update_heavy ~seed:opts.seed ()
                  in
                  ( e.Registry.name,
                    [
                      Printf.sprintf "%.0f" (Latency.mean h);
                      string_of_int (Latency.percentile h 50.);
                      string_of_int (Latency.percentile h 90.);
                      string_of_int (Latency.percentile h 99.);
                      string_of_int (Latency.percentile h 99.9);
                    ] ))
                Registry.paper_set
            in
            Report.keyed
              ~title:
                (Printf.sprintf "Per-op latency in %s [100%%upd, %d threads, %s]"
                   B.latency_unit threads B.label)
              ~columns:[ "mean"; "p50"; "p90"; "p99"; "p99.9" ]
              ~rows;
            Option.iter
              (fun dir ->
                Report.csv ~dir
                  ~file:(Printf.sprintf "latency_dist%s.csv" B.file_suffix)
                  ~header:[ "algorithm"; "mean"; "p50"; "p90"; "p99"; "p99.9" ]
                  ~rows:(List.map (fun (n, vs) -> n :: vs) rows))
              opts.csv_dir)
          (backends_of opts ~topology:Sec_sim.Topology.emerald));
  }

(* A deliberately tiny, fixed-size simulated run for the @bench-smoke
   golden-file check: topology, duration, threads and mix are pinned
   (scale and backend options are ignored) so that for a fixed --seed the
   CSV is reproducible byte for byte. *)
let smoke =
  {
    id = "smoke";
    title = "Smoke: SEC vs TRB, tiny pinned simulated run (golden-diffed)";
    run =
      (fun opts ->
        let (module B : Runner.BACKEND) =
          Sim_runner.backend ~topology:Sec_sim.Topology.testbox
            ~duration_cycles:10_000
        in
        let threads = [ 1; 2; 4 ] in
        let mix = Workload.update_heavy in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              ( e.Registry.name,
                Array.of_list
                  (List.map
                     (fun n ->
                       (B.run_mix e.Registry.maker ~threads:n ~mix
                          ~seed:opts.seed ())
                         .Measurement.mops)
                     threads) ))
            [ Registry.sec; Registry.treiber ]
        in
        Report.series
          ~title:(Printf.sprintf "Smoke [%s, %s]" mix.Workload.label B.label)
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"smoke.csv" ~columns:threads ~rows)
          opts.csv_dir);
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

let all =
  [
    throughput_figure ~id:"fig2" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 2";
    homogeneous_figure ~id:"fig3" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 3";
    aggregator_figure ~id:"fig4" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 4"
      ~mixes:
        [
          Workload.update_heavy;
          Workload.mixed;
          Workload.read_heavy;
          Workload.push_only;
        ];
    degrees_table ~id:"table1" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Table 1";
    throughput_figure ~id:"fig5" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 5";
    homogeneous_figure ~id:"fig6" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 6";
    aggregator_figure ~id:"fig7" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 7"
      ~mixes:[ Workload.update_heavy; Workload.mixed; Workload.read_heavy ];
    aggregator_figure ~id:"fig8" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 8" ~mixes:[ Workload.push_only; Workload.pop_only ];
    degrees_table ~id:"table2" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Table 2";
    throughput_figure ~id:"fig9" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 9";
    homogeneous_figure ~id:"fig10" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 10";
    aggregator_figure ~id:"fig11" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 11"
      ~mixes:
        [
          Workload.update_heavy;
          Workload.mixed;
          Workload.read_heavy;
          Workload.push_only;
        ];
    aggregator_figure ~id:"fig12" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 12" ~mixes:[ Workload.push_only; Workload.pop_only ];
    degrees_table ~id:"table3" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Table 3";
    ablation_backoff;
    ablation_funnel;
    ablation_hsynch;
    extension_pool;
    latency_distribution;
    variance_check;
    smoke;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

(* Shared driver plumbing for bin/sec_bench and bench/main. *)
let run_one opts e =
  Printf.printf "== %s: %s ==\n%!" e.id e.title;
  e.run opts

let run_all opts =
  List.iter
    (fun e ->
      print_newline ();
      run_one opts e)
    all
