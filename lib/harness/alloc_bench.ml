(* Allocator microbenchmark behind `sec_bench alloc` (PR 10): the node
   hot path measured in isolation — no stack on top — so the depot
   removal claim is a number, not an inference from end-to-end
   throughput.

   Two phases, three modes, both substrates:

   - [Local]: every thread alloc/frees bursts of [burst] nodes through
     its own magazine. [burst] exceeds the magazine capacity, so each
     burst forces slow-path refills and overflow emigrations — the
     depot (one global CAS per chain, retried under contention) against
     the slab store (one park/adopt attempt per whole slab).
   - [Remote]: producer/consumer pairs. The producer allocates a batch
     and hands it over through one exchange cell; the consumer frees
     every node. The allocation and free streams now live on different
     domains — the depot is the rendezvous (maximal CAS contention),
     where the slab store moves whole slabs and the arena batches
     remote frees into per-slab inboxes.

   Modes: [Depot] is the PR 5 magazine over the global depot; [Slab]
   the same magazine refilled from the wait-free slab store; [Arena]
   the off-heap Bigarray arena with integer handles (no magazine — the
   arena's private free list plays that role).

   The iteration counts are fixed (not timed), so the simulated runs
   are deterministic per seed and the cross-domain CAS comparison —
   [Slab.Global.cas_attempts] vs the depot tally — is exact. Native
   timing wraps the whole run (spawn + barrier + work); size [iters]
   so the loop dominates. *)

type mode = Depot | Slab | Arena
type phase = Local | Remote

let mode_to_string = function
  | Depot -> "depot"
  | Slab -> "slab"
  | Arena -> "arena"

let phase_to_string = function Local -> "local" | Remote -> "remote"

type result = {
  r_mode : mode;
  r_phase : phase;
  backend : string;  (** "native" or "sim" *)
  threads : int;
  ops : int;  (** alloc/free round-trips completed *)
  per_op : float;  (** ns/op (native) or cycles/op (sim) *)
  unit_label : string;  (** "ns/op" or "cycles/op" *)
  cross_cas : int;
      (** cross-domain CAS attempts the allocator issued: the depot
          tally under [Depot], {!Sec_reclaim.Slab.Global.cas_attempts}
          under [Slab]/[Arena] — the comparison docs/PERF.md quotes *)
  cross_cas_retries : int;  (** attempts that lost and looped/degraded *)
  fresh : int;  (** nodes constructed outside the recycler (misses) *)
  remote_batches : int;  (** arena remote-free batches spliced *)
  occupancy : float;  (** slab pooled/capacity at the end of the run *)
}

(* The workload, once, over any execution substrate. *)
module Bench (X : Sec_prim.Prim_intf.EXEC) = struct
  module A = X.Atomic
  module Backoff = Sec_prim.Backoff.Make (X)
  module Mag = Sec_reclaim.Magazine.Make (X)
  module Sl = Sec_reclaim.Slab.Make (X)

  (* Every thread: [iters] bursts of [burst] alloc/free round-trips
     against its own magazine. Returns total round-trips. *)
  let mag_local ~backing ~threads ~iters ~burst =
    let mag = Mag.create ~max_threads:threads ~backing () in
    let completed = Array.make threads 0 in
    for _ = 1 to threads do
      X.spawn (fun () ->
          let tid = X.thread_id () in
          let nodes = Array.make burst 0 in
          for _ = 1 to iters do
            for i = 0 to burst - 1 do
              nodes.(i) <-
                (match Mag.alloc mag ~tid with
                | Some n -> n
                | None ->
                    X.note_alloc ();
                    tid + i)
            done;
            for i = 0 to burst - 1 do
              Mag.recycle mag ~tid nodes.(i)
            done;
            completed.(tid) <- completed.(tid) + burst
          done)
    done;
    X.await_all ();
    Array.fold_left ( + ) 0 completed

  (* Producer/consumer pairs handing whole batches through one exchange
     cell: tid 2p allocates, tid 2p+1 frees. Counted on the consumer. *)
  let mag_remote ~backing ~threads ~iters ~burst =
    let pairs = threads / 2 in
    if pairs < 1 then
      invalid_arg "Alloc_bench: the remote phase needs >= 2 threads";
    let mag = Mag.create ~max_threads:threads ~backing () in
    let cells = Array.init pairs (fun _ -> A.make_padded []) in
    let completed = Array.make threads 0 in
    for _ = 1 to pairs do
      X.spawn (fun () ->
          (* producer *)
          let tid = X.thread_id () in
          let cell = cells.(tid / 2) in
          for _ = 1 to iters do
            let batch = ref [] in
            for i = 0 to burst - 1 do
              let n =
                match Mag.alloc mag ~tid with
                | Some n -> n
                | None ->
                    X.note_alloc ();
                    tid + i
              in
              batch := n :: !batch
            done;
            let backoff = Backoff.create () in
            while not (A.compare_and_set cell [] !batch) do
              Backoff.once backoff
            done
          done);
      X.spawn (fun () ->
          (* consumer *)
          let tid = X.thread_id () in
          let cell = cells.(tid / 2) in
          for _ = 1 to iters do
            let backoff = Backoff.create () in
            let rec take () =
              match A.exchange cell [] with
              | [] ->
                  Backoff.once backoff;
                  take ()
              | batch -> batch
            in
            List.iter (fun n -> Mag.recycle mag ~tid n) (take ());
            completed.(tid) <- completed.(tid) + burst
          done)
    done;
    X.await_all ();
    Array.fold_left ( + ) 0 completed

  (* Same two shapes over the off-heap arena: integer handles, owner
     frees in [Local], batched remote frees in [Remote]. The arena is
     sized so the in-flight set (one batch per pair plus the outbox and
     inbox backlog) never exhausts the chunk. *)
  let arena_local ~threads ~iters ~burst =
    let arena = Sl.Arena.create ~max_threads:threads () in
    let completed = Array.make threads 0 in
    for _ = 1 to threads do
      X.spawn (fun () ->
          let tid = X.thread_id () in
          let handles = Array.make burst (-1) in
          for _ = 1 to iters do
            for i = 0 to burst - 1 do
              let h = Sl.Arena.alloc arena ~tid in
              Sl.Arena.set_value arena h i;
              handles.(i) <- h
            done;
            for i = 0 to burst - 1 do
              Sl.Arena.free arena ~tid handles.(i)
            done;
            completed.(tid) <- completed.(tid) + burst
          done;
          Sl.Arena.flush_remote arena ~tid)
    done;
    X.await_all ();
    Array.fold_left ( + ) 0 completed

  let arena_remote ~threads ~iters ~burst =
    let pairs = threads / 2 in
    if pairs < 1 then
      invalid_arg "Alloc_bench: the remote phase needs >= 2 threads";
    let arena = Sl.Arena.create ~max_threads:threads () in
    (* one handle-batch cell per pair; [] = empty *)
    let cells = Array.init pairs (fun _ -> A.make_padded []) in
    let completed = Array.make threads 0 in
    for _ = 1 to pairs do
      X.spawn (fun () ->
          (* producer: every handle it frees nothing — the consumer owns
             the free half of the round-trip *)
          let tid = X.thread_id () in
          let cell = cells.(tid / 2) in
          for _ = 1 to iters do
            let batch = ref [] in
            for i = 0 to burst - 1 do
              let h = Sl.Arena.alloc arena ~tid in
              Sl.Arena.set_value arena h i;
              batch := h :: !batch
            done;
            let backoff = Backoff.create () in
            while not (A.compare_and_set cell [] !batch) do
              Backoff.once backoff
            done
          done;
          Sl.Arena.flush_remote arena ~tid);
      X.spawn (fun () ->
          (* consumer: every free is remote (the producer carved the
             slab), so this is the outbox/inbox path end to end *)
          let tid = X.thread_id () in
          let cell = cells.(tid / 2) in
          for _ = 1 to iters do
            let backoff = Backoff.create () in
            let rec take () =
              match A.exchange cell [] with
              | [] ->
                  Backoff.once backoff;
                  take ()
              | batch -> batch
            in
            List.iter (fun h -> Sl.Arena.free arena ~tid h) (take ());
            completed.(tid) <- completed.(tid) + burst
          done;
          Sl.Arena.flush_remote arena ~tid)
    done;
    X.await_all ();
    Array.fold_left ( + ) 0 completed

  let run ~mode ~phase ~threads ~iters ~burst () =
    match (mode, phase) with
    | Arena, Local -> arena_local ~threads ~iters ~burst
    | Arena, Remote -> arena_remote ~threads ~iters ~burst
    | (Depot | Slab), Local ->
        mag_local
          ~backing:(if mode = Depot then `Depot else `Slab)
          ~threads ~iters ~burst
    | (Depot | Slab), Remote ->
        mag_remote
          ~backing:(if mode = Depot then `Depot else `Slab)
          ~threads ~iters ~burst
end

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)

let default_iters = 200
let default_burst = 192 (* > Magazine.default_capacity: bursts must spill *)

(* Fold the process-wide tallies into a [result]; [cross_cas] is the
   number the ISSUE's acceptance bar compares (slab strictly below
   depot). *)
let finish ~mode ~phase ~backend ~threads ~ops ~per_op ~unit_label =
  let a = Sec_core.Sec_stats.alloc_snapshot () in
  let cross_cas, cross_cas_retries =
    match mode with
    | Depot ->
        (a.Sec_core.Sec_stats.depot_cas, a.Sec_core.Sec_stats.depot_cas_retries)
    | Slab | Arena ->
        (a.Sec_core.Sec_stats.slab_cas, a.Sec_core.Sec_stats.slab_cas_retries)
  in
  {
    r_mode = mode;
    r_phase = phase;
    backend;
    threads;
    ops;
    per_op;
    unit_label;
    cross_cas;
    cross_cas_retries;
    fresh =
      a.Sec_core.Sec_stats.mag_misses + a.Sec_core.Sec_stats.slab_fresh;
    remote_batches = a.Sec_core.Sec_stats.remote_batches;
    occupancy = a.Sec_core.Sec_stats.slab_occupancy;
  }

(* Native: fixed work, wall clock around the whole run (domain spawn and
   start barrier included — size [iters] so the loop dominates). *)
let run_native ?(threads = 4) ?(iters = default_iters)
    ?(burst = default_burst) ?(seed = 1) ~mode ~phase () =
  let module B = Bench (Sec_prim.Native) in
  Sec_core.Sec_stats.alloc_reset ();
  let ops = ref 0 in
  let t0 = ref 0. and t1 = ref 0. in
  Sec_prim.Native.with_exec ~seed:(Int64.of_int seed) (fun () ->
      t0 := Unix.gettimeofday ();
      ops := B.run ~mode ~phase ~threads ~iters ~burst ();
      t1 := Unix.gettimeofday ());
  let per_op =
    if !ops = 0 then 0. else (!t1 -. !t0) *. 1e9 /. float_of_int !ops
  in
  finish ~mode ~phase ~backend:"native" ~threads ~ops:!ops ~per_op
    ~unit_label:"ns/op"

(* Simulated: same fixed work on virtual fibers; the cost unit is the
   makespan in virtual cycles, deterministic per seed. *)
let run_sim ?(threads = 4) ?(iters = default_iters) ?(burst = default_burst)
    ?(seed = 1) ?topology ~mode ~phase () =
  let module B = Bench (Sec_sim.Sim.Prim) in
  let topology =
    match topology with Some t -> t | None -> Sec_sim.Topology.testbox
  in
  Sec_core.Sec_stats.alloc_reset ();
  let ops, stats =
    Sec_sim.Sim.run ~seed ~jitter:2 ~topology (fun () ->
        B.run ~mode ~phase ~threads ~iters ~burst ())
  in
  let per_op =
    if ops = 0 then 0.
    else float_of_int stats.Sec_sim.Sim.elapsed_cycles /. float_of_int ops
  in
  finish ~mode ~phase ~backend:"sim" ~threads ~ops ~per_op
    ~unit_label:"cycles/op"
