(** The single workload driver behind every benchmark: the paper's
    prefill/announce/measure loop, written once against
    {!Sec_prim.Prim_intf.EXEC} and instantiated for real domains
    ({!Native_runner}) and the simulator ({!Sim_runner}). Per-operation
    metrics — throughput counts, latency histograms, operation histories —
    plug in as {!Make.observer}s over the one loop. See docs/HARNESS.md. *)

val default_prefill : int
val default_value_range : int

module Make (X : Sec_prim.Prim_intf.EXEC) : sig
  (** What to record per operation. When [timed] is false the two
      substrate clock reads around each operation are skipped and [on_op]
      receives [start = finish = 0L]. *)
  type observer = {
    timed : bool;
    on_op :
      tid:int ->
      op:Workload.op ->
      value:int ->
      result:int option ->
      start:int64 ->
      finish:int64 ->
      unit;
  }

  (** Records nothing; throughput comes from the per-thread counts the
      loop keeps anyway. *)
  val counting_observer : observer

  (** Per-thread latency histograms; the returned thunk merges them
      (call it after the run). *)
  val latency_observer : threads:int -> observer * (unit -> Latency.t)

  (** Records every operation into a {!Sec_spec.History} for
      linearizability checking, on either substrate. *)
  val history_observer : threads:int -> observer * int Sec_spec.History.t

  type stop_rule =
    | Timed of X.budget  (** run until the backend's deadline expires *)
    | Ops_per_thread of int  (** fixed count; no deadline, no clock reads *)

  type outcome = {
    counts : int array;  (** operations completed, per thread *)
    elapsed : X.budget option;  (** measured duration of [Timed] runs *)
  }

  val total : outcome -> int

  (** The workload loop itself, over caller-supplied operations (used
      directly by non-stack benchmarks, e.g. SEC statistics runs). *)
  val drive :
    ?observer:observer ->
    ?op_overhead:int ->
    threads:int ->
    stop:stop_rule ->
    mix:Workload.mix ->
    ?value_range:int ->
    push:(tid:int -> int -> unit) ->
    pop:(tid:int -> int option) ->
    peek:(tid:int -> int option) ->
    unit ->
    outcome

  (** The standard stack benchmark: instantiate [Maker] on this
      substrate, prefill single-threaded, drive. Returns the algorithm's
      display name with the outcome. *)
  val run_maker :
    (module Sec_spec.Stack_intf.MAKER) ->
    ?observer:observer ->
    ?op_overhead:int ->
    threads:int ->
    stop:stop_rule ->
    mix:Workload.mix ->
    ?prefill:int ->
    ?value_range:int ->
    unit ->
    string * outcome

  (** [run_maker] with a full operation history. *)
  val run_recorded :
    (module Sec_spec.Stack_intf.MAKER) ->
    ?op_overhead:int ->
    threads:int ->
    stop:stop_rule ->
    mix:Workload.mix ->
    ?prefill:int ->
    ?value_range:int ->
    unit ->
    string * int Sec_spec.History.t * outcome
end

(** A benchmark backend: {!Make} applied to one substrate plus the
    presentation facts (labels, sweep points, prefill policy) that keep
    {!Experiments} backend-agnostic. Built by {!Native_runner.backend}
    and {!Sim_runner.backend}. *)
module type BACKEND = sig
  val label : string
  val file_suffix : string
  val sweep_threads : int list
  val prefill_for : Workload.mix -> int
  val latency_point : int
  val latency_unit : string

  val run_mix :
    (module Sec_spec.Stack_intf.MAKER) ->
    threads:int ->
    mix:Workload.mix ->
    ?prefill:int ->
    ?seed:int ->
    unit ->
    Measurement.t

  val run_latency :
    (module Sec_spec.Stack_intf.MAKER) ->
    threads:int ->
    mix:Workload.mix ->
    ?prefill:int ->
    ?seed:int ->
    unit ->
    Latency.t
end
