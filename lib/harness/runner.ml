(* The single workload driver behind every benchmark in this repository.

   The paper's methodology (Section 6) — prefilled stack, threads drawing
   operations at random for a fixed duration, per-thread counts — used to
   be implemented once per backend and once per metric. It now exists
   exactly once, in {!Make.drive}, parameterized two ways:

   - the execution substrate [X : Sec_prim.Prim_intf.EXEC] decides what a
     thread, a clock and a deadline are (real domains and wall seconds, or
     simulator fibers and virtual cycles);
   - an {!Make.observer} decides what to record per operation, so
     throughput counting, latency histograms and history recording are
     three observers over one loop instead of three forked loops.

   {!Native_runner} and {!Sim_runner} are thin adapters over this functor;
   they contain no workload loop of their own. *)

let default_prefill = 1_000
let default_value_range = 100_000

module Make (X : Sec_prim.Prim_intf.EXEC) = struct
  (* Per-operation instrumentation. [timed] gates the two substrate clock
     reads around each operation so that plain throughput runs pay for
     none (in the simulator, [now_ns] is free but the flag keeps the
     native fast path branch-only; observers that ignore timestamps set it
     to [false] and receive zeros). *)
  type observer = {
    timed : bool;
    on_op :
      tid:int ->
      op:Workload.op ->
      value:int ->
      result:int option ->
      start:int64 ->
      finish:int64 ->
      unit;
  }

  let counting_observer =
    {
      timed = false;
      on_op = (fun ~tid:_ ~op:_ ~value:_ ~result:_ ~start:_ ~finish:_ -> ());
    }

  (* Latency histogram per thread (no sharing on the hot path), merged on
     demand after the run. *)
  let latency_observer ~threads =
    let per_thread = Array.init threads (fun _ -> Latency.create ()) in
    let observer =
      {
        timed = true;
        on_op =
          (fun ~tid ~op:_ ~value:_ ~result:_ ~start ~finish ->
            Latency.add per_thread.(tid)
              (Int64.to_int (Int64.sub finish start)));
      }
    in
    (observer, fun () -> Array.fold_left Latency.merge (Latency.create ()) per_thread)

  (* Record a {!Sec_spec.History} of every operation, for linearizability
     checking. Works on both substrates: timestamps are whatever [X]'s
     clock says, which is exactly what {!Sec_spec.Lin_check} wants. *)
  let history_observer ~threads =
    let history = Sec_spec.History.create ~max_threads:threads in
    let observer =
      {
        timed = true;
        on_op =
          (fun ~tid ~op ~value ~result ~start ~finish ->
            let recorded =
              match op with
              | Workload.Push -> Sec_spec.History.Push value
              | Workload.Pop -> Sec_spec.History.Pop result
              | Workload.Peek -> Sec_spec.History.Peek result
            in
            Sec_spec.History.add history ~tid recorded ~inv:start ~resp:finish);
      }
    in
    (observer, history)

  type stop_rule =
    | Timed of X.budget  (** run until the backend's deadline expires *)
    | Ops_per_thread of int  (** run a fixed count; no deadline, no clock *)

  type outcome = {
    counts : int array;  (** operations completed, per thread *)
    elapsed : X.budget option;  (** measured duration of [Timed] runs *)
  }

  let total outcome = Array.fold_left ( + ) 0 outcome.counts

  (* THE workload loop. Everything the old per-backend runners did lives
     here: spawn [threads] workers, each drawing operations from [mix]
     ([op_overhead] models the draw/branch/counter cost of the benchmark
     loop itself — the simulator charges it, native leaves it 0) until the
     stop rule fires.

     Effect-trace compatibility (simulator determinism): per iteration
     this performs, in order, the deadline check ([Now]), [Relax
     op_overhead] (when nonzero), [Rand_int 100] for the mix draw, then
     for a push [Rand_int value_range] followed by the operation's own
     accesses — the same trace as the three loops it replaces, so pinned
     seeds reproduce the pre-refactor schedules cycle for cycle. *)
  let drive ?(observer = counting_observer) ?(op_overhead = 0) ~threads ~stop
      ~mix ?(value_range = default_value_range) ~push ~pop ~peek () =
    let counts = Array.make threads 0 in
    let deadline =
      match stop with
      | Timed budget -> Some (X.deadline_after budget)
      | Ops_per_thread _ -> None
    in
    let cap =
      match stop with Ops_per_thread n -> n | Timed _ -> max_int
    in
    for _ = 1 to threads do
      X.spawn (fun () ->
          let tid = X.thread_id () in
          let ops = ref 0 in
          let keep_going () =
            !ops < cap
            &&
            match deadline with
            | Some d -> not (X.expired d)
            | None -> true
          in
          while keep_going () do
            if op_overhead > 0 then X.relax op_overhead;
            let op = Workload.pick mix (X.rand_int 100) in
            let start = if observer.timed then X.now_ns () else 0L in
            (* Operation boundaries for the progress monitor: one ref
               read each when no monitor is installed, and no effect is
               performed, so the effect trace above is unchanged. *)
            Sec_analysis.Progress_monitor.note_op_start ~fiber:tid;
            let value, result =
              match op with
              | Workload.Push ->
                  let v = X.rand_int value_range in
                  push ~tid v;
                  (v, None)
              | Workload.Pop -> (0, pop ~tid)
              | Workload.Peek -> (0, peek ~tid)
            in
            Sec_analysis.Progress_monitor.note_op_end ~fiber:tid;
            let finish = if observer.timed then X.now_ns () else 0L in
            observer.on_op ~tid ~op ~value ~result ~start ~finish;
            incr ops
          done;
          counts.(tid) <- !ops)
    done;
    X.await_all ();
    { counts; elapsed = Option.map X.elapsed deadline }

  (* [run_maker]: the standard stack benchmark — instantiate a registry
     MAKER on this substrate, prefill single-threaded, drive. Returns the
     algorithm's display name with the outcome. *)
  let run_maker (module Maker : Sec_spec.Stack_intf.MAKER) ?observer
      ?op_overhead ~threads ~stop ~mix ?(prefill = default_prefill)
      ?(value_range = default_value_range) () =
    let module S = Maker (X) in
    let stack = S.create ~max_threads:(max threads 1) () in
    for i = 1 to prefill do
      S.push stack ~tid:0 (i mod value_range)
    done;
    let outcome =
      drive ?observer ?op_overhead ~threads ~stop ~mix ~value_range
        ~push:(fun ~tid v -> S.push stack ~tid v)
        ~pop:(fun ~tid -> S.pop stack ~tid)
        ~peek:(fun ~tid -> S.peek stack ~tid)
        ()
    in
    (S.name, outcome)

  (* [run_recorded]: same benchmark with a full operation history, for
     linearizability checking on either substrate. *)
  let run_recorded (module Maker : Sec_spec.Stack_intf.MAKER) ?op_overhead
      ~threads ~stop ~mix ?prefill ?value_range () =
    let observer, history = history_observer ~threads in
    let name, outcome =
      run_maker
        (module Maker)
        ~observer ?op_overhead ~threads ~stop ~mix ?prefill ?value_range ()
    in
    (name, history, outcome)
end

(* ------------------------------------------------------------------ *)
(* A benchmark backend: [Runner.Make] applied to one substrate, plus the
   presentation facts experiments need to stay backend-agnostic (display
   label, CSV suffix, default sweep points). Constructed by
   {!Native_runner.backend} and {!Sim_runner.backend}; {!Experiments}
   iterates over first-class [(module BACKEND)] values. *)

module type BACKEND = sig
  (** Suffix of report titles, e.g. ["simulated emerald"] or
      ["native domains"]. *)
  val label : string

  (** Appended to CSV base names (["" ] for sim, ["_native"] native) so
      the two backends' files coexist in one results directory. *)
  val file_suffix : string

  (** Default thread counts for throughput sweeps. *)
  val sweep_threads : int list

  (** Workload-dependent prefill: pop-only sweeps need the stack to
      outlast the measurement window. *)
  val prefill_for : Workload.mix -> int

  (** Thread count and clock unit for the latency-distribution profile. *)
  val latency_point : int

  val latency_unit : string

  val run_mix :
    (module Sec_spec.Stack_intf.MAKER) ->
    threads:int ->
    mix:Workload.mix ->
    ?prefill:int ->
    ?seed:int ->
    unit ->
    Measurement.t

  val run_latency :
    (module Sec_spec.Stack_intf.MAKER) ->
    threads:int ->
    mix:Workload.mix ->
    ?prefill:int ->
    ?seed:int ->
    unit ->
    Latency.t
end
