(** Plain-text tables (the textual equivalent of the paper's figures) and
    CSV export. *)

(** [series ~title ~columns ~rows] prints a table of Mops/s values whose
    columns are thread counts. *)
val series :
  title:string -> columns:int list -> rows:(string * float array) list -> unit

(** Key/value table (used for the batching-degree tables). *)
val keyed :
  title:string -> columns:string list -> rows:(string * string list) list -> unit

val ensure_dir : string -> unit

(** [csv ~dir ~file ~header ~rows] writes a CSV file, creating [dir] if
    needed. *)
val csv :
  dir:string -> file:string -> header:string list -> rows:string list list -> unit

(** [markdown ~path ~lines] writes a markdown document, one entry of
    [lines] per line, verbatim. *)
val markdown : path:string -> lines:string list -> unit

(** CSV form of a {!series} table. *)
val csv_of_series :
  dir:string ->
  file:string ->
  columns:int list ->
  rows:(string * float array) list ->
  unit
