(** Native backend adapter over {!Runner.Make}: timed runs on real
    domains, following the paper's methodology (prefilled stack, random
    operation mix, fixed duration). Contains no workload loop of its own.
    Limited by this host's core count; paper-scale runs use
    {!Sim_runner}. *)

val default_prefill : int
val default_value_range : int

(** [run maker ~threads ~duration ~mix ()] spawns [threads] domains that
    hammer a fresh stack for [duration] seconds and reports throughput. *)
val run :
  (module Registry.MAKER) ->
  threads:int ->
  duration:float ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Measurement.t

(** Like {!run}, but returns a per-operation latency histogram in
    nanoseconds. *)
val run_latency_profile :
  (module Registry.MAKER) ->
  threads:int ->
  duration:float ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Latency.t

(** [run_recorded maker ~threads ~ops_per_thread ~mix ()] runs a fixed
    number of operations per thread on real domains, recording a
    wall-clock-stamped operation history for linearizability checking.
    Returns the history and the per-thread completed-operation counts. *)
val run_recorded :
  (module Registry.MAKER) ->
  threads:int ->
  ops_per_thread:int ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  int Sec_spec.History.t * int array

(** The native benchmark backend ([duration] in wall-clock seconds per
    data point), for backend-agnostic experiment definitions. *)
val backend : duration:float -> (module Runner.BACKEND)
