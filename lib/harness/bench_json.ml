(* Machine-readable benchmark baseline: one pinned configuration per
   backend, emitted as BENCH_<backend>.json and diffed against a
   checked-in copy by `dune build @bench-smoke` (and CI). Where the
   smoke CSV pins two algorithms' exact operation counts, this file
   covers every structure in the comparison and adds the allocation
   dimension this PR is about: simulated allocations per run (the
   substrate's [note_alloc] tally) and the magazine hit rate for the
   recycling variants.

   The sim rows are deterministic per seed, so regressions are exact:
   a row's throughput falling more than the threshold below the
   checked-in baseline fails the build. Native rows exist for human
   eyes (`--backend native`); they are never compared automatically.

   No JSON library ships in this environment, so the writer and the
   tiny recursive-descent reader below are hand-rolled; the reader
   accepts just the subset the writer produces (objects, arrays,
   strings, numbers, booleans, null). *)

type row = {
  algorithm : string;
  threads : int;
  ops : int;
  allocs : int;  (** sim: [Sim.stats.allocs]; native: minor-heap bytes *)
  throughput : float;  (** ops per virtual cycle (sim) or per second *)
  mag_hits : int;
  mag_misses : int;
  mag_recycled : int;
  mag_hit_rate : float;
  (* PR 10, the allocator dimension: depot CAS traffic (with contended
     retries), slab-layer CAS traffic and occupancy, arena remote-free
     batches, and — native rows only, zero in sim — GC counters for the
     off-heap claim. *)
  depot_cas : int;
  depot_cas_retries : int;
  slab_cas : int;
  slab_occupancy : float;
  remote_batches : int;
  gc_minor_words : float;  (** native: minor words allocated; sim: 0 *)
  gc_major_colls : int;  (** native: major collections; sim: 0 *)
}

type doc = {
  backend : string; (* "sim" | "native" *)
  machine : string;
  unit_label : string; (* "ops/cycle" | "ops/s" *)
  seed : int;
  duration : float; (* virtual cycles (sim) or seconds (native) *)
  events_per_sec : float;
      (* wall-clock event-loop throughput of the pinned sim workload
         (best of several passes); 0.0 when absent (pre-event-loop-
         refactor baselines, and native docs). The only wall-clock
         number in the file: the deterministic rows stay byte-stable,
         this field varies run to run and is rounded to 3 significant
         digits to limit churn. *)
  rows : row list;
}

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)

(* The recycling, adaptive and slab-backed SEC/EBR variants ride along
   in the baseline so the zero-allocation and depot-removal claims are
   themselves regression-checked. *)
let bench_entries =
  Registry.paper_set @ Registry.reclaimed_set
  @ [ Registry.sec_recycling; Registry.sec_adaptive ]
  @ Registry.slab_set

let bench_threads = [ 1; 2; 4 ]

(* A long window over a small prefill: [Sim.stats.allocs] counts the
   whole run, so the steady state must dominate the single-threaded
   prefill for the allocs column (and the magazine hit rate) to reflect
   the hot path rather than the warm-up. *)
let bench_cycles = 200_000
let bench_prefill = 64

let sim_row entry ~topology ~threads ~duration_cycles ~mix ~seed =
  let module R = Runner.Make (Sec_sim.Sim.Prim) in
  Sec_core.Sec_stats.alloc_reset ();
  let (name, outcome), stats =
    Sec_sim.Sim.run ~seed ~jitter:2 ~topology (fun () ->
        R.run_maker entry.Registry.maker ~op_overhead:10 ~threads
          ~stop:(R.Timed duration_cycles) ~mix ~prefill:bench_prefill ())
  in
  let a = Sec_core.Sec_stats.alloc_snapshot () in
  let ops = R.total outcome in
  {
    algorithm = name;
    threads;
    ops;
    allocs = stats.Sec_sim.Sim.allocs;
    throughput = float_of_int ops /. float_of_int duration_cycles;
    mag_hits = a.Sec_core.Sec_stats.mag_hits;
    mag_misses = a.Sec_core.Sec_stats.mag_misses;
    mag_recycled = a.Sec_core.Sec_stats.mag_recycled;
    mag_hit_rate = a.Sec_core.Sec_stats.mag_hit_rate;
    depot_cas = a.Sec_core.Sec_stats.depot_cas;
    depot_cas_retries = a.Sec_core.Sec_stats.depot_cas_retries;
    slab_cas = a.Sec_core.Sec_stats.slab_cas;
    slab_occupancy = a.Sec_core.Sec_stats.slab_occupancy;
    remote_batches = a.Sec_core.Sec_stats.remote_batches;
    gc_minor_words = 0.;
    gc_major_colls = 0;
  }

let native_row entry ~threads ~duration ~mix ~seed =
  Sec_core.Sec_stats.alloc_reset ();
  let before = Gc.allocated_bytes () in
  let gc0 = Gc.quick_stat () in
  let m =
    Native_runner.run entry.Registry.maker ~threads ~duration ~mix
      ~prefill:bench_prefill ~seed ()
  in
  let allocated = Gc.allocated_bytes () -. before in
  let gc1 = Gc.quick_stat () in
  let a = Sec_core.Sec_stats.alloc_snapshot () in
  {
    algorithm = m.Measurement.algorithm;
    threads;
    ops = m.Measurement.ops;
    allocs = int_of_float allocated;
    throughput = float_of_int m.Measurement.ops /. m.Measurement.elapsed;
    mag_hits = a.Sec_core.Sec_stats.mag_hits;
    mag_misses = a.Sec_core.Sec_stats.mag_misses;
    mag_recycled = a.Sec_core.Sec_stats.mag_recycled;
    mag_hit_rate = a.Sec_core.Sec_stats.mag_hit_rate;
    depot_cas = a.Sec_core.Sec_stats.depot_cas;
    depot_cas_retries = a.Sec_core.Sec_stats.depot_cas_retries;
    slab_cas = a.Sec_core.Sec_stats.slab_cas;
    slab_occupancy = a.Sec_core.Sec_stats.slab_occupancy;
    remote_batches = a.Sec_core.Sec_stats.remote_batches;
    gc_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
    gc_major_colls = gc1.Gc.major_collections - gc0.Gc.major_collections;
  }

(* Event-loop throughput: wall-clock scheduling events per second over a
   pinned simulated workload — SEC (combining/elimination paths) and TRB
   (CAS loop) at 4 threads. The event count is deterministic per seed;
   only the elapsed time varies, so best-of-[reps] timing is the
   low-noise estimator. This is the number the event-loop refactor's
   ">= 2x events/sec" target is measured on (docs/PERF.md), and what the
   --against gate checks for wall-clock regressions. *)
let events_workload_entries () = [ Registry.sec; Registry.treiber ]

let measure_events_per_sec ?(reps = 12) () =
  let topology = Sec_sim.Topology.testbox in
  let mix = Workload.by_name "100%upd" in
  let module R = Runner.Make (Sec_sim.Sim.Prim) in
  let one () =
    List.fold_left
      (fun acc (entry : Registry.entry) ->
        let _, stats =
          Sec_sim.Sim.run ~seed:1 ~jitter:2 ~topology (fun () ->
              R.run_maker entry.Registry.maker ~op_overhead:10 ~threads:4
                ~stop:(R.Timed bench_cycles) ~mix ~prefill:bench_prefill ())
        in
        acc + stats.Sec_sim.Sim.events)
      0
      (events_workload_entries ())
  in
  let events = ref (one ()) (* warm-up pass, also fixes the count *) in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    events := one ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  let raw = float_of_int !events /. !best in
  (* Round to 3 significant digits: regenerating the file on the same
     machine should not churn the field by timing noise smaller than the
     gate threshold. *)
  if raw <= 0. then 0.
  else
    let mag = 10. ** Float.of_int (2 - int_of_float (Float.log10 raw)) in
    Float.round (raw *. mag) /. mag

let collect_sim ?(seed = 1) () =
  let topology = Sec_sim.Topology.testbox in
  let mix = Workload.by_name "100%upd" in
  let rows =
    List.concat_map
      (fun entry ->
        List.map
          (fun threads ->
            sim_row entry ~topology ~threads ~duration_cycles:bench_cycles
              ~mix ~seed)
          bench_threads)
      bench_entries
  in
  {
    backend = "sim";
    machine = topology.Sec_sim.Topology.name;
    unit_label = "ops/cycle";
    seed;
    duration = float_of_int bench_cycles;
    events_per_sec = measure_events_per_sec ();
    rows;
  }

let collect_native ?(seed = 1) ?(duration = 0.05) () =
  let mix = Workload.by_name "100%upd" in
  let rows =
    List.concat_map
      (fun entry ->
        List.map
          (fun threads -> native_row entry ~threads ~duration ~mix ~seed)
          bench_threads)
      bench_entries
  in
  {
    backend = "native";
    machine = "host";
    unit_label = "ops/s";
    seed;
    duration;
    events_per_sec = 0.;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Fixed decimal formatting keeps the checked-in file reproducible
   byte-for-byte across runs of the deterministic sim configuration. *)
let fl x = Printf.sprintf "%.8f" x

let to_string doc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"backend\": \"%s\",\n" (escape doc.backend));
  Buffer.add_string buf
    (Printf.sprintf "  \"machine\": \"%s\",\n" (escape doc.machine));
  Buffer.add_string buf
    (Printf.sprintf "  \"unit\": \"%s\",\n" (escape doc.unit_label));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" doc.seed);
  Buffer.add_string buf
    (Printf.sprintf "  \"duration\": %s,\n" (fl doc.duration));
  if doc.events_per_sec > 0. then
    Buffer.add_string buf
      (Printf.sprintf "  \"events_per_sec\": %s,\n" (fl doc.events_per_sec));
  Buffer.add_string buf "  \"rows\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"algorithm\": \"%s\", \"threads\": %d, \"ops\": %d, \
            \"allocs\": %d, \"throughput\": %s, \"mag_hits\": %d, \
            \"mag_misses\": %d, \"mag_recycled\": %d, \"mag_hit_rate\": %s, \
            \"depot_cas\": %d, \"depot_cas_retries\": %d, \"slab_cas\": %d, \
            \"slab_occupancy\": %s, \"remote_batches\": %d, \
            \"gc_minor_words\": %s, \"gc_major_colls\": %d}"
           (escape r.algorithm) r.threads r.ops r.allocs (fl r.throughput)
           r.mag_hits r.mag_misses r.mag_recycled (fl r.mag_hit_rate)
           r.depot_cas r.depot_cas_retries r.slab_cas (fl r.slab_occupancy)
           r.remote_batches (fl r.gc_minor_words) r.gc_major_colls))
    doc.rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write ~path doc =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string doc))

(* ------------------------------------------------------------------ *)
(* Reader (the writer's subset of JSON)                                *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_token () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
              Buffer.add_char buf '"';
              advance ();
              loop ()
          | Some '\\' ->
              Buffer.add_char buf '\\';
              advance ();
              loop ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              loop ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              loop ()
          | Some 'u' ->
              (* Only ASCII escapes are ever written; decode low code
                 points, reject the rest. *)
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              if code > 0x7f then fail "non-ASCII \\u escape";
              Buffer.add_char buf (Char.chr code);
              pos := !pos + 4;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let number_token () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = string_token () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (string_token ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number_token ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> raise (Parse_error ("missing field " ^ key)))
  | _ -> raise (Parse_error ("not an object looking up " ^ key))

let to_float = function
  | Num f -> f
  | _ -> raise (Parse_error "expected number")

let to_int j = int_of_float (to_float j)

let to_str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

(* The PR 10 columns default to zero when absent, so baselines written
   by the previous schema still parse (their gates simply do not
   apply). *)
let opt_float key j ~default =
  match j with
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> to_float v
      | None -> default)
  | _ -> default

let opt_int key j ~default = int_of_float (opt_float key j ~default:(float_of_int default))

let row_of_json j =
  {
    algorithm = to_str (member "algorithm" j);
    threads = to_int (member "threads" j);
    ops = to_int (member "ops" j);
    allocs = to_int (member "allocs" j);
    throughput = to_float (member "throughput" j);
    mag_hits = to_int (member "mag_hits" j);
    mag_misses = to_int (member "mag_misses" j);
    mag_recycled = to_int (member "mag_recycled" j);
    mag_hit_rate = to_float (member "mag_hit_rate" j);
    depot_cas = opt_int "depot_cas" j ~default:0;
    depot_cas_retries = opt_int "depot_cas_retries" j ~default:0;
    slab_cas = opt_int "slab_cas" j ~default:0;
    slab_occupancy = opt_float "slab_occupancy" j ~default:0.;
    remote_batches = opt_int "remote_batches" j ~default:0;
    gc_minor_words = opt_float "gc_minor_words" j ~default:0.;
    gc_major_colls = opt_int "gc_major_colls" j ~default:0;
  }

let of_string src =
  let j = parse src in
  {
    backend = to_str (member "backend" j);
    machine = to_str (member "machine" j);
    unit_label = to_str (member "unit" j);
    seed = to_int (member "seed" j);
    duration = to_float (member "duration" j);
    (* Optional: absent in baselines predating the event-loop refactor,
       in which case no events/sec gate applies. *)
    events_per_sec =
      (match j with
      | Obj fields -> (
          match List.assoc_opt "events_per_sec" fields with
          | Some v -> to_float v
          | None -> 0.)
      | _ -> 0.);
    rows =
      (match member "rows" j with
      | Arr rows -> List.map row_of_json rows
      | _ -> raise (Parse_error "rows is not an array"));
  }

let read ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Regression check                                                    *)

type regression = {
  r_algorithm : string;
  r_threads : int;
  r_metric : string;  (** "throughput" | "events/sec" | "allocs/op" *)
  baseline : float;
  current : float;
}

(* Only the paper-set structures gate the build: the magazine/adaptive
   variants and the EBR twins are newer and noisier, and the acceptance
   bar for this layer is "no paper-set structure regresses". *)
let gating_algorithms =
  List.map (fun e -> e.Registry.name) Registry.paper_set

(* The events/sec gate is wall-clock (unlike the deterministic
   throughput rows), so it carries its own threshold: same-machine
   regenerations use the default, while cross-machine comparisons (CI
   runners of varying speed) should pass a wider [events_threshold].
   It only applies when the baseline has the field (> 0), so baselines
   predating the event-loop refactor still gate throughput alone. The
   pseudo-row is reported as algorithm "events/sec" at 0 threads. *)
(* [allocs_threshold] gates allocations per operation (sim rows are
   deterministic, so any growth is a real hot-path change): a current
   allocs/op more than the fraction above the baseline's fails. A zero
   baseline (fully recycled hot path) must stay zero. *)
let check ?(threshold = 0.10) ?(events_threshold = 0.10)
    ?(allocs_threshold = 0.10) ~baseline ~current () =
  let events =
    if
      baseline.events_per_sec > 0.
      && current.events_per_sec > 0.
      && current.events_per_sec
         < (1.0 -. events_threshold) *. baseline.events_per_sec
    then
      [
        {
          r_algorithm = "events/sec";
          r_threads = 0;
          r_metric = "events/sec";
          baseline = baseline.events_per_sec;
          current = current.events_per_sec;
        };
      ]
    else []
  in
  let apo (r : row) =
    if r.ops = 0 then 0. else float_of_int r.allocs /. float_of_int r.ops
  in
  List.concat_map
    (fun (b : row) ->
      if not (List.mem b.algorithm gating_algorithms) then []
      else
        match
          List.find_opt
            (fun (c : row) ->
              c.algorithm = b.algorithm && c.threads = b.threads)
            current.rows
        with
        | None -> [] (* structure dropped: the build breaks elsewhere *)
        | Some c ->
            let throughput_reg =
              if c.throughput < (1.0 -. threshold) *. b.throughput then
                [
                  {
                    r_algorithm = b.algorithm;
                    r_threads = b.threads;
                    r_metric = "throughput";
                    baseline = b.throughput;
                    current = c.throughput;
                  };
                ]
              else []
            in
            let allocs_reg =
              (* epsilon absorbs one cold-start node against a zero
                 baseline without letting a real per-op regression by *)
              let eps = 1e-3 in
              if apo c > ((1.0 +. allocs_threshold) *. apo b) +. eps then
                [
                  {
                    r_algorithm = b.algorithm;
                    r_threads = b.threads;
                    r_metric = "allocs/op";
                    baseline = apo b;
                    current = apo c;
                  };
                ]
              else []
            in
            throughput_reg @ allocs_reg)
    baseline.rows
  @ events
