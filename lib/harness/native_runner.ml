(* Native backend adapter: timed runs on real domains (the paper's
   methodology: run for a fixed wall-clock duration on a prefilled stack,
   threads drawing operations at random). The workload loop itself lives
   in {!Runner.Make}; this module only supplies the substrate
   ({!Sec_prim.Native}), seeds it, and converts outcomes to
   {!Measurement}s. Thread counts beyond the host's cores oversubscribe —
   fine for correctness, but this host has very few cores, so paper-scale
   numbers come from {!Sim_runner}. *)

module P = Sec_prim.Native
module R = Runner.Make (P)

let default_prefill = Runner.default_prefill
let default_value_range = Runner.default_value_range

(* All randomness (mix draws, push values, algorithm-internal backoff)
   flows through the substrate's per-thread generators, which
   [P.with_exec] derives from the one run seed — the same scheme the
   simulator uses (see Prim_intf.EXEC). *)
let with_seed seed f = P.with_exec ~seed:(Int64.of_int seed) f

let run (module Maker : Registry.MAKER) ~threads ~duration ~mix
    ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  with_seed seed @@ fun () ->
  let name, outcome =
    R.run_maker
      (module Maker)
      ~threads ~stop:(R.Timed duration) ~mix ~prefill ~value_range ()
  in
  let elapsed = Option.value outcome.R.elapsed ~default:duration in
  Measurement.of_native ~algorithm:name ~threads ~ops:(R.total outcome)
    ~elapsed

(* Per-operation latency histogram in nanoseconds — previously
   sim-only; the observer mechanism makes it backend-independent. *)
let run_latency_profile (module Maker : Registry.MAKER) ~threads ~duration
    ~mix ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  with_seed seed @@ fun () ->
  let observer, merged = R.latency_observer ~threads in
  let _name, _outcome =
    R.run_maker
      (module Maker)
      ~observer ~threads ~stop:(R.Timed duration) ~mix ~prefill ~value_range
      ()
  in
  merged ()

(* Record a real-time-stamped operation history on real domains, for
   linearizability checking of native executions. *)
let run_recorded (module Maker : Registry.MAKER) ~threads ~ops_per_thread
    ~mix ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  with_seed seed @@ fun () ->
  let _name, history, outcome =
    R.run_recorded
      (module Maker)
      ~threads
      ~stop:(R.Ops_per_thread ops_per_thread)
      ~mix ~prefill ~value_range ()
  in
  (history, outcome.R.counts)

let backend ~duration : (module Runner.BACKEND) =
  (module struct
    let label = "native domains"
    let file_suffix = "_native"
    let sweep_threads = [ 1; 2; 4 ]

    (* Native cores pop millions of times per second; size the pop-only
       prefill to keep the stack non-empty for the wall-clock window. *)
    let prefill_for mix =
      if mix.Workload.pop_pct = 100 then 2_000_000 else default_prefill

    let latency_point = 4
    let latency_unit = "ns"

    let run_mix maker ~threads ~mix ?(prefill = default_prefill) ?(seed = 1)
        () =
      run maker ~threads ~duration ~mix ~prefill ~seed ()

    let run_latency maker ~threads ~mix ?(prefill = default_prefill)
        ?(seed = 1) () =
      run_latency_profile maker ~threads ~duration ~mix ~prefill ~seed ()
  end)
