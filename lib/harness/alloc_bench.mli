(** Allocator microbenchmark behind [sec_bench alloc] (PR 10): the node
    hot path measured in isolation — alloc/free round-trip cost and
    remote-free throughput for the PR 5 global depot against the
    wait-free slab store and the off-heap arena, on both substrates.

    The iteration counts are fixed (not timed), so simulated runs are
    deterministic per seed and the cross-domain CAS comparison between
    modes is exact. See docs/PERF.md ("Allocator") for measured
    numbers. *)

type mode =
  | Depot  (** magazine over the PR 5 global depot (one CAS per chain) *)
  | Slab  (** magazine refilled from the wait-free slab store *)
  | Arena  (** off-heap Bigarray arena, integer handles, no magazine *)

type phase =
  | Local  (** every thread alloc/frees its own bursts *)
  | Remote
      (** producer/consumer pairs: allocation and free streams live on
          different domains *)

val mode_to_string : mode -> string
val phase_to_string : phase -> string

type result = {
  r_mode : mode;
  r_phase : phase;
  backend : string;  (** "native" or "sim" *)
  threads : int;
  ops : int;  (** alloc/free round-trips completed *)
  per_op : float;  (** ns/op (native) or cycles/op (sim) *)
  unit_label : string;  (** "ns/op" or "cycles/op" *)
  cross_cas : int;
      (** cross-domain CAS attempts the allocator issued — the depot
          tally under [Depot], {!Sec_reclaim.Slab.Global.cas_attempts}
          under [Slab]/[Arena] *)
  cross_cas_retries : int;  (** attempts that lost and looped/degraded *)
  fresh : int;  (** nodes constructed outside the recycler (misses) *)
  remote_batches : int;  (** arena remote-free batches spliced *)
  occupancy : float;  (** slab pooled/capacity at the end of the run *)
}

val default_iters : int

(** Above the default magazine capacity, so every burst spills to the
    refill layer under measurement. *)
val default_burst : int

val run_native :
  ?threads:int ->
  ?iters:int ->
  ?burst:int ->
  ?seed:int ->
  mode:mode ->
  phase:phase ->
  unit ->
  result

val run_sim :
  ?threads:int ->
  ?iters:int ->
  ?burst:int ->
  ?seed:int ->
  ?topology:Sec_sim.Topology.t ->
  mode:mode ->
  phase:phase ->
  unit ->
  result
