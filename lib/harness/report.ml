(* Plain-text series tables (threads across, algorithms down) — the
   textual equivalent of the paper's figures — plus CSV export. *)

let hrule width = String.make width '-'

(* [series ~title ~columns ~rows] prints a table whose columns are thread
   counts and whose cells are Mops/s. *)
let series ~title ~columns ~rows =
  let col_width = 8 in
  let name_width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 10 rows
  in
  let total = name_width + (List.length columns * col_width) + 2 in
  Printf.printf "\n%s\n%s\n" title (hrule total);
  Printf.printf "%-*s |" name_width "threads";
  List.iter (fun c -> Printf.printf "%*d" col_width c) columns;
  Printf.printf "\n%s\n" (hrule total);
  List.iter
    (fun (name, values) ->
      Printf.printf "%-*s |" name_width name;
      Array.iter (fun v -> Printf.printf "%*.2f" col_width v) values;
      print_newline ())
    rows;
  Printf.printf "%s\n%!" (hrule total)

(* Simple key/value table, for the batching-degree tables. *)
let keyed ~title ~columns ~rows =
  let col_width = 10 in
  let name_width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 16 rows
  in
  let total = name_width + (List.length columns * col_width) + 2 in
  Printf.printf "\n%s\n%s\n" title (hrule total);
  Printf.printf "%-*s |" name_width "";
  List.iter (fun c -> Printf.printf "%*s" col_width c) columns;
  Printf.printf "\n%s\n" (hrule total);
  List.iter
    (fun (name, values) ->
      Printf.printf "%-*s |" name_width name;
      List.iter (fun v -> Printf.printf "%*s" col_width v) values;
      print_newline ())
    rows;
  Printf.printf "%s\n%!" (hrule total)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

(* CSV with a header row; one file per figure/workload. *)
let csv ~dir ~file ~header ~rows =
  ensure_dir dir;
  let path = Filename.concat dir file in
  let oc = open_out path in
  output_string oc (String.concat "," header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  Printf.printf "  [csv] wrote %s\n%!" path

(* Markdown report writer (REPORT.md of `sec_bench figures`): each line
   is written verbatim, so callers own the formatting. *)
let markdown ~path ~lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  Printf.printf "  [report] wrote %s\n%!" path

(* CSV rows for a series table. *)
let csv_of_series ~dir ~file ~columns ~rows =
  let header = "algorithm" :: List.map string_of_int columns in
  let data =
    List.map
      (fun (name, values) ->
        name :: (Array.to_list values |> List.map (Printf.sprintf "%.4f")))
      rows
  in
  csv ~dir ~file ~header ~rows:data
