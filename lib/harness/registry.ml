(* Named constructors for every tested algorithm, as substrate-polymorphic
   MAKER functors, so the same entry drives the native runner and the
   simulator. Each entry also declares its progress class, which
   [test/test_progress.ml] checks against the suspension classifier's
   mechanical verdict ({!Sec_sim.Explore.classify}). *)

module type MAKER = Sec_spec.Stack_intf.MAKER

type progress_class = Sec_sim.Explore.progress_class = Blocking | Lock_free

(* The sequential specification an entry's concurrent histories must
   refine (checked by the refinement prong, lib/analysis/refine):
   [Stack_sem] is strict LIFO linearizability against [Lin_check];
   [Pool_sem] relaxes order away — every pop returns some value pushed
   (or prefilled) and not yet consumed, pops may report empty only
   consistently with real time. The pool deliberately trades the former
   for the latter. Each declaration matches the module's [@@@spec] lint
   declaration (rule 9, spec-class). *)
type semantics = Stack_sem | Pool_sem

type entry = {
  name : string;
  maker : (module MAKER);
  progress : progress_class;
      (* the class the algorithm's protocol actually provides, matching
         the module's [@@@progress] lint declaration; for SEC this is the
         class of the *combining protocol* (announcers in one batch wait
         on their freezer/combiner), even though operations that land
         alone on a shard — the sharded/elimination fast path — survive
         any single suspension (see test_progress.ml) *)
  spec : semantics;
      (* the sequential spec the structure refines, matching the module's
         [@@@spec] lint declaration; drives which default properties the
         refinement prong applies (test/test_refine.ml, sec_bench check) *)
}

let semantics_to_string = function
  | Stack_sem -> "stack"
  | Pool_sem -> "pool"

(* SEC under a fixed configuration, with a display label. *)
module Sec_configured (C : sig
  val label : string
  val config : Sec_core.Config.t
end)
(P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module M = Sec_core.Sec_stack.Make (P)

  type 'a t = 'a M.t

  let name = C.label
  let create ?max_threads () = M.create_with ~config:C.config ?max_threads ()
  let push = M.push
  let pop = M.pop
  let peek = M.peek
end

let sec_with ?(freeze_backoff = Sec_core.Config.default.freeze_backoff)
    ~aggregators ~label () =
  let module C = struct
    let label = label

    let config =
      {
        Sec_core.Config.default with
        Sec_core.Config.num_aggregators = aggregators;
        freeze_backoff;
      }
  end in
  {
    name = label;
    maker = (module Sec_configured (C) : MAKER);
    progress = Blocking;
    spec = Stack_sem;
  }

let sec = sec_with ~aggregators:2 ~label:"SEC" ()

let sec_configured ~label ~config =
  let module C = struct
    let label = label
    let config = config
  end in
  {
    name = label;
    maker = (module Sec_configured (C) : MAKER);
    progress = Blocking;
    spec = Stack_sem;
  }

(* SEC with the zero-allocation hot path: batch-chain and elimination
   nodes recycled through per-domain magazines (docs/PERF.md). *)
let sec_recycling =
  sec_configured ~label:"SEC+MAG"
    ~config:(Sec_core.Config.with_recycling Sec_core.Config.default)

(* Recycling plus the contention-adaptive sharding controller. *)
let sec_adaptive =
  sec_configured ~label:"SEC+ADPT"
    ~config:
      (Sec_core.Config.with_adaptive
         (Sec_core.Config.with_recycling Sec_core.Config.default))

let treiber =
  {
    name = "TRB";
    maker = (module Sec_stacks.Treiber.Make : MAKER);
    progress = Lock_free;
    spec = Stack_sem;
  }

let eb =
  {
    name = "EB";
    maker = (module Sec_stacks.Eb_stack.Make : MAKER);
    progress = Lock_free;
    spec = Stack_sem;
  }

let fc =
  {
    name = "FC";
    maker = (module Sec_stacks.Fc_stack.Make : MAKER);
    progress = Blocking;
    spec = Stack_sem;
  }

let cc =
  {
    name = "CC";
    maker = (module Sec_stacks.Cc_stack.Make : MAKER);
    progress = Blocking;
    spec = Stack_sem;
  }

let tsi =
  {
    name = "TSI";
    maker = (module Sec_stacks.Ts_stack.Make : MAKER);
    progress = Lock_free;
    spec = Stack_sem;
  }

let lock =
  {
    name = "LCK";
    maker = (module Sec_stacks.Lock_stack.Make : MAKER);
    progress = Blocking;
    spec = Stack_sem;
  }

let hsynch =
  {
    name = "HS";
    maker = (module Sec_stacks.H_stack.Make : MAKER);
    progress = Blocking;
    spec = Stack_sem;
  }

let treiber_ebr =
  {
    name = "TRB-EBR";
    maker = (module Sec_reclaim.Treiber_ebr.Make : MAKER);
    progress = Lock_free;
    spec = Stack_sem;
  }

let tsi_ebr =
  {
    name = "TSI-EBR";
    maker = (module Sec_reclaim.Ts_stack_ebr.Make : MAKER);
    progress = Lock_free;
    spec = Stack_sem;
  }

(* Slab-backed twins (PR 10): identical push/pop atomic sequences to
   their depot-backed originals — only the magazines' refill slow path
   goes through the wait-free slab store — so differential runs isolate
   the allocator. *)
let treiber_slab =
  {
    name = "TRB-SLAB";
    maker = (module Sec_reclaim.Treiber_ebr.Make_slab : MAKER);
    progress = Lock_free;
    spec = Stack_sem;
  }

let tsi_slab =
  {
    name = "TSI-SLAB";
    maker = (module Sec_reclaim.Ts_stack_ebr.Make_slab : MAKER);
    progress = Lock_free;
    spec = Stack_sem;
  }

let sec_slab =
  sec_configured ~label:"SEC+SLAB"
    ~config:(Sec_core.Config.with_slab Sec_core.Config.default)

(* The six algorithms of the paper's comparison (Figure 2). *)
let paper_set = [ sec; treiber; eb; fc; cc; tsi ]

(* Variants that pay for real (epoch-based) node reclamation, like the
   C++ artifact does — benchmark these against their GC-backed twins to
   expose the protocol cost (Section 4 methodology). *)
let reclaimed_set = [ treiber_ebr; tsi_ebr ]

(* Extensions beyond the paper: spinlock baseline, hierarchical
   (NUMA-aware) combining, the EBR-reclaimed variants, and the SEC
   recycling/adaptive variants of this repo's perf layer. *)
let all =
  paper_set @ [ lock; hsynch ] @ reclaimed_set @ [ sec_recycling; sec_adaptive ]

(* The slab-backed variants, kept out of [all] (the progress and
   refinement default sweeps stay as seeded) but benchmarked by
   [Bench_json.bench_entries] and reachable by name through [find]. *)
let slab_set = [ treiber_slab; tsi_slab; sec_slab ]

(* SEC_Agg1 .. SEC_Agg5, the self-comparison of Figure 4. *)
let sec_aggregator_sweep =
  List.map
    (fun k -> sec_with ~aggregators:k ~label:(Printf.sprintf "SEC_Agg%d" k) ())
    [ 1; 2; 3; 4; 5 ]

(* The SEC-style pool behind the common stack interface ([peek] is always
   [None] — pools do not expose it), declared [Pool_sem]: its histories
   refine a bag, not a LIFO. Kept out of [all] so the stack-only
   benchmark sets and the progress suite are unchanged; the refinement
   prong picks it up through [refine_set]. *)
module Sec_pool_stack (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S =
struct
  module Pool = Sec_core.Sec_pool.Make (P)

  type 'a t = 'a Pool.t

  let name = "SEC-POOL"
  let create ?(max_threads = 64) () = Pool.create ~max_threads ()
  let push = Pool.push
  let pop = Pool.pop
  let peek _ ~tid:_ = None
end

let pool =
  {
    name = "SEC-POOL";
    maker = (module Sec_pool_stack : MAKER);
    progress = Blocking;
    spec = Pool_sem;
  }

(* Everything the refinement prong checks by default. *)
let refine_set = all @ [ pool ]

(* Seeded correctness mutants (Config.mutation): SEC with a historical or
   plausible bug reintroduced, as known-bad targets for the refinement
   prong's detection and shrinking tests. One aggregator, so every
   operation funnels into the same batch and the bugs are reachable with
   two or three fibers. Never part of [all] or [find]. *)
let mutants =
  [
    sec_configured ~label:"SEC!OVF"
      ~config:
        Sec_core.Config.(
          with_mutation Batch_overflow (with_aggregators 1 default));
    sec_configured ~label:"SEC!POP"
      ~config:
        Sec_core.Config.(
          with_mutation Pop_reorder (with_aggregators 1 default));
  ]

let find name =
  match
    List.find_opt
      (fun e -> e.name = name)
      (all @ slab_set @ sec_aggregator_sweep)
  with
  | Some e -> e
  | None -> invalid_arg ("unknown algorithm: " ^ name)
