(** Parallel fan-out of independent jobs across a native domain pool
    (via {!Sec_prim.Native}), with results merged in canonical input
    order so output is independent of completion order. *)

(** [Domain.recommended_domain_count], floored at 1. *)
val recommended : unit -> int

(** Clamp a requested pool size into [1 .. recommended ()]. *)
val clamp_jobs : int -> int

(** The default pool size: {!recommended}. *)
val default_jobs : unit -> int

(** [map ~jobs f a] applies [f] to every element of [a] on a pool of
    [jobs] domains (floored at 1, capped at [Array.length a]; the policy
    clamp to the host's core count is the caller's — see {!clamp_jobs})
    and returns the results in input order. [~jobs:1] runs serially in
    the calling domain; for pure [f] the result is bit-identical for
    every pool size. If any job raises, the pool still drains and the
    first failing job's exception (in input order) is re-raised. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
