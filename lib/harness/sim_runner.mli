(** Simulator backend adapter over {!Runner.Make}: timed throughput runs
    inside the discrete-event simulator, at the paper's 56/96/192
    hardware-thread scales. Deterministic per seed; contains no workload
    loop of its own. *)

val default_prefill : int
val default_value_range : int

(** Benchmark-loop overhead charged per operation (cycles). *)
val loop_overhead : int

(** The prefill the simulated backend uses for [mix]: pop-only sweeps get
    a prefill that outlasts the window so the figure measures sustained
    pop pressure rather than empty-pop throughput. *)
val prefill_for : Workload.mix -> int

(** [run maker ~topology ~threads ~duration_cycles ~mix ()] spawns
    [threads] fibers that hammer a fresh stack until the virtual deadline
    and reports throughput (scaled as if the machine ran at 3 GHz). *)
val run :
  (module Registry.MAKER) ->
  topology:Sec_sim.Topology.t ->
  threads:int ->
  duration_cycles:int ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Measurement.t

(** Like {!run}, but also returning the run's simulator statistics —
    notably [Sim.stats.schedule_digest], which the figure goldens pin so
    event-loop refactors are provably schedule-preserving. *)
val run_with_stats :
  (module Registry.MAKER) ->
  topology:Sec_sim.Topology.t ->
  threads:int ->
  duration_cycles:int ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Measurement.t * Sec_sim.Sim.stats

(** Like {!run}, but returns a per-operation latency histogram in virtual
    cycles (used by the latency-distribution experiment). *)
val run_latency_profile :
  (module Registry.MAKER) ->
  topology:Sec_sim.Topology.t ->
  threads:int ->
  duration_cycles:int ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Latency.t

(** Same run shape for SEC only, returning its batch statistics (prefill
    excluded) — used for the paper's Tables 1–3. *)
val run_sec_stats :
  config:Sec_core.Config.t ->
  topology:Sec_sim.Topology.t ->
  threads:int ->
  duration_cycles:int ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Sec_core.Sec_stats.t

(** {!run_sec_stats} plus the run's simulator statistics (same digest use
    as {!run_with_stats}). *)
val run_sec_stats_with :
  config:Sec_core.Config.t ->
  topology:Sec_sim.Topology.t ->
  threads:int ->
  duration_cycles:int ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Sec_core.Sec_stats.t * Sec_sim.Sim.stats

(** [run_recorded maker ~topology ~threads ~ops_per_thread ~mix ()] runs
    a fixed number of operations per thread under virtual time, recording
    an operation history for linearizability checking. Returns the
    history and the per-thread completed-operation counts. *)
val run_recorded :
  (module Registry.MAKER) ->
  topology:Sec_sim.Topology.t ->
  threads:int ->
  ops_per_thread:int ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  int Sec_spec.History.t * int array

(** The paper's per-machine thread-count sweep points. *)
val threads_for : Sec_sim.Topology.t -> int list

(** The simulated benchmark backend ([duration_cycles] of virtual time
    per data point), for backend-agnostic experiment definitions. *)
val backend :
  topology:Sec_sim.Topology.t -> duration_cycles:int -> (module Runner.BACKEND)
