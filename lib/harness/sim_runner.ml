(* Simulator backend adapter: timed throughput runs inside the
   discrete-event simulator, at the paper's 56/96/192 hardware-thread
   scales — deterministic for a fixed seed, so a single run per data point
   suffices. The workload loop itself lives in {!Runner.Make}; this
   module only wraps it in [Sec_sim.Sim.run], charges the simulator's
   benchmark-loop overhead, and converts outcomes to {!Measurement}s. *)

module SP = Sec_sim.Sim.Prim
module R = Runner.Make (SP)

let default_prefill = Runner.default_prefill
let default_value_range = Runner.default_value_range

(* Per-operation benchmark-loop overhead (random draw, branch, counter) —
   keeps trivial operations like peek from looking infinitely cheap. *)
let loop_overhead = 10

(* Small seeded timing noise for benchmark runs. A perfectly deterministic
   simulation can sit on pathological lockstep fixed points (e.g. a thread
   whose announcement misses every batch window in perfect rhythm); real
   machines never do. The jitter is identical for every algorithm and the
   run remains reproducible per seed. *)
let bench_jitter = 2

(* Pop-only sweeps measure sustained pop pressure, so the prefill must
   outlast the window for every algorithm; otherwise the fast ones drain
   the stack and the figure degenerates into empty-pop throughput. *)
let prefill_for mix =
  if mix.Workload.pop_pct = 100 then 50_000 else default_prefill

let run_with_stats (module Maker : Registry.MAKER) ~topology ~threads
    ~duration_cycles ~mix ?(prefill = default_prefill)
    ?(value_range = default_value_range) ?(seed = 1) () =
  let (name, outcome), stats =
    Sec_sim.Sim.run ~seed ~jitter:bench_jitter ~topology (fun () ->
        R.run_maker
          (module Maker)
          ~op_overhead:loop_overhead ~threads ~stop:(R.Timed duration_cycles)
          ~mix ~prefill ~value_range ())
  in
  ( Measurement.of_simulated ~algorithm:name ~threads ~ops:(R.total outcome)
      ~cycles:duration_cycles,
    stats )

let run (module Maker : Registry.MAKER) ~topology ~threads ~duration_cycles
    ~mix ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  fst
    (run_with_stats
       (module Maker)
       ~topology ~threads ~duration_cycles ~mix ~prefill ~value_range ~seed ())

(* Like [run], but recording a per-operation latency histogram (virtual
   cycles, benchmark-loop overhead excluded). *)
let run_latency_profile (module Maker : Registry.MAKER) ~topology ~threads
    ~duration_cycles ~mix ?(prefill = default_prefill)
    ?(value_range = default_value_range) ?(seed = 1) () =
  let histogram, _ =
    Sec_sim.Sim.run ~seed ~jitter:bench_jitter ~topology (fun () ->
        let observer, merged = R.latency_observer ~threads in
        let _ =
          R.run_maker
            (module Maker)
            ~observer ~op_overhead:loop_overhead ~threads
            ~stop:(R.Timed duration_cycles) ~mix ~prefill ~value_range ()
        in
        merged ())
  in
  histogram

(* SEC with statistics collection, for the batching-degree tables. Not a
   plain registry run — it snapshots the stack's counters around the
   measured window — so it uses [R.drive] directly. *)
let run_sec_stats_with ~config ~topology ~threads ~duration_cycles ~mix
    ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  let module Sec = Sec_core.Sec_stack.Make (SP) in
  let config = { config with Sec_core.Config.collect_stats = true } in
  let stats, sim_stats =
    Sec_sim.Sim.run ~seed ~jitter:bench_jitter ~topology (fun () ->
        let stack = Sec.create_with ~config ~max_threads:(max threads 1) () in
        for i = 1 to prefill do
          Sec.push stack ~tid:0 (i mod value_range)
        done;
        (* Exclude the single-threaded prefill (one batch per push) from
           the reported batching statistics. *)
        let baseline = Sec.stats stack in
        let _ =
          R.drive ~op_overhead:loop_overhead ~threads
            ~stop:(R.Timed duration_cycles) ~mix ~value_range
            ~push:(fun ~tid v -> Sec.push stack ~tid v)
            ~pop:(fun ~tid -> Sec.pop stack ~tid)
            ~peek:(fun ~tid -> Sec.peek stack ~tid)
            ()
        in
        Sec_core.Sec_stats.diff (Sec.stats stack) baseline)
  in
  (stats, sim_stats)

let run_sec_stats ~config ~topology ~threads ~duration_cycles ~mix
    ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  fst
    (run_sec_stats_with ~config ~topology ~threads ~duration_cycles ~mix
       ~prefill ~value_range ~seed ())

(* Record an operation history under virtual time, for linearizability
   checking of simulated executions. *)
let run_recorded (module Maker : Registry.MAKER) ~topology ~threads
    ~ops_per_thread ~mix ?(prefill = default_prefill)
    ?(value_range = default_value_range) ?(seed = 1) () =
  let (history, counts), _ =
    Sec_sim.Sim.run ~seed ~jitter:bench_jitter ~topology (fun () ->
        let _name, history, outcome =
          R.run_recorded
            (module Maker)
            ~op_overhead:loop_overhead ~threads
            ~stop:(R.Ops_per_thread ops_per_thread)
            ~mix ~prefill ~value_range ()
        in
        (history, outcome.R.counts))
  in
  (history, counts)

(* The paper's per-machine sweep points. *)
let threads_for (topo : Sec_sim.Topology.t) =
  match topo.Sec_sim.Topology.name with
  | "emerald" -> [ 1; 2; 4; 8; 16; 28; 40; 56 ]
  | "icelake" -> [ 1; 2; 4; 8; 16; 32; 48; 64; 96 ]
  | "sapphire" -> [ 1; 2; 4; 8; 16; 32; 64; 96; 128; 192 ]
  | _ -> [ 1; 2; 4; 8 ]

let backend ~topology ~duration_cycles : (module Runner.BACKEND) =
  (module struct
    let label = "simulated " ^ topology.Sec_sim.Topology.name
    let file_suffix = ""
    let sweep_threads = threads_for topology

    let prefill_for = prefill_for

    let latency_point = 28
    let latency_unit = "cycles"

    let run_mix maker ~threads ~mix ?(prefill = default_prefill) ?(seed = 1)
        () =
      run maker ~topology ~threads ~duration_cycles ~mix ~prefill ~seed ()

    let run_latency maker ~threads ~mix ?(prefill = default_prefill)
        ?(seed = 1) () =
      run_latency_profile maker ~topology ~threads ~duration_cycles ~mix
        ~prefill ~seed ()
  end)
