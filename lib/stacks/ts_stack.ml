(* Timestamped stack, interval variant [Dodds, Haas & Kirsch, POPL 2015]
   ("TSI"). Push inserts into a per-thread single-producer pool and then
   assigns the node an *interval* timestamp [a, b] obtained by reading the
   clock twice with a tunable delay in between; unordered (overlapping)
   intervals license linearizability-preserving reordering, so pushes never
   touch a shared hot spot. Pop scans all pools for the youngest visible
   node and claims it by CAS on the node's [taken] flag; a candidate whose
   interval began after the pop started was pushed concurrently and is
   taken immediately (built-in elimination). Emptiness requires a second
   scan observing every pool unchanged.

   The paper's x86 RDTSCP timestamp source is replaced by the substrate
   clock ({!Sec_prim.Prim_intf.S.now_ns}); see DESIGN.md. Pool cleanup is
   what the published algorithm does lazily: the owner unlinks taken nodes
   from the head on its next push. *)

(* Pushes touch only the pusher's own pool; a pop losing the [taken] CAS
   means a peer claimed the node. No wait names a specific thread. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module A = P.Atomic

  (* Interval [ts_start, ts_end]; [max_int] until the pusher assigns it,
     which makes an in-flight node "youngest" (taken-immediately). *)
  type 'a node = {
    value : 'a;
    ts : (int64 * int64) A.t;
    taken : bool A.t;
    next : 'a node option A.t;
  }

  type 'a t = {
    pools : 'a node option A.t array; (* pool head per thread, padded *)
    delay : int; (* relax units between the two clock reads *)
  }

  let name = "TSI"

  let pending = (Int64.max_int, Int64.max_int)

  (* The interval delay trades push latency for elimination: a wider
     interval overlaps more concurrent pops, which may then take the node
     immediately instead of scanning every pool. The TS paper tunes this
     per machine; 400 relax units reproduces its reported trade-off (fast
     pushes still ~6x a combining stack's, frequent pop elimination). *)
  let default_delay = 400

  let create ?(max_threads = 64) () =
    {
      pools = Array.init max_threads (fun _ -> A.make_padded None);
      delay = default_delay;
    }

  (* Owner-only: drop the prefix of taken nodes so scans stay short. *)
  let trim_head t tid =
    let rec skip = function
      | Some n when A.get n.taken -> skip (A.get n.next)
      | head -> head
    in
    let head = A.get t.pools.(tid) in
    let head' = skip head in
    if head != head' then
      A.set t.pools.(tid) head'
      [@publication_ok
        "owner-only trim: the only concurrent pools.(tid) writer is a \
         helper's pool_youngest CAS unlinking the same taken prefix; \
         overwriting it can only resurrect taken nodes the next scan \
         re-skips"]

  let push t ~tid value =
    trim_head t tid;
    P.note_alloc ();
    let node =
      {
        value;
        (* Written once at publication, then only read by scanning
           poppers; padding every per-push node would be a real
           allocation-rate regression. *)
        ts = (A.make pending [@unpadded_ok "written once, then read-only"]);
        (* [taken] is the CAS-contended cell: pad it so a popper's CAS
           does not invalidate readers of [ts]/[next] in the same node. *)
        taken = A.make_padded false;
        next =
          (A.make
             (A.get t.pools.(tid))
          [@unpadded_ok "written once at creation, then read-only"]);
      }
    in
    (* Publish first, then timestamp: the interval must cover a moment at
       which the node was already visible. *)
    (A.set t.pools.(tid) (Some node)
    [@publication_ok
      "single-writer publication: pools.(tid) is pushed only by its owner, \
       and losing a helper's concurrent unlink CAS merely resurrects a \
       taken prefix behind the new node (re-skipped on the next scan)"]);
    let a = P.now_ns () in
    if t.delay > 0 then P.relax t.delay;
    let b = P.now_ns () in
    A.set node.ts (a, b)

  (* First untaken node from the pool head — the pool's youngest. *)
  let rec youngest = function
    | None -> None
    | Some n -> if A.get n.taken then youngest (A.get n.next) else Some n

  (* Any thread may swing a pool head forward past a taken prefix (the TS
     paper's remove-time unlinking); losing the CAS to the owner's push is
     harmless — the next scan just skips the prefix again. Without this,
     pop-heavy workloads would rescan ever-growing chains of taken nodes. *)
  let pool_youngest t i =
    let head = A.get t.pools.(i) in
    let y = youngest head in
    if head != y then ignore (A.compare_and_set t.pools.(i) head y);
    (head, y)

  (* [n] is strictly younger than interval [(_, e)] if its interval starts
     after [e] ends. Overlapping intervals are unordered: either may win. *)
  let younger (s, _) (_, e') = Int64.compare s e' > 0

  type 'a scan_outcome =
    | Take_now of 'a node (* pushed during our operation: eliminate *)
    | Candidate of 'a node
    | Empty_if of 'a node option array (* heads seen; empty if unchanged *)

  (* Scan all pools starting at the caller's own index, so concurrent
     pops spread their first probes instead of stampeding pool 0. *)
  let scan t ~started ~from =
    let num_pools = Array.length t.pools in
    let heads = Array.make num_pools None in
    let best = ref None in
    let rec loop k =
      if k >= num_pools then
        match !best with
        | Some (n, _) -> Candidate n
        | None -> Empty_if heads
      else begin
        let i = (from + k) mod num_pools in
        let head, young = pool_youngest t i in
        heads.(i) <- head;
        match young with
        | None -> loop (k + 1)
        | Some n ->
            let ts = A.get n.ts in
            let start_of_interval = fst ts in
            if Int64.compare start_of_interval started > 0 then Take_now n
            else begin
              (match !best with
              | Some (_, best_ts) when not (younger ts best_ts) -> ()
              | _ -> best := Some (n, ts));
              loop (k + 1)
            end
      end
    in
    loop 0

  let try_take n = A.compare_and_set n.taken false true

  let unchanged t heads =
    let ok = ref true in
    Array.iteri
      (fun i h ->
        if A.get t.pools.(i) != h || youngest h <> None then ok := false)
      heads;
    !ok

  let pop t ~tid =
    let started = P.now_ns () in
    let rec attempt () =
      match scan t ~started ~from:(tid mod Array.length t.pools) with
      | Take_now n | Candidate n ->
          if try_take n then Some n.value
          else begin
            P.relax 8;
            attempt ()
          end
      | Empty_if heads -> if unchanged t heads then None else attempt ()
    in
    attempt ()

  let peek t ~tid =
    let started = P.now_ns () in
    let rec attempt () =
      match scan t ~started ~from:(tid mod Array.length t.pools) with
      | Take_now n | Candidate n ->
          if A.get n.taken then attempt () else Some n.value
      | Empty_if heads -> if unchanged t heads then None else attempt ()
    in
    attempt ()
end
