(* Treiber's lock-free stack [Treiber 1986] ("TRB" in the paper): a single
   atomic [top] pointer updated by CAS, with randomised exponential backoff
   on contention. The simplest correct concurrent stack, and the yardstick
   every other implementation is measured against: all its cache traffic
   concentrates on the one cache line holding [top]. *)

(* Progress class (checked by sec_lint and, dynamically, by the
   suspension classifier): a failed CAS means another operation
   succeeded, so a suspended thread never stops its peers. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  (* Nodes are immutable: a successful CAS is the only communication. *)
  type 'a node = Nil | Cons of { value : 'a; next : 'a node }

  type 'a t = { top : 'a node A.t }

  let name = "TRB"

  let create ?max_threads:_ () = { top = A.make_padded Nil }

  let push t ~tid:_ value =
    let backoff = Backoff.create () in
    let rec attempt () =
      let cur = A.get t.top in
      P.note_alloc ();
      if not (A.compare_and_set t.top cur (Cons { value; next = cur })) then begin
        Backoff.once backoff;
        attempt ()
      end
    in
    attempt ()

  let pop t ~tid:_ =
    let backoff = Backoff.create () in
    let rec attempt () =
      match A.get t.top with
      | Nil -> None
      | Cons { value; next } as cur ->
          if A.compare_and_set t.top cur next then Some value
          else begin
            Backoff.once backoff;
            attempt ()
          end
    in
    attempt ()

  let peek t ~tid:_ =
    match A.get t.top with Nil -> None | Cons { value; _ } -> Some value
end
