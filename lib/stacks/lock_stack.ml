(* Coarse-grained baseline ("LCK"): a sequential stack guarded by a
   test-and-test-and-set spinlock with exponential backoff. Not in the
   paper's comparison, but useful to calibrate how much the cleverer
   designs actually buy. *)

(* A thread suspended inside its critical section stops every other
   thread cold — the definition of blocking. The suspension classifier
   confirms this mechanically (docs/ANALYSIS.md, "Progress prong"). *)
[@@@progress "blocking"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  type 'a t = { lock : bool A.t; items : 'a Sec_spec.Seq_stack.t }

  let name = "LCK"

  let create ?max_threads:_ () =
    { lock = A.make_padded false; items = Sec_spec.Seq_stack.create () }

  (* Failed exchange attempts before a waiter stops trusting backoff and
     yields its quantum outright. Matters when threads outnumber cores:
     the holder may be descheduled, and a waiter that merely spins keeps
     the holder off the core for its whole quantum. *)
  let yield_budget = 4

  let acquire t =
    let backoff = Backoff.create () in
    let rec attempt tries =
      if A.exchange t.lock true then begin
        (* Lock taken: spin on reads (cheap, line stays Shared), back off,
           then retry the exchange. Past [yield_budget] the backoff step
           becomes a yield, handing the core to the (likely descheduled)
           holder. *)
        Backoff.spin_while (fun () -> A.get t.lock);
        if tries >= yield_budget then P.yield () else Backoff.once backoff;
        attempt (tries + 1)
      end
    in
    attempt 0

  let release t = A.set t.lock false

  let push t ~tid:_ value =
    acquire t;
    P.note_alloc ();
    Sec_spec.Seq_stack.push t.items value;
    release t

  let pop t ~tid:_ =
    acquire t;
    let r = Sec_spec.Seq_stack.pop t.items in
    release t;
    r

  let peek t ~tid:_ =
    acquire t;
    let r = Sec_spec.Seq_stack.peek t.items in
    release t;
    r
end
