(* "CC": the sequential stack protected by the CC-Synch combining executor
   [Fatourou & Kallimanis 2012], as used in the paper's comparison. *)

(* Combining is blocking: suspend the combiner mid-drain and every
   enqueued announcement waits forever on its node's flag. *)
[@@@progress "blocking"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module Ccsynch = Ccsynch.Make (P)

  type 'a op = Push of 'a | Pop | Peek
  type 'a res = Pushed | Took of 'a option

  type 'a t = ('a op, 'a res) Ccsynch.t

  let name = "CC"

  let create ?(max_threads = 64) () =
    let items = Sec_spec.Seq_stack.create () in
    let apply = function
      | Push v ->
          Sec_spec.Seq_stack.push items v;
          Pushed
      | Pop -> Took (Sec_spec.Seq_stack.pop items)
      | Peek -> Took (Sec_spec.Seq_stack.peek items)
    in
    Ccsynch.create ~max_threads ~apply ()

  let push t ~tid v =
    (* The combiner conses onto the sequential stack on our behalf. *)
    P.note_alloc ();
    match Ccsynch.apply t ~tid (Push v) with
    | Pushed -> ()
    | Took _ -> assert false

  let pop t ~tid =
    match Ccsynch.apply t ~tid Pop with Took r -> r | Pushed -> assert false

  let peek t ~tid =
    match Ccsynch.apply t ~tid Peek with Took r -> r | Pushed -> assert false
end
