(* Lock-free pairwise exchanger (Herlihy & Shavit, ch. 11) — the slot of an
   elimination array. Two threads that land on the same slot within a
   timeout window swap their offers; the state machine costs up to three
   CAS per eliminated pair (install WAITING, claim to BUSY, reset to
   EMPTY), which is exactly the elimination cost the SEC paper charges the
   EB stack with.

   A timeout reports whether the slot was *crowded* (other pairs kept it
   busy) so the caller's range policy can widen instead of funnelling
   every thread onto one line. *)

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic

  type 'a state =
    | Empty
    | Waiting of 'a  (* first party's offer *)
    | Busy of 'a * 'a  (* (first, second): matched, first must reset *)

  type 'a t = { slot : 'a state A.t }

  type 'a outcome =
    | Exchanged of 'a  (* the partner's offer *)
    | Timed_out of { crowded : bool }

  let create () = { slot = A.make_padded Empty }

  (* How many pure spins before a waiter starts yielding. Yielding is
     essential when threads outnumber cores: a spinning waiter would burn
     its whole scheduling quantum while its would-be partner is
     descheduled, so the two would never overlap. *)
  let spin_budget = 64

  (* [exchange t mine ~timeout] blocks at most ~[timeout] clock units. *)
  let exchange t mine ~timeout =
    let deadline = Int64.add (P.now_ns ()) (Int64.of_int timeout) in
    let expired () = Int64.compare (P.now_ns ()) deadline > 0 in
    let pause spins = if spins > spin_budget then P.yield () else P.relax 8 in
    (* Both loops are deadline-bounded ([expired] exits every path) and
       pace themselves through [pause]; the interprocedural summary sees
       the pacing through the local helper, so the retry-discipline rule
       needs no annotation here. *)
    let rec attempt spins crowded =
      match A.get t.slot with
      | Empty ->
          let waiting = Waiting mine in
          if A.compare_and_set t.slot Empty waiting then
            await waiting spins crowded
          else if expired () then Timed_out { crowded }
          else attempt (spins + 1) crowded
      | Waiting theirs as observed ->
          if A.compare_and_set t.slot observed (Busy (theirs, mine)) then
            Exchanged theirs
          else if expired () then Timed_out { crowded }
          else attempt (spins + 1) crowded
      | Busy _ ->
          (* Slot occupied by another pair. *)
          if expired () then Timed_out { crowded = true }
          else begin
            pause spins;
            attempt (spins + 1) true
          end
    and await waiting spins crowded =
      (* We installed [waiting]; either a partner upgrades it to [Busy] or
         we time out and tear it down (the CAS failing means a partner got
         in at the last moment). *)
      match A.get t.slot with
      | Busy (_, theirs) ->
          (A.set t.slot Empty
          [@publication_ok
            "slot hand-off: while the slot is Busy neither CAS in attempt \
             can hit it, so the waiter that read Busy is its only writer \
             until this reset re-opens it"]);
          Exchanged theirs
      | Empty | Waiting _ ->
          if expired () then
            if A.compare_and_set t.slot waiting Empty then Timed_out { crowded }
            else begin
              match A.get t.slot with
              | Busy (_, theirs) ->
                  A.set t.slot Empty;
                  Exchanged theirs
              | Empty | Waiting _ -> assert false
            end
          else begin
            pause spins;
            await waiting (spins + 1) crowded
          end
    in
    attempt 0 false
end
