(* "HS": the sequential stack protected by the hierarchical H-Synch
   combining executor — an extension baseline (not in the paper's
   comparison; see Hsynch). *)

(* Combining is blocking at both levels: suspend a per-socket combiner
   (or the global-lock holder) and its whole cohort waits forever. *)
[@@@progress "blocking"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module Hsynch = Hsynch.Make (P)

  type 'a op = Push of 'a | Pop | Peek
  type 'a res = Pushed | Took of 'a option

  type 'a t = ('a op, 'a res) Hsynch.t

  let name = "HS"

  let create ?(max_threads = 64) () =
    let items = Sec_spec.Seq_stack.create () in
    let apply = function
      | Push v ->
          Sec_spec.Seq_stack.push items v;
          Pushed
      | Pop -> Took (Sec_spec.Seq_stack.pop items)
      | Peek -> Took (Sec_spec.Seq_stack.peek items)
    in
    Hsynch.create ~max_threads ~apply ()

  let push t ~tid v =
    (* The combiner conses onto the sequential stack on our behalf. *)
    P.note_alloc ();
    match Hsynch.apply t ~tid (Push v) with
    | Pushed -> ()
    | Took _ -> assert false

  let pop t ~tid =
    match Hsynch.apply t ~tid Pop with Took r -> r | Pushed -> assert false

  let peek t ~tid =
    match Hsynch.apply t ~tid Peek with Took r -> r | Pushed -> assert false
end
