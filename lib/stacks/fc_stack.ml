(* "FC": the sequential stack protected by the flat-combining executor —
   the flat-combining stack of Hendler et al. used in the paper's
   comparison. All operations, including peek, go through the combiner. *)

(* Combining is blocking: suspend the combiner mid-scan and every
   announced operation waits forever on its result slot. *)
[@@@progress "blocking"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module Fc = Fc.Make (P)

  type 'a op = Push of 'a | Pop | Peek
  type 'a res = Pushed | Took of 'a option

  type 'a t = ('a op, 'a res) Fc.t

  let name = "FC"

  let create ?(max_threads = 64) () =
    let items = Sec_spec.Seq_stack.create () in
    let apply = function
      | Push v ->
          Sec_spec.Seq_stack.push items v;
          Pushed
      | Pop -> Took (Sec_spec.Seq_stack.pop items)
      | Peek -> Took (Sec_spec.Seq_stack.peek items)
    in
    Fc.create ~max_threads ~apply ()

  let push t ~tid v =
    (* The combiner conses onto the sequential stack on our behalf. *)
    P.note_alloc ();
    match Fc.apply t ~tid (Push v) with Pushed -> () | Took _ -> assert false

  let pop t ~tid =
    match Fc.apply t ~tid Pop with Took r -> r | Pushed -> assert false

  let peek t ~tid =
    match Fc.apply t ~tid Peek with Took r -> r | Pushed -> assert false
end
