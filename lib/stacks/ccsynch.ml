(* CC-Synch combining executor [Fatourou & Kallimanis, PPoPP 2012].

   Requests are announced by SWAPping a fresh node onto a global tail,
   which forms an implicit FIFO list. The thread whose node has
   [wait = false] is the combiner: it walks the list applying up to
   [combine_limit] requests, then hands the combiner role to the next
   announcer. Compared to flat combining there is no lock and no empty
   scanning — every traversed node carries a request.

   Node recycling follows the paper: a thread donates its local node as the
   new tail placeholder and adopts the node it obtained from the SWAP. *)

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  type ('op, 'res) node = {
    mutable req : 'op option;
        [@plain_ok
          "written by the owner before the release store to [next] that \
           publishes the node to the combiner"]
    mutable res : 'res option;
        [@plain_ok
          "written by the combiner before its release store to [wait]; the \
           owner reads it only after observing [wait = false]"]
    wait : bool A.t;
    completed : bool A.t;
    next : ('op, 'res) node option A.t;
  }

  type ('op, 'res) t = {
    tail : ('op, 'res) node A.t;
    local : ('op, 'res) node array; (* per-thread spare node *)
    apply : 'op -> 'res;
    combine_limit : int;
    combines : int A.t;
    handoffs : int A.t;
  }

  (* Nodes are recycled for the lifetime of the executor and [wait] is
     spun on by the owner while the combiner writes it: pad every cell so
     neighbouring nodes' traffic cannot false-share. *)
  let fresh_node () =
    {
      req = None;
      res = None;
      wait = A.make_padded false;
      completed = A.make_padded false;
      next = A.make_padded None;
    }

  let create ?(max_threads = 64) ?(combine_limit = 1024) ~apply () =
    (* The initial tail is a dummy with [wait = false]: the first announcer
       becomes combiner immediately. *)
    {
      tail = A.make_padded (fresh_node ());
      local = Array.init max_threads (fun _ -> fresh_node ());
      apply;
      combine_limit;
      combines = A.make_padded 0;
      handoffs = A.make_padded 0;
    }

  let apply t ~tid op =
    let next_node = t.local.(tid) in
    A.set next_node.next None;
    A.set next_node.wait true;
    A.set next_node.completed false;
    let cur = A.exchange t.tail next_node in
    cur.req <- Some op;
    t.local.(tid) <- cur;
    (* Publishing [next] makes [req] visible to the combiner. *)
    A.set cur.next (Some next_node);
    Backoff.spin_while (fun () -> A.get cur.wait);
    if A.get cur.completed then begin
      (* Someone combined for us. *)
      match cur.res with Some r -> r | None -> assert false
    end
    else begin
      (* We are the combiner: serve from our own node onward. *)
      let rec serve node served =
        match A.get node.next with
        | Some next_in_line when served < t.combine_limit ->
            (match node.req with
            | Some req -> node.res <- Some (t.apply req)
            | None -> assert false);
            A.set node.completed true;
            A.set node.wait false;
            A.incr t.combines;
            serve next_in_line (served + 1)
        | Some _ | None ->
            (* [node] is the tail placeholder (or we hit the limit): hand
               the combiner role to its owner. *)
            A.incr t.handoffs;
            A.set node.wait false
      in
      serve cur 0;
      match cur.res with Some r -> r | None -> assert false
    end

  let combined_ops t = A.get t.combines
  let handoffs t = A.get t.handoffs
end
