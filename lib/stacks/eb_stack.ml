(* Elimination-backoff stack [Hendler, Shavit & Yerushalmi 2004] ("EB"):
   a Treiber stack whose backoff path is an elimination array. A push that
   loses its CAS offers [Some v] on a random exchanger slot; a pop offers
   [None]. A push paired with a pop eliminates both; same-type pairings
   simply retry (each party ignores the received offer and keeps its own
   operation, so the swap is harmless).

   The slot range adapts per thread, following the original paper's
   policy: successful eliminations and crowded slots widen the range
   (spread the load over more cache lines); lonely timeouts shrink it
   (concentrate so partners actually meet). *)

(* A failed top-CAS means a peer succeeded, and every exchanger visit is
   bounded by its timeout — no wait depends on one specific thread. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module A = P.Atomic
  module Exchanger = Exchanger.Make (P)

  type 'a node = Nil | Cons of { value : 'a; next : 'a node }

  type 'a t = {
    top : 'a node A.t;
    exchangers : 'a option Exchanger.t array;
    range : int array; (* per-thread adaptive sub-range, thread-private *)
    rounds : int array;
        (* per-thread adaptive backoff: how many elimination attempts to
           make between two touches of the hot top pointer *)
    timeout : int;
  }

  let name = "EB"

  let max_rounds = 64

  let create ?(max_threads = 64) () =
    let slots = max 1 (max_threads / 2) in
    {
      top = A.make_padded Nil;
      exchangers = Array.init slots (fun _ -> Exchanger.create ());
      range = Array.make max_threads 1;
      rounds = Array.make max_threads 1;
      timeout = 2_000;
    }

  let widen t tid =
    if t.range.(tid) < Array.length t.exchangers then
      t.range.(tid) <- t.range.(tid) + 1

  let shrink t tid = if t.range.(tid) > 1 then t.range.(tid) <- t.range.(tid) / 2

  let try_push t value =
    let cur = A.get t.top in
    P.note_alloc ();
    A.compare_and_set t.top cur (Cons { value; next = cur })

  let visit t tid offer =
    let slot = t.exchangers.(P.rand_int t.range.(tid)) in
    Exchanger.exchange slot offer ~timeout:t.timeout

  let adapt t tid = function
    | Exchanger.Timed_out { crowded = true } -> widen t tid
    | Exchanger.Timed_out { crowded = false } -> shrink t tid
    | Exchanger.Exchanged _ -> widen t tid

  (* Failing the top CAS doubles the time spent in the elimination layer
     before the next touch of the hot line; succeeding resets it. This is
     the "elimination as backoff" of the original paper — under high
     contention almost all traffic moves to the (sharded) exchangers. *)
  let on_top_failure t tid =
    if t.rounds.(tid) < max_rounds then t.rounds.(tid) <- t.rounds.(tid) * 2

  let on_top_success t tid = t.rounds.(tid) <- 1

  (* Try to eliminate for up to [rounds] exchanger visits; [matches]
     decides whether a partner's offer completes our operation. *)
  let eliminate t tid offer ~matches =
    let rec go remaining =
      if remaining = 0 then None
      else begin
        let outcome = visit t tid offer in
        adapt t tid outcome;
        match outcome with
        | Exchanger.Exchanged theirs when matches theirs -> Some theirs
        | Exchanger.Exchanged _ | Exchanger.Timed_out _ -> go (remaining - 1)
      end
    in
    go t.rounds.(tid)

  let push t ~tid value =
    let rec attempt () =
      if try_push t value then on_top_success t tid
      else begin
        on_top_failure t tid;
        match
          eliminate t tid (Some value) ~matches:(fun o -> o = None)
        with
        | Some _ -> () (* met a pop: eliminated *)
        | None -> attempt ()
      end
    in
    attempt ()

  let pop t ~tid =
    let rec attempt () =
      match A.get t.top with
      | Nil -> None
      | Cons { value; next } as cur ->
          if A.compare_and_set t.top cur next then begin
            on_top_success t tid;
            Some value
          end
          else begin
            on_top_failure t tid;
            match
              eliminate t tid None
                ~matches:(fun o -> match o with Some _ -> true | None -> false)
            with
            | Some (Some v) -> Some v (* met a push *)
            | Some None -> assert false
            | None -> attempt ()
          end
    in
    attempt ()

  let peek t ~tid:_ =
    match A.get t.top with Nil -> None | Cons { value; _ } -> Some value
end
