(* H-Synch: hierarchical, NUMA-aware combining [Fatourou & Kallimanis,
   PPoPP 2012]. Threads are grouped into clusters (one per NUMA node);
   each cluster runs its own CC-Synch-style announcement list, and a
   cluster's combiner acquires a global lock before serving its batch.
   Cross-socket traffic is paid once per *batch* (the lock) instead of
   once per operation, which is the hierarchical analogue of what SEC's
   aggregators achieve without the global lock.

   Not part of the paper's comparison — included as an extension baseline
   to separate "NUMA-aware combining" from SEC's elimination. *)

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  type ('op, 'res) node = {
    mutable req : 'op option;
        [@plain_ok
          "written by the owner before the release store to [next] that \
           publishes the node to the cluster combiner"]
    mutable res : 'res option;
        [@plain_ok
          "written by the combiner before its release store to [wait]; the \
           owner reads it only after observing [wait = false]"]
    wait : bool A.t;
    completed : bool A.t;
    next : ('op, 'res) node option A.t;
  }

  type ('op, 'res) cluster = {
    tail : ('op, 'res) node A.t;
    local : ('op, 'res) node array; (* per-thread spare node *)
  }

  type ('op, 'res) t = {
    clusters : ('op, 'res) cluster array;
    cluster_size : int;
    global_lock : bool A.t;
    apply : 'op -> 'res;
    combine_limit : int;
  }

  (* Recycled for the lifetime of the executor; [wait] is spun on by the
     owner while the combiner writes it — pad every cell (see ccsynch). *)
  let fresh_node () =
    {
      req = None;
      res = None;
      wait = A.make_padded false;
      completed = A.make_padded false;
      next = A.make_padded None;
    }

  let create ?(max_threads = 64) ?(cluster_size = 28) ?(combine_limit = 1024)
      ~apply () =
    let clusters = max 1 ((max_threads + cluster_size - 1) / cluster_size) in
    {
      clusters =
        Array.init clusters (fun _ ->
            {
              tail = A.make_padded (fresh_node ());
              local = Array.init max_threads (fun _ -> fresh_node ());
            });
      cluster_size;
      global_lock = A.make_padded false;
      apply;
      combine_limit;
    }

  let lock t =
    let backoff = Backoff.create () in
    let rec attempt () =
      if A.exchange t.global_lock true then begin
        Backoff.spin_while (fun () -> A.get t.global_lock);
        Backoff.once backoff;
        attempt ()
      end
    in
    attempt ()

  let unlock t = A.set t.global_lock false

  let apply t ~tid op =
    let cluster = t.clusters.(tid / t.cluster_size mod Array.length t.clusters) in
    let next_node = cluster.local.(tid) in
    A.set next_node.next None;
    A.set next_node.wait true;
    A.set next_node.completed false;
    let cur = A.exchange cluster.tail next_node in
    cur.req <- Some op;
    cluster.local.(tid) <- cur;
    A.set cur.next (Some next_node);
    Backoff.spin_while (fun () -> A.get cur.wait);
    if A.get cur.completed then
      match cur.res with Some r -> r | None -> assert false
    else begin
      (* Cluster combiner: serve the local list under the global lock. *)
      lock t;
      let rec serve node served =
        match A.get node.next with
        | Some next_in_line when served < t.combine_limit ->
            (match node.req with
            | Some req -> node.res <- Some (t.apply req)
            | None -> assert false);
            A.set node.completed true;
            A.set node.wait false;
            serve next_in_line (served + 1)
        | Some _ | None -> node
      in
      let last = serve cur 0 in
      unlock t;
      (* Hand the cluster-combiner role to the owner of the tail
         placeholder only after releasing the global lock. *)
      A.set last.wait false;
      match cur.res with Some r -> r | None -> assert false
    end
end
