(* Generic flat-combining executor [Hendler, Incze, Shavit & Tzafrir 2010].

   Threads publish requests into per-thread slots; whoever acquires the
   global lock becomes the combiner and executes every pending request
   against the (sequential) protected object, writing results back into the
   slots. The classic implementation uses a dynamic publication list with
   aging; with a bounded, known set of threads a flat per-thread slot array
   is equivalent and simpler, so that is what we use (each slot in its own
   cache line).

   This module is the substrate for the "FC" stack of the paper's
   evaluation, and is reusable for any object with a sequential [apply]. *)

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  type ('op, 'res) slot = Idle | Pending of 'op | Done of 'res

  type ('op, 'res) t = {
    lock : bool A.t;
    slots : ('op, 'res) slot A.t array;
    apply : 'op -> 'res;
    passes : int;
    combines : int A.t;     (* requests executed on behalf of others *)
    acquisitions : int A.t; (* times the combiner lock was taken *)
  }

  let create ?(max_threads = 64) ?(passes = 2) ~apply () =
    {
      lock = A.make_padded false;
      slots = Array.init max_threads (fun _ -> A.make_padded Idle);
      apply;
      passes;
      combines = A.make_padded 0;
      acquisitions = A.make_padded 0;
    }

  let try_lock t = not (A.exchange t.lock true)
  let unlock t = A.set t.lock false

  (* Scanning more than once lets requests that were published while the
     combiner was already scanning catch the same combining session. *)
  let combine t =
    A.incr t.acquisitions;
    for _ = 1 to t.passes do
      Array.iter
        (fun slot ->
          match A.get slot with
          | Pending op ->
              A.set slot (Done (t.apply op));
              A.incr t.combines
          | Idle | Done _ -> ())
        t.slots
    done

  let apply t ~tid op =
    let slot = t.slots.(tid) in
    A.set slot (Pending op);
    let rec await () =
      match A.get slot with
      | Done res ->
          (A.set slot Idle
          [@publication_ok
            "slot hand-off: slots.(tid) is written by the combiner only \
             while Pending; once it reads Done, the publishing thread owns \
             it again until the next publication"]);
          res
      | Pending _ ->
          if try_lock t then begin
            combine t;
            unlock t;
            (* We combined after publishing, so our own request is done. *)
            await ()
          end
          else begin
            (* Wake when served, or when the lock frees so we can combine. *)
            Backoff.spin_until (fun () ->
                (match A.get slot with Done _ -> true | Idle | Pending _ -> false)
                || not (A.get t.lock));
            await ()
          end
      | Idle -> assert false (* only this thread resets to Idle *)
    in
    await ()

  (* Statistics for reports/tests. *)
  let combined_ops t = A.get t.combines
  let lock_acquisitions t = A.get t.acquisitions
end
