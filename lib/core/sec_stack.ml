(* SEC — Sharded Elimination and Combining stack (the paper's Algorithms 1
   and 2, Figure 1).

   Threads are sharded over K aggregators by thread id. Each aggregator
   points to its currently active *batch*. A thread announces an operation
   by fetch&increment on the batch's push or pop counter; the returned
   sequence number names an elimination-array slot (pushes deposit their
   node there immediately). The first announcer of either type wins a
   test&set and becomes the batch's *freezer*: after a short backoff (to
   let the batch grow) it snapshots both counters into
   [push_at_freeze]/[pop_at_freeze] and installs a fresh batch in the
   aggregator, which releases every announcer:

   - announcers whose sequence number is not below the freeze snapshot do
     not belong to the batch and retry in a later batch;
   - the first min(pushes, pops) operations of each type eliminate
     pairwise through the elimination array;
   - the survivors are all of one type; the one with the lowest surviving
     sequence number becomes the *combiner* and applies them all to the
     shared Treiber-style stack with a single CAS (appending a pre-linked
     substack, or unlinking a chain of nodes), then raises
     [batch_applied]; waiting pops find their results by indexing into the
     detached substack ([get_value]).

   Linearization (paper, Section 5): eliminated pairs linearize together
   at the exchange; non-eliminated operations linearize at their
   combiner's successful CAS, ordered by sequence number. *)

(* The combining protocol is blocking: an announcer whose batch's freezer
   (or combiner) is suspended spins on [batch_applied] forever. The
   sharded elimination fast path is nonetheless lock-free — a suspension
   on one aggregator cannot stall threads mapped to another shard — and
   test/test_progress.ml checks both facts mechanically. *)
[@@@progress "blocking"]
[@@@spec "stack"]

(* Batch lifecycle (checked statically by sec_lint rule 13): announcing
   (counter FAAs, elimination-slot deposits) and the freezer race on
   [freezer_decided] happen only while the batch is open; the freeze
   snapshot writes [pop_at_freeze] strictly before [push_at_freeze]
   (push's elimination test reads pops-at-freeze through the push
   counter, so the reverse order would under-eliminate); and only a
   fully snapped batch may be retired by installing its successor. *)
[@@@protocol
  "batch: open -rmw:push_count-> open; open -rmw:pop_count-> open; open \
   -write:elimination-> open; open -rmw:freezer_decided-> open; open \
   -write:pop_at_freeze-> snapped; snapped -write:push_at_freeze-> frozen; \
   frozen -write:batch-> open"]

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)
  module Counter = Sec_prim.Striped_counter.Make (P)
  module Mag = Sec_reclaim.Magazine.Make (P)

  type 'a node = {
    mutable value : 'a;
        [@plain_ok
          "written while the node is private to its pusher (fresh, or \
           recycled after its last reader provably finished); published \
           by the elimination-slot store or the combiner's CAS on [top]"]
    mutable next : 'a node option;
        [@plain_ok
          "linked while the node is still private to one combiner; \
           published wholesale by the combiner's release CAS on [top]"]
  }

  type 'a batch = {
    push_count : int A.t;
    pop_count : int A.t;
    push_at_freeze : int A.t;
    pop_at_freeze : int A.t;
    elimination : 'a node option A.t array;
    freezer_decided : bool A.t;
    batch_applied : bool A.t;
    substack : 'a node option A.t;
        (* chain detached by a pop-side combiner, read by [get_value] *)
    consumed : int A.t;
        (* combined pops done reading [substack]; the last one may
           recycle the detached chain (only touched with
           [Config.recycle_nodes]) *)
  }

  type 'a aggregator = { batch : 'a batch A.t }

  type stats_counters = {
    batches : Counter.t;
    operations : Counter.t;
    eliminated : Counter.t;
    combined : Counter.t;
    excluded : Counter.t;
  }

  type 'a t = {
    top : 'a node option A.t; (* the shared stack (Figure 1, stackTop) *)
    aggregators : 'a aggregator array;
    capacity : int; (* elimination-array size = max_threads *)
    config : Config.t;
    stats : stats_counters option;
    (* Zero-allocation hot path ([Config.recycle_nodes]); [recycle]
       mirrors the config flag so the per-op branch is a plain read. *)
    recycle : bool;
    mag : 'a node Mag.t;
    (* Contention-adaptive sharding ([Config.adaptive]): the number of
       aggregators announcements actually route to, moved between 1 and
       [Array.length aggregators] by the freeze-time controller. *)
    active : int A.t;
    win_ops : int A.t; (* operations frozen in the current window *)
    win_batches : int A.t; (* batches frozen in the current window *)
  }

  let name = "SEC"

  let make_batch capacity =
    {
      push_count = A.make_padded 0;
      pop_count = A.make_padded 0;
      push_at_freeze = A.make_padded (-1);
      pop_at_freeze = A.make_padded (-1);
      (* Each elimination slot belongs to a different announcing thread;
         adjacent unpadded slots would false-share under the paper's
         hottest path (announce/collect). *)
      elimination = Array.init capacity (fun _ -> A.make_padded None);
      freezer_decided = A.make_padded false;
      batch_applied = A.make_padded false;
      substack = A.make_padded None;
      consumed = A.make_padded 0;
    }

  let create_with ~config ?(max_threads = 64) () =
    (* Routing is [tid mod K] with every tid below [max_threads], so
       clamping K to the thread count is routing-equivalent (aggregators
       past it could never be reached) — it keeps harness runs at low
       thread counts working with a high configured K. Nonsensical
       configurations built by hand still fail [Config.validate]. *)
    let config =
      if config.Config.num_aggregators > max_threads then
        { config with Config.num_aggregators = max_threads }
      else config
    in
    Config.validate ~capacity:max_threads config;
    {
      top = A.make_padded None;
      aggregators =
        Array.init config.Config.num_aggregators (fun _ ->
            { batch = A.make_padded (make_batch max_threads) });
      capacity = max_threads;
      config;
      stats =
        (if config.Config.collect_stats then
           Some
             {
               batches = Counter.create ();
               operations = Counter.create ();
               eliminated = Counter.create ();
               combined = Counter.create ();
               excluded = Counter.create ();
             }
         else None);
      recycle = config.Config.recycle_nodes;
      (* [slab_nodes]/[offheap] route the magazines' slow path through
         the wait-free slab store; SEC's polymorphic nodes themselves
         stay on the OCaml heap (see Config.offheap). *)
      mag =
        Mag.create ~max_threads
          ~backing:
            (if config.Config.slab_nodes || config.Config.offheap then `Slab
             else `Depot)
          ();
      (* Adaptive runs start consolidated (K = 1, the best single-thread
         setting) and grow under pressure; the field is untouched — and
         never read — without [Config.adaptive]. *)
      active = A.make_padded 1;
      win_ops = A.make_padded 0;
      win_batches = A.make_padded 0;
    }

  let create ?max_threads () = create_with ~config:Config.default ?max_threads ()

  let aggregator_of t tid =
    let k =
      if t.config.Config.adaptive then A.get t.active
      else Array.length t.aggregators
    in
    t.aggregators.(tid mod k)

  (* Current routing width: K under static sharding, the controller's
     choice under [Config.adaptive] (tests and docs/PERF.md). *)
  let active_aggregators t =
    if t.config.Config.adaptive then A.get t.active
    else Array.length t.aggregators

  (* ------------------------------------------------------------------ *)
  (* Freezing (paper: FreezeBatch, lines 28–32)                          *)

  let record_batch_stats t ~tid ~pushes ~pops =
    match t.stats with
    | None -> ()
    | Some s ->
        let eliminated = 2 * min pushes pops in
        Counter.incr s.batches ~tid;
        Counter.add s.operations ~tid (pushes + pops);
        Counter.add s.eliminated ~tid eliminated;
        Counter.add s.combined ~tid (pushes + pops - eliminated)

  (* Contention controller (cf. "A Dynamic Elimination-Combining Stack
     Algorithm", PAPERS.md): every freeze feeds its batch size into a
     window; once [adapt_window] batches have been frozen, the freezer
     that closes the window compares the window's mean batching degree
     against two thresholds and widens or narrows the routing. Hysteresis
     (grow at a mean of >= [grow_degree] ops/batch, shrink only at
     <= [shrink_degree]) keeps the controller from oscillating on
     workloads that hover between the two. Runs without [Config.adaptive]
     never touch these cells, so the static path is unchanged. *)
  let adapt_window = 16
  let grow_degree = 4
  let shrink_degree_x2 = 3 (* shrink when 2 * mean <= 3, i.e. mean <= 1.5 *)

  let adapt t ~ops =
    ignore (A.fetch_and_add t.win_ops ops);
    let b = A.fetch_and_add t.win_batches 1 + 1 in
    if b >= adapt_window && A.compare_and_set t.win_batches b 0 then begin
      (* One winner per window: the CAS above closes it, the exchange
         claims its tally (concurrent freezers may have added a few more
         ops — they roll into this window's mean, which is fine). *)
      let total = A.exchange t.win_ops 0 in
      let k = A.get t.active in
      if total >= grow_degree * b && k < Array.length t.aggregators then
        A.set t.active (k + 1)
      else if 2 * total <= shrink_degree_x2 * b && k > 1 then
        A.set t.active (k - 1)
    end

  (* The freezer lingers so more operations join the batch, raising the
     elimination/combining degree (paper, Section 3.1). The wait is
     adaptive: poll the announcement counters and keep waiting while the
     batch is still growing, up to [freeze_backoff] relax units in total —
     so a lone thread freezes almost immediately while a busy aggregator
     gathers a full batch. *)
  let freezer_backoff t batch =
    let budget = t.config.Config.freeze_backoff in
    if budget > 0 then begin
      (* Short initial probe: a lone thread freezes almost immediately.
         If anything else announced during it, keep extending in windows
         long enough to cover a contended cross-socket announce — or a
         thread whose fetch&increment queues behind a few others misses
         every batch's window and starves. *)
      let initial = max 512 (budget / 32) in
      let extension = max 1024 (budget / 8) in
      let announced () = A.get batch.push_count + A.get batch.pop_count in
      P.relax initial;
      let after_initial = announced () in
      if after_initial > 1 then begin
        (* Others are arriving: let the batch grow. *)
        let rec wait spent seen =
          if spent < budget then begin
            P.relax extension;
            let now = announced () in
            if now > seen then wait (spent + extension) now
          end
        in
        wait initial after_initial
      end
    end

  let freeze_batch t ~tid aggregator batch =
    freezer_backoff t batch;
    (* When more live threads than [max_threads] announce into one batch,
       the counters race past [capacity]. Announcements at or past it own
       no elimination slot (the push path bails out before depositing), so
       the snapshot must exclude them; they retry in a later batch.
       [Batch_overflow] is the seeded mutant reintroducing the unclamped
       snapshot (Config.mutation — refinement-prong tests only). *)
    let clamp c =
      if t.config.Config.mutation = Config.Batch_overflow then c
      else min c t.capacity
    in
    let pops = clamp (A.get batch.pop_count) in
    let pushes = clamp (A.get batch.push_count) in
    A.set batch.pop_at_freeze pops;
    A.set batch.push_at_freeze pushes;
    record_batch_stats t ~tid ~pushes ~pops;
    if t.config.Config.adaptive then adapt t ~ops:(pushes + pops);
    (* Installing the new batch is what releases the waiting announcers. *)
    A.set aggregator.batch (make_batch t.capacity)

  (* Announce via FAA, then either freeze (if we won the seq-0 test&set
     race) or wait until the freezer retires the batch. Returns true when
     the caller's operation belongs to [batch]. *)
  let announce_and_freeze t ~tid aggregator batch ~seq ~counter_at_freeze =
    if seq = 0 && not (A.exchange batch.freezer_decided true) then
      freeze_batch t ~tid aggregator batch
    else Backoff.spin_while (fun () -> A.get aggregator.batch == batch);
    let included = seq < A.get counter_at_freeze in
    (if not included then
       match t.stats with
       | Some s -> Counter.incr s.excluded ~tid
       | None -> ());
    included

  (* ------------------------------------------------------------------ *)
  (* Combining for pushes (paper: PushToStack, lines 33–51)              *)

  let node_of batch i =
    (* The announcer with sequence number [i] deposits its node right
       after its FAA; the combiner may momentarily have to wait for it. *)
    Backoff.spin_until (fun () ->
        match A.get batch.elimination.(i) with Some _ -> true | None -> false);
    match A.get batch.elimination.(i) with
    | Some n -> n
    | None -> assert false

  let push_to_stack t batch ~seq =
    let push_frozen = A.get batch.push_at_freeze in
    (* Link the surviving pushes [seq .. push_frozen) into a substack:
       higher sequence numbers end up nearer the top. *)
    let bottom = node_of batch seq in
    let top_of_substack = ref bottom in
    for i = seq + 1 to push_frozen - 1 do
      let n = node_of batch i in
      n.next <- Some !top_of_substack;
      top_of_substack := n
    done;
    (* Combiners retry immediately: there are at most K of them, an entire
       batch of waiters stalls while one dawdles, and backing off after a
       failed CAS just surrenders the loser's place behind a stream of
       fresh combiners. *)
    let rec attempt () =
      (let current_top = A.get t.top in
       bottom.next <- current_top;
       if not (A.compare_and_set t.top current_top (Some !top_of_substack))
       then attempt ())
      [@await_ok
        "a failed CAS means another combiner landed its whole batch; at \
         most K combiners compete, so retrying bare is the right call"]
    in
    attempt ()

  (* ------------------------------------------------------------------ *)
  (* Combining for pops (paper: PopFromStack + GetValue, lines 80–103)   *)

  let pop_from_stack t batch ~seq =
    let pop_frozen = A.get batch.pop_at_freeze in
    let to_remove = pop_frozen - seq in
    let rec attempt () =
      let current_top = A.get t.top in
      (* Walk down min(to_remove, depth) nodes; the remainder of the batch
         will observe an empty stack. *)
      let rec walk node k =
        if k = 0 then node
        else match node with None -> None | Some n -> walk n.next (k - 1)
      in
      let new_top = walk current_top to_remove in
      (if A.compare_and_set t.top current_top new_top then
         A.set batch.substack
           (* [Pop_reorder] is the seeded mutant publishing the remaining
              stack instead of the detached chain (Config.mutation —
              refinement-prong tests only). *)
           (if t.config.Config.mutation = Config.Pop_reorder then new_top
            else current_top)
       else attempt ())
      [@await_ok
        "a failed CAS means another combiner landed its whole batch; at \
         most K combiners compete, so retrying bare is the right call"]
    in
    attempt ()

  let get_value batch ~offset =
    let rec walk node k =
      match node with
      | None -> None
      | Some n -> if k = 0 then Some n.value else walk n.next (k - 1)
    in
    walk (A.get batch.substack) offset

  (* The detached chain's nodes are unreachable from [top] (the combiner's
     CAS snipped them out), so once every combined pop of the batch has
     read its value the chain can be recycled. Each reader bumps
     [batch.consumed] *after* its [get_value]; the one that brings it to
     the participant count walks the chain. [next] is read before the
     node is recycled: a recycled node can be adopted (via a depot
     overflow) and re-initialised by another thread immediately. *)
  let recycle_chain t ~tid batch ~limit =
    let rec walk node k =
      if k < limit then
        match node with
        | None -> () (* batch outran the stack: chain is shorter *)
        | Some n ->
            let next = n.next in
            Mag.recycle t.mag ~tid n;
            walk next (k + 1)
    in
    walk (A.get batch.substack) 0

  (* ------------------------------------------------------------------ *)
  (* Public operations (paper: Algorithms 1 and 2)                       *)

  (* A recycled node is private to this push until the elimination-slot
     store publishes it: its previous life ended either in an eliminated
     pop (the only reader read the value before recycling) or in a
     detached chain whose last reader recycled it after every [get_value]
     completed, so the in-place stores below race with nothing. *)
  let make_node t ~tid value =
    if t.recycle then
      match Mag.alloc t.mag ~tid with
      | Some n ->
          n.value <- value;
          n.next <- None;
          n
      | None ->
          P.note_alloc ();
          ({ value; next = None }
          [@fresh_ok "magazine miss: cold start or pop-starved run"])
    else begin
      P.note_alloc ();
      ({ value; next = None } [@fresh_ok "recycling disabled in config"])
    end

  let push t ~tid value =
    let aggregator = aggregator_of t tid in
    let node = make_node t ~tid value in
    let rec try_batch () =
      let batch = A.get aggregator.batch in
      let seq = A.fetch_and_add batch.push_count 1 in
      if seq >= t.capacity then begin
        (* No elimination slot for us: more announcements landed in this
           batch than the stack was sized for (live threads exceed
           [max_threads]). The freeze snapshot clamps to [capacity], so we
           are excluded by construction — wait out the batch and retry. *)
        (match t.stats with
        | Some s -> Counter.incr s.excluded ~tid
        | None -> ());
        Backoff.spin_while (fun () -> A.get aggregator.batch == batch);
        try_batch ()
      end
      else begin
        A.set batch.elimination.(seq) (Some node);
        if
          announce_and_freeze t ~tid aggregator batch ~seq
            ~counter_at_freeze:batch.push_at_freeze
        then begin
          let pop_frozen = A.get batch.pop_at_freeze in
          if seq >= pop_frozen then
            (* Not eliminated; the smallest surviving push combines. *)
            if seq = pop_frozen then begin
              push_to_stack t batch ~seq;
              A.set batch.batch_applied true
            end
            else Backoff.spin_until (fun () -> A.get batch.batch_applied)
          (* else: a pop with our sequence number consumed our node. *)
        end
        else try_batch ()
      end
    in
    try_batch ()

  let pop t ~tid =
    let aggregator = aggregator_of t tid in
    let rec try_batch () =
      let batch = A.get aggregator.batch in
      let seq = A.fetch_and_add batch.pop_count 1 in
      if
        announce_and_freeze t ~tid aggregator batch ~seq
          ~counter_at_freeze:batch.pop_at_freeze
      then begin
        let push_frozen = A.get batch.push_at_freeze in
        if seq < push_frozen then begin
          (* Eliminated: take the value deposited by the push that shares
             our sequence number. We are that node's only reader, so with
             recycling on it goes straight back to a magazine. *)
          let n = node_of batch seq in
          let v = n.value in
          if t.recycle then Mag.recycle t.mag ~tid n;
          Some v
        end
        else begin
          if seq = push_frozen then begin
            pop_from_stack t batch ~seq;
            A.set batch.batch_applied true
          end
          else Backoff.spin_until (fun () -> A.get batch.batch_applied);
          let v = get_value batch ~offset:(seq - push_frozen) in
          (if t.recycle then
             (* Participants in the combined phase are exactly the pops
                with sequence numbers in [push_frozen, pop_frozen) — the
                combiner included. The last to finish reading recycles
                the detached chain. *)
             let total = A.get batch.pop_at_freeze - push_frozen in
             let finished = A.fetch_and_add batch.consumed 1 + 1 in
             if finished = total then recycle_chain t ~tid batch ~limit:total);
          v
        end
      end
      else try_batch ()
    in
    try_batch ()

  (* With recycling off, a node reachable from [top] is immutable, so one
     read suffices. With recycling on, the node could be popped, recycled
     and re-initialised between our load of [top] and our read of
     [value] — so revalidate that [top] still holds the same option cell
     afterwards. Every push publishes a fresh [Some] box, so physical
     equality proves the stack did not move under us (and a node still at
     the top cannot have been recycled: recycling happens only after the
     node is unlinked). *)
  let peek t ~tid:_ =
    let rec attempt () =
      match A.get t.top with
      | None -> None
      | Some n as cur ->
          let v = n.value in
          if (not t.recycle) || A.get t.top == cur then Some v
          else begin
            P.relax 1;
            attempt ()
          end
    in
    attempt ()

  (* ------------------------------------------------------------------ *)
  (* Introspection                                                       *)

  let stats t =
    match t.stats with
    | None -> Sec_stats.empty
    | Some s ->
        {
          Sec_stats.batches = Counter.get s.batches;
          operations = Counter.get s.operations;
          eliminated = Counter.get s.eliminated;
          combined = Counter.get s.combined;
          excluded = Counter.get s.excluded;
        }

  let config t = t.config
  let magazine_stats t = Mag.stats t.mag
  let magazine_hit_rate t = Mag.hit_rate t.mag
  let slab_stats t = Mag.slab_stats t.mag

  (* Current depth of the shared stack; O(n), single snapshot of [top],
     for tests and examples only. *)
  let depth t =
    let rec count node acc =
      match node with None -> acc | Some n -> count n.next (acc + 1)
    in
    count (A.get t.top) 0
end
