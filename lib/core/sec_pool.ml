(* SEC-style concurrent pool — the paper's "of independent interest"
   claim made concrete (Sections 1 and 7: the sharded elimination and
   combining mechanisms apply to other structures, e.g. pools [13]).

   Same machinery as {!Sec_stack}: aggregators, counter-based freezing,
   batch-level elimination, one combiner per batch. The difference is the
   backing store: a pool does not promise LIFO across threads, so each
   aggregator keeps its *own* Treiber-style backing stack. A push-majority
   combiner appends its substack to its aggregator's local top; a
   pop-majority combiner detaches from the local top first and steals from
   the other aggregators' tops if it comes up short. There is no globally
   shared hot line at all.

   Semantics: a linearizable bag — [pop] returns a value that was pushed
   and not yet popped. Emptiness is best-effort, as is standard for pools:
   a [pop] may return [None] if every backing stack it examined was empty
   at the moment its combiner examined it. *)

(* Inherits the SEC combining protocol's class: announcers wait on their
   batch's combiner, so a suspended combiner stalls its shard. *)
[@@@progress "blocking"]
[@@@spec "pool"]

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  type 'a node = {
    value : 'a;
    mutable next : 'a node option;
        [@plain_ok
          "linked while the node is still private to one combiner; \
           published wholesale by the combiner's release CAS on the \
           backing stack's top"]
  }

  type 'a batch = {
    push_count : int A.t;
    pop_count : int A.t;
    push_at_freeze : int A.t;
    pop_at_freeze : int A.t;
    elimination : 'a node option A.t array;
    freezer_decided : bool A.t;
    batch_applied : bool A.t;
    substack : 'a node option A.t;
  }

  type 'a aggregator = {
    batch : 'a batch A.t;
    local_top : 'a node option A.t; (* this aggregator's backing stack *)
  }

  type 'a t = {
    aggregators : 'a aggregator array;
    capacity : int;
    freeze_backoff : int;
  }

  let name = "SEC-pool"

  let make_batch capacity =
    {
      push_count = A.make_padded 0;
      pop_count = A.make_padded 0;
      push_at_freeze = A.make_padded (-1);
      pop_at_freeze = A.make_padded (-1);
      (* Per-thread announcement slots: pad so neighbouring announcers do
         not false-share (same reasoning as Sec_stack.make_batch). *)
      elimination = Array.init capacity (fun _ -> A.make_padded None);
      freezer_decided = A.make_padded false;
      batch_applied = A.make_padded false;
      substack = A.make_padded None;
    }

  let create ?(aggregators = 2) ?(freeze_backoff = 512) ?(max_threads = 64) ()
      =
    if aggregators < 1 then invalid_arg "Sec_pool.create: aggregators >= 1";
    {
      aggregators =
        Array.init aggregators (fun _ ->
            {
              batch = A.make_padded (make_batch max_threads);
              local_top = A.make_padded None;
            });
      capacity = max_threads;
      freeze_backoff;
    }

  let aggregator_of t tid = t.aggregators.(tid mod Array.length t.aggregators)

  let freeze_batch t aggregator batch =
    if t.freeze_backoff > 0 then P.relax t.freeze_backoff;
    (* Clamp: announcements at or past [capacity] own no elimination slot
       (the push path bails out before depositing) and must be excluded;
       they retry in a later batch. Same hazard as {!Sec_stack}. *)
    A.set batch.pop_at_freeze (min (A.get batch.pop_count) t.capacity);
    A.set batch.push_at_freeze (min (A.get batch.push_count) t.capacity);
    A.set aggregator.batch (make_batch t.capacity)

  let announce_and_freeze t aggregator batch ~seq ~counter_at_freeze =
    if seq = 0 && not (A.exchange batch.freezer_decided true) then
      freeze_batch t aggregator batch
    else Backoff.spin_while (fun () -> A.get aggregator.batch == batch);
    seq < A.get counter_at_freeze

  let node_of batch i =
    Backoff.spin_until (fun () ->
        match A.get batch.elimination.(i) with Some _ -> true | None -> false);
    match A.get batch.elimination.(i) with
    | Some n -> n
    | None -> assert false

  (* ------------------------------------------------------------------ *)
  (* Combining                                                           *)

  let push_to_local aggregator batch ~seq =
    let push_frozen = A.get batch.push_at_freeze in
    let bottom = node_of batch seq in
    let top_of_substack = ref bottom in
    for i = seq + 1 to push_frozen - 1 do
      let n = node_of batch i in
      n.next <- Some !top_of_substack;
      top_of_substack := n
    done;
    let backoff = Backoff.create () in
    let rec attempt () =
      let current = A.get aggregator.local_top in
      bottom.next <- current;
      if not (A.compare_and_set aggregator.local_top current (Some !top_of_substack))
      then begin
        Backoff.once backoff;
        attempt ()
      end
    in
    attempt ()

  (* Detach up to [wanted] nodes from [source]; returns the detached
     segment (head, last, taken). As in SEC's PopFromStack, the detached
     segment's last node may still point into the live stack — the caller
     relinks it, which is safe because detached nodes are only ever read
     through the bounded [collect_value] walk. *)
  let detach_from source ~wanted =
    let backoff = Backoff.create () in
    let rec attempt () =
      match A.get source with
      | None -> None
      | Some head as current ->
          let rec walk node taken last =
            if taken = wanted then (last, taken)
            else
              match node with
              | None -> (last, taken)
              | Some n -> walk n.next (taken + 1) (Some n)
          in
          let last, taken = walk current 0 None in
          let remainder =
            match last with None -> None | Some l -> l.next
          in
          if A.compare_and_set source current remainder then
            Some (head, Option.get last, taken)
          else begin
            Backoff.once backoff;
            attempt ()
          end
    in
    attempt ()

  let pop_from_stores t aggregator batch ~seq =
    let pop_frozen = A.get batch.pop_at_freeze in
    let needed = pop_frozen - seq in
    (* Own store first, then the others (sharded stealing). *)
    let own = aggregator.local_top in
    let sources =
      own
      :: (Array.to_list t.aggregators
         |> List.filter_map (fun a ->
                if a.local_top == own then None else Some a.local_top))
    in
    let head = ref None in
    let tail = ref None in
    let have = ref 0 in
    List.iter
      (fun source ->
        if !have < needed then
          match detach_from source ~wanted:(needed - !have) with
          | None -> ()
          | Some (h, l, taken) ->
              (match !tail with
              | None -> head := Some h
              | Some t -> t.next <- Some h);
              tail := Some l;
              have := !have + taken)
      sources;
    (* Terminate the collected chain: the final segment's last node may
       still point into a live stack. *)
    (match !tail with None -> () | Some l -> l.next <- None);
    A.set batch.substack !head

  let collect_value batch ~offset =
    let rec walk node k =
      match node with
      | None -> None
      | Some n -> if k = 0 then Some n.value else walk n.next (k - 1)
    in
    walk (A.get batch.substack) offset

  (* ------------------------------------------------------------------ *)
  (* Operations                                                          *)

  let push t ~tid value =
    let aggregator = aggregator_of t tid in
    let node = { value; next = None } in
    let rec try_batch () =
      let batch = A.get aggregator.batch in
      let seq = A.fetch_and_add batch.push_count 1 in
      if seq >= t.capacity then begin
        (* More announcements than the pool was sized for landed in this
           batch; the freeze snapshot clamps to [capacity], so we are
           excluded by construction — wait out the batch and retry. *)
        Backoff.spin_while (fun () -> A.get aggregator.batch == batch);
        try_batch ()
      end
      else begin
        A.set batch.elimination.(seq) (Some node);
        if
          announce_and_freeze t aggregator batch ~seq
            ~counter_at_freeze:batch.push_at_freeze
        then begin
          let pop_frozen = A.get batch.pop_at_freeze in
          if seq >= pop_frozen then
            if seq = pop_frozen then begin
              push_to_local aggregator batch ~seq;
              A.set batch.batch_applied true
            end
            else Backoff.spin_until (fun () -> A.get batch.batch_applied)
        end
        else try_batch ()
      end
    in
    try_batch ()

  let pop t ~tid =
    let aggregator = aggregator_of t tid in
    let rec try_batch () =
      let batch = A.get aggregator.batch in
      let seq = A.fetch_and_add batch.pop_count 1 in
      if
        announce_and_freeze t aggregator batch ~seq
          ~counter_at_freeze:batch.pop_at_freeze
      then begin
        let push_frozen = A.get batch.push_at_freeze in
        if seq < push_frozen then Some (node_of batch seq).value
        else begin
          if seq = push_frozen then begin
            pop_from_stores t aggregator batch ~seq;
            A.set batch.batch_applied true
          end
          else Backoff.spin_until (fun () -> A.get batch.batch_applied);
          collect_value batch ~offset:(seq - push_frozen)
        end
      end
      else try_batch ()
    in
    try_batch ()

  (* Total nodes across the backing stores. O(n); single snapshot per
     store; tests and examples only. *)
  let size t =
    Array.fold_left
      (fun acc agg ->
        let rec count node n =
          match node with None -> n | Some x -> count x.next (n + 1)
        in
        acc + count (A.get agg.local_top) 0)
      0 t.aggregators
end
