(* Tuning knobs of the SEC stack (paper, Sections 3 and 6). *)

(* Seeded correctness mutants, for the refinement prong's tests only
   (docs/ANALYSIS.md, "Refinement prong"): each reintroduces a historical
   or plausible bug behind a flag, so the property checker and its
   counterexample shrinker have known-bad targets to catch. Never enable
   outside tests. *)
type mutation =
  | No_mutation
  | Batch_overflow
      (** Omit the freeze-snapshot capacity clamp: when more live threads
          than [max_threads] announce into one batch, the frozen counters
          race past the elimination array — the exact bug the clamp in
          [Sec_stack.freeze_batch] fixed. *)
  | Pop_reorder
      (** The pop-side combiner publishes the *remaining* stack instead
          of the detached chain as the batch substack: combined pops read
          values that are still reachable from [top], so the same value
          is served twice (once combined, once by a later pop). *)

type t = {
  num_aggregators : int;
      (** K: threads are assigned to aggregators by [tid mod K]. The paper
          finds two aggregators best on most workloads (Figure 4). With
          {!adaptive} set, this is the *maximum*: the contention
          controller moves the active count between 1 and K. *)
  freeze_backoff : int;
      (** Budget, in relax units, for the freezer's adaptive wait before
          freezing its batch: it keeps polling while announcements still
          arrive, up to this total. A longer wait lets more operations
          join the batch, raising the elimination and combining degrees
          (paper, Section 3.1). [0] freezes immediately (the ablation
          benchmark uses this). *)
  collect_stats : bool;
      (** Record per-batch statistics (batching degree, %eliminated,
          %combined — Tables 1–3). Costs a few striped-counter updates per
          *batch* (not per operation). *)
  adaptive : bool;
      (** Contention-adaptive sharding (cf. "A Dynamic
          Elimination-Combining Stack Algorithm", PAPERS.md): sample the
          batching degree at each freeze and grow/shrink the *active*
          aggregator count between 1 and {!num_aggregators}. Off by
          default so pinned-seed results are byte-identical; see
          docs/PERF.md. *)
  recycle_nodes : bool;
      (** Recycle batch-chain and elimination nodes through a per-domain
          {!Sec_reclaim.Magazine} instead of allocating per push. Costs
          one extra fetch&add per *combined pop* (to detect when a
          detached chain's last reader is done); off by default so
          pinned-seed results are byte-identical. See docs/PERF.md. *)
  slab_nodes : bool;
      (** Back the recycling magazines with the wait-free
          {!Sec_reclaim.Slab} store instead of the global depot: magazine
          misses and overflows exchange whole slabs of chains with at
          most one CAS attempt, instead of a retried CAS per chain.
          Implies {!recycle_nodes} machinery; off by default so
          pinned-seed results are byte-identical. See docs/PERF.md,
          "Allocator". *)
  offheap : bool;
      (** Keep fixed-size node payloads outside the OCaml heap where the
          structure's representation allows it. SEC's polymorphic
          elimination slots must stay heap-allocated (any non-immediate
          payload is a pointer the GC must trace), so for SEC this
          forces {!slab_nodes}; the monomorphic arena path is
          {!Sec_reclaim.Treiber_arena}. See docs/PERF.md,
          "Allocator". *)
  mutation : mutation;
      (** Seeded correctness mutant (test-only; see {!mutation}). *)
}

let default =
  {
    num_aggregators = 2;
    freeze_backoff = 1024;
    collect_stats = false;
    adaptive = false;
    recycle_nodes = false;
    slab_nodes = false;
    offheap = false;
    mutation = No_mutation;
  }

(* [capacity] is the elimination-array size (= max_threads) of the stack
   being configured: an aggregator beyond the thread count can never be
   reached by [tid mod K], so requesting more of them than threads is a
   configuration error, not a tuning choice. *)
let validate ?capacity t =
  if t.num_aggregators < 1 then
    invalid_arg "Sec_core.Config: num_aggregators must be at least 1";
  if t.freeze_backoff < 0 then
    invalid_arg "Sec_core.Config: freeze_backoff must be non-negative";
  match capacity with
  | Some cap when t.num_aggregators > cap ->
      invalid_arg
        (Printf.sprintf
           "Sec_core.Config: num_aggregators (%d) exceeds capacity (%d): \
            threads are routed by [tid mod K], so the extra aggregators \
            could never be used"
           t.num_aggregators cap)
  | _ -> ()

let with_aggregators k t = { t with num_aggregators = k }
let with_backoff b t = { t with freeze_backoff = b }
let with_stats t = { t with collect_stats = true }
let with_adaptive t = { t with adaptive = true }
let with_recycling t = { t with recycle_nodes = true }
let with_slab t = { t with recycle_nodes = true; slab_nodes = true }
let with_offheap t = { t with recycle_nodes = true; slab_nodes = true; offheap = true }
let with_mutation m t = { t with mutation = m }

let mutation_to_string = function
  | No_mutation -> "none"
  | Batch_overflow -> "batch-overflow"
  | Pop_reorder -> "pop-reorder"

let pp ppf t =
  Format.fprintf ppf
    "{aggregators=%d; freeze_backoff=%d; stats=%b; adaptive=%b; \
     recycle=%b; slab=%b; offheap=%b%s}"
    t.num_aggregators t.freeze_backoff t.collect_stats t.adaptive
    t.recycle_nodes t.slab_nodes t.offheap
    (match t.mutation with
    | No_mutation -> ""
    | m -> "; MUTANT=" ^ mutation_to_string m)
