(* Snapshot of SEC batch statistics, as reported in Tables 1–3 of the
   paper. Collected at freeze time by the freezer thread (see
   {!Sec_stack}), so the numbers describe exactly the batches that were
   formed during a run. *)

type t = {
  batches : int;  (** number of frozen batches *)
  operations : int;  (** operations that belonged to those batches *)
  eliminated : int;  (** operations cancelled pairwise inside a batch *)
  combined : int;  (** operations applied to the shared stack by combiners *)
  excluded : int;
      (** announcements that landed after their batch's freeze and had to
          retry in a later batch (a diagnostic for freeze-window tuning:
          high values mean threads keep missing batches) *)
}

let empty =
  { batches = 0; operations = 0; eliminated = 0; combined = 0; excluded = 0 }

(** [diff later earlier] — counters accumulated between two snapshots
    (e.g. to exclude a prefill phase from a measurement). *)
let diff later earlier =
  {
    batches = later.batches - earlier.batches;
    operations = later.operations - earlier.operations;
    eliminated = later.eliminated - earlier.eliminated;
    combined = later.combined - earlier.combined;
    excluded = later.excluded - earlier.excluded;
  }

(** Average batch size ("Batching Degree" in Tables 1–3). *)
let batching_degree t =
  if t.batches = 0 then 0. else float_of_int t.operations /. float_of_int t.batches

(** Percentage of batch operations that were eliminated ("%Elimination"). *)
let pct_eliminated t =
  if t.operations = 0 then 0.
  else 100. *. float_of_int t.eliminated /. float_of_int t.operations

(** Percentage applied to the shared stack by a combiner ("%Combining"). *)
let pct_combined t =
  if t.operations = 0 then 0.
  else 100. *. float_of_int t.combined /. float_of_int t.operations

let pp ppf t =
  Format.fprintf ppf
    "batches=%d ops=%d batching_degree=%.1f elim=%.0f%% combining=%.0f%% \
     excluded=%d"
    t.batches t.operations (batching_degree t) (pct_eliminated t)
    (pct_combined t) t.excluded

(* ------------------------------------------------------------------ *)
(* Allocator statistics (PR 10): one flat snapshot over the process-wide
   magazine and slab tallies, so the harness reports the whole node
   path — L1 magazine hit rate, depot CAS traffic (with contended
   retries), slab park/adopt traffic and occupancy, arena remote-free
   batching — from a single call. [alloc_reset]/[alloc_snapshot]
   bracket one measured run, like the underlying [Global] modules. *)

type alloc_stats = {
  mag_hits : int;
  mag_misses : int;
  mag_recycled : int;
  mag_hit_rate : float;
  depot_cas : int;  (** depot CAS attempts (cross-domain) *)
  depot_cas_retries : int;  (** attempts that lost and had to loop *)
  slab_parks : int;  (** full slabs parked on the shared partial stack *)
  slab_adopts : int;  (** parked slabs adopted by a dry domain *)
  slab_cas : int;  (** slab-layer CAS attempts (park+adopt+remote) *)
  slab_cas_retries : int;  (** slab-layer attempts that lost *)
  slab_fresh : int;  (** slab misses: fresh-node construction *)
  slab_occupancy : float;  (** pooled / capacity over all slabs *)
  remote_batches : int;  (** arena remote-free batches spliced *)
}

let alloc_reset () =
  Sec_reclaim.Magazine.Global.reset ();
  Sec_reclaim.Slab.Global.reset ()

let alloc_snapshot () =
  let m = Sec_reclaim.Magazine.Global.snapshot () in
  let s = Sec_reclaim.Slab.Global.snapshot () in
  {
    mag_hits = m.Sec_reclaim.Magazine.Global.hits;
    mag_misses = m.Sec_reclaim.Magazine.Global.misses;
    mag_recycled = m.Sec_reclaim.Magazine.Global.recycled;
    mag_hit_rate = Sec_reclaim.Magazine.Global.hit_rate m;
    depot_cas = m.Sec_reclaim.Magazine.Global.depot_cas;
    depot_cas_retries = m.Sec_reclaim.Magazine.Global.depot_cas_retries;
    slab_parks = s.Sec_reclaim.Slab.Global.parks;
    slab_adopts = s.Sec_reclaim.Slab.Global.adopts;
    slab_cas = Sec_reclaim.Slab.Global.cas_attempts s;
    slab_cas_retries = Sec_reclaim.Slab.Global.cas_retries s;
    slab_fresh = s.Sec_reclaim.Slab.Global.fresh;
    slab_occupancy = Sec_reclaim.Slab.Global.occupancy s;
    remote_batches = s.Sec_reclaim.Slab.Global.remote_batches;
  }

let pp_alloc ppf a =
  Format.fprintf ppf
    "mag hits=%d misses=%d recycled=%d hit_rate=%.2f | depot cas=%d \
     retries=%d | slab parks=%d adopts=%d cas=%d retries=%d fresh=%d \
     occupancy=%.2f | remote batches=%d"
    a.mag_hits a.mag_misses a.mag_recycled a.mag_hit_rate a.depot_cas
    a.depot_cas_retries a.slab_parks a.slab_adopts a.slab_cas
    a.slab_cas_retries a.slab_fresh a.slab_occupancy a.remote_batches
