(** SEC — the Sharded Elimination and Combining stack of Singh, Metaxakis
    and Fatourou (PPoPP '26): a blocking, linearizable concurrent stack.

    Threads are sharded across aggregators; operations announced in the
    same *batch* eliminate pairwise through two fetch&increment counters,
    and each batch's survivors are applied to the shared stack by a single
    per-batch combiner with one CAS. See the implementation header for the
    pseudocode mapping. *)

module Make (_ : Sec_prim.Prim_intf.S) : sig
  include Sec_spec.Stack_intf.S

  (** [create_with ~config ~max_threads ()] — full control over sharding,
      freezer backoff and statistics collection. [create] uses
      {!Config.default}. *)
  val create_with : config:Config.t -> ?max_threads:int -> unit -> 'a t

  (** Batch statistics accumulated so far ({!Sec_stats.empty} unless the
      stack was created with [collect_stats = true]). *)
  val stats : 'a t -> Sec_stats.t

  val config : 'a t -> Config.t

  (** Aggregators announcements currently route to: the configured K
      under static sharding, the contention controller's current choice
      (between 1 and K) when the stack was created with
      [Config.adaptive]. *)
  val active_aggregators : 'a t -> int

  (** Node-magazine tallies for this stack (all zero unless created with
      [Config.recycle_nodes]). See {!Sec_reclaim.Magazine.Make.stats}. *)
  val magazine_stats : 'a t -> Sec_reclaim.Magazine.stats

  (** Fraction of node requests served without allocating; [0.] before
      any operation ran. *)
  val magazine_hit_rate : 'a t -> float

  (** Slab-store tallies behind the magazines; [None] unless created
      with [Config.slab_nodes] (or [Config.offheap]). *)
  val slab_stats : 'a t -> Sec_reclaim.Slab.stats option

  (** Number of nodes currently in the shared stack. O(n); takes a single
      snapshot of the top pointer — meant for tests and examples. *)
  val depth : 'a t -> int
end
