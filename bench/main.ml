(* Full benchmark harness.

   Part 1 (bechamel): uncontended single-threaded operation latency for
   every algorithm — one Test.make per algorithm, one group per paper
   table/figure, so regressions in the fast path of any implementation
   show up even without concurrency.

   Part 2 (reproduction): regenerates every figure and table of the
   paper's evaluation via the experiment registry (simulated NUMA
   machines; see DESIGN.md). Scale with BENCH_SCALE (default 0.5); CSVs
   land in results/. *)

open Bechamel

module W = Sec_harness.Workload

(* A single-threaded operation stream following [mix], against a prefilled
   stack. Pops refill on empty so the working set stays bounded no matter
   how many iterations bechamel decides to run. *)
let op_test (entry : Sec_harness.Registry.entry) (mix : W.mix) =
  let module Maker = (val entry.Sec_harness.Registry.maker) in
  let module S = Maker (Sec_prim.Native) in
  let stack = S.create ~max_threads:1 () in
  for i = 1 to 256 do
    S.push stack ~tid:0 i
  done;
  let rng = Sec_prim.Rng.create 17L in
  Test.make ~name:entry.Sec_harness.Registry.name
    (Staged.stage (fun () ->
         match W.pick mix (Sec_prim.Rng.int rng 100) with
         | W.Push -> S.push stack ~tid:0 42
         | W.Pop ->
             if S.pop stack ~tid:0 = None then S.push stack ~tid:0 1
         | W.Peek -> ignore (S.peek stack ~tid:0)))

let latency_groups =
  (* One group per table/figure family; each group holds one Test.make per
     algorithm under that family's characteristic workload. *)
  [
    Test.make_grouped ~name:"fig2/fig5/fig9 (100% updates)"
      (List.map
         (fun e -> op_test e W.update_heavy)
         Sec_harness.Registry.paper_set);
    Test.make_grouped ~name:"fig2/fig5/fig9 (10% updates)"
      (List.map (fun e -> op_test e W.read_heavy) Sec_harness.Registry.paper_set);
    Test.make_grouped ~name:"fig3/fig6/fig10 (push+pop)"
      (List.map (fun e -> op_test e W.update_heavy) [ Sec_harness.Registry.tsi ]);
    Test.make_grouped ~name:"fig4 (SEC aggregators)"
      (List.map
         (fun e -> op_test e W.update_heavy)
         Sec_harness.Registry.sec_aggregator_sweep);
  ]

let run_latency () =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  print_endline "== Uncontended operation latency (bechamel, ns/op) ==";
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg [ instance ] group in
      let results = Analyze.all ols instance raw in
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let ns =
              match Analyze.OLS.estimates ols with
              | Some (t :: _) -> t
              | _ -> nan
            in
            (name, ns) :: acc)
          results []
      in
      List.iter
        (fun (name, ns) -> Printf.printf "  %-40s %8.1f ns/op\n" name ns)
        (List.sort compare rows);
      print_newline ())
    latency_groups

let () =
  let scale =
    match Sys.getenv_opt "BENCH_SCALE" with
    | Some s -> float_of_string s
    | None -> 0.5
  in
  run_latency ();
  let opts =
    {
      Sec_harness.Experiments.default_opts with
      Sec_harness.Experiments.scale;
      csv_dir = Some "results";
    }
  in
  print_endline "\n== Paper reproduction (simulated NUMA machines) ==";
  (* Figures and tables decompose into independent simulation jobs and
     go through the sweep pool (output is bit-identical at any pool
     size); ablations, extensions and the smoke run carry no plan and
     run serially after. *)
  Sec_harness.Experiments.run_figures opts
    ~jobs:(Sec_harness.Sweep.default_jobs ())
    ~report_path:"results/REPORT.md" ();
  List.iter
    (fun (e : Sec_harness.Experiments.t) ->
      if Option.is_none e.Sec_harness.Experiments.plan then begin
        print_newline ();
        Sec_harness.Experiments.run_one opts e
      end)
    Sec_harness.Experiments.all
