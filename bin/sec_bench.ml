(* CLI driver for the reproduction experiments.

     sec_bench list                   show experiment ids
     sec_bench run fig2 [options]     regenerate one figure/table
     sec_bench all [options]          regenerate everything

   Options: --scale (duration multiplier), --csv DIR, --backend
   sim|native|both (which execution substrate to sweep; --native is a
   shorthand for both), --seed N. *)

open Cmdliner

module E = Sec_harness.Experiments

let scale_arg =
  let doc = "Duration multiplier (1.0 = default run length)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X" ~doc)

let csv_arg =
  let doc = "Directory to write CSV series into." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let backend_arg =
  let doc =
    "Execution substrate(s) to sweep: $(b,sim) (simulated NUMA machines), \
     $(b,native) (this host's domains), or $(b,both)."
  in
  let choices =
    Arg.enum [ ("sim", `Sim); ("native", `Native); ("both", `Both) ]
  in
  Arg.(value & opt choices `Sim & info [ "backend" ] ~docv:"BACKEND" ~doc)

let native_arg =
  let doc =
    "Shorthand for $(b,--backend both): append small native-domain sanity \
     sweeps (limited by this host's cores)."
  in
  Arg.(value & flag & info [ "native" ] ~doc)

let seed_arg =
  let doc = "Run seed (simulated results are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let opts_term =
  let make scale csv_dir backend native seed =
    let backend = if native then `Both else backend in
    { E.scale; csv_dir; backend; seed }
  in
  Term.(const make $ scale_arg $ csv_arg $ backend_arg $ native_arg $ seed_arg)

let run_one opts id =
  match E.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try `sec_bench list`\n" id;
      exit 1
  | Some e -> E.run_one opts e

let list_cmd =
  let run () =
    List.iter
      (fun (e : E.t) -> Printf.printf "%-18s %s\n" e.E.id e.E.title)
      E.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run opts id = run_one opts id in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment (a figure or table id)")
    Term.(const run $ opts_term $ id_arg)

let all_cmd =
  let run opts = List.iter (fun (e : E.t) -> E.run_one opts e) E.all in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run $ opts_term)

(* Ad-hoc sweeps: any algorithms, any workload, any machine profile. *)
let sweep_cmd =
  let machine_arg =
    let doc = "Machine profile: emerald, icelake, sapphire or testbox." in
    Arg.(value & opt string "emerald" & info [ "machine" ] ~docv:"NAME" ~doc)
  in
  let workload_arg =
    let doc =
      "Workload label: 100%upd, 50%upd, 10%upd, push-only or pop-only."
    in
    Arg.(value & opt string "100%upd" & info [ "workload" ] ~docv:"MIX" ~doc)
  in
  let algos_arg =
    let doc = "Comma-separated algorithm names (see `sec_bench algos`)." in
    Arg.(
      value
      & opt (list string) [ "SEC"; "TRB"; "EB" ]
      & info [ "algos" ] ~docv:"A,B,..." ~doc)
  in
  let threads_arg =
    let doc = "Comma-separated thread counts (default: the machine's sweep)." in
    Arg.(value & opt (some (list int)) None & info [ "threads" ] ~docv:"N,..." ~doc)
  in
  let run opts machine workload algos threads =
    let topology = Sec_sim.Topology.by_name machine in
    let mix = Sec_harness.Workload.by_name workload in
    List.iter
      (fun (module B : Sec_harness.Runner.BACKEND) ->
        let threads =
          match threads with Some l -> l | None -> B.sweep_threads
        in
        let rows =
          List.map
            (fun name ->
              let entry = Sec_harness.Registry.find name in
              let values =
                List.map
                  (fun n ->
                    (B.run_mix entry.Sec_harness.Registry.maker ~threads:n
                       ~mix
                       ~prefill:(B.prefill_for mix)
                       ~seed:opts.E.seed ())
                      .Sec_harness.Measurement.mops)
                  threads
              in
              (name, Array.of_list values))
            algos
        in
        Sec_harness.Report.series
          ~title:
            (Printf.sprintf "Custom sweep [%s, %s] (Mops/s)" workload B.label)
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Sec_harness.Report.csv_of_series ~dir
              ~file:(Printf.sprintf "sweep%s.csv" B.file_suffix)
              ~columns:threads ~rows)
          opts.E.csv_dir)
      (E.backends_of opts ~topology)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a custom throughput sweep (any algorithms/workload/machine)")
    Term.(const run $ opts_term $ machine_arg $ workload_arg $ algos_arg
          $ threads_arg)

(* Machine-readable baseline: pinned sim (or native) runs over every
   structure, with allocation counts and magazine hit rates; optionally
   emitted as BENCH_<backend>.json and/or compared against a checked-in
   baseline (exit 1 past the regression threshold). Wired into
   `dune build @bench-smoke` with `--against BENCH_sim.json`. *)
let bench_cmd =
  let module J = Sec_harness.Bench_json in
  let backend_arg =
    let doc = "Substrate to benchmark: $(b,sim) or $(b,native)." in
    Arg.(
      value
      & opt (Arg.enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let emit_arg =
    let doc =
      "Write the results as JSON to $(docv) (default \
       BENCH_<backend>.json when the flag is given without a value)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "emit-json" ] ~docv:"PATH" ~doc)
  in
  let against_arg =
    let doc =
      "Compare against the baseline JSON at $(docv); exit non-zero if \
       any paper-set structure's throughput regresses past the \
       threshold."
    in
    Arg.(value & opt (some string) None & info [ "against" ] ~docv:"PATH" ~doc)
  in
  let threshold_arg =
    let doc = "Allowed fractional throughput regression (default 0.10)." in
    Arg.(value & opt float 0.10 & info [ "threshold" ] ~docv:"F" ~doc)
  in
  let run seed backend emit against threshold =
    let doc =
      match backend with
      | `Sim -> J.collect_sim ~seed ()
      | `Native -> J.collect_native ~seed ()
    in
    Printf.printf "bench [%s %s, seed %d]: %d rows (%s)\n" doc.J.backend
      doc.J.machine doc.J.seed (List.length doc.J.rows) doc.J.unit_label;
    List.iter
      (fun (r : J.row) ->
        Printf.printf
          "  %-10s t=%d  ops=%-7d allocs=%-8d throughput=%.6f hit_rate=%.2f\n"
          r.J.algorithm r.J.threads r.J.ops r.J.allocs r.J.throughput
          r.J.mag_hit_rate)
      doc.J.rows;
    Option.iter
      (fun path ->
        let path =
          if path = "" then Printf.sprintf "BENCH_%s.json" doc.J.backend
          else path
        in
        J.write ~path doc;
        Printf.printf "wrote %s\n" path)
      emit;
    match against with
    | None -> ()
    | Some path -> (
        let baseline = J.read ~path in
        match J.check ~threshold ~baseline ~current:doc () with
        | [] ->
            Printf.printf
              "baseline %s: no paper-set regression beyond %.0f%%\n" path
              (100. *. threshold)
        | regs ->
            List.iter
              (fun (r : J.regression) ->
                Printf.eprintf
                  "REGRESSION %s t=%d: %.6f -> %.6f (%.1f%% below baseline)\n"
                  r.J.r_algorithm r.J.r_threads r.J.baseline r.J.current
                  (100. *. (1. -. (r.J.current /. r.J.baseline))))
              regs;
            exit 1)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the pinned benchmark baseline (throughput + allocations + \
          magazine hit rate), optionally emitting/checking \
          BENCH_<backend>.json")
    Term.(
      const run $ seed_arg $ backend_arg $ emit_arg $ against_arg
      $ threshold_arg)

let algos_cmd =
  let run () =
    List.iter
      (fun (e : Sec_harness.Registry.entry) ->
        Printf.printf "%s\n" e.Sec_harness.Registry.name)
      (Sec_harness.Registry.all @ Sec_harness.Registry.sec_aggregator_sweep)
  in
  Cmd.v
    (Cmd.info "algos" ~doc:"List available algorithm names")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "sec_bench"
      ~doc:
        "Regenerate the figures and tables of the SEC stack paper (PPoPP \
         '26) on a simulated NUMA machine"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; sweep_cmd; bench_cmd; algos_cmd ]))
