(* CLI driver for the reproduction experiments.

     sec_bench list                   show experiment ids
     sec_bench run fig2 [options]     regenerate one figure/table
     sec_bench all [options]          regenerate everything
     sec_bench check [options]        refinement-property sweep

   Options: --scale (duration multiplier), --csv DIR, --backend
   sim|native|both (which execution substrate to sweep; --native is a
   shorthand for both), --seed N. *)

open Cmdliner

module E = Sec_harness.Experiments

let scale_arg =
  let doc = "Duration multiplier (1.0 = default run length)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X" ~doc)

let csv_arg =
  let doc = "Directory to write CSV series into." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let backend_arg =
  let doc =
    "Execution substrate(s) to sweep: $(b,sim) (simulated NUMA machines), \
     $(b,native) (this host's domains), or $(b,both)."
  in
  let choices =
    Arg.enum [ ("sim", `Sim); ("native", `Native); ("both", `Both) ]
  in
  Arg.(value & opt choices `Sim & info [ "backend" ] ~docv:"BACKEND" ~doc)

let native_arg =
  let doc =
    "Shorthand for $(b,--backend both): append small native-domain sanity \
     sweeps (limited by this host's cores)."
  in
  Arg.(value & flag & info [ "native" ] ~doc)

let seed_arg =
  let doc = "Run seed (simulated results are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let opts_term =
  let make scale csv_dir backend native seed =
    let backend = if native then `Both else backend in
    { E.scale; csv_dir; backend; seed }
  in
  Term.(const make $ scale_arg $ csv_arg $ backend_arg $ native_arg $ seed_arg)

let run_one opts id =
  match E.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try `sec_bench list`\n" id;
      exit 1
  | Some e -> E.run_one opts e

let list_cmd =
  let run () =
    List.iter
      (fun (e : E.t) -> Printf.printf "%-18s %s\n" e.E.id e.E.title)
      E.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids") Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run opts id = run_one opts id in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment (a figure or table id)")
    Term.(const run $ opts_term $ id_arg)

let all_cmd =
  let run opts = List.iter (fun (e : E.t) -> E.run_one opts e) E.all in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run $ opts_term)

(* Ad-hoc sweeps: any algorithms, any workload, any machine profile. *)
let sweep_cmd =
  let machine_arg =
    let doc = "Machine profile: emerald, icelake, sapphire or testbox." in
    Arg.(value & opt string "emerald" & info [ "machine" ] ~docv:"NAME" ~doc)
  in
  let workload_arg =
    let doc =
      "Workload label: 100%upd, 50%upd, 10%upd, push-only or pop-only."
    in
    Arg.(value & opt string "100%upd" & info [ "workload" ] ~docv:"MIX" ~doc)
  in
  let algos_arg =
    let doc = "Comma-separated algorithm names (see `sec_bench algos`)." in
    Arg.(
      value
      & opt (list string) [ "SEC"; "TRB"; "EB" ]
      & info [ "algos" ] ~docv:"A,B,..." ~doc)
  in
  let threads_arg =
    let doc = "Comma-separated thread counts (default: the machine's sweep)." in
    Arg.(value & opt (some (list int)) None & info [ "threads" ] ~docv:"N,..." ~doc)
  in
  let run opts machine workload algos threads =
    let topology = Sec_sim.Topology.by_name machine in
    let mix = Sec_harness.Workload.by_name workload in
    List.iter
      (fun (module B : Sec_harness.Runner.BACKEND) ->
        let threads =
          match threads with Some l -> l | None -> B.sweep_threads
        in
        let rows =
          List.map
            (fun name ->
              let entry = Sec_harness.Registry.find name in
              let values =
                List.map
                  (fun n ->
                    (B.run_mix entry.Sec_harness.Registry.maker ~threads:n
                       ~mix
                       ~prefill:(B.prefill_for mix)
                       ~seed:opts.E.seed ())
                      .Sec_harness.Measurement.mops)
                  threads
              in
              (name, Array.of_list values))
            algos
        in
        Sec_harness.Report.series
          ~title:
            (Printf.sprintf "Custom sweep [%s, %s] (Mops/s)" workload B.label)
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Sec_harness.Report.csv_of_series ~dir
              ~file:(Printf.sprintf "sweep%s.csv" B.file_suffix)
              ~columns:threads ~rows)
          opts.E.csv_dir)
      (E.backends_of opts ~topology)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a custom throughput sweep (any algorithms/workload/machine)")
    Term.(const run $ opts_term $ machine_arg $ workload_arg $ algos_arg
          $ threads_arg)

(* One-command paper figure set: every fig2..fig12 + table cell
   regenerated as independent simulation jobs over a native domain pool,
   plus REPORT.md comparing curve shapes against EXPERIMENTS.md's
   recorded claims. Output is bit-identical for every --jobs value. *)
let figures_cmd =
  let jobs_arg =
    let doc =
      "Domain-pool size (default: the host's recommended domain count; \
       clamped to it; $(b,1) runs serially with bit-identical output)."
    in
    Arg.(value & opt int (Sec_harness.Sweep.default_jobs ())
         & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let topology_arg =
    let doc = "Only cells simulating this machine (emerald/icelake/sapphire)." in
    Arg.(value & opt (some string) None & info [ "topology" ] ~docv:"NAME" ~doc)
  in
  let only_arg =
    let doc =
      "Comma-separated figure filters: experiment ids ($(b,fig2)) or \
       single cells ($(b,fig2/100%upd))."
    in
    Arg.(value & opt (list string) [] & info [ "only" ] ~docv:"FIG,..." ~doc)
  in
  let out_arg =
    let doc = "Output directory for CSVs and REPORT.md." in
    Arg.(value & opt string "results" & info [ "csv"; "out" ] ~docv:"DIR" ~doc)
  in
  let report_arg =
    let doc = "Path for the claims report (default $(i,DIR)/REPORT.md)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"PATH" ~doc)
  in
  let no_report_arg =
    let doc = "Skip REPORT.md generation." in
    Arg.(value & flag & info [ "no-report" ] ~doc)
  in
  let digests_arg =
    let doc =
      "Also write each job's schedule digest to $(docv) (CSV) — the \
       golden the event-loop refactor tests pin."
    in
    Arg.(value & opt (some string) None & info [ "digests" ] ~docv:"PATH" ~doc)
  in
  let run scale seed jobs topology only dir report no_report digests =
    let opts =
      { E.scale; csv_dir = Some dir; backend = `Sim; seed }
    in
    Sec_harness.Report.ensure_dir dir;
    let report_path =
      if no_report then None
      else Some (Option.value report ~default:(Filename.concat dir "REPORT.md"))
    in
    match
      E.run_figures opts ~jobs ?topology ~only ?report_path
        ?digest_path:digests ()
    with
    | () -> ()
    | exception Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Regenerate the full paper figure set (CSVs + REPORT.md) with \
          simulation jobs fanned out across a domain pool")
    Term.(
      const run $ scale_arg $ seed_arg $ jobs_arg $ topology_arg $ only_arg
      $ out_arg $ report_arg $ no_report_arg $ digests_arg)

(* Machine-readable baseline: pinned sim (or native) runs over every
   structure, with allocation counts and magazine hit rates; optionally
   emitted as BENCH_<backend>.json and/or compared against a checked-in
   baseline (exit 1 past the regression threshold). Wired into
   `dune build @bench-smoke` with `--against BENCH_sim.json`. *)
let bench_cmd =
  let module J = Sec_harness.Bench_json in
  let backend_arg =
    let doc = "Substrate to benchmark: $(b,sim) or $(b,native)." in
    Arg.(
      value
      & opt (Arg.enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let emit_arg =
    let doc =
      "Write the results as JSON to $(docv) (default \
       BENCH_<backend>.json when the flag is given without a value)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "emit-json" ] ~docv:"PATH" ~doc)
  in
  let against_arg =
    let doc =
      "Compare against the baseline JSON at $(docv); exit non-zero if \
       any paper-set structure's throughput regresses past the \
       threshold."
    in
    Arg.(value & opt (some string) None & info [ "against" ] ~docv:"PATH" ~doc)
  in
  let threshold_arg =
    let doc = "Allowed fractional throughput regression (default 0.10)." in
    Arg.(value & opt float 0.10 & info [ "threshold" ] ~docv:"F" ~doc)
  in
  let events_threshold_arg =
    let doc =
      "Allowed fractional events/sec (wall-clock event-loop throughput) \
       regression (default 0.10; widen when comparing across machines of \
       different speeds)."
    in
    Arg.(value & opt float 0.10 & info [ "events-threshold" ] ~docv:"F" ~doc)
  in
  let allocs_threshold_arg =
    let doc =
      "Allowed fractional allocations-per-op regression (default 0.10; \
       guards the zero-allocation hot-path claim)."
    in
    Arg.(value & opt float 0.10 & info [ "allocs-threshold" ] ~docv:"F" ~doc)
  in
  let run seed backend emit against threshold events_threshold
      allocs_threshold =
    let doc =
      match backend with
      | `Sim -> J.collect_sim ~seed ()
      | `Native -> J.collect_native ~seed ()
    in
    Printf.printf "bench [%s %s, seed %d]: %d rows (%s)\n" doc.J.backend
      doc.J.machine doc.J.seed (List.length doc.J.rows) doc.J.unit_label;
    if doc.J.events_per_sec > 0. then
      Printf.printf "  event loop: %.3g events/sec (wall clock, best-of-12)\n"
        doc.J.events_per_sec;
    List.iter
      (fun (r : J.row) ->
        Printf.printf
          "  %-10s t=%d  ops=%-7d allocs=%-8d throughput=%.6f hit_rate=%.2f \
           depot_cas=%-6d slab_cas=%-6d\n"
          r.J.algorithm r.J.threads r.J.ops r.J.allocs r.J.throughput
          r.J.mag_hit_rate r.J.depot_cas r.J.slab_cas)
      doc.J.rows;
    Option.iter
      (fun path ->
        let path =
          if path = "" then Printf.sprintf "BENCH_%s.json" doc.J.backend
          else path
        in
        J.write ~path doc;
        Printf.printf "wrote %s\n" path)
      emit;
    match against with
    | None -> ()
    | Some path -> (
        let baseline = J.read ~path in
        match
          J.check ~threshold ~events_threshold ~allocs_threshold ~baseline
            ~current:doc ()
        with
        | [] ->
            Printf.printf
              "baseline %s: no paper-set regression beyond %.0f%% (events/sec \
               beyond %.0f%%, allocs/op beyond %.0f%%)\n"
              path (100. *. threshold)
              (100. *. events_threshold)
              (100. *. allocs_threshold)
        | regs ->
            List.iter
              (fun (r : J.regression) ->
                let pct =
                  if r.J.baseline > 0. then
                    100. *. (r.J.current -. r.J.baseline) /. r.J.baseline
                  else 0.
                in
                Printf.eprintf
                  "REGRESSION [%s] %s t=%d: %.6f -> %.6f (%+.1f%% vs baseline)\n"
                  r.J.r_metric r.J.r_algorithm r.J.r_threads r.J.baseline
                  r.J.current pct)
              regs;
            exit 1)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the pinned benchmark baseline (throughput + allocations + \
          magazine hit rate), optionally emitting/checking \
          BENCH_<backend>.json")
    Term.(
      const run $ seed_arg $ backend_arg $ emit_arg $ against_arg
      $ threshold_arg $ events_threshold_arg $ allocs_threshold_arg)

(* Refinement sweep: every registry entry (plus the pool relaxation, plus
   — under --mutants — the seeded fault-injection builds) is run through
   its default refinement properties (docs/ANALYSIS.md, "Refinement
   prong") under DPOR and the pinned weighted-random seeds. Bounded for
   CI by --budget-ms; shrunk counterexamples are written one file per
   violation under --witness-dir so the workflow can upload them. *)
let check_cmd =
  let module R = Sec_harness.Registry in
  let module Refine = Sec_refine.Refine in
  let seeds_arg =
    let doc =
      "Number of pinned weighted-random seeds to sweep (max 3, the \
       pinned set; the DPOR pass always runs)."
    in
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc =
      "Wall-clock budget in milliseconds; entries not reached in time \
       are reported as skipped (exit stays 0 for skips)."
    in
    Arg.(value & opt (some int) None & info [ "budget-ms" ] ~docv:"MS" ~doc)
  in
  let mutants_arg =
    let doc =
      "Also check the seeded mutants, expecting each to $(i,violate) its \
       refinement property with a shrunk, replayable witness."
    in
    Arg.(value & flag & info [ "mutants" ] ~doc)
  in
  let entries_arg =
    let doc = "Comma-separated entry names (default: the whole refine set)." in
    Arg.(value & opt (some (list string)) None & info [ "entries" ] ~docv:"A,B" ~doc)
  in
  let witness_dir_arg =
    let doc = "Directory to write shrunk counterexample witnesses into." in
    Arg.(value & opt (some string) None & info [ "witness-dir" ] ~docv:"DIR" ~doc)
  in
  let schedules_arg =
    let doc = "DPOR schedule cap per property." in
    Arg.(value & opt int 400 & info [ "max-schedules" ] ~docv:"N" ~doc)
  in
  let runs_arg =
    let doc = "Weighted-random runs per seed." in
    Arg.(value & opt int 24 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let write_witness dir ~slug w =
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let path = Filename.concat dir (slug ^ ".txt") in
    let oc = open_out path in
    output_string oc (Refine.witness_to_string w);
    output_char oc '\n';
    close_out oc;
    path
  in
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '_')
      s
  in
  let run seeds budget_ms mutants entries witness_dir max_schedules runs =
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        budget_ms
    in
    let past_deadline () =
      match deadline with
      | None -> false
      | Some d -> Unix.gettimeofday () > d
    in
    let seeds =
      List.filteri (fun i _ -> i < seeds) Refine.default_seeds
    in
    let pool =
      match entries with
      | None -> R.refine_set
      | Some names ->
          List.map
            (fun n ->
              match
                List.find_opt
                  (fun e -> e.R.name = n)
                  (R.refine_set @ R.mutants)
              with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown entry %S; try `sec_bench algos`\n" n;
                  exit 1)
            names
    in
    let violations = ref 0 and skipped = ref 0 and unexpected = ref 0 in
    let emit_witness tag w =
      Option.iter
        (fun dir ->
          let path = write_witness dir ~slug:(sanitize tag) w in
          Printf.printf "  witness -> %s\n%!" path)
        witness_dir
    in
    let check_one (e : R.entry) =
      if past_deadline () then begin
        incr skipped;
        Printf.printf "%-10s SKIP (budget)\n%!" e.R.name
      end
      else
        List.iter
          (fun (prop, strat, verdict) ->
            let tag = Printf.sprintf "%s/%s/%s" e.R.name prop strat in
            match verdict with
            | Refine.Refines { schedules; truncated } ->
                Printf.printf "%-40s ok (%d schedules%s)\n%!" tag schedules
                  (if truncated then ", truncated" else "")
            | Refine.Inconclusive why ->
                incr skipped;
                Printf.printf "%-40s INCONCLUSIVE: %s\n%!" tag why
            | Refine.Violates w ->
                incr violations;
                Printf.printf "%-40s VIOLATION: %s\n%!" tag w.Refine.w_kind;
                emit_witness tag w)
          (Refine.check_entry ~max_schedules ~runs ~seeds e)
    in
    (* A mutant is checked against its fault-revealing property only —
       the sweep asserts the checker catches the seeded fault under
       DPOR and every pinned seed, with a shrunk, replayed witness. *)
    let check_mutant (e : R.entry) =
      if past_deadline () then begin
        incr skipped;
        Printf.printf "%-10s SKIP (budget)\n%!" e.R.name
      end
      else
        match Refine.mutant_property e with
        | None ->
            incr skipped;
            Printf.printf "%-10s SKIP (no fault property registered)\n%!"
              e.R.name
        | Some prop ->
            let strategies =
              Refine.Dpor { max_preemptions = 1; max_schedules }
              :: List.map
                   (fun seed -> Refine.Weighted { seed; runs; stay_weight = 4 })
                   seeds
            in
            List.iter
              (fun strat ->
                let label =
                  match strat with
                  | Refine.Dpor _ -> "dpor"
                  | Refine.Weighted { seed; _ } ->
                      Printf.sprintf "weighted:0x%Lx" seed
                in
                let tag =
                  Printf.sprintf "%s/%s/%s" e.R.name prop.Refine.pname label
                in
                match Refine.check e strat prop with
                | Refine.Violates w ->
                    Printf.printf
                      "%-40s caught: %s (%d placements, replay %b)\n%!" tag
                      w.Refine.w_kind
                      (List.length w.Refine.w_schedule)
                      w.Refine.w_replayed;
                    emit_witness tag w
                | Refine.Refines _ ->
                    incr unexpected;
                    Printf.printf "%-40s UNEXPECTED PASS (mutant refines)\n%!"
                      tag
                | Refine.Inconclusive why ->
                    incr unexpected;
                    Printf.printf "%-40s INCONCLUSIVE: %s\n%!" tag why)
              strategies
    in
    List.iter check_one pool;
    if mutants then List.iter check_mutant R.mutants;
    Printf.printf
      "refinement sweep: %d violations, %d unexpected mutant passes, %d \
       skipped/inconclusive\n"
      !violations !unexpected !skipped;
    if !violations > 0 || !unexpected > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check every registry entry's refinement properties (DPOR + \
          pinned weighted-random seeds), shrinking and writing \
          counterexamples")
    Term.(
      const run $ seeds_arg $ budget_arg $ mutants_arg $ entries_arg
      $ witness_dir_arg $ schedules_arg $ runs_arg)

(* Allocator microbenchmark: the node hot path in isolation — depot vs
   slab vs off-heap arena, local round-trips and cross-domain
   (producer/consumer) frees, on either substrate. The table this
   prints is the evidence for the ISSUE's acceptance bar: the slab
   modes must issue strictly fewer cross-domain CASes than the depot
   (docs/PERF.md, "Allocator"). *)
let alloc_cmd =
  let module AB = Sec_harness.Alloc_bench in
  let backend_arg =
    let doc = "Substrate: $(b,sim) (deterministic) or $(b,native)." in
    Arg.(
      value
      & opt (Arg.enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let threads_arg =
    let doc = "Worker count (the remote phase pairs them up; keep even)." in
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc)
  in
  let iters_arg =
    let doc = "Bursts per thread (fixed work, not timed)." in
    Arg.(value & opt int AB.default_iters & info [ "iters" ] ~docv:"N" ~doc)
  in
  let burst_arg =
    let doc =
      "Nodes per burst (keep above the magazine capacity of 64 so every \
       burst exercises the slow path)."
    in
    Arg.(value & opt int AB.default_burst & info [ "burst" ] ~docv:"N" ~doc)
  in
  let run seed backend threads iters burst =
    let measure ~mode ~phase =
      match backend with
      | `Sim -> AB.run_sim ~threads ~iters ~burst ~seed ~mode ~phase ()
      | `Native -> AB.run_native ~threads ~iters ~burst ~seed ~mode ~phase ()
    in
    let results =
      List.concat_map
        (fun phase ->
          List.map
            (fun mode -> measure ~mode ~phase)
            [ AB.Depot; AB.Slab; AB.Arena ])
        [ AB.Local; AB.Remote ]
    in
    let backend_label =
      match backend with `Sim -> "sim" | `Native -> "native"
    in
    Printf.printf
      "alloc bench [%s, %d threads, %d iters x %d burst, seed %d]\n"
      backend_label threads iters burst seed;
    Printf.printf "  %-7s %-7s %9s %14s %10s %8s %7s %8s %5s\n" "phase"
      "mode" "ops" "per-op" "cross-CAS" "retries" "fresh" "batches" "occ";
    List.iter
      (fun (r : AB.result) ->
        Printf.printf "  %-7s %-7s %9d %14s %10d %8d %7d %8d %5.2f\n"
          (AB.phase_to_string r.AB.r_phase)
          (AB.mode_to_string r.AB.r_mode)
          r.AB.ops
          (Printf.sprintf "%.1f %s" r.AB.per_op r.AB.unit_label)
          r.AB.cross_cas r.AB.cross_cas_retries r.AB.fresh r.AB.remote_batches
          r.AB.occupancy)
      results;
    (* The acceptance comparison, stated explicitly per phase. *)
    List.iter
      (fun phase ->
        let cas mode =
          let r =
            List.find
              (fun (r : AB.result) -> r.AB.r_mode = mode && r.AB.r_phase = phase)
              results
          in
          r.AB.cross_cas
        in
        let d = cas AB.Depot and s = cas AB.Slab in
        Printf.printf "  %s: slab %d vs depot %d cross-domain CASes -> %s\n"
          (AB.phase_to_string phase)
          s d
          (if s < d then "slab strictly fewer (ok)"
           else "slab NOT fewer (investigate)"))
      [ AB.Local; AB.Remote ]
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:
         "Microbenchmark the node allocators (depot vs slab vs off-heap \
          arena): alloc/free round-trip cost, remote-free throughput and \
          cross-domain CAS counts")
    Term.(
      const run $ seed_arg $ backend_arg $ threads_arg $ iters_arg $ burst_arg)

let algos_cmd =
  let run () =
    List.iter
      (fun (e : Sec_harness.Registry.entry) ->
        Printf.printf "%s\n" e.Sec_harness.Registry.name)
      (Sec_harness.Registry.all @ Sec_harness.Registry.slab_set
     @ Sec_harness.Registry.sec_aggregator_sweep)
  in
  Cmd.v
    (Cmd.info "algos" ~doc:"List available algorithm names")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "sec_bench"
      ~doc:
        "Regenerate the figures and tables of the SEC stack paper (PPoPP \
         '26) on a simulated NUMA machine"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; figures_cmd; sweep_cmd; bench_cmd;
            alloc_cmd; check_cmd; algos_cmd ]))
