(* Command-line driver for the discipline lint.

   Default mode: walk the given files and directories (recursively,
   *.ml only), print every diagnostic as file:line:col, exit non-zero if
   any were found. Wired into the build as [dune build @lint], which
   [dune runtest] depends on — so a discipline violation fails the
   tier-1 check. With [--json], diagnostics are emitted as a JSON array
   of {file, line, col, rule, message} objects on stdout (exit status
   unchanged), for editor and CI integrations.

   Self-test mode: [sec_lint --selftest <dir>] checks the fixture files
   under <dir> (discipline scope forced on) against their inline
   "(* EXPECT rule *)" markers, failing on any missing or unexpected
   diagnostic. Wired in as [dune build @lint-selftest]; it keeps the
   rules honest — a rule that silently stops firing breaks the build,
   same as one that starts flagging clean idioms. *)

let rec gather path acc =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "sec_lint: no such file or directory: %s\n" path;
    exit 2
  end
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> gather (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* Minimal JSON string escaping: the characters RFC 8259 requires. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json diagnostics =
  print_string "[";
  List.iteri
    (fun i (d : Sec_lint_rules.Lint_rules.diagnostic) ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
         \"message\": \"%s\"}"
        (json_escape d.file) d.line d.col (json_escape d.rule)
        (json_escape d.message))
    diagnostics;
  if diagnostics <> [] then print_string "\n";
  print_string "]\n"

let lint ~json files =
  let diagnostics = List.concat_map Sec_lint_rules.Lint_rules.check_file files in
  if json then print_json diagnostics
  else
    List.iter
      (fun d ->
        print_endline (Sec_lint_rules.Lint_rules.diagnostic_to_string d))
      diagnostics;
  match diagnostics with
  | [] ->
      if not json then
        Printf.printf "sec_lint: %d files clean\n" (List.length files);
      exit 0
  | ds ->
      Printf.eprintf "sec_lint: %d diagnostic(s)\n" (List.length ds);
      exit 1

(* --- self-test mode ------------------------------------------------ *)

(* "(* EXPECT rule-name *)" anywhere in [line]. *)
let expectation_of_line line =
  let marker = "EXPECT " in
  let ll = String.length line and lm = String.length marker in
  let rec find i =
    if i + lm > ll then None
    else if String.sub line i lm = marker then begin
      let stop = ref (i + lm) in
      while
        !stop < ll && line.[!stop] <> ' ' && line.[!stop] <> '*'
        && line.[!stop] <> '\r'
      do
        incr stop
      done;
      if !stop > i + lm then Some (String.sub line (i + lm) (!stop - i - lm))
      else None
    end
    else find (i + 1)
  in
  find 0

let expectations_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lnum acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match expectation_of_line line with
            | Some rule -> loop (lnum + 1) ((lnum, rule) :: acc)
            | None -> loop (lnum + 1) acc)
      in
      loop 1 [])

let selftest dir =
  let files = List.rev (gather dir []) in
  if files = [] then begin
    Printf.eprintf "sec_lint --selftest: no .ml fixtures under %s\n" dir;
    exit 2
  end;
  (* Fixtures are checked as if they lived in an algorithm directory. *)
  let scope =
    { Sec_lint_rules.Lint_rules.check_discipline = true; allow_obj = false }
  in
  let failures = ref 0 in
  let expected_total = ref 0 in
  List.iter
    (fun file ->
      let expected = expectations_of_file file in
      expected_total := !expected_total + List.length expected;
      let got =
        List.map
          (fun (d : Sec_lint_rules.Lint_rules.diagnostic) -> (d.line, d.rule))
          (Sec_lint_rules.Lint_rules.check_file ~scope file)
      in
      List.iter
        (fun (line, rule) ->
          if not (List.mem (line, rule) got) then begin
            incr failures;
            Printf.printf "MISSING  %s:%d: expected [%s], lint was silent\n"
              file line rule
          end)
        expected;
      List.iter
        (fun (line, rule) ->
          if not (List.mem (line, rule) expected) then begin
            incr failures;
            Printf.printf
              "SPURIOUS %s:%d: lint reported [%s], no EXPECT marker\n" file
              line rule
          end)
        got)
    files;
  if !failures = 0 then begin
    Printf.printf "sec_lint --selftest: %d fixtures, %d expectations, all ok\n"
      (List.length files) !expected_total;
    exit 0
  end
  else begin
    Printf.eprintf "sec_lint --selftest: %d mismatch(es)\n" !failures;
    exit 1
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  match args with
  | [] | [ "--selftest" ] ->
      prerr_endline
        "usage: sec_lint [--json] <file-or-directory>... | sec_lint \
         --selftest <dir>";
      exit 2
  | [ "--selftest"; dir ] -> selftest dir
  | args -> lint ~json (List.concat_map (fun p -> List.rev (gather p [])) args)
