(* Command-line driver for the discipline lint.

   Default mode: walk the given files and directories (recursively,
   *.ml only), run the interprocedural summary analysis
   (Sec_summary.Summary) and the path-sensitive typestate analysis
   (Sec_typestate.Typestate) over the whole set, lint each file with
   the composed facts (rules 1-9, obligations discharged across call
   boundaries and by CFG guard-depth proofs), add the rule-10
   plain-publication and rule 11-13 typestate diagnostics, print every
   diagnostic as file:line:col, and exit non-zero if any were found.
   Wired into the build as [dune build @lint], which [dune runtest]
   depends on — so a discipline violation fails the tier-1 check.
   Output modes: [--json] emits a JSON array of {file, line, col,
   rule, message}; [--sarif] emits a SARIF 2.1.0 document for CI
   code-scanning upload (exit status unchanged).

   Audit mode: [sec_lint --audit <dir>] rechecks every suppression
   annotation with that one occurrence treated as absent; annotations
   whose removal leaves the diagnostic set unchanged are stale and
   reported (exit 1), together with per-rule suppression counts.
   [@publication_ok] is counted but not staleness-probed (its rule
   lives in the summary analysis, not the syntactic recheck);
   [@await_ok] is probed by the syntactic recheck AND by the typestate
   rule-12 reclassification, merged by disjunction — an annotation
   that keeps a wait out of the stuck class of a declared-lock_free
   module is live even when rules 6/7 no longer need it.

   Self-test mode: [sec_lint --selftest <dir>] checks the fixture files
   under <dir> (discipline scope forced on, summaries and typestate
   built over the fixture set) against their inline
   "(* EXPECT rule *)" markers, failing on any missing or unexpected
   diagnostic — and against a pinned total marker count, so silently
   dropping a fixture (or its markers) breaks the build too. Wired in
   as [dune build @lint-selftest].

   Explain mode: [sec_lint --explain <rule>] prints the rule's
   one-paragraph documentation and its suppression annotation (if it
   has one). *)

module L = Sec_lint_rules.Lint_rules
module Summary = Sec_summary.Summary
module Typestate = Sec_typestate.Typestate

let rec gather path acc =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "sec_lint: no such file or directory: %s\n" path;
    exit 2
  end
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> gather (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* Minimal JSON string escaping: the characters RFC 8259 requires. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json diagnostics =
  print_string "[";
  List.iteri
    (fun i (d : L.diagnostic) ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
         \"message\": \"%s\"}"
        (json_escape d.file) d.line d.col (json_escape d.rule)
        (json_escape d.message))
    diagnostics;
  if diagnostics <> [] then print_string "\n";
  print_string "]\n"

(* Lint [files] as one corpus: one summary environment, one typestate
   analysis, per-file composed facts, plus the whole-environment
   rule-10 and rule 11-13 diagnostics. *)
let check_corpus ?scope files =
  let env = Summary.analyze ?scope files in
  let ts = Typestate.analyze ~summary:env ?scope files in
  let facts file =
    Typestate.facts_with ts ~file (Summary.facts_for env ~file)
  in
  let diagnostics =
    List.concat_map (fun file -> L.check_file ?scope ~facts:(facts file) file) files
    @ Summary.publication_diagnostics env
    @ Typestate.diagnostics ts
  in
  ( env,
    ts,
    List.sort
      (fun (a : L.diagnostic) b ->
        compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
      diagnostics )

type output = Text | Json | Sarif

let lint ~output files =
  let _env, _ts, diagnostics = check_corpus files in
  (match output with
  | Json -> print_json diagnostics
  | Sarif -> print_string (L.sarif_of_diagnostics diagnostics)
  | Text ->
      List.iter (fun d -> print_endline (L.diagnostic_to_string d)) diagnostics);
  match diagnostics with
  | [] ->
      if output = Text then
        Printf.printf "sec_lint: %d files clean\n" (List.length files);
      exit 0
  | ds ->
      Printf.eprintf "sec_lint: %d diagnostic(s)\n" (List.length ds);
      exit 1

(* --- audit mode ---------------------------------------------------- *)

let audit files =
  let env = Summary.analyze files in
  let ts = Typestate.analyze ~summary:env files in
  let facts file =
    Typestate.facts_with ts ~file (Summary.facts_for env ~file)
  in
  let entries =
    List.concat_map
      (fun file ->
        List.map
          (fun (e : L.audit_entry) ->
            (* the typestate rule-12 probe: an [@await_ok] whose removal
               flips a module's static progress verdict is live even if
               the syntactic recheck no longer needs it *)
            let e =
              if e.audit_annotation.ann_name = "await_ok" && not e.audit_live
              then
                match
                  Typestate.audit_await ts ~file
                    ~line:e.audit_annotation.ann_line
                    ~col:e.audit_annotation.ann_col
                with
                | Some true -> { e with audit_live = true }
                | _ -> e
              else e
            in
            (file, e))
          (L.audit_file ~facts:(facts file) file))
      files
  in
  let count name =
    List.length
      (List.filter
         (fun (_, (e : L.audit_entry)) -> e.audit_annotation.ann_name = name)
         entries)
  in
  Printf.printf "suppression annotations by rule:\n";
  List.iter
    (fun (name, rules) ->
      Printf.printf "  %-16s %3d  (suppresses %s)\n" ("[@" ^ name ^ "]")
        (count name)
        (String.concat ", " rules))
    L.auditable_annotations;
  let stale =
    List.filter (fun (_, (e : L.audit_entry)) -> not e.audit_live) entries
  in
  List.iter
    (fun (file, (e : L.audit_entry)) ->
      Printf.printf
        "STALE %s:%d:%d: [@%s \"%s\"] suppresses nothing the analysis still \
         flags; delete it\n"
        file e.audit_annotation.ann_line e.audit_annotation.ann_col
        e.audit_annotation.ann_name e.audit_annotation.ann_reason)
    stale;
  if stale = [] then begin
    Printf.printf "sec_lint --audit: %d annotations, none stale\n"
      (List.length entries);
    exit 0
  end
  else begin
    Printf.eprintf "sec_lint --audit: %d stale annotation(s)\n"
      (List.length stale);
    exit 1
  end

(* --- explain mode -------------------------------------------------- *)

(* (rule, suppression annotation or None, one-paragraph doc). *)
let rule_docs =
  [
    ( "mutable-field",
      Some "plain_ok",
      "Rule 1. Algorithm modules must not declare [mutable] record \
       fields: a plain store to shared state is invisible to the \
       memory-model machinery and the dynamic race detector's \
       publication analysis. Use an Atomic.t cell, or annotate the \
       field [@plain_ok \"publication argument\"] explaining why the \
       store is safely published (e.g. written only before the value \
       escapes its constructor)." );
    ( "unpadded-atomic",
      Some "unpadded_ok",
      "Rule 2. Atomics stored in long-lived shared blocks (records, \
       arrays) share cache lines with their neighbours, so independent \
       cells false-share. Allocate them with make_padded, or annotate \
       [@unpadded_ok \"reason\"] when the cells are deliberately \
       colocated (e.g. always written together by one owner)." );
    ( "obj-confinement",
      None,
      "Rule 3. Obj.* escapes the type system and is confined to \
       lib/prim/padding.ml, the one place the repo deliberately plays \
       layout tricks. There is no suppression annotation: move the \
       code, or extend the padding primitive." );
    ( "ebr-guard",
      Some "unguarded_ok",
      "Rule 4. In discipline modules referencing Ebr, reads of node \
       record fields must happen inside a guard extent — otherwise a \
       concurrent retire/sweep can free the node under the reader. The \
       syntactic check accepts a lexical guard call; the summary \
       analysis discharges reads in helpers whose every call site is \
       guarded; the typestate analysis discharges reads at positions \
       proved guard-depth >= 1 on every CFG path. Otherwise annotate \
       [@unguarded_ok \"reason\"]." );
    ( "retire-once",
      Some "retire_ok",
      "Rule 5. A node may be retired exactly once, by the thread that \
       unlinked it; the syntactic witness is a retire call inside a \
       branch selected by a compare_and_set. Retires elsewhere need \
       [@retire_ok \"reason\"] (e.g. a drain loop that owns the whole \
       structure)." );
    ( "retry-discipline",
      Some "await_ok",
      "Rule 6. A retry loop on shared atomic state (a while on an \
       atomic read, or a recursive CAS/exchange loop) must pace itself \
       with a Backoff/relax/yield call, or carry [@await_ok \"why the \
       wait is bounded\"]. Unpaced spinning saturates the interconnect \
       exactly when the system is most contended." );
    ( "progress-class",
      Some "await_ok",
      "Rule 7. A module binding both push and pop must declare \
       [@@@progress \"lock_free\"] or [@@@progress \"blocking\"], and a \
       lock_free module must not wait unboundedly on another thread's \
       write (spin_until/spin_while outside an [@await_ok] extent). The \
       declaration is cross-checked three ways: by this rule, by the \
       dynamic suspension classifier, and by the typestate rule 12 \
       static verdict." );
    ( "fresh-node",
      Some "fresh_ok",
      "Rule 8. In modules recycling nodes through Magazine, node record \
       literals must be the magazine-miss fallback (Mag.alloc first); a \
       literal elsewhere silently defeats recycling. Annotate \
       [@fresh_ok \"reason\"] for deliberate fresh allocations \
       (initialisation, sentinel nodes)." );
    ( "spec-class",
      None,
      "Rule 9. Modules recycling nodes must declare the sequential spec \
       their histories refine — [@@@spec \"stack\"] (strict LIFO) or \
       [@@@spec \"pool\"] (order-relaxed bag) — matching the registry \
       entry's spec field, which selects the refinement properties \
       checked dynamically. No suppression: the declaration is the \
       point." );
    ( "plain-publication",
      Some "publication_ok",
      "Rule 10. A get x ... set x read-modify-plain-write chain on an \
       atomic cell written by two or more entry points, with no \
       ordering RMW between the read and the plain store, is a lost \
       update waiting to happen — the static mirror of the dynamic \
       detector's write-write-race model. Computed over the \
       interprocedural summaries (the chain may span helper calls). \
       Annotate [@publication_ok \"reason\"] when the store is a \
       single-writer publication." );
    ( "guard-balance",
      None,
      "Rule 11. Direct EBR enter/exit pairs must balance on every CFG \
       path, including exception edges: an exit at depth zero, a path \
       that returns or raises with the epoch still pinned, and paths \
       that disagree on the depth are each diagnosed. There is no \
       suppression annotation — an unbalanced guard is a leak (the \
       epoch never advances past the stuck reservation) or a \
       use-after-unpin; fix the control flow, or use the exception-safe \
       Ebr.guard wrapper." );
    ( "loop-progress",
      Some "await_ok",
      "Rule 12. Every loop is classified bounded (for-loops, monotone \
       counters with a comparison exit, deadline checks reading now_ns, \
       no shared atomic state, or an author-certified [@await_ok] \
       extent), cas-retry (retries that update shared state or chase \
       freshly read links) or stuck-spin (waits only another thread's \
       write can end). A module whose top-level operations can reach a \
       stuck wait through the resolved call graph is statically \
       Blocking; a [@@@progress] declaration disagreeing with the \
       verdict is diagnosed at the declaration. [@await_ok] moves a \
       wait into the bounded class — and the audit re-proves each \
       occurrence by reclassifying without it." );
    ( "protocol",
      None,
      "Rule 13. [@@@protocol \"name: s1 -kind:field-> s2; ...\"] \
       declares a state machine over the file's atomic fields (kind is \
       read/write/rmw; field is the last path component of the accessed \
       cell; the first-listed source state is the start state). Every \
       top-level function is checked from the start state over all CFG \
       paths, stepping through same-file calls; an access to a declared \
       (kind, field) event with no enabled transition from any current \
       state is a violation at that access. No suppression annotation — \
       fix the access order, or fix the automaton if the protocol \
       genuinely changed." );
    ( "unknown-annotation",
      None,
      "Hygiene rule. An annotation name ending in _ok that is not one \
       of the recognised suppression annotations (a typo like \
       [@awiat_ok]) suppresses nothing while looking like it does; \
       likewise a floating declaration within edit distance 2 of \
       progress/spec/protocol ([@@@progess]). Both are diagnosed with \
       the nearest recognised name. Fix the spelling." );
    ( "parse-error",
      None,
      "Reported when a file under lint does not parse; the analyses \
       contribute nothing for that file. Fix the syntax error." );
  ]

let explain rule =
  match List.find_opt (fun (r, _, _) -> r = rule) rule_docs with
  | Some (r, suppress, doc) ->
      Printf.printf "[%s]\n%s\n" r doc;
      (match suppress with
      | Some ann ->
          Printf.printf "suppression annotation: [@%s \"reason\"]\n" ann
      | None -> Printf.printf "suppression annotation: none\n");
      exit 0
  | None ->
      Printf.eprintf "sec_lint --explain: unknown rule %S\navailable: %s\n"
        rule
        (String.concat ", " (List.map (fun (r, _, _) -> r) rule_docs));
      exit 2

(* --- self-test mode ------------------------------------------------ *)

(* The total number of EXPECT markers across the fixture corpus. A
   fixture (or a marker) silently dropping out of the corpus would
   otherwise pass the per-file check vacuously; update this pin when
   adding or removing fixture expectations. *)
let pinned_expect_total = 28

(* "(* EXPECT rule-name *)" anywhere in [line]. *)
let expectation_of_line line =
  let marker = "EXPECT " in
  let ll = String.length line and lm = String.length marker in
  let rec find i =
    if i + lm > ll then None
    else if String.sub line i lm = marker then begin
      let stop = ref (i + lm) in
      while
        !stop < ll && line.[!stop] <> ' ' && line.[!stop] <> '*'
        && line.[!stop] <> '\r'
      do
        incr stop
      done;
      if !stop > i + lm then Some (String.sub line (i + lm) (!stop - i - lm))
      else None
    end
    else find (i + 1)
  in
  find 0

let expectations_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lnum acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match expectation_of_line line with
            | Some rule -> loop (lnum + 1) ((lnum, rule) :: acc)
            | None -> loop (lnum + 1) acc)
      in
      loop 1 [])

let selftest dir =
  let files = List.rev (gather dir []) in
  if files = [] then begin
    Printf.eprintf "sec_lint --selftest: no .ml fixtures under %s\n" dir;
    exit 2
  end;
  (* Fixtures are checked as if they lived in an algorithm directory,
     with summaries and typestate built over the whole fixture set so
     interprocedural fixtures exercise the facts and rule 10-13
     paths. *)
  let scope = { L.check_discipline = true; allow_obj = false } in
  let _env, _ts, diagnostics = check_corpus ~scope files in
  let failures = ref 0 in
  let expected_total = ref 0 in
  List.iter
    (fun file ->
      let expected = expectations_of_file file in
      expected_total := !expected_total + List.length expected;
      let got =
        List.filter_map
          (fun (d : L.diagnostic) ->
            if d.file = file then Some (d.line, d.rule) else None)
          diagnostics
      in
      List.iter
        (fun (line, rule) ->
          if not (List.mem (line, rule) got) then begin
            incr failures;
            Printf.printf "MISSING  %s:%d: expected [%s], lint was silent\n"
              file line rule
          end)
        expected;
      List.iter
        (fun (line, rule) ->
          if not (List.mem (line, rule) expected) then begin
            incr failures;
            Printf.printf
              "SPURIOUS %s:%d: lint reported [%s], no EXPECT marker\n" file
              line rule
          end)
        got)
    files;
  if !expected_total <> pinned_expect_total then begin
    incr failures;
    Printf.printf
      "PIN      corpus has %d EXPECT markers, pinned total is %d — update \
       pinned_expect_total in bin/sec_lint.ml if the change is deliberate\n"
      !expected_total pinned_expect_total
  end;
  if !failures = 0 then begin
    Printf.printf "sec_lint --selftest: %d fixtures, %d expectations, all ok\n"
      (List.length files) !expected_total;
    exit 0
  end
  else begin
    Printf.eprintf "sec_lint --selftest: %d mismatch(es)\n" !failures;
    exit 1
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let output =
    if List.mem "--sarif" args then Sarif
    else if List.mem "--json" args then Json
    else Text
  in
  let audit_mode = List.mem "--audit" args in
  let args =
    List.filter
      (fun a -> a <> "--json" && a <> "--sarif" && a <> "--audit")
      args
  in
  let usage () =
    prerr_endline
      "usage: sec_lint [--json|--sarif] <file-or-directory>...\n\
      \       sec_lint --audit <file-or-directory>...\n\
      \       sec_lint --selftest <dir>\n\
      \       sec_lint --explain <rule>";
    exit 2
  in
  match args with
  | [] | [ "--selftest" ] | [ "--explain" ] -> usage ()
  | [ "--selftest"; dir ] -> selftest dir
  | [ "--explain"; rule ] -> explain rule
  | args ->
      let files = List.concat_map (fun p -> List.rev (gather p [])) args in
      if audit_mode then audit files else lint ~output files
