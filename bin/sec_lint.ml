(* Command-line driver for the discipline lint: walk the given files and
   directories (recursively, *.ml only), print every diagnostic as
   file:line:col, exit non-zero if any were found. Wired into the build
   as [dune build @lint], which [dune runtest] depends on — so a
   discipline violation fails the tier-1 check. *)

let rec gather path acc =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "sec_lint: no such file or directory: %s\n" path;
    exit 2
  end
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> gather (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: sec_lint <file-or-directory>...";
    exit 2
  end;
  let files = List.concat_map (fun p -> List.rev (gather p [])) args in
  let diagnostics = List.concat_map Sec_lint_rules.Lint_rules.check_file files in
  List.iter
    (fun d ->
      print_endline (Sec_lint_rules.Lint_rules.diagnostic_to_string d))
    diagnostics;
  match diagnostics with
  | [] ->
      Printf.printf "sec_lint: %d files clean\n" (List.length files);
      exit 0
  | ds ->
      Printf.eprintf "sec_lint: %d diagnostic(s)\n" (List.length ds);
      exit 1
