(* Command-line driver for the discipline lint.

   Default mode: walk the given files and directories (recursively,
   *.ml only), run the interprocedural summary analysis
   (Sec_summary.Summary) over the whole set, lint each file with the
   resulting facts (rules 1-9, obligations discharged across call
   boundaries), add the rule-10 plain-publication diagnostics, print
   every diagnostic as file:line:col, and exit non-zero if any were
   found. Wired into the build as [dune build @lint], which
   [dune runtest] depends on — so a discipline violation fails the
   tier-1 check. Output modes: [--json] emits a JSON array of
   {file, line, col, rule, message}; [--sarif] emits a SARIF 2.1.0
   document for CI code-scanning upload (exit status unchanged).

   Audit mode: [sec_lint --audit <dir>] rechecks every suppression
   annotation with that one occurrence treated as absent; annotations
   whose removal leaves the diagnostic set unchanged are stale and
   reported (exit 1), together with per-rule suppression counts.
   [@publication_ok] is counted but not staleness-probed (its rule
   lives in the summary analysis, not the syntactic recheck).

   Self-test mode: [sec_lint --selftest <dir>] checks the fixture files
   under <dir> (discipline scope forced on, summaries built over the
   fixture set) against their inline "(* EXPECT rule *)" markers,
   failing on any missing or unexpected diagnostic. Wired in as
   [dune build @lint-selftest]; it keeps the rules honest — a rule that
   silently stops firing breaks the build, same as one that starts
   flagging clean idioms. *)

module L = Sec_lint_rules.Lint_rules
module Summary = Sec_summary.Summary

let rec gather path acc =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "sec_lint: no such file or directory: %s\n" path;
    exit 2
  end
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> gather (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* Minimal JSON string escaping: the characters RFC 8259 requires. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json diagnostics =
  print_string "[";
  List.iteri
    (fun i (d : L.diagnostic) ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
         \"message\": \"%s\"}"
        (json_escape d.file) d.line d.col (json_escape d.rule)
        (json_escape d.message))
    diagnostics;
  if diagnostics <> [] then print_string "\n";
  print_string "]\n"

(* Lint [files] as one corpus: one summary environment, per-file facts,
   plus the whole-environment rule-10 diagnostics. *)
let check_corpus ?scope files =
  let env = Summary.analyze ?scope files in
  let diagnostics =
    List.concat_map
      (fun file ->
        L.check_file ?scope ~facts:(Summary.facts_for env ~file) file)
      files
    @ Summary.publication_diagnostics env
  in
  ( env,
    List.sort
      (fun (a : L.diagnostic) b ->
        compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
      diagnostics )

type output = Text | Json | Sarif

let lint ~output files =
  let _env, diagnostics = check_corpus files in
  (match output with
  | Json -> print_json diagnostics
  | Sarif -> print_string (L.sarif_of_diagnostics diagnostics)
  | Text ->
      List.iter (fun d -> print_endline (L.diagnostic_to_string d)) diagnostics);
  match diagnostics with
  | [] ->
      if output = Text then
        Printf.printf "sec_lint: %d files clean\n" (List.length files);
      exit 0
  | ds ->
      Printf.eprintf "sec_lint: %d diagnostic(s)\n" (List.length ds);
      exit 1

(* --- audit mode ---------------------------------------------------- *)

let audit files =
  let env = Summary.analyze files in
  let entries =
    List.concat_map
      (fun file ->
        List.map
          (fun e -> (file, e))
          (L.audit_file ~facts:(Summary.facts_for env ~file) file))
      files
  in
  let count name =
    List.length
      (List.filter
         (fun (_, (e : L.audit_entry)) -> e.audit_annotation.ann_name = name)
         entries)
  in
  Printf.printf "suppression annotations by rule:\n";
  List.iter
    (fun (name, rules) ->
      Printf.printf "  %-16s %3d  (suppresses %s)\n" ("[@" ^ name ^ "]")
        (count name)
        (String.concat ", " rules))
    L.auditable_annotations;
  let stale =
    List.filter (fun (_, (e : L.audit_entry)) -> not e.audit_live) entries
  in
  List.iter
    (fun (file, (e : L.audit_entry)) ->
      Printf.printf
        "STALE %s:%d:%d: [@%s \"%s\"] suppresses nothing the analysis still \
         flags; delete it\n"
        file e.audit_annotation.ann_line e.audit_annotation.ann_col
        e.audit_annotation.ann_name e.audit_annotation.ann_reason)
    stale;
  if stale = [] then begin
    Printf.printf "sec_lint --audit: %d annotations, none stale\n"
      (List.length entries);
    exit 0
  end
  else begin
    Printf.eprintf "sec_lint --audit: %d stale annotation(s)\n"
      (List.length stale);
    exit 1
  end

(* --- self-test mode ------------------------------------------------ *)

(* "(* EXPECT rule-name *)" anywhere in [line]. *)
let expectation_of_line line =
  let marker = "EXPECT " in
  let ll = String.length line and lm = String.length marker in
  let rec find i =
    if i + lm > ll then None
    else if String.sub line i lm = marker then begin
      let stop = ref (i + lm) in
      while
        !stop < ll && line.[!stop] <> ' ' && line.[!stop] <> '*'
        && line.[!stop] <> '\r'
      do
        incr stop
      done;
      if !stop > i + lm then Some (String.sub line (i + lm) (!stop - i - lm))
      else None
    end
    else find (i + 1)
  in
  find 0

let expectations_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lnum acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match expectation_of_line line with
            | Some rule -> loop (lnum + 1) ((lnum, rule) :: acc)
            | None -> loop (lnum + 1) acc)
      in
      loop 1 [])

let selftest dir =
  let files = List.rev (gather dir []) in
  if files = [] then begin
    Printf.eprintf "sec_lint --selftest: no .ml fixtures under %s\n" dir;
    exit 2
  end;
  (* Fixtures are checked as if they lived in an algorithm directory,
     with summaries built over the whole fixture set so interprocedural
     fixtures exercise the facts and rule-10 paths. *)
  let scope = { L.check_discipline = true; allow_obj = false } in
  let _env, diagnostics = check_corpus ~scope files in
  let failures = ref 0 in
  let expected_total = ref 0 in
  List.iter
    (fun file ->
      let expected = expectations_of_file file in
      expected_total := !expected_total + List.length expected;
      let got =
        List.filter_map
          (fun (d : L.diagnostic) ->
            if d.file = file then Some (d.line, d.rule) else None)
          diagnostics
      in
      List.iter
        (fun (line, rule) ->
          if not (List.mem (line, rule) got) then begin
            incr failures;
            Printf.printf "MISSING  %s:%d: expected [%s], lint was silent\n"
              file line rule
          end)
        expected;
      List.iter
        (fun (line, rule) ->
          if not (List.mem (line, rule) expected) then begin
            incr failures;
            Printf.printf
              "SPURIOUS %s:%d: lint reported [%s], no EXPECT marker\n" file
              line rule
          end)
        got)
    files;
  if !failures = 0 then begin
    Printf.printf "sec_lint --selftest: %d fixtures, %d expectations, all ok\n"
      (List.length files) !expected_total;
    exit 0
  end
  else begin
    Printf.eprintf "sec_lint --selftest: %d mismatch(es)\n" !failures;
    exit 1
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let output =
    if List.mem "--sarif" args then Sarif
    else if List.mem "--json" args then Json
    else Text
  in
  let audit_mode = List.mem "--audit" args in
  let args =
    List.filter (fun a -> a <> "--json" && a <> "--sarif" && a <> "--audit") args
  in
  let usage () =
    prerr_endline
      "usage: sec_lint [--json|--sarif] <file-or-directory>...\n\
      \       sec_lint --audit <file-or-directory>...\n\
      \       sec_lint --selftest <dir>";
    exit 2
  in
  match args with
  | [] | [ "--selftest" ] -> usage ()
  | [ "--selftest"; dir ] -> selftest dir
  | args ->
      let files = List.concat_map (fun p -> List.rev (gather p [])) args in
      if audit_mode then audit files else lint ~output files
