(* Tests for the interprocedural atomic-effect summaries
   (lib/analysis/summary): fixpoint convergence on call cycles, the
   context fixpoint discharging lint obligations across calls, rule 10
   (plain-publication) in both its intra- and interprocedural forms,
   the differential against the purely syntactic lint on the seeded
   fixtures, and the cross-validation of the static may-write set
   against the dynamic race detector on the mutant corpus. *)

module L = Sec_lint_rules.Lint_rules
module Summary = Sec_summary.Summary
module Explore = Sec_sim.Explore
module RD = Sec_analysis.Race_detector
module SP = Sec_sim.Sim.Prim
module Registry = Sec_harness.Registry

let discipline_scope = { L.check_discipline = true; allow_obj = false }

let analyze srcs = Summary.analyze_sources ~scope:discipline_scope srcs

(* Find the unique function key with the given suffix, so the tests do
   not hard-code the namespace mangling. *)
let key_of env suffix =
  match
    List.filter
      (fun k -> Filename.check_suffix k suffix)
      (Summary.functions env)
  with
  | [ k ] -> k
  | [] -> Alcotest.failf "no function key ends in %S" suffix
  | ks -> Alcotest.failf "ambiguous suffix %S: %s" suffix (String.concat ", " ks)

let rules ds = List.map (fun (d : L.diagnostic) -> d.L.rule) ds

(* -------------------------------------------------------------------- *)
(* Effect fixpoint on call cycles *)

(* Mutual recursion: the pacing effect in [g] must reach [f] (and vice
   versa for the atomic read), which takes at least two bottom-up
   rounds plus the stabilisation check. *)
let test_cycle_effects_converge () =
  let src =
    "module A = Atomic\n\
     type t = { flag : bool A.t }\n\
     let rec f t n = if n = 0 then () else g t (n - 1)\n\
     and g t n =\n\
    \  Prim.relax 1;\n\
    \  if A.get t.flag then f t n\n"
  in
  let env = analyze [ ("cycle.ml", src) ] in
  let f = Summary.total_effects env (key_of env ".f") in
  let g = Summary.total_effects env (key_of env ".g") in
  Alcotest.(check bool) "f paces through g" true f.Summary.paces;
  Alcotest.(check bool) "g paces directly" true g.Summary.paces;
  Alcotest.(check bool) "f reads flag through g" true
    (Summary.String_set.exists
       (fun c -> Filename.check_suffix c "flag")
       f.Summary.reads);
  Alcotest.(check bool) "cycle needs >= 2 rounds" true
    (Summary.effect_rounds env >= 2)

(* A self-recursive function must not loop the fixpoint. *)
let test_self_recursion_terminates () =
  let src =
    "module A = Atomic\n\
     let rec spin c = if A.get c then () else spin c\n"
  in
  let env = analyze [ ("self.ml", src) ] in
  let spin = Summary.total_effects env (key_of env ".spin") in
  Alcotest.(check bool) "reads recorded" true
    (not (Summary.String_set.is_empty spin.Summary.reads));
  Alcotest.(check bool) "no pacing invented" false spin.Summary.paces

(* -------------------------------------------------------------------- *)
(* Context fixpoint: obligations discharged at every call site *)

let guard_src =
  "module A = Atomic\n\
   module E = Ebr.Make (P)\n\
   module type S = sig\n\
  \  type 'a t\n\
  \  val peek : 'a t -> tid:int -> 'a option\n\
   end\n\
   module Make () : S = struct\n\
  \  type 'a node = { value : 'a; next : 'a node option A.t }\n\
  \  type 'a t = { top : 'a node option A.t; ebr : E.t }\n\
  \  let rec scan n =\n\
  \    match n with\n\
  \    | None -> None\n\
  \    | Some n -> (\n\
  \        match A.get n.next with None -> Some n.value | tail -> scan tail)\n\
  \  let peek t ~tid = E.guard t.ebr ~tid (fun () -> scan (A.get t.top))\n\
   end\n"

let test_ctx_guarded_helper () =
  let env = analyze [ ("guard.ml", guard_src) ] in
  let scan = key_of env ".scan" in
  Alcotest.(check bool) "scan is context-guarded" true
    (Summary.ctx_guarded env scan);
  Alcotest.(check bool) "scan is not an entry point" false
    (Summary.String_set.mem scan (Summary.entries env));
  (* The same facts must silence the syntactic ebr-guard rule. *)
  let facts = Summary.facts_for env ~file:"guard.ml" in
  Alcotest.(check (list string)) "facts discharge the helper derefs" []
    (rules
       (L.check_string ~facts ~scope:discipline_scope ~filename:"guard.ml"
          guard_src));
  (* Without facts the helper's derefs fire — the annotations the
     interprocedural pass makes unnecessary. *)
  Alcotest.(check bool) "without facts the rule still fires" true
    (List.mem "ebr-guard"
       (rules
          (L.check_string ~scope:discipline_scope ~filename:"guard.ml"
             guard_src)))

(* An exported helper (no signature constraint) keeps its obligation:
   any caller outside the library could run it unguarded. *)
let test_exported_helper_not_ctx_guarded () =
  let src =
    "module A = Atomic\n\
     module E = Ebr.Make (P)\n\
     type 'a node = { value : 'a; next : 'a node option A.t }\n\
     type 'a t = { top : 'a node option A.t; ebr : E.t }\n\
     let value_of n = n.value\n\
     let peek t ~tid = E.guard t.ebr ~tid (fun () ->\n\
    \  match A.get t.top with None -> None | Some n -> Some (value_of n))\n"
  in
  let env = analyze [ ("exported.ml", src) ] in
  Alcotest.(check bool) "exported helper stays obligated" false
    (Summary.ctx_guarded env (key_of env ".value_of"))

(* -------------------------------------------------------------------- *)
(* Rule 10: plain-publication *)

let pub_diags srcs = Summary.publication_diagnostics (analyze srcs)

let test_publication_direct_chain () =
  let src =
    "module A = Atomic\n\
     type t = { hits : int A.t }\n\
     let reset t = A.set t.hits 0\n\
     let bump t =\n\
    \  let n = A.get t.hits in\n\
    \  A.set t.hits (n + 1)\n"
  in
  match pub_diags [ ("pub.ml", src) ] with
  | [ d ] ->
      Alcotest.(check string) "rule" "plain-publication" d.L.rule;
      Alcotest.(check int) "anchored at the completing store" 6 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_publication_single_writer_clean () =
  (* Only one entry point ever writes the cell: its own update cannot
     be lost to a concurrent writer that does not exist. *)
  let src =
    "module A = Atomic\n\
     type t = { hits : int A.t }\n\
     let bump t =\n\
    \  let n = A.get t.hits in\n\
    \  A.set t.hits (n + 1)\n"
  in
  Alcotest.(check int) "single writer is clean" 0
    (List.length (pub_diags [ ("pub.ml", src) ]))

let test_publication_rmw_discharges () =
  let src =
    "module A = Atomic\n\
     type t = { hits : int A.t }\n\
     let reset t = A.set t.hits 0\n\
     let bump t =\n\
    \  let n = A.get t.hits in\n\
    \  let _ = A.fetch_and_add t.hits 1 in\n\
    \  if n > 10 then A.set t.hits 0\n"
  in
  Alcotest.(check int) "ordering RMW discharges the chain" 0
    (List.length (pub_diags [ ("pub.ml", src) ]))

let test_publication_annotation_suppresses () =
  let src =
    "module A = Atomic\n\
     type t = { hits : int A.t }\n\
     let reset t = A.set t.hits 0\n\
     let bump t =\n\
    \  let n = A.get t.hits in\n\
    \  A.set t.hits (n + 1) [@publication_ok \"advisory counter\"]\n"
  in
  Alcotest.(check int) "annotated store is suppressed" 0
    (List.length (pub_diags [ ("pub.ml", src) ]))

let interproc_pub_src =
  "module A = Atomic\n\
   type t = { mode : int A.t }\n\
   let clear t = A.set t.mode 0\n\
   let current t = A.get t.mode\n\
   let publish t m = A.set t.mode m\n\
   let widen t =\n\
  \  let m = current t in\n\
  \  publish t (m * 2)\n"

let test_publication_across_helpers () =
  (* The read lives in [current], the plain store in [publish]; the
     chain exists only in [widen], at the call completing it. *)
  (match pub_diags [ ("split.ml", interproc_pub_src) ] with
  | [ d ] ->
      Alcotest.(check string) "rule" "plain-publication" d.L.rule;
      Alcotest.(check int) "anchored at the completing call" 8 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  (* The syntactic lint alone sees nothing here — rule 10 only exists
     interprocedurally. *)
  Alcotest.(check bool) "syntactic lint misses the chain" false
    (List.mem "plain-publication"
       (rules
          (L.check_string ~scope:discipline_scope ~filename:"split.ml"
             interproc_pub_src)))

(* -------------------------------------------------------------------- *)
(* Differential on the seeded fixture files: the syntactic lint
   over-reports the paced-through-a-helper loops; the summary facts
   keep exactly the two genuinely unpaced ones. *)

(* Tests run from the test directory under `dune runtest` and from the
   workspace root under `dune exec`; resolve either layout. *)
let resolve candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let spin_fixture =
  resolve
    [ "lint_fixtures/bad_interproc_spin.ml";
      "test/lint_fixtures/bad_interproc_spin.ml" ]

let test_fixture_differential () =
  if not (Sys.file_exists spin_fixture) then
    Alcotest.skip ()
  else begin
    let syntactic =
      rules (L.check_file ~scope:discipline_scope spin_fixture)
    in
    Alcotest.(check int) "syntactic lint flags all four loops" 4
      (List.length
         (List.filter (fun r -> r = "retry-discipline") syntactic));
    let env =
      Summary.analyze ~scope:discipline_scope [ spin_fixture ]
    in
    let with_facts =
      L.check_file ~scope:discipline_scope
        ~facts:(Summary.facts_for env ~file:spin_fixture)
        spin_fixture
    in
    Alcotest.(check (list int))
      "summary facts keep only the genuinely unpaced loops" [ 26; 43 ]
      (List.map (fun (d : L.diagnostic) -> d.L.line) with_facts)
  end

(* -------------------------------------------------------------------- *)
(* Cross-validation against the dynamic detector *)

let rec gather path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc e -> gather (Filename.concat path e) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* Normalise "../lib/stacks/fc.ml" (the analyzer's view from the test
   directory) to "lib/stacks/fc.ml" (the detector's backtrace view from
   the workspace root). *)
let normalize file =
  if String.length file > 3 && String.sub file 0 3 = "../" then
    String.sub file 3 (String.length file - 3)
  else file

let split_site site =
  match String.rindex_opt site ':' with
  | None -> None
  | Some i -> (
      let file = String.sub site 0 i in
      match
        int_of_string_opt
          (String.sub site (i + 1) (String.length site - i - 1))
      with
      | Some line -> Some (file, line)
      | None -> None)

let stack_scenario (module M : Registry.MAKER) () =
  let module St = M (SP) in
  let s = St.create ~max_threads:2 () in
  St.push s ~tid:0 100;
  let fiber slot () =
    St.push s ~tid:slot slot;
    ignore (St.pop s ~tid:slot)
  in
  ([ fiber 0; fiber 1 ], fun () -> true)

(* Every write-write race the dynamic detector attributes to library
   code on the seeded-mutant corpus must land on a site the static
   analysis considers a may-write — static soundness on this codebase.
   The detector plumbing itself is checked non-vacuously first, so an
   empty dynamic race set on the (discipline-respecting) mutants cannot
   silently pass a broken harness. *)
let test_dynamic_races_subset_of_static () =
  (* 1. Plumbing: a deliberate blind-store pair must be detected. *)
  let racy () =
    let c = SP.Atomic.make 0 in
    ([ (fun () -> SP.Atomic.set c 1); (fun () -> SP.Atomic.set c 2) ],
     fun () -> true)
  in
  let d = RD.create () in
  (match Explore.replay ~quantum:1 ~detector:d ~schedule:[] racy with
  | Explore.Ok_run true -> ()
  | _ -> Alcotest.fail "plumbing replay failed");
  Alcotest.(check bool) "plumbing: blind stores detected" true
    (RD.races d <> []);
  (* 2. The static may-write set over the library. *)
  let lib_dir = resolve [ "../lib"; "lib" ] in
  let env = Summary.analyze (gather lib_dir []) in
  let static =
    List.map
      (fun (file, line) -> (normalize file, line))
      (Summary.may_write_sites env)
  in
  Alcotest.(check bool) "static set covers the SEC core" true
    (List.exists
       (fun (f, _) -> Filename.basename f = "sec_stack.ml")
       static);
  (* 3. Sweep the mutants under pinned preemptions, collecting races. *)
  let races = ref [] in
  List.iter
    (fun entry ->
      let scenario = stack_scenario entry.Registry.maker in
      let schedules =
        [] :: List.concat_map
                (fun step ->
                  [ [ { Explore.step; fiber = 0 } ];
                    [ { Explore.step; fiber = 1 } ] ])
                [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 ]
      in
      List.iter
        (fun schedule ->
          let d = RD.create () in
          match Explore.replay ~quantum:3 ~detector:d ~schedule scenario with
          | Explore.Ok_run _ -> races := RD.races d @ !races
          | Explore.Raised m -> Alcotest.failf "mutant replay raised: %s" m
          | Explore.Livelocked -> ())
        schedules)
    Registry.mutants;
  (* 4. Subset check: each race site attributed to lib/ is statically
     known as a may-write. *)
  List.iter
    (fun (h : RD.hazard) ->
      List.iter
        (fun site ->
          match split_site site with
          | Some (file, line)
            when String.length file > 4 && String.sub file 0 4 = "lib/" ->
              if
                not
                  (List.exists
                     (fun (f, l) -> f = file && l = line)
                     static)
              then
                Alcotest.failf
                  "dynamic race site %s:%d is not in the static may-write \
                   set"
                  file line
          | _ -> ())
        [ h.RD.site_a; h.RD.site_b ])
    !races

let () =
  Alcotest.run "summary"
    [
      ( "fixpoint",
        [
          Alcotest.test_case "mutual recursion converges" `Quick
            test_cycle_effects_converge;
          Alcotest.test_case "self recursion terminates" `Quick
            test_self_recursion_terminates;
        ] );
      ( "context",
        [
          Alcotest.test_case "internal helper ctx-guarded" `Quick
            test_ctx_guarded_helper;
          Alcotest.test_case "exported helper stays obligated" `Quick
            test_exported_helper_not_ctx_guarded;
        ] );
      ( "plain-publication",
        [
          Alcotest.test_case "direct chain fires" `Quick
            test_publication_direct_chain;
          Alcotest.test_case "single writer clean" `Quick
            test_publication_single_writer_clean;
          Alcotest.test_case "RMW discharges" `Quick
            test_publication_rmw_discharges;
          Alcotest.test_case "publication_ok suppresses" `Quick
            test_publication_annotation_suppresses;
          Alcotest.test_case "chain across helpers" `Quick
            test_publication_across_helpers;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fixture: facts vs syntactic" `Quick
            test_fixture_differential;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "dynamic races within static may-writes"
            `Slow test_dynamic_races_subset_of_static;
        ] );
    ]
