(* Tests for the bounded model checker: it must PASS correct code over the
   whole bounded schedule space, FAIL deliberately broken code with a
   reproducible schedule, and cope with the blocking SEC machinery. *)

module Explore = Sec_sim.Explore
module SP = Sec_sim.Sim.Prim

let result_kind = function
  | Explore.Passed _ -> "passed"
  | Explore.Failed { kind = Explore.Check_failed; _ } -> "check_failed"
  | Explore.Failed { kind = Explore.Fiber_raised _; _ } -> "raised"
  | Explore.Failed { kind = Explore.Livelock; _ } -> "livelock"
  | Explore.Failed { kind = Explore.Race_detected _; _ } -> "race"
  | Explore.Failed { kind = Explore.Reclamation_violation _; _ } ->
      "reclamation"

(* -------------------------------------------------------------------- *)
(* A racy read-modify-write: increment as get-then-set. Two fibers, two
   increments each: some schedule loses an update. *)

let racy_counter_scenario () =
  let c = SP.Atomic.make 0 in
  let incr_racy () =
    for _ = 1 to 2 do
      let v = SP.Atomic.get c in
      SP.Atomic.set c (v + 1)
    done
  in
  ([ incr_racy; incr_racy ], fun () -> SP.Atomic.get c = 4)

let test_finds_lost_update () =
  match Explore.for_all ~max_preemptions:1 racy_counter_scenario with
  | Explore.Failed { kind = Explore.Check_failed; schedule; _ } ->
      Alcotest.(check bool) "needs at least one forced preemption" true
        (List.length schedule >= 1)
  | other -> Alcotest.failf "expected Check_failed, got %s" (result_kind other)

let test_replay_reproduces () =
  match Explore.for_all ~max_preemptions:1 racy_counter_scenario with
  | Explore.Failed { schedule; _ } -> (
      match Explore.replay ~schedule racy_counter_scenario with
      | Explore.Ok_run false -> ()
      | Explore.Ok_run true -> Alcotest.fail "replay did not reproduce"
      | Explore.Raised m -> Alcotest.failf "replay raised: %s" m
      | Explore.Livelocked -> Alcotest.fail "replay livelocked")
  | other -> Alcotest.failf "expected a violation, got %s" (result_kind other)

(* A violation's schedule must survive a serialize/parse round-trip and
   still reproduce the same violation kind when pinned — this is the
   workflow for committing a reproduction to a bug report. *)
let test_serialized_replay_reproduces () =
  match Explore.for_all ~max_preemptions:1 racy_counter_scenario with
  | Explore.Failed { kind = Explore.Check_failed; schedule; _ } -> (
      let serialized = Explore.schedule_to_string schedule in
      let parsed = Explore.schedule_of_string serialized in
      Alcotest.(check bool) "round-trip preserves the schedule" true
        (parsed = schedule);
      (* Pin the parsed schedule: the same violation kind must reproduce
         deterministically, run after run. *)
      for _ = 1 to 3 do
        match Explore.replay ~schedule:parsed racy_counter_scenario with
        | Explore.Ok_run false -> ()
        | Explore.Ok_run true ->
            Alcotest.fail "pinned schedule did not reproduce Check_failed"
        | Explore.Raised m -> Alcotest.failf "pinned replay raised: %s" m
        | Explore.Livelocked -> Alcotest.fail "pinned replay livelocked"
      done)
  | other -> Alcotest.failf "expected Check_failed, got %s" (result_kind other)

let test_schedule_string_roundtrip () =
  let open Explore in
  let s = [ { step = 4; fiber = 1 }; { step = 9; fiber = 0 } ] in
  Alcotest.(check string) "to_string" "4:1;9:0" (schedule_to_string s);
  Alcotest.(check bool) "of_string inverts" true
    (schedule_of_string (schedule_to_string s) = s);
  Alcotest.(check bool) "empty round-trips" true
    (schedule_of_string (schedule_to_string []) = []);
  match schedule_of_string "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "malformed input must raise"

(* The deliberately racy get-then-set increment must be flagged by the
   race detector itself (not just by the final check): both fibers store
   blindly without an ordering acquire between them. *)
let test_race_detector_flags_racy_scenario () =
  match
    Explore.for_all ~max_preemptions:1 ~detect_races:true racy_counter_scenario
  with
  | Explore.Failed { kind = Explore.Race_detected msg; schedule; _ } ->
      Alcotest.(check bool) "report names the race" true
        (String.length msg > 0);
      Alcotest.(check bool) "has a reproducing schedule" true
        (List.length schedule >= 1)
  | other -> Alcotest.failf "expected Race_detected, got %s" (result_kind other)

let test_correct_faa_passes () =
  let scenario () =
    let c = SP.Atomic.make 0 in
    let incr_atomic () =
      for _ = 1 to 2 do
        ignore (SP.Atomic.fetch_and_add c 1)
      done
    in
    ([ incr_atomic; incr_atomic ], fun () -> SP.Atomic.get c = 4)
  in
  match Explore.for_all ~max_preemptions:2 scenario with
  | Explore.Passed { schedules; truncated } ->
      Alcotest.(check bool) "explored more than one schedule" true
        (schedules > 1);
      Alcotest.(check bool) "space not truncated" false truncated
  | other -> Alcotest.failf "expected Passed, got %s" (result_kind other)

(* -------------------------------------------------------------------- *)
(* DPOR pruning: conflict-driven branching must find the same seeded bug
   while visiting measurably fewer schedules than exhaustive branching. *)

let schedules_of = function
  | Explore.Passed { schedules; _ } -> schedules
  | Explore.Failed { explored; _ } -> explored

let test_dpor_finds_lost_update () =
  match
    Explore.for_all ~max_preemptions:1 ~strategy:`Dpor racy_counter_scenario
  with
  | Explore.Failed { kind = Explore.Check_failed; _ } -> ()
  | other -> Alcotest.failf "expected Check_failed, got %s" (result_kind other)

let test_dpor_visits_fewer_schedules () =
  (* A correct scenario, so both strategies sweep their whole space. *)
  let scenario () =
    let c = SP.Atomic.make 0 in
    let private_work = SP.Atomic.make 0 in
    let body () =
      (* Independent accesses dilute the conflict density, which is
         exactly where DPOR wins: preemptions placed between accesses to
         different cells commute and are pruned. *)
      for _ = 1 to 3 do
        ignore (SP.Atomic.get private_work)
      done;
      ignore (SP.Atomic.fetch_and_add c 1)
    in
    ([ body; body ], fun () -> SP.Atomic.get c = 2)
  in
  let exhaustive =
    schedules_of (Explore.for_all ~max_preemptions:2 scenario)
  in
  let dpor =
    schedules_of (Explore.for_all ~max_preemptions:2 ~strategy:`Dpor scenario)
  in
  Alcotest.(check bool)
    (Printf.sprintf "dpor (%d) < exhaustive (%d)" dpor exhaustive)
    true
    (dpor < exhaustive);
  (* "Measurably": at least 2x fewer on this conflict-sparse scenario. *)
  Alcotest.(check bool)
    (Printf.sprintf "dpor (%d) <= exhaustive/2 (%d)" dpor (exhaustive / 2))
    true
    (dpor <= exhaustive / 2)

(* -------------------------------------------------------------------- *)
(* A broken "Treiber" whose pop publishes with a plain store instead of a
   CAS: two concurrent pops can return the same node. *)

let test_finds_broken_pop () =
  let scenario () =
    let top = SP.Atomic.make [ 1; 2; 3 ] in
    let popped = Array.make 2 [] in
    let bad_pop slot () =
      match SP.Atomic.get top with
      | [] -> ()
      | v :: rest ->
          SP.Atomic.set top rest (* BUG: should be compare_and_set *);
          popped.(slot) <- v :: popped.(slot)
    in
    ( [ bad_pop 0; bad_pop 1 ],
      fun () ->
        (* No value may be popped twice. *)
        let all = popped.(0) @ popped.(1) in
        List.length (List.sort_uniq compare all) = List.length all )
  in
  match Explore.for_all ~max_preemptions:1 scenario with
  | Explore.Failed { kind = Explore.Check_failed; _ } -> ()
  | other -> Alcotest.failf "expected Check_failed, got %s" (result_kind other)

let test_real_treiber_passes () =
  let module T = Sec_stacks.Treiber.Make (SP) in
  let scenario () =
    let s = T.create ~max_threads:2 () in
    T.push s ~tid:0 100;
    let popped = Array.make 2 [] in
    let fiber slot () =
      T.push s ~tid:slot slot;
      match T.pop s ~tid:slot with
      | Some v -> popped.(slot) <- [ v ]
      | None -> ()
    in
    ( [ fiber 0; fiber 1 ],
      fun () ->
        let rec drain acc =
          match T.pop s ~tid:0 with Some v -> drain (v :: acc) | None -> acc
        in
        let all = popped.(0) @ popped.(1) @ drain [] in
        (* Conservation: exactly the three pushed values, each once. *)
        List.sort compare all = [ 0; 1; 100 ] )
  in
  match Explore.for_all ~max_preemptions:2 scenario with
  | Explore.Passed { schedules; _ } ->
      Alcotest.(check bool) "dozens of schedules" true (schedules > 10)
  | other -> Alcotest.failf "expected Passed, got %s" (result_kind other)

(* -------------------------------------------------------------------- *)
(* SEC under exploration: the full blocking machinery (freezing,
   elimination, combining) must survive every bounded schedule. *)

let sec_scenario () =
  let module Sec = Sec_core.Sec_stack.Make (SP) in
  let s = Sec.create ~max_threads:2 () in
  Sec.push s ~tid:0 100;
  let results = Array.make 2 [] in
  let fiber slot () =
    Sec.push s ~tid:slot slot;
    match Sec.pop s ~tid:slot with
    | Some v -> results.(slot) <- [ v ]
    | None -> ()
  in
  let module Seq = Sec_spec.Seq_stack in
  ignore (Seq.create ());
  ( [ fiber 0; fiber 1 ],
    fun () ->
      let rec drain acc =
        match Sec.pop s ~tid:0 with Some v -> drain (v :: acc) | None -> acc
      in
      let all = results.(0) @ results.(1) @ drain [] in
      List.sort compare all = [ 0; 1; 100 ] )

let test_dpor_passes_correct_sec () =
  match
    Explore.for_all ~max_preemptions:2 ~quantum:6 ~max_schedules:5_000
      ~strategy:`Dpor sec_scenario
  with
  | Explore.Passed _ -> ()
  | other -> Alcotest.failf "expected Passed, got %s" (result_kind other)

let test_sec_conservation_all_schedules () =
  match
    Explore.for_all ~max_preemptions:2 ~quantum:6 ~max_schedules:5_000
      sec_scenario
  with
  | Explore.Passed { schedules; _ } ->
      Alcotest.(check bool) "thousands of schedules" true (schedules > 1_000)
  | other -> Alcotest.failf "expected Passed, got %s" (result_kind other)

let test_sec_elimination_all_schedules () =
  (* A symmetric push/pop pair: across every schedule, the pop returns
     either the concurrent push or the prefilled value — never None. *)
  let module Sec = Sec_core.Sec_stack.Make (SP) in
  let scenario () =
    let s = Sec.create ~max_threads:2 () in
    Sec.push s ~tid:0 7;
    let got = ref (Some (-1)) in
    ( [
        (fun () -> Sec.push s ~tid:0 8);
        (fun () -> got := Sec.pop s ~tid:1);
      ],
      fun () -> match !got with Some 7 | Some 8 -> true | _ -> false )
  in
  match
    Explore.for_all ~max_preemptions:1 ~quantum:6 ~max_schedules:5_000 scenario
  with
  | Explore.Passed _ -> ()
  | other -> Alcotest.failf "expected Passed, got %s" (result_kind other)

(* -------------------------------------------------------------------- *)
(* Pathology detection                                                   *)

let test_livelock_detected () =
  let scenario () =
    let flag = SP.Atomic.make false in
    let spin () =
      while not (SP.Atomic.get flag) do
        SP.cpu_relax ()
      done
    in
    ([ spin ], fun () -> true)
  in
  match Explore.for_all ~max_steps:1_000 scenario with
  | Explore.Failed { kind = Explore.Livelock; _ } -> ()
  | other -> Alcotest.failf "expected Livelock, got %s" (result_kind other)

let test_exception_reported () =
  let scenario () = ([ (fun () -> failwith "boom") ], fun () -> true) in
  match Explore.for_all scenario with
  | Explore.Failed { kind = Explore.Fiber_raised msg; _ } ->
      Alcotest.(check bool) "message mentions boom" true
        (String.length msg > 0)
  | other -> Alcotest.failf "expected Fiber_raised, got %s" (result_kind other)

let test_schedule_count_grows_with_bound () =
  let count bound =
    match
      Explore.for_all ~max_preemptions:bound ~max_schedules:100_000
        racy_counter_scenario
    with
    | Explore.Passed { schedules; _ } -> schedules
    | Explore.Failed { explored; _ } -> explored
  in
  Alcotest.(check int) "zero preemptions = single baseline schedule" 1 (count 0)

let () =
  Alcotest.run "explore"
    [
      ( "bug finding",
        [
          Alcotest.test_case "lost update found" `Quick test_finds_lost_update;
          Alcotest.test_case "violation replays" `Quick test_replay_reproduces;
          Alcotest.test_case "serialized schedule replays" `Quick
            test_serialized_replay_reproduces;
          Alcotest.test_case "schedule string round-trip" `Quick
            test_schedule_string_roundtrip;
          Alcotest.test_case "race detector flags racy scenario" `Quick
            test_race_detector_flags_racy_scenario;
          Alcotest.test_case "broken pop found" `Quick test_finds_broken_pop;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "finds lost update" `Quick
            test_dpor_finds_lost_update;
          Alcotest.test_case "fewer schedules than exhaustive" `Quick
            test_dpor_visits_fewer_schedules;
          Alcotest.test_case "sec passes under dpor" `Slow
            test_dpor_passes_correct_sec;
        ] );
      ( "correct code passes",
        [
          Alcotest.test_case "atomic counter" `Quick test_correct_faa_passes;
          Alcotest.test_case "treiber conservation" `Quick
            test_real_treiber_passes;
          Alcotest.test_case "sec conservation" `Slow
            test_sec_conservation_all_schedules;
          Alcotest.test_case "sec elimination" `Slow
            test_sec_elimination_all_schedules;
        ] );
      ( "pathologies",
        [
          Alcotest.test_case "livelock" `Quick test_livelock_detected;
          Alcotest.test_case "exception" `Quick test_exception_reported;
          Alcotest.test_case "bound semantics" `Quick
            test_schedule_count_grows_with_bound;
        ] );
    ]
