(* Tests for the domain-pool fan-out used by `sec_bench figures`.
   [Sweep.map] takes the pool size literally, so a multi-domain pool is
   exercised even on a single-core host; the policy clamp
   ([Sweep.clamp_jobs]) is tested separately. *)

module Sweep = Sec_harness.Sweep
module Sim = Sec_sim.Sim
module Topology = Sec_sim.Topology

let test_clamp () =
  let r = Sweep.recommended () in
  Alcotest.(check bool) "recommended >= 1" true (r >= 1);
  Alcotest.(check int) "non-positive -> serial" 1 (Sweep.clamp_jobs 0);
  Alcotest.(check int) "negative -> serial" 1 (Sweep.clamp_jobs (-4));
  Alcotest.(check int) "oversubscription capped" r (Sweep.clamp_jobs (r + 64));
  Alcotest.(check int) "in-range untouched" 1 (Sweep.clamp_jobs 1);
  Alcotest.(check int) "default is recommended" r (Sweep.default_jobs ())

(* A pure CPU-bound job: pool results must equal Array.map exactly. *)
let test_map_pure () =
  let items = Array.init 37 (fun i -> i) in
  let f x = (x * 2654435761) land 0xFFFF in
  let serial = Array.map f items in
  List.iter
    (fun jobs ->
      let got = Sweep.map ~jobs f items in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d matches serial" jobs)
        serial got)
    [ 1; 2; 3; 8 ]

(* Simulation jobs: each Sim.run owns fresh state, so fanning the same
   job list over 1 and 2 domains must give identical schedule digests —
   the differential that backs `figures --jobs N` bit-identity. *)
let sim_job seed () =
  let (), stats =
    Sim.run ~seed ~jitter:3 ~topology:Topology.testbox (fun () ->
        let counter = Sim.Prim.Atomic.make 0 in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              for _ = 1 to 50 do
                ignore (Sim.Prim.Atomic.fetch_and_add counter 1)
              done)
        done;
        Sim.await_all ())
  in
  stats.Sim.schedule_digest

let test_map_sim_differential () =
  let jobs = Array.init 8 (fun i -> sim_job (100 + i)) in
  let serial = Sweep.map ~jobs:1 (fun j -> j ()) jobs in
  let parallel = Sweep.map ~jobs:2 (fun j -> j ()) jobs in
  Alcotest.(check (array int)) "digests: 1 domain = 2 domains" serial parallel

(* The first failing job's exception (in input order) is re-raised after
   the pool drains; later results are still computed. *)
exception Boom of int

let test_map_error () =
  let f x = if x mod 5 = 3 then raise (Boom x) else x in
  match Sweep.map ~jobs:2 f (Array.init 20 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> Alcotest.(check int) "first failure in job order" 3 n

let () =
  Alcotest.run "sweep"
    [
      ( "domain pool",
        [
          Alcotest.test_case "clamp_jobs" `Quick test_clamp;
          Alcotest.test_case "pure map identical" `Quick test_map_pure;
          Alcotest.test_case "sim digests differential" `Quick
            test_map_sim_differential;
          Alcotest.test_case "error propagation" `Quick test_map_error;
        ] );
    ]
