(* Tests for the SEC stack itself: the standard battery plus SEC-specific
   behaviour — freezing, batch accounting, aggregator sweeps, elimination
   degree, and pop-beyond-depth semantics. *)

module P = Sec_prim.Native
module Sec = Sec_core.Sec_stack.Make (P)
module Config = Sec_core.Config
module Stats = Sec_core.Sec_stats

let with_aggs ?(stats = false) k =
  { Config.default with Config.num_aggregators = k; collect_stats = stats }

(* Adapter fixing a configuration, so the generic test kit can drive SEC
   under any aggregator count. *)
module Sec_with (C : sig
  val config : Config.t
end) : Sec_spec.Stack_intf.S = struct
  include Sec

  let create ?max_threads () = Sec.create_with ~config:C.config ?max_threads ()
end

module Sec_agg1 = Sec_with (struct let config = with_aggs 1 end)
module Sec_agg2 = Sec_with (struct let config = with_aggs 2 end)
module Sec_agg3 = Sec_with (struct let config = with_aggs 3 end)
module Sec_agg5 = Sec_with (struct let config = with_aggs 5 end)

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)

let test_config_validation () =
  Alcotest.check_raises "zero aggregators rejected"
    (Invalid_argument "Sec_core.Config: num_aggregators must be at least 1")
    (fun () ->
      ignore (Sec.create_with ~config:(with_aggs 0) ()));
  Alcotest.check_raises "negative backoff rejected"
    (Invalid_argument "Sec_core.Config: freeze_backoff must be non-negative")
    (fun () ->
      ignore
        (Sec.create_with
           ~config:{ Config.default with Config.freeze_backoff = -1 }
           ()))

let test_config_accessor () =
  let s = Sec.create_with ~config:(with_aggs 3) () in
  Alcotest.(check int) "aggregators" 3 (Sec.config s).Config.num_aggregators

(* ------------------------------------------------------------------ *)
(* Single-thread behaviour through the full batch machinery             *)

let test_depth () =
  let s = Sec.create () in
  Alcotest.(check int) "empty depth" 0 (Sec.depth s);
  for i = 1 to 10 do
    Sec.push s ~tid:0 i
  done;
  Alcotest.(check int) "depth after pushes" 10 (Sec.depth s);
  ignore (Sec.pop s ~tid:0);
  ignore (Sec.pop s ~tid:0);
  Alcotest.(check int) "depth after pops" 8 (Sec.depth s)

let test_pop_beyond_depth () =
  (* A batch of pops larger than the stack: the excess must see EMPTY. *)
  let s = Sec.create () in
  Sec.push s ~tid:0 1;
  Alcotest.(check (option int)) "first pop" (Some 1) (Sec.pop s ~tid:0);
  Alcotest.(check (option int)) "second pop empty" None (Sec.pop s ~tid:0);
  Alcotest.(check (option int)) "third pop empty" None (Sec.pop s ~tid:0)

let test_interleaved_types () =
  let s = Sec.create () in
  Sec.push s ~tid:0 1;
  Sec.push s ~tid:0 2;
  Alcotest.(check (option int)) "peek reads top" (Some 2) (Sec.peek s ~tid:0);
  Alcotest.(check (option int)) "pop" (Some 2) (Sec.pop s ~tid:0);
  Sec.push s ~tid:0 3;
  Alcotest.(check (option int)) "pop 3" (Some 3) (Sec.pop s ~tid:0);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Sec.pop s ~tid:0)

(* ------------------------------------------------------------------ *)
(* Batch statistics                                                     *)

let test_stats_single_thread () =
  (* One thread: every operation forms its own batch of size 1, nothing is
     eliminated, everything is combined. *)
  let s = Sec.create_with ~config:(with_aggs ~stats:true 1) () in
  for i = 1 to 50 do
    Sec.push s ~tid:0 i
  done;
  for _ = 1 to 50 do
    ignore (Sec.pop s ~tid:0)
  done;
  let st = Sec.stats s in
  Alcotest.(check int) "one batch per op" 100 st.Stats.batches;
  Alcotest.(check int) "ops accounted" 100 st.Stats.operations;
  Alcotest.(check int) "nothing eliminated" 0 st.Stats.eliminated;
  Alcotest.(check int) "everything combined" 100 st.Stats.combined;
  Alcotest.(check (float 0.001)) "batching degree 1" 1.0
    (Stats.batching_degree st)

let test_stats_accounting_invariant () =
  (* Under concurrency: eliminated + combined = operations, and all
     operations that completed are accounted for in some batch. *)
  let threads = 4 and ops = 2_000 in
  let s =
    Sec.create_with ~config:(with_aggs ~stats:true 2) ~max_threads:threads ()
  in
  let body tid () =
    let rng = Sec_prim.Rng.create (Int64.of_int (tid + 1)) in
    for i = 1 to ops do
      if Sec_prim.Rng.int rng 2 = 0 then Sec.push s ~tid i
      else ignore (Sec.pop s ~tid)
    done
  in
  let ds = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  let st = Sec.stats s in
  Alcotest.(check int) "eliminated + combined = operations"
    st.Stats.operations
    (st.Stats.eliminated + st.Stats.combined);
  Alcotest.(check int) "all completed ops belong to a batch"
    (threads * ops) st.Stats.operations;
  Alcotest.(check bool) "eliminated count is even" true
    (st.Stats.eliminated mod 2 = 0)

let test_stats_elimination_under_symmetry () =
  (* Balanced concurrent pushes and pops with a freezer backoff must
     achieve a non-trivial elimination degree. *)
  let threads = 4 and ops = 4_000 in
  let s =
    Sec.create_with
      ~config:{ (with_aggs ~stats:true 1) with Config.freeze_backoff = 256 }
      ~max_threads:threads ()
  in
  let body tid () =
    for i = 1 to ops do
      if tid mod 2 = 0 then Sec.push s ~tid i else ignore (Sec.pop s ~tid)
    done
  in
  let ds = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  let st = Sec.stats s in
  Alcotest.(check bool)
    (Printf.sprintf "some elimination happened (%.1f%%)"
       (Stats.pct_eliminated st))
    true
    (st.Stats.eliminated > 0)

let test_stats_helpers () =
  let st =
    { Stats.batches = 4; operations = 40; eliminated = 30; combined = 10;
      excluded = 0 }
  in
  Alcotest.(check (float 1e-6)) "batching degree" 10. (Stats.batching_degree st);
  Alcotest.(check (float 1e-6)) "pct eliminated" 75. (Stats.pct_eliminated st);
  Alcotest.(check (float 1e-6)) "pct combined" 25. (Stats.pct_combined st);
  Alcotest.(check (float 1e-6)) "empty degree" 0.
    (Stats.batching_degree Stats.empty)

(* ------------------------------------------------------------------ *)
(* Push-only / pop-only batches under concurrency                       *)

let test_push_only_parallel () =
  let threads = 4 and ops = 2_000 in
  let s = Sec.create ~max_threads:threads () in
  let body tid () =
    for i = 1 to ops do
      Sec.push s ~tid (Testkit.tag ~tid i)
    done
  in
  let ds = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "all nodes present" (threads * ops) (Sec.depth s)

let test_pop_only_parallel () =
  let threads = 4 and prefill = 5_000 in
  let s = Sec.create ~max_threads:threads () in
  for i = 1 to prefill do
    Sec.push s ~tid:0 i
  done;
  let counts = Array.make threads 0 in
  let body tid () =
    let continue = ref true in
    while !continue do
      match Sec.pop s ~tid with
      | Some _ -> counts.(tid) <- counts.(tid) + 1
      | None -> continue := false
    done
  in
  let ds = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "every node popped exactly once" prefill
    (Array.fold_left ( + ) 0 counts);
  Alcotest.(check int) "stack empty" 0 (Sec.depth s)

(* ------------------------------------------------------------------ *)
(* Property tests across configurations                                 *)

let qcheck_sequential_any_config =
  (* Sequential LIFO semantics must hold under every aggregator count and
     freezer-backoff setting. *)
  QCheck.Test.make ~name:"SEC: sequential model under any config" ~count:100
    QCheck.(
      triple (int_range 1 5) (int_range 0 64) (list_of_size (Gen.int_range 0 40) (option small_int)))
    (fun (aggs, backoff, ops) ->
      let config =
        {
          Config.default with
          Config.num_aggregators = aggs;
          freeze_backoff = backoff;
        }
      in
      let s = Sec.create_with ~config ~max_threads:1 () in
      let model = Sec_spec.Seq_stack.create () in
      List.for_all
        (function
          | Some v ->
              Sec.push s ~tid:0 v;
              Sec_spec.Seq_stack.push model v;
              true
          | None ->
              Sec.pop s ~tid:0 = Sec_spec.Seq_stack.pop model
              && Sec.peek s ~tid:0 = Sec_spec.Seq_stack.peek model)
        ops)

let qcheck_stats_percentages =
  (* However the counters land, the derived percentages are consistent. *)
  QCheck.Test.make ~name:"SEC stats: percentages sum to 100" ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 1000))
    (fun (ops, elim_pairs) ->
      let eliminated = min ops (2 * elim_pairs) in
      let eliminated = eliminated - (eliminated mod 2) in
      let st =
        {
          Stats.batches = 1;
          operations = ops;
          eliminated;
          combined = ops - eliminated;
          excluded = 0;
        }
      in
      abs_float (Stats.pct_eliminated st +. Stats.pct_combined st -. 100.)
      < 1e-9)

(* Regression: more than [max_threads] announcements landing in one batch
   used to trip [assert (seq < capacity)] — and, without the assert, write
   past the elimination array — on the push path, because every retry FAAs
   a fresh sequence number. Deterministically provoked in the simulator:
   one aggregator, a long freeze window, six pushers into a stack sized
   for two. Overflowing announcers must now wait out the batch and retry. *)
let test_capacity_overflow () =
  let module SP = Sec_sim.Sim.Prim in
  let module SimSec = Sec_core.Sec_stack.Make (SP) in
  let config =
    {
      Config.default with
      Config.num_aggregators = 1;
      freeze_backoff = 50_000;
      collect_stats = true;
    }
  in
  let (popped, excluded), _ =
    Sec_sim.Sim.run ~seed:7 ~topology:Sec_sim.Topology.testbox (fun () ->
        let s = SimSec.create_with ~config ~max_threads:2 () in
        for i = 1 to 6 do
          Sec_sim.Sim.spawn (fun () -> SimSec.push s ~tid:(i mod 2) i)
        done;
        Sec_sim.Sim.await_all ();
        let out = ref [] in
        (try
           while true do
             match SimSec.pop s ~tid:0 with
             | Some v -> out := v :: !out
             | None -> raise Exit
           done
         with Exit -> ());
        (List.sort compare !out, (SimSec.stats s).Stats.excluded))
  in
  Alcotest.(check (list int)) "all pushes land" [ 1; 2; 3; 4; 5; 6 ] popped;
  Alcotest.(check bool) "overflow path exercised" true (excluded > 0)

let test_tid_to_aggregator_coverage () =
  (* Every aggregator must receive traffic when tids cover [0, K). *)
  for aggs = 1 to 5 do
    let s =
      Sec.create_with ~config:(with_aggs ~stats:true aggs) ~max_threads:8 ()
    in
    for tid = 0 to 7 do
      Sec.push s ~tid tid
    done;
    Alcotest.(check int)
      (Printf.sprintf "%d aggregators hold all pushes" aggs)
      8 (Sec.depth s)
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sec"
    [
      ("standard (2 aggregators)", Testkit.standard_suite (module Sec_agg2));
      ("standard (1 aggregator)", Testkit.standard_suite (module Sec_agg1));
      ( "standard (3 aggregators)",
        Testkit.standard_suite ~threads:6 (module Sec_agg3) );
      ( "standard (5 aggregators)",
        Testkit.standard_suite ~threads:5 (module Sec_agg5) );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "accessor" `Quick test_config_accessor;
        ] );
      ( "single thread",
        [
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "pop beyond depth" `Quick test_pop_beyond_depth;
          Alcotest.test_case "interleaved types" `Quick test_interleaved_types;
        ] );
      ( "stats",
        [
          Alcotest.test_case "single thread batches" `Quick
            test_stats_single_thread;
          Alcotest.test_case "accounting invariant" `Quick
            test_stats_accounting_invariant;
          Alcotest.test_case "elimination under symmetry" `Quick
            test_stats_elimination_under_symmetry;
          Alcotest.test_case "helpers" `Quick test_stats_helpers;
        ] );
      ( "homogeneous workloads",
        [
          Alcotest.test_case "parallel push-only" `Quick test_push_only_parallel;
          Alcotest.test_case "parallel pop-only" `Quick test_pop_only_parallel;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_sequential_any_config;
          QCheck_alcotest.to_alcotest qcheck_stats_percentages;
          Alcotest.test_case "aggregator coverage" `Quick
            test_tid_to_aggregator_coverage;
          Alcotest.test_case "batch capacity overflow" `Quick
            test_capacity_overflow;
        ] );
    ]
