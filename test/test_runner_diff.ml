(* Cross-backend differential test: the same registry entry and workload
   mix, driven through the one Runner.Make loop on both execution
   substrates. Checks that (a) the native backend's recorded history — a
   real multi-domain execution with wall-clock timestamps — is
   linearizable, and (b) both backends complete exactly the requested
   operation count per thread. *)

module H = Sec_harness

let threads = 3
let ops_per_thread = 8
let mix = H.Workload.update_heavy

let check_counts label counts =
  Alcotest.(check (list int))
    (label ^ ": per-thread op counts")
    (List.init threads (fun _ -> ops_per_thread))
    (Array.to_list counts)

let check_history label history =
  Alcotest.(check int)
    (label ^ ": history records every op")
    (threads * ops_per_thread)
    (Sec_spec.History.length history);
  match Sec_spec.Lin_check.check (Sec_spec.History.events history) with
  | Sec_spec.Lin_check.Linearizable -> ()
  | Sec_spec.Lin_check.Gave_up ->
      (* Bounded search; should not happen at this size, but a give-up is
         not a wrong verdict. *)
      Printf.eprintf "lin_check gave up on %s history\n" label
  | Sec_spec.Lin_check.Not_linearizable ->
      Alcotest.failf "%s history not linearizable" label

let run_native entry seed =
  H.Native_runner.run_recorded entry.H.Registry.maker ~threads ~ops_per_thread
    ~mix ~prefill:0 ~seed ()

let run_sim entry seed =
  H.Sim_runner.run_recorded entry.H.Registry.maker
    ~topology:Sec_sim.Topology.testbox ~threads ~ops_per_thread ~mix ~prefill:0
    ~seed ()

let test_entry entry () =
  List.iter
    (fun seed ->
      let native_history, native_counts = run_native entry seed in
      check_counts "native" native_counts;
      check_history "native" native_history;
      let sim_history, sim_counts = run_sim entry seed in
      check_counts "sim" sim_counts;
      check_history "sim" sim_history)
    [ 11; 12; 13 ]

let () =
  Alcotest.run "runner_diff"
    [
      ( "both backends, one loop",
        [
          Alcotest.test_case "SEC" `Quick (test_entry H.Registry.sec);
          Alcotest.test_case "TRB" `Quick (test_entry H.Registry.treiber);
          Alcotest.test_case "EB" `Quick (test_entry H.Registry.eb);
        ] );
    ]
