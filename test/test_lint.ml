(* Tests for the discipline lint: each rule class must fire on a seeded
   fixture at an exact file:line, accept the documented annotations, and
   stay silent outside its scope. *)

module L = Sec_lint_rules.Lint_rules

let discipline_scope = { L.check_discipline = true; allow_obj = false }

let check ?(scope = discipline_scope) src =
  L.check_string ~scope ~filename:"fixture.ml" src

let rules ds = List.map (fun d -> d.L.rule) ds

(* -------------------------------------------------------------------- *)
(* mutable-field *)

let test_mutable_field_fires () =
  let src = "type t = {\n  value : int;\n  mutable next : t option;\n}\n" in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "mutable-field" d.L.rule;
      Alcotest.(check string) "file" "fixture.ml" d.L.file;
      Alcotest.(check int) "line of the mutable field" 3 d.L.line;
      Alcotest.(check bool) "message names the field" true
        (String.length d.L.message > 0)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_plain_ok_accepted () =
  let src =
    "type t = {\n\
    \  value : int;\n\
    \  mutable next : t option;\n\
    \      [@plain_ok \"published by the combiner's release CAS\"]\n\
     }\n"
  in
  Alcotest.(check int) "annotated field is clean" 0 (List.length (check src))

let test_empty_plain_ok_rejected () =
  (* The annotation must carry an argument — a bare tag is not a
     publication argument. *)
  let src = "type t = { mutable next : t option [@plain_ok \"\"] }\n" in
  Alcotest.(check (list string)) "empty reason still fires"
    [ "mutable-field" ] (rules (check src))

(* -------------------------------------------------------------------- *)
(* unpadded-atomic *)

let test_unpadded_atomic_in_record_fires () =
  let src =
    "let create () = {\n\
    \  top = A.make None;\n\
    \  count = A.make_padded 0;\n\
     }\n"
  in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "unpadded-atomic" d.L.rule;
      Alcotest.(check int) "line of the unpadded make" 2 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_unpadded_atomic_in_array_fires () =
  let src = "let slots n = Array.init n (fun _ -> Atomic.make None)\n" in
  Alcotest.(check (list string)) "array-builder counts as shared"
    [ "unpadded-atomic" ] (rules (check src))

let test_unpadded_ok_accepted () =
  let src =
    "let node v = {\n\
    \  ts = (A.make v [@unpadded_ok \"written once, then read-only\"]);\n\
     }\n"
  in
  Alcotest.(check int) "annotated make is clean" 0 (List.length (check src))

let test_local_atomic_not_flagged () =
  (* An atomic that is not stored into a record or array is not a
     long-lived shared block. *)
  let src = "let f () = let c = A.make 0 in A.get c\n" in
  Alcotest.(check int) "local make is clean" 0 (List.length (check src))

(* -------------------------------------------------------------------- *)
(* obj-confinement *)

let test_obj_use_fires () =
  let src = "let f x = Obj.magic x\n" in
  match check src with
  | [ d ] -> Alcotest.(check string) "rule" "obj-confinement" d.L.rule
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_obj_allowed_in_padding () =
  let scope = { L.check_discipline = false; allow_obj = true } in
  let src = "let f x = Obj.magic x\n" in
  Alcotest.(check int) "padding.ml scope is exempt" 0
    (List.length (check ~scope src))

(* -------------------------------------------------------------------- *)
(* ebr-guard / retire-once (the static prong of the reclamation layer) *)

(* A minimal EBR module shape: the rules only arm when the source
   references [Ebr] and declares a [*node*] record. *)
let ebr_prelude =
  "module E = Ebr.Make (P)\n\
   type 'a node = { value : 'a; next : 'a node option A.t }\n\
   type 'a t = { top : 'a node option A.t; ebr : E.t }\n"

let test_ebr_guard_fires () =
  let src =
    ebr_prelude
    ^ "let peek t = match A.get t.top with\n\
      \  | None -> None\n\
      \  | Some n -> Some n.value\n"
  in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "ebr-guard" d.L.rule;
      Alcotest.(check int) "line of the naked deref" 6 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_ebr_guard_extent_clean () =
  let src =
    ebr_prelude
    ^ "let peek t ~tid = E.guard t.ebr ~tid (fun () ->\n\
      \  match A.get t.top with None -> None | Some n -> Some n.value)\n"
  in
  Alcotest.(check int) "deref inside the guard extent is clean" 0
    (List.length (check src))

let test_unguarded_ok_covers_subtree () =
  (* One annotation on a helper body covers every deref inside it. *)
  let src =
    ebr_prelude
    ^ "let rec youngest n =\n\
      \  (match n with\n\
      \  | None -> None\n\
      \  | Some n -> youngest (A.get n.next))\n\
      \  [@unguarded_ok \"callers hold the guard\"]\n"
  in
  Alcotest.(check int) "annotated helper is clean" 0 (List.length (check src))

let test_empty_unguarded_ok_rejected () =
  let src =
    ebr_prelude ^ "let value_of n = n.value [@unguarded_ok \"\"]\n"
  in
  Alcotest.(check (list string)) "empty reason still fires" [ "ebr-guard" ]
    (rules (check src))

let test_ebr_rules_need_ebr_reference () =
  (* Same deref shapes, but the module never references Ebr: the node
     lives forever under the GC and the rules must stay silent. *)
  let src =
    "type 'a node = { value : 'a; next : 'a node option A.t }\n\
     type 'a t = { top : 'a node option A.t }\n\
     let peek t = match A.get t.top with\n\
    \  | None -> None\n\
    \  | Some n -> Some n.value\n"
  in
  Alcotest.(check int) "no Ebr reference: rules disarmed" 0
    (List.length (check src))

let test_retire_once_fires () =
  let src =
    ebr_prelude
    ^ "let drop t ~tid n = E.guard t.ebr ~tid (fun () ->\n\
      \  ignore (A.compare_and_set t.top (Some n) None);\n\
      \  E.retire t.ebr ~tid (fun () -> ()))\n"
  in
  Alcotest.(check (list string)) "ungated retire fires" [ "retire-once" ]
    (rules (check src))

let test_retire_gated_by_cas_clean () =
  let src =
    ebr_prelude
    ^ "let drop t ~tid n = E.guard t.ebr ~tid (fun () ->\n\
      \  if A.compare_and_set t.top (Some n) None then\n\
      \    E.retire t.ebr ~tid (fun () -> ()))\n"
  in
  Alcotest.(check int) "CAS-gated retire is clean" 0
    (List.length (check src))

let test_retire_ok_accepted () =
  let src =
    ebr_prelude
    ^ "let drop t ~tid = E.guard t.ebr ~tid (fun () ->\n\
      \  (E.retire t.ebr ~tid (fun () -> ())\n\
      \   [@retire_ok \"owner-only unlink\"]))\n"
  in
  Alcotest.(check int) "annotated retire is clean" 0
    (List.length (check src))

(* -------------------------------------------------------------------- *)
(* retry-discipline (the static prong of the progress layer) *)

let test_while_on_atomic_fires () =
  let src = "let wait f = while not (A.get f) do () done\n" in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "retry-discipline" d.L.rule;
      Alcotest.(check int) "line of the while" 1 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_bare_cas_loop_fires () =
  let src =
    "let bump c =\n\
    \  let rec attempt () =\n\
    \    let cur = A.get c in\n\
    \    if not (A.compare_and_set c cur (cur + 1)) then attempt ()\n\
    \  in\n\
    \  attempt ()\n"
  in
  (match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "retry-discipline" d.L.rule;
      Alcotest.(check int) "line of the rec binding" 2 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  (* Same shape at structure level. *)
  let src =
    "let rec spin c = if not (A.compare_and_set c 0 1) then spin c\n"
  in
  Alcotest.(check (list string)) "top-level rec loop fires"
    [ "retry-discipline" ] (rules (check src))

let test_paced_loops_clean () =
  let src =
    "let wait f = while not (A.get f) do P.relax 8 done\n\
     let bump c =\n\
    \  let backoff = Backoff.create () in\n\
    \  let rec attempt () =\n\
    \    let cur = A.get c in\n\
    \    if not (A.compare_and_set c cur (cur + 1)) then begin\n\
    \      Backoff.once backoff;\n\
    \      attempt ()\n\
    \    end\n\
    \  in\n\
    \  attempt ()\n"
  in
  Alcotest.(check int) "paced loops are clean" 0 (List.length (check src))

let test_await_ok_accepted () =
  let src =
    "let take c =\n\
    \  let rec attempt () =\n\
    \    (if not (A.compare_and_set c 0 1) then attempt ())\n\
    \    [@await_ok \"two parties alternate\"]\n\
    \  in\n\
    \  attempt ()\n"
  in
  Alcotest.(check int) "annotated loop is clean" 0 (List.length (check src))

let test_empty_await_ok_rejected () =
  let src =
    "let wait f = (while not (A.get f) do () done) [@await_ok \"\"]\n"
  in
  Alcotest.(check (list string)) "empty reason still fires"
    [ "retry-discipline" ] (rules (check src))

let test_non_shared_loop_clean () =
  (* A recursive loop with no atomic RMW inside is not a retry loop. *)
  let src = "let rec length = function [] -> 0 | _ :: t -> 1 + length t\n" in
  Alcotest.(check int) "pure recursion is clean" 0 (List.length (check src))

(* -------------------------------------------------------------------- *)
(* progress-class *)

let test_missing_declaration_fires () =
  let src =
    "[@@@spec \"stack\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t = ignore t; None\n"
  in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "progress-class" d.L.rule;
      Alcotest.(check int) "anchored at the later binding" 3 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_declared_module_clean () =
  let src =
    "[@@@progress \"blocking\"]\n\
     [@@@spec \"stack\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t = ignore t; None\n"
  in
  Alcotest.(check int) "declared module is clean" 0 (List.length (check src))

let test_invalid_payload_fires () =
  let src =
    "[@@@progress \"wait_free\"]\n\
     [@@@spec \"stack\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t = ignore t; None\n"
  in
  Alcotest.(check (list string)) "unknown class rejected"
    [ "progress-class" ] (rules (check src))

let test_lock_free_spin_fires () =
  let src =
    "[@@@progress \"lock_free\"]\n\
     [@@@spec \"stack\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t = Backoff.spin_until (fun () -> A.get t.done_); None\n"
  in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "progress-class" d.L.rule;
      Alcotest.(check int) "line of the spin" 4 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_lock_free_spin_await_ok_accepted () =
  let src =
    "[@@@progress \"lock_free\"]\n\
     [@@@spec \"stack\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t =\n\
    \  (Backoff.spin_until (fun () -> A.get t.done_)\n\
    \   [@await_ok \"publisher finishes in a bounded number of steps\"]);\n\
    \  None\n"
  in
  Alcotest.(check int) "annotated spin in lock_free module is clean" 0
    (List.length (check src))

let test_half_interface_needs_no_declaration () =
  (* Binding push alone (a helper module, say) is not a stack. *)
  let src = "let push t v = ignore (t, v)\n" in
  Alcotest.(check int) "push without pop: no declaration needed" 0
    (List.length (check src))

(* -------------------------------------------------------------------- *)
(* spec-class *)

let test_spec_missing_declaration_fires () =
  let src =
    "[@@@progress \"blocking\"]\n\
     let pop t = ignore t; None\n\
     let push t v = ignore (t, v)\n"
  in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "spec-class" d.L.rule;
      Alcotest.(check int) "anchored at the later binding" 3 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_spec_stack_declared_clean () =
  let src =
    "[@@@progress \"blocking\"]\n\
     [@@@spec \"stack\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t = ignore t; None\n"
  in
  Alcotest.(check int) "declared stack module is clean" 0
    (List.length (check src))

let test_spec_pool_declared_clean () =
  let src =
    "[@@@progress \"blocking\"]\n\
     [@@@spec \"pool\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t = ignore t; None\n"
  in
  Alcotest.(check int) "declared pool module is clean" 0
    (List.length (check src))

let test_spec_invalid_payload_fires () =
  let src =
    "[@@@progress \"blocking\"]\n\
     [@@@spec \"queue\"]\n\
     let push t v = ignore (t, v)\n\
     let pop t = ignore t; None\n"
  in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "spec-class" d.L.rule;
      Alcotest.(check int) "line of the bad declaration" 2 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_spec_bare_attribute_fires () =
  let src =
    "[@@@progress \"blocking\"]\n\
     [@@@spec]\n\
     let push t v = ignore (t, v)\n\
     let pop t = ignore t; None\n"
  in
  Alcotest.(check (list string)) "payload-less declaration rejected"
    [ "spec-class" ] (rules (check src))

let test_spec_half_interface_exempt () =
  let src = "let pop t = ignore t; None\n" in
  Alcotest.(check int) "pop without push: no declaration needed" 0
    (List.length (check src))

(* -------------------------------------------------------------------- *)
(* Scoping and the driver-facing surface *)

let test_scope_of_path () =
  let s = L.scope_of_path "lib/stacks/treiber.ml" in
  Alcotest.(check bool) "stacks: discipline on" true s.L.check_discipline;
  Alcotest.(check bool) "stacks: no Obj" false s.L.allow_obj;
  let s = L.scope_of_path "lib/sim/sim.ml" in
  Alcotest.(check bool) "sim: discipline off" false s.L.check_discipline;
  let s = L.scope_of_path "lib/prim/padding.ml" in
  Alcotest.(check bool) "padding.ml: Obj allowed" true s.L.allow_obj

let test_out_of_scope_mutable_clean () =
  let scope = { L.check_discipline = false; allow_obj = false } in
  let src = "type t = { mutable n : int }\n" in
  Alcotest.(check int) "non-algorithm module: mutable ok" 0
    (List.length (check ~scope src))

let test_parse_error_is_a_diagnostic () =
  match check "let let let\n" with
  | [ d ] -> Alcotest.(check string) "rule" "parse-error" d.L.rule
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_clean_fixture () =
  let src =
    "type t = { top : int A.t }\n\
     let create () = { top = A.make_padded 0 }\n\
     let bump t = A.incr t.top\n"
  in
  Alcotest.(check int) "idiomatic module is clean" 0 (List.length (check src))

(* The real tree must be clean after this PR's fixes: run the same check
   the @lint alias runs (interprocedural facts included — several
   annotations were deleted because the summaries discharge them) over a
   few load-bearing files. *)
module Summary = Sec_summary.Summary

(* The summary environment must cover the whole library, exactly as the
   @lint alias runs it: signature constraints (e.g. [Stack_intf.S])
   resolve through other files, and an unresolved constraint makes
   every binding an entry point, re-arming helper obligations. *)
let rec gather path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc e -> gather (Filename.concat path e) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let test_repo_files_clean () =
  if Sys.file_exists "../lib" then begin
    let env = Summary.analyze (gather "../lib" []) in
    List.iter
      (fun path ->
        match L.check_file ~facts:(Summary.facts_for env ~file:path) path with
        | [] -> ()
        | ds ->
            Alcotest.failf "%s: %s" path
              (String.concat "; " (List.map L.diagnostic_to_string ds)))
      [
        "../lib/core/sec_stack.ml";
        "../lib/stacks/ccsynch.ml";
        "../lib/stacks/exchanger.ml";
        "../lib/stacks/eb_stack.ml";
        "../lib/reclaim/ebr.ml";
        "../lib/reclaim/ts_stack_ebr.ml";
      ]
  end

(* check_string and check_file share one location pipeline: linting the
   same bytes from memory and from disk must produce identical
   diagnostics, columns included (multi-line annotations used to
   disagree). *)
let test_check_string_file_agree () =
  let path = "../lib/stacks/ts_stack.ml" in
  if Sys.file_exists path then begin
    let src = L.read_file path in
    let of_file = L.check_file path in
    let of_string = L.check_string ~filename:path src in
    Alcotest.(check (list string)) "identical diagnostics"
      (List.map L.diagnostic_to_string of_file)
      (List.map L.diagnostic_to_string of_string)
  end

(* -------------------------------------------------------------------- *)
(* Audit: live and stale annotations *)

let audit ?facts src =
  L.audit_string ?facts ~scope:discipline_scope ~filename:"fixture.ml" src

let test_audit_live_annotation () =
  (* Removing the annotation would add an ebr-guard diagnostic, so it is
     live. *)
  let src =
    ebr_prelude ^ "let value_of n = n.value [@unguarded_ok \"callers guard\"]\n"
  in
  match audit src with
  | [ e ] ->
      Alcotest.(check string) "name" "unguarded_ok"
        e.L.audit_annotation.L.ann_name;
      Alcotest.(check bool) "live" true e.L.audit_live
  | es -> Alcotest.failf "expected one audit entry, got %d" (List.length es)

let test_audit_stale_annotation () =
  (* The annotated expression never fires any rule: removal changes
     nothing, so the annotation is stale. *)
  let src = "let f () = (0 [@await_ok \"pointless\"])\n" in
  match audit src with
  | [ e ] ->
      Alcotest.(check string) "name" "await_ok"
        e.L.audit_annotation.L.ann_name;
      Alcotest.(check bool) "stale" false e.L.audit_live
  | es -> Alcotest.failf "expected one audit entry, got %d" (List.length es)

let test_audit_facts_make_annotation_stale () =
  (* A loop paced only through a helper: syntactically the [@await_ok]
     is load-bearing, interprocedurally it is redundant — the summary
     facts flip the audit verdict. This is the exchanger/eb_stack
     cleanup this PR applied to the real tree. *)
  let src =
    "module A = Atomic\n\
     let settle () = Prim.relax 8\n\
     let wait f = (while not (A.get f) do settle () done) [@await_ok \"x\"]\n"
  in
  (match audit src with
  | [ e ] -> Alcotest.(check bool) "live without facts" true e.L.audit_live
  | es -> Alcotest.failf "expected one audit entry, got %d" (List.length es));
  let env =
    Summary.analyze_sources ~scope:discipline_scope [ ("fixture.ml", src) ]
  in
  match audit ~facts:(Summary.facts_for env ~file:"fixture.ml") src with
  | [ e ] -> Alcotest.(check bool) "stale with facts" false e.L.audit_live
  | es -> Alcotest.failf "expected one audit entry, got %d" (List.length es)

(* -------------------------------------------------------------------- *)
(* SARIF output shape *)

module J = Sec_harness.Bench_json

let test_sarif_shape () =
  let ds =
    [
      {
        L.file = "lib/stacks/x.ml";
        line = 3;
        col = 5;
        rule = "ebr-guard";
        message = "naked deref of \"n\"";
      };
      {
        L.file = "lib/stacks/y.ml";
        line = 7;
        col = 0;
        rule = "plain-publication";
        message = "lost update";
      };
    ]
  in
  let doc = J.parse (L.sarif_of_diagnostics ds) in
  Alcotest.(check string) "version" "2.1.0" J.(to_str (member "version" doc));
  let run =
    match J.member "runs" doc with
    | J.Arr [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver = J.(member "driver" (member "tool" run)) in
  Alcotest.(check string) "tool name" "sec_lint"
    J.(to_str (member "name" driver));
  (match J.member "rules" driver with
  | J.Arr rules ->
      Alcotest.(check (list string)) "rule ids, sorted and unique"
        [ "ebr-guard"; "plain-publication" ]
        (List.map (fun r -> J.(to_str (member "id" r))) rules)
  | _ -> Alcotest.fail "expected a rules array");
  match J.member "results" run with
  | J.Arr [ r1; _ ] ->
      Alcotest.(check string) "ruleId" "ebr-guard"
        J.(to_str (member "ruleId" r1));
      Alcotest.(check string) "level" "error" J.(to_str (member "level" r1));
      Alcotest.(check string) "message text" "naked deref of \"n\""
        J.(to_str (member "text" (member "message" r1)));
      let phys =
        match J.member "locations" r1 with
        | J.Arr [ l ] -> J.member "physicalLocation" l
        | _ -> Alcotest.fail "expected one location"
      in
      Alcotest.(check string) "uri" "lib/stacks/x.ml"
        J.(to_str (member "uri" (member "artifactLocation" phys)));
      let region = J.member "region" phys in
      Alcotest.(check int) "startLine" 3 J.(to_int (member "startLine" region));
      Alcotest.(check int) "startColumn" 6
        J.(to_int (member "startColumn" region))
  | _ -> Alcotest.fail "expected two results"

let () =
  Alcotest.run "lint"
    [
      ( "mutable-field",
        [
          Alcotest.test_case "fires with file:line" `Quick
            test_mutable_field_fires;
          Alcotest.test_case "plain_ok accepted" `Quick test_plain_ok_accepted;
          Alcotest.test_case "empty reason rejected" `Quick
            test_empty_plain_ok_rejected;
        ] );
      ( "unpadded-atomic",
        [
          Alcotest.test_case "record literal" `Quick
            test_unpadded_atomic_in_record_fires;
          Alcotest.test_case "array builder" `Quick
            test_unpadded_atomic_in_array_fires;
          Alcotest.test_case "unpadded_ok accepted" `Quick
            test_unpadded_ok_accepted;
          Alcotest.test_case "local atomic ok" `Quick
            test_local_atomic_not_flagged;
        ] );
      ( "obj-confinement",
        [
          Alcotest.test_case "fires" `Quick test_obj_use_fires;
          Alcotest.test_case "padding.ml exempt" `Quick
            test_obj_allowed_in_padding;
        ] );
      ( "ebr-guard",
        [
          Alcotest.test_case "naked deref fires" `Quick test_ebr_guard_fires;
          Alcotest.test_case "guard extent clean" `Quick
            test_ebr_guard_extent_clean;
          Alcotest.test_case "unguarded_ok covers subtree" `Quick
            test_unguarded_ok_covers_subtree;
          Alcotest.test_case "empty reason rejected" `Quick
            test_empty_unguarded_ok_rejected;
          Alcotest.test_case "needs an Ebr reference" `Quick
            test_ebr_rules_need_ebr_reference;
        ] );
      ( "retire-once",
        [
          Alcotest.test_case "ungated retire fires" `Quick
            test_retire_once_fires;
          Alcotest.test_case "CAS-gated retire clean" `Quick
            test_retire_gated_by_cas_clean;
          Alcotest.test_case "retire_ok accepted" `Quick
            test_retire_ok_accepted;
        ] );
      ( "retry-discipline",
        [
          Alcotest.test_case "while on atomic fires" `Quick
            test_while_on_atomic_fires;
          Alcotest.test_case "bare CAS loop fires" `Quick
            test_bare_cas_loop_fires;
          Alcotest.test_case "paced loops clean" `Quick test_paced_loops_clean;
          Alcotest.test_case "await_ok accepted" `Quick test_await_ok_accepted;
          Alcotest.test_case "empty reason rejected" `Quick
            test_empty_await_ok_rejected;
          Alcotest.test_case "pure recursion clean" `Quick
            test_non_shared_loop_clean;
        ] );
      ( "progress-class",
        [
          Alcotest.test_case "missing declaration fires" `Quick
            test_missing_declaration_fires;
          Alcotest.test_case "declared module clean" `Quick
            test_declared_module_clean;
          Alcotest.test_case "invalid payload rejected" `Quick
            test_invalid_payload_fires;
          Alcotest.test_case "lock_free spin fires" `Quick
            test_lock_free_spin_fires;
          Alcotest.test_case "lock_free spin under await_ok" `Quick
            test_lock_free_spin_await_ok_accepted;
          Alcotest.test_case "half interface exempt" `Quick
            test_half_interface_needs_no_declaration;
        ] );
      ( "spec-class",
        [
          Alcotest.test_case "missing declaration fires" `Quick
            test_spec_missing_declaration_fires;
          Alcotest.test_case "declared stack clean" `Quick
            test_spec_stack_declared_clean;
          Alcotest.test_case "declared pool clean" `Quick
            test_spec_pool_declared_clean;
          Alcotest.test_case "invalid payload rejected" `Quick
            test_spec_invalid_payload_fires;
          Alcotest.test_case "payload-less declaration rejected" `Quick
            test_spec_bare_attribute_fires;
          Alcotest.test_case "half interface exempt" `Quick
            test_spec_half_interface_exempt;
        ] );
      ( "scope",
        [
          Alcotest.test_case "scope_of_path" `Quick test_scope_of_path;
          Alcotest.test_case "out of scope mutable" `Quick
            test_out_of_scope_mutable_clean;
          Alcotest.test_case "parse error reported" `Quick
            test_parse_error_is_a_diagnostic;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
          Alcotest.test_case "repo files clean" `Quick test_repo_files_clean;
          Alcotest.test_case "check_string agrees with check_file" `Quick
            test_check_string_file_agree;
        ] );
      ( "audit",
        [
          Alcotest.test_case "live annotation" `Quick
            test_audit_live_annotation;
          Alcotest.test_case "stale annotation" `Quick
            test_audit_stale_annotation;
          Alcotest.test_case "facts flip liveness" `Quick
            test_audit_facts_make_annotation_stale;
        ] );
      ( "sarif",
        [ Alcotest.test_case "document shape" `Quick test_sarif_shape ] );
    ]
