(* Tests for the discipline lint: each rule class must fire on a seeded
   fixture at an exact file:line, accept the documented annotations, and
   stay silent outside its scope. *)

module L = Sec_lint_rules.Lint_rules

let discipline_scope = { L.check_discipline = true; allow_obj = false }

let check ?(scope = discipline_scope) src =
  L.check_string ~scope ~filename:"fixture.ml" src

let rules ds = List.map (fun d -> d.L.rule) ds

(* -------------------------------------------------------------------- *)
(* mutable-field *)

let test_mutable_field_fires () =
  let src = "type t = {\n  value : int;\n  mutable next : t option;\n}\n" in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "mutable-field" d.L.rule;
      Alcotest.(check string) "file" "fixture.ml" d.L.file;
      Alcotest.(check int) "line of the mutable field" 3 d.L.line;
      Alcotest.(check bool) "message names the field" true
        (String.length d.L.message > 0)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_plain_ok_accepted () =
  let src =
    "type t = {\n\
    \  value : int;\n\
    \  mutable next : t option;\n\
    \      [@plain_ok \"published by the combiner's release CAS\"]\n\
     }\n"
  in
  Alcotest.(check int) "annotated field is clean" 0 (List.length (check src))

let test_empty_plain_ok_rejected () =
  (* The annotation must carry an argument — a bare tag is not a
     publication argument. *)
  let src = "type t = { mutable next : t option [@plain_ok \"\"] }\n" in
  Alcotest.(check (list string)) "empty reason still fires"
    [ "mutable-field" ] (rules (check src))

(* -------------------------------------------------------------------- *)
(* unpadded-atomic *)

let test_unpadded_atomic_in_record_fires () =
  let src =
    "let create () = {\n\
    \  top = A.make None;\n\
    \  count = A.make_padded 0;\n\
     }\n"
  in
  match check src with
  | [ d ] ->
      Alcotest.(check string) "rule" "unpadded-atomic" d.L.rule;
      Alcotest.(check int) "line of the unpadded make" 2 d.L.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_unpadded_atomic_in_array_fires () =
  let src = "let slots n = Array.init n (fun _ -> Atomic.make None)\n" in
  Alcotest.(check (list string)) "array-builder counts as shared"
    [ "unpadded-atomic" ] (rules (check src))

let test_unpadded_ok_accepted () =
  let src =
    "let node v = {\n\
    \  ts = (A.make v [@unpadded_ok \"written once, then read-only\"]);\n\
     }\n"
  in
  Alcotest.(check int) "annotated make is clean" 0 (List.length (check src))

let test_local_atomic_not_flagged () =
  (* An atomic that is not stored into a record or array is not a
     long-lived shared block. *)
  let src = "let f () = let c = A.make 0 in A.get c\n" in
  Alcotest.(check int) "local make is clean" 0 (List.length (check src))

(* -------------------------------------------------------------------- *)
(* obj-confinement *)

let test_obj_use_fires () =
  let src = "let f x = Obj.magic x\n" in
  match check src with
  | [ d ] -> Alcotest.(check string) "rule" "obj-confinement" d.L.rule
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_obj_allowed_in_padding () =
  let scope = { L.check_discipline = false; allow_obj = true } in
  let src = "let f x = Obj.magic x\n" in
  Alcotest.(check int) "padding.ml scope is exempt" 0
    (List.length (check ~scope src))

(* -------------------------------------------------------------------- *)
(* Scoping and the driver-facing surface *)

let test_scope_of_path () =
  let s = L.scope_of_path "lib/stacks/treiber.ml" in
  Alcotest.(check bool) "stacks: discipline on" true s.L.check_discipline;
  Alcotest.(check bool) "stacks: no Obj" false s.L.allow_obj;
  let s = L.scope_of_path "lib/sim/sim.ml" in
  Alcotest.(check bool) "sim: discipline off" false s.L.check_discipline;
  let s = L.scope_of_path "lib/prim/padding.ml" in
  Alcotest.(check bool) "padding.ml: Obj allowed" true s.L.allow_obj

let test_out_of_scope_mutable_clean () =
  let scope = { L.check_discipline = false; allow_obj = false } in
  let src = "type t = { mutable n : int }\n" in
  Alcotest.(check int) "non-algorithm module: mutable ok" 0
    (List.length (check ~scope src))

let test_parse_error_is_a_diagnostic () =
  match check "let let let\n" with
  | [ d ] -> Alcotest.(check string) "rule" "parse-error" d.L.rule
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_clean_fixture () =
  let src =
    "type t = { top : int A.t }\n\
     let create () = { top = A.make_padded 0 }\n\
     let bump t = A.incr t.top\n"
  in
  Alcotest.(check int) "idiomatic module is clean" 0 (List.length (check src))

(* The real tree must be clean after this PR's fixes: run the same check
   the @lint alias runs over a few load-bearing files. *)
let test_repo_files_clean () =
  List.iter
    (fun path ->
      if Sys.file_exists path then
        match L.check_file path with
        | [] -> ()
        | ds ->
            Alcotest.failf "%s: %s" path
              (String.concat "; " (List.map L.diagnostic_to_string ds)))
    [
      "../lib/core/sec_stack.ml";
      "../lib/stacks/ccsynch.ml";
      "../lib/reclaim/ebr.ml";
    ]

let () =
  Alcotest.run "lint"
    [
      ( "mutable-field",
        [
          Alcotest.test_case "fires with file:line" `Quick
            test_mutable_field_fires;
          Alcotest.test_case "plain_ok accepted" `Quick test_plain_ok_accepted;
          Alcotest.test_case "empty reason rejected" `Quick
            test_empty_plain_ok_rejected;
        ] );
      ( "unpadded-atomic",
        [
          Alcotest.test_case "record literal" `Quick
            test_unpadded_atomic_in_record_fires;
          Alcotest.test_case "array builder" `Quick
            test_unpadded_atomic_in_array_fires;
          Alcotest.test_case "unpadded_ok accepted" `Quick
            test_unpadded_ok_accepted;
          Alcotest.test_case "local atomic ok" `Quick
            test_local_atomic_not_flagged;
        ] );
      ( "obj-confinement",
        [
          Alcotest.test_case "fires" `Quick test_obj_use_fires;
          Alcotest.test_case "padding.ml exempt" `Quick
            test_obj_allowed_in_padding;
        ] );
      ( "scope",
        [
          Alcotest.test_case "scope_of_path" `Quick test_scope_of_path;
          Alcotest.test_case "out of scope mutable" `Quick
            test_out_of_scope_mutable_clean;
          Alcotest.test_case "parse error reported" `Quick
            test_parse_error_is_a_diagnostic;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
          Alcotest.test_case "repo files clean" `Quick test_repo_files_clean;
        ] );
    ]
