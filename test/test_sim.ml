(* Tests for the discrete-event simulator: cost model, scheduling,
   determinism, virtual-time parallelism — and the concurrent stacks
   running inside it at thread counts this host cannot reach natively. *)

module Topology = Sec_sim.Topology
module Cache = Sec_sim.Cache_model
module Sim = Sec_sim.Sim
module SP = Sim.Prim

(* ------------------------------------------------------------------ *)
(* Cache model                                                          *)

let costs = Topology.default_costs

let test_cache_read_costs () =
  let c = Cache.create Topology.testbox in
  let loc = Cache.new_line c ~core:7 ~socket:1 in
  (* The creator owns the line: its reads are L1 hits. *)
  let creator = Cache.access c ~core:7 ~socket:1 ~loc ~now:100 Cache.Read in
  Alcotest.(check int) "creator reads own line" (100 + costs.Topology.l1_hit)
    creator;
  (* First read from the other socket: a remote transfer. *)
  let first = Cache.access c ~core:0 ~socket:0 ~loc ~now:200 Cache.Read in
  Alcotest.(check int) "cross-socket first read"
    (200 + costs.Topology.remote_transfer)
    first;
  (* Re-read: now cached in our socket. *)
  let again = Cache.access c ~core:0 ~socket:0 ~loc ~now:500 Cache.Read in
  Alcotest.(check int) "shared re-read" (500 + costs.Topology.shared_hit) again

let test_cache_write_invalidates () =
  let c = Cache.create Topology.testbox in
  let loc = Cache.new_line c ~core:0 ~socket:0 in
  ignore (Cache.access c ~core:0 ~socket:0 ~loc ~now:0 Cache.Read);
  ignore (Cache.access c ~core:4 ~socket:1 ~loc ~now:0 Cache.Read);
  (* A write from socket 0 must pay to invalidate socket 1's copy. *)
  let w = Cache.access c ~core:0 ~socket:0 ~loc ~now:1_000 Cache.Write in
  Alcotest.(check bool) "write pays invalidation" true
    (w
    >= 1_000 + costs.Topology.local_transfer
       + costs.Topology.invalidate_per_socket);
  (* Writer now owns the line exclusively. *)
  let own = Cache.access c ~core:0 ~socket:0 ~loc ~now:2_000 Cache.Write in
  Alcotest.(check int) "exclusive rewrite" (2_000 + costs.Topology.l1_hit) own

let test_cache_rmw_premium () =
  let c = Cache.create Topology.testbox in
  let loc = Cache.new_line c ~core:0 ~socket:0 in
  let owned_rmw = Cache.access c ~core:0 ~socket:0 ~loc ~now:0 Cache.Rmw in
  Alcotest.(check int) "owned RMW = l1 + premium"
    (costs.Topology.l1_hit + costs.Topology.rmw_extra)
    owned_rmw

let test_cache_line_serializes () =
  (* Two RMW misses issued at the same instant must queue: the second
     finishes a full transfer after the first. This is the property that
     makes a hot CAS cell a sequential bottleneck. *)
  let c = Cache.create Topology.testbox in
  let loc = Cache.new_line c ~core:9 ~socket:1 in
  let e1 = Cache.access c ~core:0 ~socket:0 ~loc ~now:0 Cache.Rmw in
  let e2 = Cache.access c ~core:1 ~socket:0 ~loc ~now:0 Cache.Rmw in
  let e3 = Cache.access c ~core:2 ~socket:0 ~loc ~now:0 Cache.Rmw in
  Alcotest.(check bool) "second queues behind first" true (e2 >= e1 + 1);
  Alcotest.(check bool) "third queues behind second" true (e3 >= e2 + 1);
  (* A hit on an unrelated line does not queue. *)
  let loc2 = Cache.new_line c ~core:0 ~socket:0 in
  let h = Cache.access c ~core:0 ~socket:0 ~loc:loc2 ~now:0 Cache.Read in
  Alcotest.(check int) "independent line is free" costs.Topology.l1_hit h

let test_cache_ping_pong_traffic () =
  (* Alternating RMWs from two sockets: every access is a transfer. *)
  let c = Cache.create Topology.testbox in
  let loc = Cache.new_line c ~core:9 ~socket:1 in
  let now = ref 0 in
  for _ = 1 to 10 do
    now := Cache.access c ~core:0 ~socket:0 ~loc ~now:!now Cache.Rmw;
    now := Cache.access c ~core:4 ~socket:1 ~loc ~now:!now Cache.Rmw
  done;
  let t = Cache.traffic c in
  Alcotest.(check bool) "transfers counted" true (t.Cache.transfers >= 19);
  Alcotest.(check bool) "remote transfers counted" true
    (t.Cache.remote_transfers >= 18)

let qcheck_cache_model_invariants =
  (* Random access sequences: end times never precede start times by less
     than an L1 hit, per-line busy times are monotone, traffic counters
     never decrease. *)
  QCheck.Test.make ~name:"cache model invariants" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 60)
        (triple (int_range 0 7) (int_range 0 3) (int_range 0 2)))
    (fun accesses ->
      let c = Cache.create Topology.testbox in
      let locs = Array.init 4 (fun i -> Cache.new_line c ~core:i ~socket:(i / 2)) in
      let now = ref 0 in
      let prev_transfers = ref 0 in
      List.for_all
        (fun (core, loc_idx, k) ->
          let kind =
            match k with 0 -> Cache.Read | 1 -> Cache.Write | _ -> Cache.Rmw
          in
          let socket = core / 4 in
          let finish =
            Cache.access c ~core ~socket ~loc:locs.(loc_idx) ~now:!now kind
          in
          let ok =
            finish >= !now + costs.Topology.l1_hit
            && (Cache.traffic c).Cache.transfers >= !prev_transfers
          in
          prev_transfers := (Cache.traffic c).Cache.transfers;
          now := finish;
          ok)
        accesses)

let test_smt_siblings_share_cache () =
  (* Two SMT siblings hammering one line finish much sooner than two
     threads on different sockets, because they share a core's cache. *)
  let makespan fid_a fid_b =
    let (), stats =
      Sim.run ~topology:Topology.emerald (fun () ->
          let shared = SP.Atomic.make 0 in
          let top = max fid_a fid_b in
          for fid = 0 to top do
            Sim.spawn (fun () ->
                if fid = fid_a || fid = fid_b then
                  for _ = 1 to 300 do
                    ignore (SP.Atomic.fetch_and_add shared 1)
                  done)
          done;
          Sim.await_all ())
    in
    stats.Sim.elapsed_cycles
  in
  (* Thread 28 is thread 0's SMT sibling; thread 14 is on socket 1. *)
  let siblings = makespan 0 28 and cross_socket = makespan 0 14 in
  Alcotest.(check bool)
    (Printf.sprintf "siblings %d < cross-socket %d cycles" siblings
       cross_socket)
    true
    (siblings * 2 < cross_socket)

(* ------------------------------------------------------------------ *)
(* Topology                                                             *)

let test_topology_placement () =
  Alcotest.(check int) "emerald size" 56 (Topology.max_threads Topology.emerald);
  Alcotest.(check int) "icelake size" 96 (Topology.max_threads Topology.icelake);
  Alcotest.(check int) "sapphire size" 192
    (Topology.max_threads Topology.sapphire);
  Alcotest.(check int) "socket of thread 0" 0
    (Topology.socket_of Topology.emerald 0);
  Alcotest.(check int) "socket of thread 13" 0
    (Topology.socket_of Topology.emerald 13);
  Alcotest.(check int) "socket of thread 14" 1
    (Topology.socket_of Topology.emerald 14);
  (* Thread 28 is the SMT sibling of thread 0: same core, same socket. *)
  Alcotest.(check int) "SMT sibling core" (Topology.core_of Topology.emerald 0)
    (Topology.core_of Topology.emerald 28);
  Alcotest.(check int) "SMT sibling socket" 0
    (Topology.socket_of Topology.emerald 28);
  Alcotest.check_raises "beyond capacity"
    (Invalid_argument "topology emerald supports 56 hardware threads")
    (fun () -> ignore (Topology.socket_of Topology.emerald 56))

let test_topology_by_name () =
  Alcotest.(check string) "lookup" "icelake" (Topology.by_name "icelake").Topology.name;
  Alcotest.check_raises "unknown" (Invalid_argument "unknown topology: mars")
    (fun () -> ignore (Topology.by_name "mars"))

(* ------------------------------------------------------------------ *)
(* Scheduler basics                                                     *)

let test_sim_counter_faa () =
  let n = 8 and per_fiber = 100 in
  let (total, stats) =
    Sim.run ~topology:Topology.testbox (fun () ->
        let c = SP.Atomic.make 0 in
        for _ = 1 to n do
          Sim.spawn (fun () ->
              for _ = 1 to per_fiber do
                ignore (SP.Atomic.fetch_and_add c 1)
              done)
        done;
        Sim.await_all ();
        SP.Atomic.get c)
  in
  Alcotest.(check int) "no lost increments" (n * per_fiber) total;
  Alcotest.(check int) "fibers" n stats.Sim.fibers;
  Alcotest.(check bool) "time advanced" true (stats.Sim.elapsed_cycles > 0)

let test_sim_determinism () =
  let run seed =
    Sim.run ~seed ~jitter:60 ~topology:Topology.testbox (fun () ->
        let c = SP.Atomic.make 0 in
        let log = ref [] in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              for _ = 1 to 50 do
                let v = SP.Atomic.fetch_and_add c 1 in
                if v mod 17 = 0 then log := (Sim.fiber_id (), v) :: !log
              done)
        done;
        Sim.await_all ();
        !log)
  in
  let l1, s1 = run 11 and l2, s2 = run 11 in
  Alcotest.(check bool) "same seed, same interleaving" true (l1 = l2);
  Alcotest.(check int) "same seed, same makespan" s1.Sim.elapsed_cycles
    s2.Sim.elapsed_cycles;
  let l3, _ = run 12 in
  Alcotest.(check bool) "different seed, different interleaving" true (l1 <> l3)

let test_sim_parallelism_in_virtual_time () =
  (* Independent lines scale; a contended line serializes. *)
  let work contended =
    let (), stats =
      Sim.run ~topology:Topology.emerald (fun () ->
          let shared = SP.Atomic.make 0 in
          for _ = 1 to 8 do
            Sim.spawn (fun () ->
                let mine = if contended then shared else SP.Atomic.make 0 in
                for _ = 1 to 500 do
                  ignore (SP.Atomic.fetch_and_add mine 1)
                done)
          done;
          Sim.await_all ())
    in
    stats.Sim.elapsed_cycles
  in
  let independent = work false and contended = work true in
  Alcotest.(check bool)
    (Printf.sprintf "contention serializes (%d vs %d cycles)" contended
       independent)
    true
    (contended > 3 * independent)

let test_sim_numa_penalty () =
  (* The same contended workload costs more when fibers span sockets. *)
  let makespan fibers =
    let (), stats =
      Sim.run ~topology:Topology.emerald (fun () ->
          let shared = SP.Atomic.make 0 in
          for _ = 1 to fibers do
            Sim.spawn (fun () ->
                for _ = 1 to 300 do
                  ignore (SP.Atomic.fetch_and_add shared 1)
                done)
          done;
          Sim.await_all ());
    in
    (stats.Sim.elapsed_cycles, stats.Sim.traffic.Cache.remote_transfers)
  in
  let _, remote_single = makespan 8 in
  let _, remote_spanning = makespan 40 in
  Alcotest.(check int) "one socket: no remote traffic" 0 remote_single;
  Alcotest.(check bool) "two sockets: remote traffic" true (remote_spanning > 0)

let test_sim_spawn_limit () =
  Alcotest.check_raises "too many fibers"
    (Invalid_argument "topology testbox supports 8 hardware threads")
    (fun () ->
      ignore
        (Sim.run ~topology:Topology.testbox (fun () ->
             for _ = 1 to 9 do
               Sim.spawn (fun () -> ())
             done;
             Sim.await_all ())))

let test_sim_prim_outside_run () =
  match SP.Atomic.make 0 with
  | _ -> Alcotest.fail "expected Effect.Unhandled outside Sim.run"
  | exception Effect.Unhandled _ -> ()

let test_sim_spawn_inherits_time () =
  (* A worker's clock starts at its spawner's time: work done by main
     before spawning is on the critical path. *)
  let first_worker_start, _ =
    Sim.run ~topology:Topology.testbox (fun () ->
        SP.relax 5_000;
        let seen = ref 0L in
        Sim.spawn (fun () -> seen := SP.now_ns ());
        Sim.await_all ();
        !seen)
  in
  Alcotest.(check bool) "worker starts after spawner's work" true
    (Int64.compare first_worker_start 5_000L >= 0)

let test_sim_await_without_workers () =
  let v, stats = Sim.run ~topology:Topology.testbox (fun () ->
      Sim.await_all ();
      99)
  in
  Alcotest.(check int) "await with no workers returns" 99 v;
  Alcotest.(check int) "no fibers" 0 stats.Sim.fibers

let test_sim_sequential_runs_independent () =
  (* Two runs back to back must not share state (fresh cache, fresh ids). *)
  let go () =
    Sim.run ~topology:Topology.testbox (fun () ->
        let c = SP.Atomic.make 0 in
        for _ = 1 to 4 do
          Sim.spawn (fun () -> SP.Atomic.incr c)
        done;
        Sim.await_all ();
        SP.Atomic.get c)
  in
  let a, sa = go () in
  let b, sb = go () in
  Alcotest.(check int) "same result" a b;
  Alcotest.(check int) "same makespan" sa.Sim.elapsed_cycles sb.Sim.elapsed_cycles

let test_sim_relax_advances_clock () =
  let t, _ =
    Sim.run ~topology:Topology.testbox (fun () ->
        let a = SP.now_ns () in
        SP.relax 1000;
        let b = SP.now_ns () in
        Int64.to_int (Int64.sub b a))
  in
  Alcotest.(check bool) "relax 1000 >= 1000 cycles" true (t >= 1000)

(* ------------------------------------------------------------------ *)
(* Stacks inside the simulator, at paper-scale thread counts            *)

module type STACK = Sec_spec.Stack_intf.S

let sim_conservation (module S : STACK) ~threads ~ops () =
  let pushed_minus_popped, _ =
    Sim.run ~topology:Topology.emerald (fun () ->
        let s = S.create ~max_threads:threads () in
        let pushed = Array.make threads 0 and popped = Array.make threads 0 in
        for _ = 1 to threads do
          Sim.spawn (fun () ->
              let tid = Sim.fiber_id () in
              for i = 1 to ops do
                if SP.rand_int 2 = 0 then begin
                  S.push s ~tid ((tid * 1_000_000) + i);
                  pushed.(tid) <- pushed.(tid) + 1
                end
                else
                  match S.pop s ~tid with
                  | Some _ -> popped.(tid) <- popped.(tid) + 1
                  | None -> ()
              done)
        done;
        Sim.await_all ();
        (* Drain sequentially as a fresh fiber would; main can use tid 0. *)
        let rec drain n =
          match S.pop s ~tid:0 with Some _ -> drain (n + 1) | None -> n
        in
        let remaining = drain 0 in
        Array.fold_left ( + ) 0 pushed - Array.fold_left ( + ) 0 popped - remaining)
  in
  Alcotest.(check int) "pushed = popped + remaining" 0 pushed_minus_popped

module SimTreiber = Sec_stacks.Treiber.Make (SP)
module SimEb = Sec_stacks.Eb_stack.Make (SP)
module SimFc = Sec_stacks.Fc_stack.Make (SP)
module SimCc = Sec_stacks.Cc_stack.Make (SP)
module SimTs = Sec_stacks.Ts_stack.Make (SP)
module SimSec = Sec_core.Sec_stack.Make (SP)

let sim_linearizability (module S : STACK) ?(threads = 5) ?(ops = 8)
    ?(seeds = 8) () =
  let module I = Sec_spec.History.Instrument (SP) (S) in
  for seed = 1 to seeds do
    let events, _ =
      Sim.run ~seed ~jitter:40 ~topology:Topology.testbox (fun () ->
          let t = I.create ~max_threads:threads () in
          for _ = 1 to threads do
            Sim.spawn (fun () ->
                let tid = Sim.fiber_id () in
                for i = 1 to ops do
                  match SP.rand_int 5 with
                  | 0 | 1 -> I.push t ~tid ((tid * 1_000_000) + i)
                  | 2 | 3 -> ignore (I.pop t ~tid)
                  | _ -> ignore (I.peek t ~tid)
                done)
          done;
          Sim.await_all ();
          Sec_spec.History.events t.I.history)
    in
    match Sec_spec.Lin_check.check events with
    | Sec_spec.Lin_check.Linearizable -> ()
    | Sec_spec.Lin_check.Gave_up ->
        Printf.eprintf "[%s] sim lin check gave up (seed %d)\n%!" S.name seed
    | Sec_spec.Lin_check.Not_linearizable ->
        Alcotest.failf "%s: seed %d produced a non-linearizable history" S.name
          seed
  done

(* ------------------------------------------------------------------ *)
(* Adversarial paths through the event loop: suspension freezing a
   worker mid-spin, event-budget exhaustion, jitter determinism, and
   heap key-packing range checks.                                       *)

(* Freeze worker 0 before its 3rd access while worker 1 spins on the
   flag only worker 0 can set: the loop must hit the event budget and
   raise Stalled rather than spin forever.                              *)
let test_suspend_stalls_spinner () =
  let run () =
    Sim.run ~seed:5 ~suspend:(0, 3) ~max_events:50_000
      ~topology:Topology.testbox (fun () ->
        let flag = SP.Atomic.make 0 in
        Sim.spawn (fun () ->
            ignore (SP.Atomic.get flag);
            ignore (SP.Atomic.get flag);
            (* frozen before this store: *)
            SP.Atomic.set flag 1);
        Sim.spawn (fun () ->
            while SP.Atomic.get flag = 0 do
              SP.relax 1
            done);
        Sim.await_all ())
  in
  match run () with
  | _ -> Alcotest.fail "expected Stalled"
  | exception Sim.Stalled -> ()

(* A suspended worker stops counting as live, so await_all returns once
   its peers finish when nobody depends on the victim.                  *)
let test_suspend_peers_finish () =
  let total, _ =
    Sim.run ~seed:6 ~suspend:(0, 2) ~topology:Topology.testbox (fun () ->
        let c = SP.Atomic.make 0 in
        for _ = 1 to 3 do
          Sim.spawn (fun () ->
              for _ = 1 to 10 do
                ignore (SP.Atomic.fetch_and_add c 1)
              done)
        done;
        Sim.await_all ();
        SP.Atomic.get c)
  in
  (* Worker 0 completed one faa before freezing; its peers all ran. *)
  Alcotest.(check int) "survivors' increments" 21 total

(* max_events bounds any run, adversary or not. *)
let test_max_events_exhaustion () =
  let run () =
    Sim.run ~seed:7 ~max_events:100 ~topology:Topology.testbox (fun () ->
        let c = SP.Atomic.make 0 in
        Sim.spawn (fun () ->
            for _ = 1 to 10_000 do
              ignore (SP.Atomic.fetch_and_add c 1)
            done);
        Sim.await_all ())
  in
  match run () with
  | _ -> Alcotest.fail "expected Stalled"
  | exception Sim.Stalled -> ()

(* Same seed + jitter -> identical schedule digest and event count;
   different jitter -> a different schedule (the digest must move).     *)
let jittered_digest ~seed ~jitter =
  let _, stats =
    Sim.run ~seed ~jitter ~topology:Topology.testbox (fun () ->
        let c = SP.Atomic.make 0 in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              for _ = 1 to 25 do
                ignore (SP.Atomic.fetch_and_add c 1)
              done)
        done;
        Sim.await_all ())
  in
  (stats.Sim.schedule_digest, stats.Sim.events)

let test_jitter_determinism () =
  let d1 = jittered_digest ~seed:42 ~jitter:9 in
  let d2 = jittered_digest ~seed:42 ~jitter:9 in
  Alcotest.(check (pair int int)) "same seed+jitter replays" d1 d2;
  let d3 = jittered_digest ~seed:42 ~jitter:10 in
  Alcotest.(check bool) "jitter change perturbs schedule" true
    (fst d1 <> fst d3);
  Alcotest.(check bool) "digest non-negative" true (fst d1 >= 0)

(* Heap key packing rejects out-of-range fids and times instead of
   silently corrupting the schedule order.                              *)
let test_heap_pack_range () =
  let max_fid = (1 lsl Sim.Heap.fid_bits) - 1 - Sim.Heap.fid_bias in
  (* In-range keys pack and preserve (time, fid) ordering. *)
  Alcotest.(check bool) "time dominates" true
    (Sim.Heap.pack 5 max_fid < Sim.Heap.pack 6 0);
  Alcotest.(check bool) "fid breaks ties" true
    (Sim.Heap.pack 5 0 < Sim.Heap.pack 5 1);
  let rejects time fid =
    match Sim.Heap.pack time fid with
    | _ -> Alcotest.failf "pack %d %d accepted" time fid
    | exception Invalid_argument _ -> ()
  in
  rejects 0 (max_fid + 1);
  rejects 0 (-1 - Sim.Heap.fid_bias);
  rejects (1 lsl (63 - Sim.Heap.fid_bits)) 0;
  rejects (-1) 0

let () =
  Alcotest.run "sim"
    [
      ( "cache model",
        [
          Alcotest.test_case "read costs" `Quick test_cache_read_costs;
          Alcotest.test_case "write invalidates" `Quick
            test_cache_write_invalidates;
          Alcotest.test_case "rmw premium" `Quick test_cache_rmw_premium;
          Alcotest.test_case "line serializes" `Quick
            test_cache_line_serializes;
          Alcotest.test_case "ping-pong traffic" `Quick
            test_cache_ping_pong_traffic;
          Alcotest.test_case "smt siblings share cache" `Quick
            test_smt_siblings_share_cache;
          QCheck_alcotest.to_alcotest qcheck_cache_model_invariants;
        ] );
      ( "topology",
        [
          Alcotest.test_case "placement" `Quick test_topology_placement;
          Alcotest.test_case "by name" `Quick test_topology_by_name;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "shared counter" `Quick test_sim_counter_faa;
          Alcotest.test_case "determinism" `Quick test_sim_determinism;
          Alcotest.test_case "virtual-time parallelism" `Quick
            test_sim_parallelism_in_virtual_time;
          Alcotest.test_case "numa penalty" `Quick test_sim_numa_penalty;
          Alcotest.test_case "spawn limit" `Quick test_sim_spawn_limit;
          Alcotest.test_case "prim outside run" `Quick test_sim_prim_outside_run;
          Alcotest.test_case "relax advances clock" `Quick
            test_sim_relax_advances_clock;
          Alcotest.test_case "spawn inherits time" `Quick
            test_sim_spawn_inherits_time;
          Alcotest.test_case "await without workers" `Quick
            test_sim_await_without_workers;
          Alcotest.test_case "sequential runs independent" `Quick
            test_sim_sequential_runs_independent;
        ] );
      ( "adversarial paths",
        [
          Alcotest.test_case "suspend stalls a spinner" `Quick
            test_suspend_stalls_spinner;
          Alcotest.test_case "suspend lets peers finish" `Quick
            test_suspend_peers_finish;
          Alcotest.test_case "max_events exhaustion" `Quick
            test_max_events_exhaustion;
          Alcotest.test_case "jitter determinism" `Quick
            test_jitter_determinism;
          Alcotest.test_case "heap pack range" `Quick test_heap_pack_range;
        ] );
      ( "stacks at 40 fibers",
        [
          Alcotest.test_case "treiber conservation" `Quick
            (sim_conservation (module SimTreiber) ~threads:40 ~ops:100);
          Alcotest.test_case "eb conservation" `Quick
            (sim_conservation (module SimEb) ~threads:40 ~ops:100);
          Alcotest.test_case "fc conservation" `Quick
            (sim_conservation (module SimFc) ~threads:40 ~ops:100);
          Alcotest.test_case "cc conservation" `Quick
            (sim_conservation (module SimCc) ~threads:40 ~ops:100);
          Alcotest.test_case "tsi conservation" `Quick
            (sim_conservation (module SimTs) ~threads:40 ~ops:100);
          Alcotest.test_case "sec conservation" `Quick
            (sim_conservation (module SimSec) ~threads:40 ~ops:100);
        ] );
      ( "linearizability under schedule exploration",
        [
          Alcotest.test_case "treiber" `Slow
            (sim_linearizability (module SimTreiber));
          Alcotest.test_case "eb" `Slow (sim_linearizability (module SimEb));
          Alcotest.test_case "fc" `Slow (sim_linearizability (module SimFc));
          Alcotest.test_case "cc" `Slow (sim_linearizability (module SimCc));
          Alcotest.test_case "tsi" `Slow (sim_linearizability (module SimTs));
          Alcotest.test_case "sec" `Slow (sim_linearizability (module SimSec));
        ] );
    ]
