(* Golden tests for the figure pipeline: the pinned-seed cells (one per
   machine profile) must reproduce the pre-refactor CSV bytes and
   per-job schedule digests checked in under test/goldens/, and the
   parallel sweep must be bit-identical to serial execution. The
   parallel leg calls {!Sweep.map} directly (not [run_figures], whose
   policy clamp would fold a 2-domain request back to 1 on a 1-core
   host), so it exercises a real multi-domain pool everywhere. *)

module E = Sec_harness.Experiments
module Sweep = Sec_harness.Sweep

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* cwd is test/ under `dune runtest`, the repo root under `dune exec`. *)
let goldens_dir =
  if Sys.file_exists "goldens" then "goldens"
  else Filename.concat "test" "goldens"

let golden name = read_file (Filename.concat goldens_dir name)
let cell_ids = [ "fig2/100%upd"; "fig5/100%upd"; "fig9/100%upd" ]
let csv_files = [ "fig2_100%upd.csv"; "fig5_100%upd.csv"; "fig9_100%upd.csv" ]

let opts dir =
  { E.scale = 0.05; csv_dir = dir; backend = `Sim; seed = 1 }

(* ------------------------------------------------------------------ *)
(* Serial figures run reproduces the checked-in goldens byte-for-byte. *)

let test_serial_golden () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "sec_test_figures_out"
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  E.run_figures (opts (Some dir)) ~jobs:1 ~only:cell_ids
    ~digest_path:(Filename.concat dir "digests.csv") ();
  List.iter
    (fun f ->
      let got = read_file (Filename.concat dir f) in
      let want = golden (Filename.remove_extension f ^ ".golden.csv") in
      Alcotest.(check string) (f ^ " bytes") want got)
    csv_files;
  let got = read_file (Filename.concat dir "digests.csv") in
  let want = golden "figures_digests.golden.csv" in
  Alcotest.(check string) "digest csv bytes" want got

(* ------------------------------------------------------------------ *)
(* The same cells fanned out over a forced 2-domain pool match the
   golden digests job-for-job.                                          *)

let golden_digests () =
  golden "figures_digests.golden.csv"
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "" && not (String.starts_with ~prefix:"cell," l))
  |> List.map (fun l ->
         match String.split_on_char ',' l with
         | [ cell; job; digest ] -> (cell, int_of_string job, int_of_string digest)
         | _ -> Alcotest.failf "malformed digest line %S" l)

let cell_of id =
  let fig = List.hd (String.split_on_char '/' id) in
  match E.find fig with
  | Some { E.plan = Some plan; _ } -> (
      match List.find_opt (fun c -> c.E.cell_id = id) (plan (opts None)) with
      | Some c -> c
      | None -> Alcotest.failf "experiment %s has no cell %s" fig id)
  | _ -> Alcotest.failf "experiment %s has no figure plan" fig

let test_parallel_digests () =
  let golden = golden_digests () in
  List.iter
    (fun id ->
      let c = cell_of id in
      let results = Sweep.map ~jobs:2 (fun job -> job ()) c.E.cell_jobs in
      let want = List.filter (fun (cell, _, _) -> cell = id) golden in
      Alcotest.(check int) (id ^ " job count") (List.length want)
        (Array.length results);
      List.iter
        (fun (_, j, d) ->
          Alcotest.(check int)
            (Printf.sprintf "%s job %d digest" id j)
            d
            (E.digest_of results.(j)))
        want)
    cell_ids

(* ------------------------------------------------------------------ *)
(* Unknown --only filters are rejected up front, before any job runs.  *)

let test_unknown_filter () =
  match E.run_figures (opts None) ~jobs:1 ~only:[ "fig99" ] () with
  | () -> Alcotest.fail "unknown filter accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "figures"
    [
      ( "golden cells",
        [
          Alcotest.test_case "serial run reproduces goldens" `Quick
            test_serial_golden;
          Alcotest.test_case "2-domain pool matches golden digests" `Quick
            test_parallel_digests;
          Alcotest.test_case "unknown --only rejected" `Quick
            test_unknown_filter;
        ] );
    ]
