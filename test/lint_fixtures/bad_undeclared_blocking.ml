(* progress-class: a module that implements the stack interface (binds
   both [push] and [pop]) but never declares [@@@progress "..."]. The
   waiting is correctly paced, so only the missing declaration fires —
   anchored at the later of the two bindings. The spec class *is*
   declared, so rule 9 stays quiet and the fixture pins rule 7 alone. *)
[@@@spec "stack"]

module A = Atomic

type 'a t = { lock : bool A.t; items : 'a list ref }

let acquire t = Backoff.spin_while (fun () -> not (A.compare_and_set t.lock false true))
let release t = A.set t.lock false

let push t v =
  acquire t;
  t.items := v :: !t.items;
  release t

let pop t = (* EXPECT progress-class *)
  acquire t;
  let r = match !(t.items) with [] -> None | x :: rest -> t.items := rest; Some x in
  release t;
  r
