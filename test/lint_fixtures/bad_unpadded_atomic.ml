(* unpadded-atomic: Atomic cells created with plain [make] and stored in
   long-lived shared blocks (records, arrays) false-share cache lines. *)
module A = Atomic

type t = { slot : int A.t }

let create () = { slot = A.make 0 } (* EXPECT unpadded-atomic *)

let table () = Array.init 4 (fun _ -> A.make 0) (* EXPECT unpadded-atomic *)

let annotated () = { slot = (A.make 0 [@unpadded_ok "short-lived scratch"]) }
let padded () = { slot = A.make_padded 0 }

(* Not stored in a shared block: fine. *)
let local () = A.make 0
