(* fresh-node: a magazine-backed stack that constructs its node record
   directly on the hot path instead of trying [Mag.alloc] first. The
   direct literal in [push] must be flagged; [push_pooled]'s miss
   fallback carries [@fresh_ok] and must stay clean, as must record
   literals whose labels are not node fields ([create]). *)
[@@@progress "lock_free"]

module A = Atomic
module Mag = Magazine.Make (Prim)

type 'a node = {
  mutable value : 'a; [@plain_ok "written while private to the pusher"]
  mutable next : 'a node option; [@plain_ok "see [value]"]
}

type 'a t = { top : 'a node option A.t; mag : 'a node Mag.t }

let create ?(max_threads = 64) () =
  { top = A.make_padded None; mag = Mag.create ~max_threads () }

let push t ~tid:_ v =
  let backoff = Backoff.create () in
  let node = { value = v; next = None } in (* EXPECT fresh-node *)
  let rec attempt () =
    let cur = A.get t.top in
    node.next <- cur;
    if A.compare_and_set t.top cur (Some node) then ()
    else begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()

let push_pooled t ~tid v =
  let backoff = Backoff.create () in
  let node =
    match Mag.alloc t.mag ~tid with
    | Some n ->
        n.value <- v;
        n.next <- None;
        n
    | None ->
        ({ value = v; next = None }
        [@fresh_ok "magazine miss: cold start or pop-starved run"])
  in
  let rec attempt () =
    let cur = A.get t.top in
    node.next <- cur;
    if A.compare_and_set t.top cur (Some node) then ()
    else begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()
