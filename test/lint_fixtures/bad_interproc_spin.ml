(* retry-discipline, interprocedurally: a spin loop that paces itself
   only through a helper is clean — the summary analysis propagates the
   pacing effect across the call — while a loop whose helper does no
   pacing still fires even though a call sits in the body. The
   syntactic rule alone cannot tell these apart; this fixture pins both
   directions. The module binds neither [push] nor [pop], so the
   progress-class rule stays out of the way. *)
module A = Atomic

type t = { flag : bool A.t; word : int A.t; misses : int A.t }

(* Helper that paces: one call away from the loops below. *)
let settle () = Prim.relax 8

(* Helper that does not pace: counting a miss is not backoff. *)
let note_miss t = A.incr t.misses

(* Pacing hidden one call away: clean interprocedurally. *)
let wait_ready t =
  while not (A.get t.flag) do
    settle ()
  done

(* The helper does not pace: still flagged. *)
let wait_hard t =
  while not (A.get t.flag) do (* EXPECT retry-discipline *)
    note_miss t
  done

(* Recursive CAS loop paced through the helper: clean. *)
let add t v =
  let rec attempt () =
    let cur = A.get t.word in
    if not (A.compare_and_set t.word cur (cur + v)) then begin
      settle ();
      attempt ()
    end
  in
  attempt ()

(* Recursive CAS loop whose helper does not pace: still flagged. *)
let bump t =
  let rec attempt () = (* EXPECT retry-discipline *)
    let cur = A.get t.word in
    if not (A.compare_and_set t.word cur (cur + 1)) then begin
      note_miss t;
      attempt ()
    end
  in
  attempt ()
