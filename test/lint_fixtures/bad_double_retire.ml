(* retire-once: this pop retires whether or not it won the unlink CAS
   (the result is thrown away), so two racing poppers can both retire
   the same node — the double-free of deferred reclamation. *)
module A = Atomic
module E = Ebr.Make (Prim)

type 'a node = { value : 'a; next : 'a node option; chk : int }
type 'a t = { top : 'a node option A.t; ebr : E.t }

let pop t ~tid =
  E.guard t.ebr ~tid (fun () ->
      let rec attempt () =
        match A.get t.top with
        | None -> None
        | Some n ->
            ignore (A.compare_and_set t.top (Some n) n.next);
            E.retire t.ebr ~tid (fun () -> ()); (* EXPECT retire-once *)
            Some n.value
      in
      attempt ())

(* Annotated single-owner teardown: accepted. *)
let drop t ~tid node =
  E.guard t.ebr ~tid (fun () ->
      ignore node;
      (E.retire t.ebr ~tid (fun () -> ()) [@retire_ok "single-owner teardown"]))
