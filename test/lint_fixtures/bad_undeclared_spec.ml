(* spec-class: a module that implements the stack interface (binds both
   [push] and [pop]) and declares its progress class but never declares
   which sequential spec its histories refine ([@@@spec "stack"] or
   [@@@spec "pool"]). Only the missing declaration fires — anchored at
   the later of the two bindings. The invalid-payload arm is pinned by
   the unit tests in test/test_lint.ml. *)
[@@@progress "lock_free"]

module A = Atomic

type 'a t = { top : 'a list A.t }

let push t v =
  let backoff = Backoff.create () in
  let rec attempt () =
    let cur = A.get t.top in
    if not (A.compare_and_set t.top cur (v :: cur)) then begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()

let pop t = (* EXPECT spec-class *)
  let backoff = Backoff.create () in
  let rec attempt () =
    match A.get t.top with
    | [] -> None
    | v :: rest ->
        if A.compare_and_set t.top (v :: rest) rest then Some v
        else begin
          Backoff.once backoff;
          attempt ()
        end
  in
  attempt ()
