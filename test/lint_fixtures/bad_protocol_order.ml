(* protocol / loop-progress / unknown-annotation: a module declaring a
   read-before-CAS protocol on [head] and then violating it twice (a CAS
   with no fresh read on the path, and a second CAS after the first
   already consumed the read); a [@@@progress "lock_free"] declaration
   contradicted by a read-only spin the classifier proves stuck; and a
   misspelled suppression annotation that suppresses nothing. *)
[@@@progress "lock_free"] (* EXPECT loop-progress *)
[@@@spec "stack"]

[@@@protocol
  "hand: idle -read:head-> seen; seen -read:head-> seen; seen -rmw:head-> \
   idle"]

module A = Atomic

type 'a t = { head : 'a list A.t; size : int A.t }

(* CAS against a guessed value: the protocol requires a fresh read of
   [head] on the same path before the RMW. *)
let push t v =
  let cur = [] in
  if A.compare_and_set t.head cur (v :: cur) (* EXPECT protocol *)
  then ()

(* The first CAS consumes the read; the retry reuses the stale
   snapshot instead of re-reading. *)
let pop t =
  let cur = A.get t.head in
  if A.compare_and_set t.head cur [] then
    ignore (A.compare_and_set t.head cur cur) (* EXPECT protocol *)

let wait t =
  (while A.get t.size = 0 do (* EXPECT retry-discipline *)
     ()
   done)
  [@awiat_ok "misspelled: suppresses nothing"] (* EXPECT unknown-annotation *)
