(* mutable-field: plain mutable fields in a discipline module must carry
   a [@plain_ok "publication argument"]. *)
module A = Atomic

type 'a t = {
  mutable size : int; (* EXPECT mutable-field *)
  top : 'a list A.t;
}

type 'a scratch = {
  mutable bare : 'a option [@plain_ok ""]; (* EXPECT mutable-field *)
  mutable cache : 'a option [@plain_ok "thread-private scratch"];
  id : int;
}

let create () = { size = 0; top = A.make_padded [] }
let grow t = t.size <- t.size + 1
