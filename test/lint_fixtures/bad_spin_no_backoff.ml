(* retry-discipline: spin loops on shared atomics with no pacing call.
   Both shapes the rule knows — a [while] on an atomic read and a
   recursive CAS loop — appear bare (flagged) and then paced or
   annotated (clean). The module binds [push] but not [pop], so the
   progress-class rule stays out of the way. *)
module A = Atomic

type t = { flag : bool A.t; word : int A.t }

(* Bare busy-wait: burns its quantum while the writer is descheduled. *)
let wait_ready t =
  while not (A.get t.flag) do (* EXPECT retry-discipline *)
    ()
  done

(* Bare CAS loop: retries flat-out against every contender. *)
let push t v =
  let rec attempt () = (* EXPECT retry-discipline *)
    let cur = A.get t.word in
    if not (A.compare_and_set t.word cur (cur + v)) then attempt ()
  in
  attempt ()

(* Paced variants of both shapes: clean. *)
let wait_ready_paced t =
  while not (A.get t.flag) do
    Prim.relax 8
  done

let add_paced t v =
  let backoff = Backoff.create () in
  let rec attempt () =
    let cur = A.get t.word in
    if not (A.compare_and_set t.word cur (cur + v)) then begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()

(* Annotated variant: the wait is bounded by protocol, so a bare loop
   is a deliberate choice the author signs with a reason. *)
let take_turn t =
  let rec attempt () =
    (if not (A.compare_and_set t.word 0 1) then attempt ())
    [@await_ok "at most two parties alternate on [word]; see the docs"]
  in
  attempt ()
