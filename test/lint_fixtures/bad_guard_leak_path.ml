(* guard-balance: hand-rolled enter/exit pairs that fail to balance on
   some CFG path. [peek_exn] leaks the pinned epoch when the scrutinee
   raises (the exception edge skips the exit); [unpin_twice] exits at
   depth zero; [maybe_leak]'s branches disagree on the depth at the
   return. The [n.value] read in [peek_exn] sits between the enter and
   the exit on every non-raising path, so the typestate facts discharge
   rule 4 for it — no ebr-guard marker. *)

module A = Atomic
module E = Ebr.Make (Prim)

type 'a node = { value : 'a; next : 'a node option }
type 'a t = { top : 'a node option A.t; ebr : E.t }

let peek_exn t ~tid =
  E.enter t.ebr ~tid; (* EXPECT guard-balance *)
  let v =
    match A.get t.top with
    | None -> raise Not_found
    | Some n -> n.value
  in
  E.exit t.ebr ~tid;
  v

let unpin_twice t ~tid =
  E.enter t.ebr ~tid;
  E.exit t.ebr ~tid;
  E.exit t.ebr ~tid (* EXPECT guard-balance *)

let maybe_leak t ~tid cond =
  E.enter t.ebr ~tid; (* EXPECT guard-balance *)
  if cond then E.exit t.ebr ~tid
