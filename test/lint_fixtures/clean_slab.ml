(* All-quiet counterpart to bad_slab_fresh_node.ml (rule 8, PR 10): a
   slab-recycling module whose every node comes from [Sl.alloc] with
   the one fresh literal annotated [@fresh_ok] — and whose non-node
   record literals (the handle in [create]) must not be mistaken for
   hot-path allocations even though the module references [Slab]. *)
[@@@progress "lock_free"]

module A = Atomic
module Sl = Slab.Make (Prim)

type 'a node = {
  mutable value : 'a; [@plain_ok "written while private to the pusher"]
  mutable next : 'a node option; [@plain_ok "see [value]"]
}

type 'a t = { top : 'a node option A.t; slabs : 'a node Sl.t }

let create ?(max_threads = 64) () =
  { top = A.make_padded None; slabs = Sl.create ~max_threads () }

let obtain t ~tid v =
  match Sl.alloc t.slabs ~tid with
  | Some n ->
      n.value <- v;
      n.next <- None;
      n
  | None ->
      ({ value = v; next = None }
      [@fresh_ok "slab miss: the store is dry and alloc is wait-free"])

let push t ~tid v =
  let backoff = Backoff.create () in
  let node = obtain t ~tid v in
  let rec attempt () =
    let cur = A.get t.top in
    node.next <- cur;
    if A.compare_and_set t.top cur (Some node) then ()
    else begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()

let recycle t ~tid node =
  node.next <- None;
  Sl.free t.slabs ~tid node
