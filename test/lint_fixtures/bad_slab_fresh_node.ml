(* fresh-node over the slab store (rule 8, PR 10): a module that
   recycles through [Slab] — no [Magazine] reference anywhere — must
   arm the fresh-node rule exactly like a magazine-backed one. The
   direct literal in [push] is flagged; the [@fresh_ok]-annotated miss
   fallback in [push_pooled] stays clean. *)
[@@@progress "lock_free"]

module A = Atomic
module Sl = Slab.Make (Prim)

type 'a node = {
  mutable value : 'a; [@plain_ok "written while private to the pusher"]
  mutable next : 'a node option; [@plain_ok "see [value]"]
}

type 'a t = { top : 'a node option A.t; slabs : 'a node Sl.t }

let create ?(max_threads = 64) () =
  { top = A.make_padded None; slabs = Sl.create ~max_threads () }

let push t ~tid:_ v =
  let backoff = Backoff.create () in
  let node = { value = v; next = None } in (* EXPECT fresh-node *)
  let rec attempt () =
    let cur = A.get t.top in
    node.next <- cur;
    if A.compare_and_set t.top cur (Some node) then ()
    else begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()

let push_pooled t ~tid v =
  let backoff = Backoff.create () in
  let node =
    match Sl.alloc t.slabs ~tid with
    | Some n ->
        n.value <- v;
        n.next <- None;
        n
    | None ->
        ({ value = v; next = None }
        [@fresh_ok "slab miss: the store is dry and alloc is wait-free"])
  in
  let rec attempt () =
    let cur = A.get t.top in
    node.next <- cur;
    if A.compare_and_set t.top cur (Some node) then ()
    else begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()
