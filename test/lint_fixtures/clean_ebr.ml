(* Clean EBR module: correct guard/retire discipline plus both
   annotation forms. The self-test asserts the lint reports nothing
   here — this file pins the rules' false-positive behaviour. *)
module A = Atomic
module E = Ebr.Make (Prim)

type 'a node = { value : 'a; next : 'a node option A.t }
type 'a t = { top : 'a node option A.t; ebr : E.t }

(* Helper-body annotation: one [@unguarded_ok] covers the whole scan. *)
let rec youngest n =
  (match n with
  | None -> None
  | Some n -> youngest (A.get n.next))
  [@unguarded_ok "callers hold the guard across the whole scan"]

let pop t ~tid =
  E.guard t.ebr ~tid (fun () ->
      let backoff = Backoff.create () in
      let rec attempt () =
        match A.get t.top with
        | None -> None
        | Some n as cur ->
            if A.compare_and_set t.top cur (A.get n.next) then begin
              E.retire t.ebr ~tid (fun () -> ());
              Some n.value
            end
            else begin
              Backoff.once backoff;
              attempt ()
            end
      in
      attempt ())

let peek t ~tid =
  E.guard t.ebr ~tid (fun () ->
      match A.get t.top with None -> None | Some n -> Some n.value)
