(* Clean typestate input: a hand-rolled enter/exit pair balanced on the
   value, empty and exception paths (so the [n.value] read is proved
   guarded and rule 4 stays quiet without any [@unguarded_ok]); CAS
   loops that follow the declared read-before-CAS protocol and classify
   as cas-retry; and a [@@@progress "lock_free"] declaration the static
   verdict agrees with. The lint must report nothing here. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

[@@@protocol
  "head: idle -read:head-> seen; seen -read:head-> seen; seen -rmw:head-> \
   idle"]

module A = Atomic
module E = Ebr.Make (Prim)

type 'a node = { value : 'a; next : 'a node option }
type 'a t = { head : 'a node option A.t; ebr : E.t }

(* Exception-safe without the [E.guard] wrapper: every path through the
   match — including the scrutinee raising — runs the exit. *)
let peek t ~tid =
  E.enter t.ebr ~tid;
  match A.get t.head with
  | Some n ->
      let v = n.value in
      E.exit t.ebr ~tid;
      Some v
  | None ->
      E.exit t.ebr ~tid;
      None
  | exception exn ->
      E.exit t.ebr ~tid;
      raise exn

let push t ~tid v =
  E.guard t.ebr ~tid (fun () ->
      let backoff = Backoff.create () in
      let rec attempt () =
        let cur = A.get t.head in
        if A.compare_and_set t.head cur (Some { value = v; next = cur })
        then ()
        else begin
          Backoff.once backoff;
          attempt ()
        end
      in
      attempt ())

let pop t ~tid =
  E.guard t.ebr ~tid (fun () ->
      let backoff = Backoff.create () in
      let rec attempt () =
        match A.get t.head with
        | None -> None
        | Some n ->
            if A.compare_and_set t.head (Some n) n.next then Some n.value
            else begin
              Backoff.once backoff;
              attempt ()
            end
      in
      attempt ())
