(* obj-confinement: Obj.* belongs in lib/prim/padding.ml only. *)

let inspect x = Obj.repr x (* EXPECT obj-confinement *)

let launder (x : int) : int = Obj.magic x (* EXPECT obj-confinement *)
