(* Clean spec discipline: a declared-blocking module that also declares
   the pool relaxation — its pops may return values out of LIFO order,
   so the refinement checker holds it to the bag spec, not Lin_check.
   The self-test asserts the lint reports nothing here — this file pins
   the spec rule's false-positive behaviour (and that "pool" is as
   acceptable a payload as "stack"). *)
[@@@progress "blocking"]
[@@@spec "pool"]

module A = Atomic

type 'a t = { lock : bool A.t; items : 'a list ref }

let acquire t =
  Backoff.spin_while (fun () -> not (A.compare_and_set t.lock false true))

let release t = A.set t.lock false

let push t v =
  acquire t;
  t.items := v :: !t.items;
  release t

let pop t =
  acquire t;
  let r =
    match !(t.items) with
    | [] -> None
    | x :: rest ->
        t.items := rest;
        Some x
  in
  release t;
  r
