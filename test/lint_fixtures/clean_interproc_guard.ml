(* Clean interprocedural EBR: obligations discharged across calls, no
   annotations needed. Three shapes:
   - a helper chain ([scan]) whose every call site runs under a guard —
     the context fixpoint proves it, recursion included;
   - a guard wrapper ([guarded]: guards its bare function parameter),
     whose literal-lambda arguments become guarded spans;
   - a retire helper ([unlink]) whose only call site is CAS-gated.
   The signature constraint keeps the helpers internal, which is what
   lets the context fixpoint pin their call sites. The self-test
   asserts the lint reports nothing here. *)
module A = Atomic
module E = Ebr.Make (Prim)

module type STACK = sig
  type 'a t

  val pop : 'a t -> tid:int -> 'a option
  val peek : 'a t -> tid:int -> 'a option
  val bottom : 'a t -> tid:int -> 'a option
end

module Make () : STACK = struct
  type 'a node = { value : 'a; next : 'a node option A.t }
  type 'a t = { top : 'a node option A.t; ebr : E.t }

  (* Every call site is inside a guard extent; no [@unguarded_ok]. *)
  let rec scan n =
    match n with
    | None -> None
    | Some n -> (
        match A.get n.next with None -> Some n.value | tail -> scan tail)

  (* Guard wrapper: guards the function it is given. *)
  let guarded t ~tid f = E.guard t.ebr ~tid f

  (* Retire helper: its only call site sits in the CAS-selected branch,
     so the context fixpoint discharges retire-once; no [@retire_ok]. *)
  let unlink t ~tid _n = E.retire t.ebr ~tid (fun () -> ())

  let bottom t ~tid = guarded t ~tid (fun () -> scan (A.get t.top))
  let peek t ~tid = E.guard t.ebr ~tid (fun () -> scan (A.get t.top))

  let pop t ~tid =
    E.guard t.ebr ~tid (fun () ->
        let backoff = Backoff.create () in
        let rec attempt () =
          match A.get t.top with
          | None -> None
          | Some n as cur ->
              if A.compare_and_set t.top cur (A.get n.next) then begin
                unlink t ~tid n;
                Some n.value
              end
              else begin
                Backoff.once backoff;
                attempt ()
              end
        in
        attempt ())
end
