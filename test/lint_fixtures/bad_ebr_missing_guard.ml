(* ebr-guard: a reclaimed Treiber stack whose pop/peek lost their
   [Ebr.guard] wrapper — every node-field read in them is a potential
   use-after-free and must be flagged. push keeps its guard and must
   stay clean. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module A = Atomic
module E = Ebr.Make (Prim)

type 'a node = { value : 'a; next : 'a node option; chk : int }
type 'a t = { top : 'a node option A.t; ebr : E.t }

let push t ~tid v =
  E.guard t.ebr ~tid (fun () ->
      let backoff = Backoff.create () in
      let rec attempt () =
        let cur = A.get t.top in
        if A.compare_and_set t.top cur (Some { value = v; next = cur; chk = 0 })
        then ()
        else begin
          Backoff.once backoff;
          attempt ()
        end
      in
      attempt ())

let pop t ~tid =
  let backoff = Backoff.create () in
  let rec attempt () =
    match A.get t.top with
    | None -> None
    | Some n ->
        if A.compare_and_set t.top (Some n) n.next (* EXPECT ebr-guard *)
        then begin
          E.retire t.ebr ~tid (fun () -> ());
          Some n.value (* EXPECT ebr-guard *)
        end
        else begin
          Backoff.once backoff;
          attempt ()
        end
  in
  attempt ()

let peek t =
  match A.get t.top with
  | None -> None
  | Some n -> Some n.value (* EXPECT ebr-guard *)
