(* plain-publication (rule 10): a get x ... set x read-modify-plain-write
   chain on an atomic written from two or more entry points, with no
   ordering RMW in between, loses a concurrent write — the static mirror
   of the dynamic detector's write-write-race model. The chain may live
   in one function or span helper calls; the syntactic lint sees
   neither, the summary analysis sees both. *)
module A = Atomic

type t = { hits : int A.t; mode : int A.t; epoch : int A.t }

(* Two entry points plain-write [hits] — rule 10's precondition (a
   single writer cannot lose its own update). *)
let reset t = A.set t.hits 0

(* Direct chain: get, compute, plain set. *)
let bump t =
  let n = A.get t.hits in
  A.set t.hits (n + 1) (* EXPECT plain-publication *)

(* Split across helpers: [current] reads, [publish] plain-writes; the
   chain exists only in the caller, flagged at the call completing it. *)
let current t = A.get t.mode
let publish t m = A.set t.mode m

let widen t =
  let m = current t in
  publish t (m * 2) (* EXPECT plain-publication *)

let clear t = A.set t.epoch 0

(* Discharged: the fetch_and_add between the read and the store is an
   ordering RMW, so the plain store cannot lose a concurrent update. *)
let rotate t =
  let e = A.get t.epoch in
  let _ = A.fetch_and_add t.epoch 1 in
  if e > 1000 then A.set t.epoch 0

(* Suppressed: the lost update is benign by protocol, and the author
   signs a reason. *)
let refresh t =
  let m = A.get t.mode in
  A.set t.mode (m lor 1)
  [@publication_ok "mode bits are advisory; a lost refresh re-applies"]
