(* Clean progress discipline: a declared lock-free module whose retry
   loops are paced, plus one protocol-bounded wait under [@await_ok].
   The self-test asserts the lint reports nothing here — this file pins
   the progress rules' false-positive behaviour. *)
[@@@progress "lock_free"]
[@@@spec "stack"]

module A = Atomic

type 'a node = Nil | Cons of { value : 'a; next : 'a node }
type 'a t = { top : 'a node A.t; seal : int A.t }

let push t v =
  let backoff = Backoff.create () in
  let rec attempt () =
    let cur = A.get t.top in
    if not (A.compare_and_set t.top cur (Cons { value = v; next = cur }))
    then begin
      Backoff.once backoff;
      attempt ()
    end
  in
  attempt ()

let pop t =
  let backoff = Backoff.create () in
  let rec attempt () =
    match A.get t.top with
    | Nil -> None
    | Cons { value; next } as cur ->
        if A.compare_and_set t.top cur next then Some value
        else begin
          Backoff.once backoff;
          attempt ()
        end
  in
  attempt ()

(* A bounded wait inside a declared lock-free module: legal only under
   an [@await_ok] extent, which covers both the [while]-on-atomic shape
   and the [spin_until] helper it delegates to. *)
let drain_seal t =
  (while A.get t.seal <> 0 do
     Backoff.spin_until (fun () -> A.get t.seal = 0)
   done)
  [@await_ok "the sealer publishes 0 within a bounded number of steps"]
