(* The refinement prong (docs/ANALYSIS.md, "Refinement prong"):
   - every registry entry (plus the pool) passes its declared default
     properties under DPOR and under every pinned weighted-random seed;
   - the weighted-random scheduler is seed-deterministic: same seed,
     byte-identical serialized schedule and identical verdict, on both a
     passing structure and a seeded-mutant failure;
   - the seeded mutants (Config.mutation) are caught, and the shrinker
     reduces their failing schedules to small witnesses that replay
     deterministically to the same violation. *)

module Explore = Sec_sim.Explore
module Registry = Sec_harness.Registry
module Refine = Sec_refine.Refine

let find_mutant name =
  List.find (fun e -> e.Registry.name = name) Registry.mutants

let result_str r = Format.asprintf "%a" Explore.pp_result r

(* ------------------------------------------------------------------ *)
(* Every entry refines its declared spec                                *)

let check_entry_case (e : Registry.entry) () =
  List.iter
    (fun (prop, strat, v) ->
      match v with
      | Refine.Refines _ -> ()
      | v ->
          Alcotest.failf "%s / %s / %s: %s" e.Registry.name prop strat
            (Refine.verdict_to_string v))
    (Refine.check_entry ~max_schedules:300 ~runs:8 e)

(* ------------------------------------------------------------------ *)
(* Seed determinism                                                     *)

let passing_scenario () =
  let gu = ref false in
  Refine.scenario_of ~maker:Registry.treiber.Registry.maker
    ~refines:Registry.Stack_sem ~gave_up:gu
    {
      Refine.prefill = [ 5 ];
      threads = [ [ Refine.Push 1; Refine.Pop ]; [ Refine.Push 2; Refine.Pop ] ];
      max_threads = None;
    }

let test_seed_determinism_passing () =
  let run seed =
    let o, sched = Explore.random_run ~seed (passing_scenario ()) in
    (o, Explore.schedule_to_string sched)
  in
  let o1, s1 = run 42L in
  let o2, s2 = run 42L in
  Alcotest.(check string) "same seed, byte-identical schedule" s1 s2;
  (match (o1, o2) with
  | Explore.Ok_run true, Explore.Ok_run true -> ()
  | _ -> Alcotest.fail "expected both seeded runs to pass identically");
  (* The sweep driver is deterministic too. *)
  let r1 = result_str (Explore.for_random ~seed:42L ~runs:8 (passing_scenario ())) in
  let r2 = result_str (Explore.for_random ~seed:42L ~runs:8 (passing_scenario ())) in
  Alcotest.(check string) "same seed, identical verdict" r1 r2

let pop_reorder_scenario () =
  let e = find_mutant "SEC!POP" in
  let gu = ref false in
  Refine.scenario_of ~maker:e.Registry.maker ~refines:Registry.Stack_sem
    ~gave_up:gu
    {
      Refine.prefill = [ 1; 2; 3 ];
      threads = [ [ Refine.Pop ]; [ Refine.Pop ] ];
      max_threads = None;
    }

let test_seed_determinism_mutant () =
  let run () =
    match Explore.for_random ~seed:7L ~runs:8 (pop_reorder_scenario ()) with
    | Explore.Failed _ as r ->
        (result_str r,
         match r with
         | Explore.Failed { schedule; _ } -> Explore.schedule_to_string schedule
         | _ -> assert false)
    | Explore.Passed _ ->
        Alcotest.fail "pop-reorder mutant not caught by seeded random runs"
  in
  let v1, s1 = run () in
  let v2, s2 = run () in
  Alcotest.(check string) "same seed, byte-identical failing schedule" s1 s2;
  Alcotest.(check string) "same seed, identical failing verdict" v1 v2

(* ------------------------------------------------------------------ *)
(* The seeded mutants are caught and their witnesses shrink             *)

let witness_budget = 8

let assert_shrunk_witness ~entry ~prop ~expect_kind ~expect_outcome strategy =
  match Refine.check entry strategy prop with
  | Refine.Violates w ->
      Alcotest.(check string) "violation category" expect_kind w.Refine.w_kind;
      Alcotest.(check bool) "witness replayed to the same violation" true
        w.Refine.w_replayed;
      if List.length w.Refine.w_schedule > witness_budget then
        Alcotest.failf "witness has %d placements (> %d): [%s]"
          (List.length w.Refine.w_schedule)
          witness_budget
          (Explore.schedule_to_string w.Refine.w_schedule);
      (* Replay the shrunk witness three more times: deterministically the
         same violation, every time. *)
      for _ = 1 to 3 do
        let gu = ref false in
        let o =
          Explore.replay ~quantum:6 ~schedule:w.Refine.w_schedule
            (Refine.scenario_of ~maker:entry.Registry.maker
               ~refines:prop.Refine.refines ~gave_up:gu w.Refine.w_workload)
        in
        if not (expect_outcome o) then
          Alcotest.failf "witness replay diverged from %s" expect_kind
      done
  | v ->
      Alcotest.failf "expected a violation, got %s"
        (Refine.verdict_to_string v)

(* Batch-capacity overflow: three fibers over-subscribe a capacity-2 SEC
   with a single aggregator, so all three announcements land in one
   batch; the mutant's unclamped freeze snapshot sends the combiner past
   the elimination array. *)
let overflow_prop =
  {
    Refine.pname = "overflow";
    refines = Registry.Stack_sem;
    workload =
      {
        Refine.prefill = [];
        threads =
          [ [ Refine.Push 10 ]; [ Refine.Push 11 ]; [ Refine.Push 12 ] ];
        max_threads = Some 2;
      };
    adversary = Refine.No_adversary;
  }

let test_overflow_mutant_dpor () =
  assert_shrunk_witness ~entry:(find_mutant "SEC!OVF") ~prop:overflow_prop
    ~expect_kind:"raised"
    ~expect_outcome:(function Explore.Raised _ -> true | _ -> false)
    (Refine.Dpor { max_preemptions = 1; max_schedules = 500 })

let test_overflow_mutant_weighted () =
  assert_shrunk_witness ~entry:(find_mutant "SEC!OVF") ~prop:overflow_prop
    ~expect_kind:"raised"
    ~expect_outcome:(function Explore.Raised _ -> true | _ -> false)
    (Refine.Weighted { seed = 0x5ECL; runs = 32; stay_weight = 4 })

(* Pop reorder: the combiner publishes the remaining stack instead of
   the detached chain, so combined pops read values still reachable from
   [top] — the drain then observes them again and the LIFO check
   convicts. *)
let pop_reorder_prop =
  {
    Refine.pname = "pop-reorder";
    refines = Registry.Stack_sem;
    workload =
      {
        Refine.prefill = [ 1; 2; 3 ];
        threads = [ [ Refine.Pop ]; [ Refine.Pop ] ];
        max_threads = None;
      };
    adversary = Refine.No_adversary;
  }

let test_pop_reorder_mutant_dpor () =
  assert_shrunk_witness ~entry:(find_mutant "SEC!POP") ~prop:pop_reorder_prop
    ~expect_kind:"check-failed"
    ~expect_outcome:(function Explore.Ok_run false -> true | _ -> false)
    (Refine.Dpor { max_preemptions = 1; max_schedules = 500 })

let test_pop_reorder_mutant_weighted () =
  assert_shrunk_witness ~entry:(find_mutant "SEC!POP") ~prop:pop_reorder_prop
    ~expect_kind:"check-failed"
    ~expect_outcome:(function Explore.Ok_run false -> true | _ -> false)
    (Refine.Weighted { seed = 0xC0FFEEL; runs = 32; stay_weight = 4 })

(* ------------------------------------------------------------------ *)
(* The ddmin shrinker itself                                            *)

let test_shrink_schedule_ddmin () =
  let mk steps = List.map (fun s -> { Explore.step = s; fiber = 1 }) steps in
  let needed = mk [ 3; 7 ] in
  let still_fails cand = List.for_all (fun p -> List.mem p cand) needed in
  let shrunk =
    Explore.shrink_schedule ~still_fails (mk [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
  in
  Alcotest.(check string)
    "1-minimal schedule"
    (Explore.schedule_to_string needed)
    (Explore.schedule_to_string shrunk);
  (* An empty-failing predicate shrinks to the empty schedule. *)
  Alcotest.(check int) "vacuous failure shrinks to nothing" 0
    (List.length (Explore.shrink_schedule ~still_fails:(fun _ -> true) (mk [ 1; 2; 3 ])))

let () =
  let entry_cases =
    List.map
      (fun (e : Registry.entry) ->
        Alcotest.test_case
          (Printf.sprintf "%s refines %s" e.Registry.name
             (Registry.semantics_to_string e.Registry.spec))
          `Slow (check_entry_case e))
      Registry.refine_set
  in
  Alcotest.run "refine"
    [
      ("registry", entry_cases);
      ( "determinism",
        [
          Alcotest.test_case "same seed, passing structure" `Quick
            test_seed_determinism_passing;
          Alcotest.test_case "same seed, seeded-mutant failure" `Quick
            test_seed_determinism_mutant;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "batch overflow caught + shrunk (dpor)" `Slow
            test_overflow_mutant_dpor;
          Alcotest.test_case "batch overflow caught + shrunk (weighted)" `Slow
            test_overflow_mutant_weighted;
          Alcotest.test_case "pop reorder caught + shrunk (dpor)" `Slow
            test_pop_reorder_mutant_dpor;
          Alcotest.test_case "pop reorder caught + shrunk (weighted)" `Slow
            test_pop_reorder_mutant_weighted;
        ] );
      ( "shrinker",
        [ Alcotest.test_case "ddmin is 1-minimal" `Quick test_shrink_schedule_ddmin ] );
    ]
