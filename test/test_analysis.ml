(* Tests for the concurrency-hazard analysis layer (lib/analysis):
   the vector-clock detector's happens-before model fed directly, the
   ABA-hazard report on a pinned schedule, and the acceptance sweep —
   every stack of the paper's comparison explored with race detection
   enabled must come out clean. *)

module Explore = Sec_sim.Explore
module RD = Sec_analysis.Race_detector
module SP = Sec_sim.Sim.Prim
module Registry = Sec_harness.Registry

let result_kind = function
  | Explore.Passed _ -> "passed"
  | Explore.Failed { kind = Explore.Check_failed; _ } -> "check_failed"
  | Explore.Failed { kind = Explore.Fiber_raised _; _ } -> "raised"
  | Explore.Failed { kind = Explore.Livelock; _ } -> "livelock"
  | Explore.Failed { kind = Explore.Race_detected _; _ } -> "race"
  | Explore.Failed { kind = Explore.Reclamation_violation _; _ } ->
      "reclamation"

(* -------------------------------------------------------------------- *)
(* The happens-before model, fed event by event. Location ids and fiber
   ids are arbitrary ints; -1 is the setup context. *)

let test_blind_stores_race () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:7;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_spawn d ~parent:(-1) ~child:1;
  RD.on_write d ~fiber:0 ~loc:7;
  RD.on_write d ~fiber:1 ~loc:7;
  match RD.races d with
  | [ h ] ->
      Alcotest.(check bool) "kind" true (h.RD.kind = RD.Write_write_race);
      Alcotest.(check int) "loc" 7 h.RD.loc;
      Alcotest.(check int) "earlier fiber" 0 h.RD.fiber_a;
      Alcotest.(check int) "later fiber" 1 h.RD.fiber_b
  | hs -> Alcotest.failf "expected exactly one race, got %d" (List.length hs)

(* A store is ordered after an earlier store once the later fiber passes
   through an RMW on the same cell (RMWs acquire): the CAS-managed
   hand-off idiom must stay clean. *)
let test_rmw_orders_stores () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:3;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_spawn d ~parent:(-1) ~child:1;
  RD.on_write d ~fiber:0 ~loc:3;
  RD.on_rmw d ~fiber:1 ~loc:3;
  RD.on_write d ~fiber:1 ~loc:3;
  Alcotest.(check int) "no race" 0 (List.length (RD.races d))

(* The lost-update shape: both fibers read before either writes, so
   neither write is ordered after the other. *)
let test_lost_update_shape_races () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:1;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_spawn d ~parent:(-1) ~child:1;
  RD.on_read d ~fiber:0 ~loc:1;
  RD.on_read d ~fiber:1 ~loc:1;
  RD.on_write d ~fiber:0 ~loc:1;
  RD.on_write d ~fiber:1 ~loc:1;
  Alcotest.(check int) "one race" 1 (List.length (RD.races d))

(* ...whereas a read that observes the first store (acquire) orders the
   second store after it. *)
let test_acquiring_read_orders_store () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:1;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_spawn d ~parent:(-1) ~child:1;
  RD.on_write d ~fiber:0 ~loc:1;
  RD.on_read d ~fiber:1 ~loc:1;
  RD.on_write d ~fiber:1 ~loc:1;
  Alcotest.(check int) "no race" 0 (List.length (RD.races d))

let test_fork_edge_orders () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:9;
  RD.on_write d ~fiber:(-1) ~loc:9;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_write d ~fiber:0 ~loc:9;
  Alcotest.(check int) "setup store ordered before child's" 0
    (List.length (RD.races d))

let test_join_edge_orders () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:9;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_write d ~fiber:0 ~loc:9;
  RD.on_exit d ~fiber:0;
  RD.on_join d ~fiber:(-1);
  RD.on_write d ~fiber:(-1) ~loc:9;
  Alcotest.(check int) "exited child's store ordered before joiner's" 0
    (List.length (RD.races d))

let test_aba_needs_two_writes () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:2;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_spawn d ~parent:(-1) ~child:1;
  RD.on_read d ~fiber:0 ~loc:2;
  RD.on_write d ~fiber:1 ~loc:2;
  RD.on_cas d ~fiber:0 ~loc:2 ~success:true;
  Alcotest.(check int) "one intervening write: no hazard" 0
    (List.length (RD.aba_hazards d));
  (* Same shape with an A -> B -> A pair of writes in between. *)
  RD.on_read d ~fiber:0 ~loc:2;
  RD.on_write d ~fiber:1 ~loc:2;
  RD.on_write d ~fiber:1 ~loc:2;
  RD.on_cas d ~fiber:0 ~loc:2 ~success:true;
  (match RD.aba_hazards d with
  | [ h ] ->
      Alcotest.(check bool) "kind" true (h.RD.kind = RD.Aba_hazard);
      Alcotest.(check int) "CAS fiber" 0 h.RD.fiber_b
  | hs ->
      Alcotest.failf "expected exactly one ABA hazard, got %d"
        (List.length hs));
  Alcotest.(check int) "ABA hazards are not races" 0
    (List.length (RD.races d))

let test_failed_cas_no_hazard () =
  let d = RD.create () in
  RD.on_make d ~fiber:(-1) ~loc:2;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_spawn d ~parent:(-1) ~child:1;
  RD.on_read d ~fiber:0 ~loc:2;
  RD.on_write d ~fiber:1 ~loc:2;
  RD.on_write d ~fiber:1 ~loc:2;
  RD.on_cas d ~fiber:0 ~loc:2 ~success:false;
  Alcotest.(check int) "failed CAS never reports" 0
    (List.length (RD.hazards d))

let test_max_hazards_bounds_report () =
  let d = RD.create ~max_hazards:2 () in
  RD.on_make d ~fiber:(-1) ~loc:5;
  RD.on_spawn d ~parent:(-1) ~child:0;
  RD.on_spawn d ~parent:(-1) ~child:1;
  for _ = 1 to 5 do
    RD.on_write d ~fiber:0 ~loc:5;
    RD.on_write d ~fiber:1 ~loc:5
  done;
  Alcotest.(check int) "report bounded" 2 (List.length (RD.hazards d));
  Alcotest.(check bool) "excess counted" true (RD.dropped d > 0)

(* -------------------------------------------------------------------- *)
(* ABA end to end: a CAS that succeeds over an A -> B -> A overwrite by
   the other fiber. The reproducing interleaving is pinned via replay;
   the exact step at which the preemption must land depends on internal
   step numbering, so we scan a small window and require that some pin
   produces the hazard — and that the unpreempted baseline never does. *)

let aba_scenario () =
  let c = SP.Atomic.make 0 in
  let f0 () =
    let v = SP.Atomic.get c in
    ignore (SP.Atomic.compare_and_set c v 5)
  in
  let f1 () =
    SP.Atomic.set c 1;
    SP.Atomic.set c 0
  in
  ([ f0; f1 ], fun () -> true)

let test_aba_hazard_on_pinned_schedule () =
  (* Baseline (quantum long enough that fiber 0 finishes first): the CAS
     sees no intervening writes. *)
  let baseline = RD.create () in
  (match
     Explore.replay ~quantum:100 ~detector:baseline ~schedule:[] aba_scenario
   with
  | Explore.Ok_run true -> ()
  | _ -> Alcotest.fail "baseline replay failed");
  Alcotest.(check int) "baseline is hazard-free" 0
    (List.length (RD.hazards baseline));
  let hazard_found = ref None in
  for step = 1 to 8 do
    if !hazard_found = None then begin
      let d = RD.create () in
      let schedule = [ { Explore.step; fiber = 1 } ] in
      match Explore.replay ~quantum:100 ~detector:d ~schedule aba_scenario with
      | Explore.Ok_run true -> (
          match RD.aba_hazards d with
          | h :: _ -> hazard_found := Some h
          | [] -> ())
      | _ -> ()
    end
  done;
  match !hazard_found with
  | Some h ->
      Alcotest.(check bool) "kind" true (h.RD.kind = RD.Aba_hazard);
      Alcotest.(check int) "the CASing fiber is flagged" 0 h.RD.fiber_b
  | None ->
      Alcotest.fail "no pinned preemption produced the ABA hazard"

(* -------------------------------------------------------------------- *)
(* Acceptance sweep: every algorithm of the paper's comparison, explored
   with race detection on, must pass — the discipline encoded by the
   detector (publication by RMW / release store) holds for all of them. *)

let stack_scenario (module M : Registry.MAKER) () =
  let module St = M (SP) in
  let s = St.create ~max_threads:2 () in
  St.push s ~tid:0 100;
  let results = Array.make 2 [] in
  let fiber slot () =
    St.push s ~tid:slot slot;
    match St.pop s ~tid:slot with
    | Some v -> results.(slot) <- [ v ]
    | None -> ()
  in
  ( [ fiber 0; fiber 1 ],
    fun () ->
      let rec drain acc =
        match St.pop s ~tid:0 with Some v -> drain (v :: acc) | None -> acc
      in
      let all = results.(0) @ results.(1) @ drain [] in
      List.sort compare all = [ 0; 1; 100 ] )

let sweep_stack entry () =
  match
    Explore.for_all ~max_preemptions:1 ~quantum:6 ~max_schedules:2_000
      ~detect_races:true
      (stack_scenario entry.Registry.maker)
  with
  | Explore.Passed _ -> ()
  | other ->
      Alcotest.failf "%s: expected Passed, got %s" entry.Registry.name
        (result_kind other)

let sweep_cases =
  List.map
    (fun entry ->
      Alcotest.test_case
        (Printf.sprintf "race sweep: %s" entry.Registry.name)
        `Slow (sweep_stack entry))
    Registry.paper_set

(* -------------------------------------------------------------------- *)
(* The reclamation shadow heap, fed event by event (the dynamic prong of
   the reclamation-safety layer; its integration with Explore is tested
   in test_reclaim.ml). *)

module RC = Sec_analysis.Reclaim_checker

let kinds c = List.map (fun r -> r.RC.kind) (RC.reports c)

let test_shadow_clean_lifecycle_silent () =
  let c = RC.create () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_enter c ~fiber:0;
  RC.on_publish c ~fiber:0 ~node:n;
  RC.on_access c ~fiber:0 ~node:n;
  RC.on_unlink c ~fiber:0 ~node:n;
  RC.on_retire c ~fiber:0 ~node:n;
  RC.on_exit c ~fiber:0;
  RC.on_reclaim c ~fiber:0 ~node:n;
  RC.on_fiber_exit c ~fiber:0;
  Alcotest.(check int) "full lifecycle is silent" 0
    (List.length (RC.reports c))

let test_shadow_use_after_retire () =
  (* EBR protects references obtained before the retirement; a guard
     entered after it protects nothing. *)
  let c = RC.create () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_publish c ~fiber:0 ~node:n;
  RC.on_unlink c ~fiber:0 ~node:n;
  RC.on_retire c ~fiber:0 ~node:n;
  RC.on_enter c ~fiber:1;
  RC.on_access c ~fiber:1 ~node:n;
  match RC.reports c with
  | [ r ] ->
      Alcotest.(check bool) "kind" true (r.RC.kind = RC.Use_after_retire);
      Alcotest.(check int) "accessor" 1 r.RC.fiber;
      Alcotest.(check int) "retirer" 0 r.RC.other_fiber
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_shadow_early_guard_protects () =
  (* The same access is legal when the guard predates the retirement —
     that is exactly the reference EBR keeps alive. *)
  let c = RC.create () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_publish c ~fiber:0 ~node:n;
  RC.on_enter c ~fiber:1;
  RC.on_unlink c ~fiber:0 ~node:n;
  RC.on_retire c ~fiber:0 ~node:n;
  RC.on_access c ~fiber:1 ~node:n;
  Alcotest.(check int) "guarded-before-retire access is silent" 0
    (List.length (RC.reports c))

let test_shadow_use_after_reclaim () =
  let c = RC.create () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_publish c ~fiber:0 ~node:n;
  RC.on_unlink c ~fiber:0 ~node:n;
  RC.on_retire c ~fiber:0 ~node:n;
  RC.on_reclaim c ~fiber:0 ~node:n;
  RC.on_enter c ~fiber:1;
  RC.on_access c ~fiber:1 ~node:n;
  Alcotest.(check (list bool)) "use-after-reclaim even under a guard"
    [ true ]
    (List.map (fun k -> k = RC.Use_after_reclaim) (kinds c))

let test_shadow_unguarded_access () =
  let c = RC.create () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_publish c ~fiber:0 ~node:n;
  RC.on_access c ~fiber:1 ~node:n;
  Alcotest.(check (list bool)) "published node needs a guard" [ true ]
    (List.map (fun k -> k = RC.Unguarded_access) (kinds c));
  (* A node still private to its allocator is exempt. *)
  let c' = RC.create () in
  let m = RC.on_alloc c' ~fiber:0 in
  RC.on_access c' ~fiber:0 ~node:m;
  Alcotest.(check int) "allocated-private access is silent" 0
    (List.length (RC.reports c'))

let test_shadow_retire_while_reachable () =
  let c = RC.create () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_publish c ~fiber:0 ~node:n;
  RC.on_retire c ~fiber:0 ~node:n;
  Alcotest.(check (list bool)) "retired while still published" [ true ]
    (List.map (fun k -> k = RC.Retire_while_reachable) (kinds c))

let test_shadow_double_retire () =
  let c = RC.create () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_publish c ~fiber:0 ~node:n;
  RC.on_unlink c ~fiber:0 ~node:n;
  RC.on_retire c ~fiber:0 ~node:n;
  RC.on_retire c ~fiber:1 ~node:n;
  match kinds c with
  | [ RC.Double_retire ] ->
      let r = List.hd (RC.reports c) in
      Alcotest.(check int) "second retirer reported" 1 r.RC.fiber;
      Alcotest.(check int) "first retirer is the other party" 0
        r.RC.other_fiber
  | ks -> Alcotest.failf "expected [Double_retire], got %d" (List.length ks)

let test_shadow_epoch_stall () =
  let c = RC.create ~stall_bound:2 () in
  RC.on_enter c ~fiber:1;
  (* fiber 1 now pins the epoch *)
  for _ = 1 to 4 do
    let n = RC.on_alloc c ~fiber:0 in
    RC.on_publish c ~fiber:0 ~node:n;
    RC.on_unlink c ~fiber:0 ~node:n;
    RC.on_retire c ~fiber:0 ~node:n
  done;
  (* Reported once the backlog passes the bound, throttled thereafter. *)
  Alcotest.(check (list bool)) "stall reported once" [ true ]
    (List.map (fun k -> k = RC.Epoch_stalled) (kinds c));
  let r = List.hd (RC.reports c) in
  Alcotest.(check int) "the pinning fiber is named" 1 r.RC.other_fiber

let test_shadow_guard_leak () =
  let c = RC.create () in
  RC.on_exit c ~fiber:0;
  (* unbalanced exit *)
  RC.on_enter c ~fiber:1;
  RC.on_fiber_exit c ~fiber:1;
  (* finished inside a guard *)
  Alcotest.(check (list bool)) "both guard leaks reported" [ true; true ]
    (List.map (fun k -> k = RC.Guard_leak) (kinds c))

let test_shadow_max_reports_bounds () =
  let c = RC.create ~max_reports:2 () in
  let n = RC.on_alloc c ~fiber:0 in
  RC.on_publish c ~fiber:0 ~node:n;
  for _ = 1 to 5 do
    RC.on_access c ~fiber:1 ~node:n
  done;
  Alcotest.(check int) "report list is bounded" 2
    (List.length (RC.reports c));
  Alcotest.(check int) "overflow is counted" 3 (RC.dropped c)

let () =
  Alcotest.run "analysis"
    [
      ( "happens-before model",
        [
          Alcotest.test_case "blind stores race" `Quick test_blind_stores_race;
          Alcotest.test_case "RMW orders stores" `Quick test_rmw_orders_stores;
          Alcotest.test_case "lost-update shape races" `Quick
            test_lost_update_shape_races;
          Alcotest.test_case "acquiring read orders store" `Quick
            test_acquiring_read_orders_store;
          Alcotest.test_case "fork edge" `Quick test_fork_edge_orders;
          Alcotest.test_case "join edge" `Quick test_join_edge_orders;
        ] );
      ( "aba",
        [
          Alcotest.test_case "needs two intervening writes" `Quick
            test_aba_needs_two_writes;
          Alcotest.test_case "failed CAS is silent" `Quick
            test_failed_cas_no_hazard;
          Alcotest.test_case "pinned schedule reproduces" `Quick
            test_aba_hazard_on_pinned_schedule;
        ] );
      ( "reports",
        [
          Alcotest.test_case "max_hazards bounds the list" `Quick
            test_max_hazards_bounds_report;
        ] );
      ( "reclamation shadow heap",
        [
          Alcotest.test_case "clean lifecycle is silent" `Quick
            test_shadow_clean_lifecycle_silent;
          Alcotest.test_case "use-after-retire" `Quick
            test_shadow_use_after_retire;
          Alcotest.test_case "early guard protects" `Quick
            test_shadow_early_guard_protects;
          Alcotest.test_case "use-after-reclaim" `Quick
            test_shadow_use_after_reclaim;
          Alcotest.test_case "unguarded access" `Quick
            test_shadow_unguarded_access;
          Alcotest.test_case "retire while reachable" `Quick
            test_shadow_retire_while_reachable;
          Alcotest.test_case "double retire" `Quick test_shadow_double_retire;
          Alcotest.test_case "epoch stall" `Quick test_shadow_epoch_stall;
          Alcotest.test_case "guard leak" `Quick test_shadow_guard_leak;
          Alcotest.test_case "max_reports bounds" `Quick
            test_shadow_max_reports_bounds;
        ] );
      ("paper set", sweep_cases);
    ]
