(* Tests for the specification layer: the reference sequential stack, the
   history recorder, and — most importantly — the linearizability checker
   itself, which the concurrent integration tests lean on. *)

module Seq_stack = Sec_spec.Seq_stack
module History = Sec_spec.History
module Lin_check = Sec_spec.Lin_check

let result =
  Alcotest.testable Lin_check.pp_result (fun a b -> a = b)

(* -------------------------------------------------------------------- *)
(* Sequential stack                                                      *)

let test_seq_lifo () =
  let s = Seq_stack.create () in
  Alcotest.(check (option int)) "empty pop" None (Seq_stack.pop s);
  Alcotest.(check (option int)) "empty peek" None (Seq_stack.peek s);
  Seq_stack.push s 1;
  Seq_stack.push s 2;
  Seq_stack.push s 3;
  Alcotest.(check int) "length" 3 (Seq_stack.length s);
  Alcotest.(check (option int)) "peek top" (Some 3) (Seq_stack.peek s);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Seq_stack.pop s);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Seq_stack.pop s);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Seq_stack.pop s);
  Alcotest.(check bool) "empty again" true (Seq_stack.is_empty s)

let test_seq_of_to_list () =
  let s = Seq_stack.of_list [ 3; 2; 1 ] in
  Alcotest.(check (list int)) "roundtrip" [ 3; 2; 1 ] (Seq_stack.to_list s);
  Alcotest.(check (option int)) "top is head" (Some 3) (Seq_stack.peek s)

let qcheck_seq_model =
  (* The sequential stack must agree with a plain list model on arbitrary
     op sequences. *)
  QCheck.Test.make ~name:"seq_stack = list model" ~count:300
    QCheck.(list (option small_int))
    (fun ops ->
      let s = Seq_stack.create () in
      let model = ref [] in
      List.for_all
        (function
          | Some v ->
              Seq_stack.push s v;
              model := v :: !model;
              true
          | None -> (
              let expected =
                match !model with
                | [] -> None
                | v :: rest ->
                    model := rest;
                    Some v
              in
              Seq_stack.pop s = expected))
        ops
      && Seq_stack.to_list s = !model)

(* -------------------------------------------------------------------- *)
(* History                                                               *)

let test_history_merge_sorted () =
  let h = History.create ~max_threads:3 in
  History.add h ~tid:2 (History.Push 1) ~inv:30L ~resp:40L;
  History.add h ~tid:0 (History.Push 2) ~inv:10L ~resp:20L;
  History.add h ~tid:1 (History.Pop (Some 2)) ~inv:15L ~resp:35L;
  let evs = History.events h in
  Alcotest.(check int) "count" 3 (History.length h);
  Alcotest.(check (list int)) "sorted by invocation" [ 0; 1; 2 ]
    (List.map (fun (e : int History.event) -> e.tid) evs);
  History.clear h;
  Alcotest.(check int) "cleared" 0 (History.length h)

(* -------------------------------------------------------------------- *)
(* Linearizability checker                                               *)

let ev tid op inv resp : int History.event = { tid; op; inv; resp }

let test_lin_empty () =
  Alcotest.check result "empty history" Lin_check.Linearizable (Lin_check.check [])

let test_lin_sequential_ok () =
  let h =
    [
      ev 0 (Push 1) 0L 1L;
      ev 0 (Push 2) 2L 3L;
      ev 0 (Pop (Some 2)) 4L 5L;
      ev 0 (Peek (Some 1)) 6L 7L;
      ev 0 (Pop (Some 1)) 8L 9L;
      ev 0 (Pop None) 10L 11L;
    ]
  in
  Alcotest.check result "sequential LIFO run" Lin_check.Linearizable
    (Lin_check.check h)

let test_lin_sequential_bad_order () =
  (* Popping in FIFO order is not a stack. *)
  let h =
    [
      ev 0 (Push 1) 0L 1L;
      ev 0 (Push 2) 2L 3L;
      ev 0 (Pop (Some 1)) 4L 5L;
      ev 0 (Pop (Some 2)) 6L 7L;
    ]
  in
  Alcotest.check result "FIFO order rejected" Lin_check.Not_linearizable
    (Lin_check.check h)

let test_lin_concurrent_reorder_ok () =
  (* Two concurrent pushes may linearize in either order, so a pop seeing
     either value is fine. *)
  let h =
    [
      ev 0 (Push 1) 0L 10L;
      ev 1 (Push 2) 0L 10L;
      ev 0 (Pop (Some 1)) 20L 30L;
      ev 1 (Pop (Some 2)) 20L 30L;
    ]
  in
  Alcotest.check result "concurrent pushes reorder" Lin_check.Linearizable
    (Lin_check.check h)

let test_lin_realtime_violation () =
  (* Push(1) strictly precedes push(2); popping 1 before 2 violates LIFO
     given both pops are also strictly ordered. *)
  let h =
    [
      ev 0 (Push 1) 0L 1L;
      ev 0 (Push 2) 2L 3L;
      ev 1 (Pop (Some 1)) 10L 11L;
      ev 1 (Pop (Some 2)) 12L 13L;
    ]
  in
  Alcotest.check result "real-time LIFO violation" Lin_check.Not_linearizable
    (Lin_check.check h)

let test_lin_lost_value () =
  (* A pop returning a never-pushed value must be rejected. *)
  let h = [ ev 0 (Push 1) 0L 1L; ev 1 (Pop (Some 9)) 2L 3L ] in
  Alcotest.check result "phantom value" Lin_check.Not_linearizable
    (Lin_check.check h)

let test_lin_duplicate_pop () =
  let h =
    [
      ev 0 (Push 1) 0L 1L;
      ev 1 (Pop (Some 1)) 2L 3L;
      ev 2 (Pop (Some 1)) 4L 5L;
    ]
  in
  Alcotest.check result "double pop of same node" Lin_check.Not_linearizable
    (Lin_check.check h)

let test_lin_empty_pop_overlap () =
  (* pop()=empty is fine if it can linearize before the concurrent push. *)
  let h = [ ev 0 (Push 1) 0L 10L; ev 1 (Pop None) 2L 4L ] in
  Alcotest.check result "empty pop during push" Lin_check.Linearizable
    (Lin_check.check h)

let test_lin_empty_pop_after_push () =
  (* pop()=empty strictly after an un-popped push is a violation. *)
  let h = [ ev 0 (Push 1) 0L 1L; ev 1 (Pop None) 5L 6L ] in
  Alcotest.check result "empty pop after completed push"
    Lin_check.Not_linearizable (Lin_check.check h)

let test_lin_peek_violation () =
  let h =
    [
      ev 0 (Push 1) 0L 1L;
      ev 0 (Push 2) 2L 3L;
      ev 1 (Peek (Some 1)) 5L 6L;
    ]
  in
  Alcotest.check result "peek must see the top" Lin_check.Not_linearizable
    (Lin_check.check h)

let test_lin_initial_state () =
  let h = [ ev 0 (Pop (Some 7)) 0L 1L; ev 0 (Pop None) 2L 3L ] in
  Alcotest.check result "prefilled stack" Lin_check.Linearizable
    (Lin_check.check ~init:[ 7 ] h);
  Alcotest.check result "without prefill it fails" Lin_check.Not_linearizable
    (Lin_check.check h)

let test_lin_elimination_pair () =
  (* The SEC linearization of an eliminated pair: push and pop fully
     concurrent, value flows directly. *)
  let h =
    [
      ev 0 (Push 5) 0L 10L;
      ev 1 (Pop (Some 5)) 0L 10L;
      ev 2 (Pop None) 12L 13L;
    ]
  in
  Alcotest.check result "eliminated pair leaves stack empty"
    Lin_check.Linearizable (Lin_check.check h)

let test_lin_gave_up () =
  (* Force heavy backtracking: 20 concurrent distinct pushes followed by
     sequential pops in FIFO order. A linearization exists (pushes in
     reverse), but depth-first search reaches it last, so a tight state
     bound must report Gave_up rather than a wrong verdict. *)
  let n = 20 in
  let pushes = List.init n (fun i -> ev i (Push (i + 1)) 0L 100L) in
  let pops =
    List.init n (fun i ->
        let t = Int64.of_int (200 + (10 * i)) in
        ev 0 (Pop (Some (i + 1))) t (Int64.add t 5L))
  in
  Alcotest.check result "bounded search gives up, not wrong"
    Lin_check.Gave_up
    (Lin_check.check ~max_states:500 (pushes @ pops))

let test_lin_work_budget () =
  (* The work budget (attempted transitions, satellite of the refinement
     prong): independent of the memo-table bound, a search that grinds
     too long must come back Inconclusive-as-Gave_up, never hang and
     never guess. The same wide history passes outright once the budget
     is ample, and an explicitly-passed generous budget leaves a
     Not_linearizable verdict untouched. *)
  let wide n =
    let pushes = List.init n (fun i -> ev i (Push (i + 1)) 0L 100L) in
    let pops =
      List.init n (fun i ->
          let t = Int64.of_int (200 + (10 * i)) in
          ev 0 (Pop (Some (i + 1))) t (Int64.add t 5L))
    in
    pushes @ pops
  in
  Alcotest.check result "tiny work budget gives up, not wrong"
    Lin_check.Gave_up
    (Lin_check.check ~max_work:30 (wide 12));
  Alcotest.check result "ample work budget completes"
    Lin_check.Linearizable
    (Lin_check.check ~max_work:10_000_000 (wide 8));
  let fifo =
    [
      ev 0 (Push 1) 0L 1L;
      ev 0 (Push 2) 2L 3L;
      ev 0 (Pop (Some 1)) 4L 5L;
    ]
  in
  Alcotest.check result "verdicts unaffected by a generous budget"
    Lin_check.Not_linearizable
    (Lin_check.check ~max_work:10_000_000 fifo)

let test_lin_pp () =
  let to_string pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "result pp" "linearizable"
    (to_string Lin_check.pp_result Lin_check.Linearizable);
  let e = ev 3 (Push 7) 5L 9L in
  Alcotest.(check string) "event pp" "[t3 5..9 push(7)]"
    (to_string (History.pp_event Format.pp_print_int) e);
  Alcotest.(check string) "pop pp" "pop()=empty"
    (to_string (History.pp_op Format.pp_print_int) (History.Pop None))

(* A randomized soundness test: generate a *legal* sequential execution,
   then fuzz the intervals while preserving the linearization order; the
   checker must accept. *)
let qcheck_lin_accepts_legal =
  let gen = QCheck.(list_of_size (Gen.int_range 1 20) (option small_int)) in
  QCheck.Test.make ~name:"lin_check accepts legal histories" ~count:100 gen
    (fun ops ->
      let model = ref [] in
      let time = ref 0L in
      let rng = Sec_prim.Rng.create 42L in
      let events =
        List.filteri
          (fun _ _ -> true)
          (List.map
             (fun op ->
               let t = !time in
               time := Int64.add t 10L;
               (* Interval containing its linearization point [t+5]. *)
               let jitter () = Int64.of_int (Sec_prim.Rng.int rng 5) in
               let inv = Int64.add t (jitter ()) in
               let resp = Int64.add (Int64.add t 5L) (jitter ()) in
               match op with
               | Some v ->
                   model := v :: !model;
                   ev 0 (Push v) inv resp
               | None ->
                   let r =
                     match !model with
                     | [] -> None
                     | v :: rest ->
                         model := rest;
                         Some v
                   in
                   ev 0 (Pop r) inv resp)
             ops)
      in
      Lin_check.check events = Lin_check.Linearizable)

let qcheck_lin_rejects_corrupted =
  (* Take a legal all-distinct push/pop history and corrupt one pop's value
     to a fresh value; must be rejected. *)
  let gen = QCheck.Gen.int_range 2 8 in
  QCheck.Test.make ~name:"lin_check rejects corrupted pops" ~count:50
    (QCheck.make gen) (fun n ->
      let events = ref [] in
      let t = ref 0L in
      let emit e = events := e :: !events in
      for i = 1 to n do
        emit (ev 0 (Push i) !t (Int64.add !t 1L));
        t := Int64.add !t 2L
      done;
      for i = n downto 1 do
        let v = if i = 1 then 999 else i in
        emit (ev 0 (Pop (Some v)) !t (Int64.add !t 1L));
        t := Int64.add !t 2L
      done;
      Lin_check.check (List.rev !events) = Lin_check.Not_linearizable)

let () =
  Alcotest.run "spec"
    [
      ( "seq_stack",
        [
          Alcotest.test_case "lifo" `Quick test_seq_lifo;
          Alcotest.test_case "of/to list" `Quick test_seq_of_to_list;
          QCheck_alcotest.to_alcotest qcheck_seq_model;
        ] );
      ( "history",
        [ Alcotest.test_case "merge sorted" `Quick test_history_merge_sorted ] );
      ( "lin_check",
        [
          Alcotest.test_case "empty" `Quick test_lin_empty;
          Alcotest.test_case "sequential ok" `Quick test_lin_sequential_ok;
          Alcotest.test_case "fifo rejected" `Quick test_lin_sequential_bad_order;
          Alcotest.test_case "concurrent reorder ok" `Quick
            test_lin_concurrent_reorder_ok;
          Alcotest.test_case "real-time violation" `Quick
            test_lin_realtime_violation;
          Alcotest.test_case "phantom value" `Quick test_lin_lost_value;
          Alcotest.test_case "duplicate pop" `Quick test_lin_duplicate_pop;
          Alcotest.test_case "empty pop overlapping push" `Quick
            test_lin_empty_pop_overlap;
          Alcotest.test_case "empty pop after push" `Quick
            test_lin_empty_pop_after_push;
          Alcotest.test_case "peek violation" `Quick test_lin_peek_violation;
          Alcotest.test_case "initial state" `Quick test_lin_initial_state;
          Alcotest.test_case "elimination pair" `Quick test_lin_elimination_pair;
          Alcotest.test_case "bounded search gives up" `Quick test_lin_gave_up;
          Alcotest.test_case "work budget gives up" `Quick
            test_lin_work_budget;
          Alcotest.test_case "pretty printers" `Quick test_lin_pp;
          QCheck_alcotest.to_alcotest qcheck_lin_accepts_legal;
          QCheck_alcotest.to_alcotest qcheck_lin_rejects_corrupted;
        ] );
    ]
