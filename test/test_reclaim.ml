(* Tests for epoch-based reclamation: the central safety property is that
   no destructor runs while any thread is still inside a critical section
   it entered before the retirement. *)

module P = Sec_prim.Native
module Ebr = Sec_reclaim.Ebr.Make (P)
module SimEbr = Sec_reclaim.Ebr.Make (Sec_sim.Sim.Prim)

let test_retire_and_flush () =
  let e = Ebr.create ~max_threads:2 () in
  let freed = ref 0 in
  Ebr.retire e ~tid:0 (fun () -> incr freed);
  Ebr.retire e ~tid:0 (fun () -> incr freed);
  Alcotest.(check int) "nothing freed yet" 0 !freed;
  Ebr.flush e ~tid:0;
  Alcotest.(check int) "freed after flush" 2 !freed;
  let s = Ebr.stats e in
  Alcotest.(check int) "stats retired" 2 s.Ebr.retired;
  Alcotest.(check int) "stats reclaimed" 2 s.Ebr.reclaimed;
  Alcotest.(check int) "stats pending" 0 s.Ebr.pending

let test_epoch_advances () =
  let e = Ebr.create ~max_threads:2 () in
  let e0 = Ebr.epoch e in
  Ebr.try_advance e;
  Alcotest.(check int) "quiescent world advances" (e0 + 1) (Ebr.epoch e)

let test_active_reader_blocks_advance () =
  let e = Ebr.create ~max_threads:2 () in
  Ebr.enter e ~tid:1;
  Ebr.try_advance e;
  let e1 = Ebr.epoch e in
  Ebr.try_advance e;
  Alcotest.(check int) "active reader pins the epoch" e1 (Ebr.epoch e);
  Ebr.exit e ~tid:1;
  Ebr.try_advance e;
  Alcotest.(check int) "released after exit" (e1 + 1) (Ebr.epoch e)

let test_no_premature_destruction () =
  (* Thread 1 sits in a critical section; objects retired meanwhile must
     not be destroyed until it leaves, no matter how hard we flush. *)
  let e = Ebr.create ~max_threads:2 () in
  let destroyed = ref false in
  Ebr.enter e ~tid:1;
  Ebr.retire e ~tid:0 (fun () -> destroyed := true);
  for _ = 1 to 10 do
    Ebr.flush e ~tid:0
  done;
  Alcotest.(check bool) "protected while reader active" false !destroyed;
  Ebr.exit e ~tid:1;
  Ebr.flush e ~tid:0;
  Alcotest.(check bool) "destroyed after reader exits" true !destroyed

let test_guard_exception_safety () =
  let e = Ebr.create ~max_threads:1 () in
  (try Ebr.guard e ~tid:0 (fun () -> failwith "boom") with Failure _ -> ());
  Ebr.try_advance e;
  let e0 = Ebr.epoch e in
  Ebr.try_advance e;
  Alcotest.(check bool) "slot released despite exception" true
    (Ebr.epoch e > e0 - 1)

(* A realistic integration: a Treiber-like structure where popped nodes
   hold a "resource" released via EBR. Concurrent readers traverse under
   guard; the resource must never be observed released during traversal. *)
let test_concurrent_no_use_after_free () =
  let threads = 4 in
  let e = Ebr.create ~max_threads:threads () in
  let module A = Stdlib.Atomic in
  (* Shared cell holding a "node": (payload, live flag). Writers swap in a
     fresh node and retire the old one; readers guard, read, and check
     liveness twice with work in between. *)
  let make_node v = (v, A.make true) in
  let cell = A.make (make_node 0) in
  let violations = A.make 0 in
  let stop = A.make false in
  let writer tid () =
    for i = 1 to 3_000 do
      let fresh = make_node i in
      let old = A.exchange cell fresh in
      let _, live = old in
      Ebr.retire e ~tid (fun () -> A.set live false)
    done;
    A.set stop true
  in
  let reader tid () =
    while not (A.get stop) do
      Ebr.guard e ~tid (fun () ->
          let _, live = A.get cell in
          if not (A.get live) then A.incr violations;
          P.relax 50;
          if not (A.get live) then A.incr violations)
    done
  in
  let ds =
    Domain.spawn (writer 0)
    :: List.init (threads - 1) (fun i -> Domain.spawn (reader (i + 1)))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no reader saw a freed node" 0 (A.get violations);
  Ebr.flush e ~tid:0;
  let s = Ebr.stats e in
  Alcotest.(check int) "all retirements recorded" 3_000 s.Ebr.retired

let test_sweep_threshold_amortisation () =
  (* With threshold 4, reclamation happens without explicit flushes. *)
  let e = Ebr.create ~max_threads:1 ~sweep_threshold:4 () in
  let freed = ref 0 in
  for _ = 1 to 100 do
    Ebr.retire e ~tid:0 (fun () -> incr freed)
  done;
  Alcotest.(check bool) "amortised sweeping reclaimed most" true (!freed > 50)

let test_ebr_under_simulation () =
  (* Deterministic high-thread-count run in the simulator. *)
  let reclaimed, _ =
    Sec_sim.Sim.run ~topology:Sec_sim.Topology.testbox (fun () ->
        let e = SimEbr.create ~max_threads:8 ~sweep_threshold:4 () in
        let freed = Sec_sim.Sim.Prim.Atomic.make 0 in
        for _ = 1 to 8 do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              for _ = 1 to 100 do
                SimEbr.guard e ~tid (fun () -> Sec_sim.Sim.Prim.relax 5);
                SimEbr.retire e ~tid (fun () ->
                    Sec_sim.Sim.Prim.Atomic.incr freed)
              done)
        done;
        Sec_sim.Sim.await_all ();
        for tid = 0 to 7 do
          SimEbr.flush e ~tid
        done;
        Sec_sim.Sim.Prim.Atomic.get freed)
  in
  Alcotest.(check int) "all retired objects reclaimed" 800 reclaimed

let test_flush_idempotent_shutdown () =
  (* The shutdown protocol: once every thread is quiescent, flushing each
     thread leaves nothing pending; further flushes are no-ops (the epoch
     does not move, nothing is destroyed twice). *)
  let e = Ebr.create ~max_threads:2 () in
  let freed = ref 0 in
  for _ = 1 to 5 do
    Ebr.retire e ~tid:0 (fun () -> incr freed)
  done;
  for _ = 1 to 3 do
    Ebr.retire e ~tid:1 (fun () -> incr freed)
  done;
  Ebr.flush e ~tid:0;
  Ebr.flush e ~tid:1;
  Alcotest.(check int) "shutdown leaves nothing pending" 0
    (Ebr.stats e).Ebr.pending;
  Alcotest.(check int) "every destructor ran" 8 !freed;
  let epoch0 = Ebr.epoch e in
  Ebr.flush e ~tid:0;
  Ebr.flush e ~tid:1;
  Ebr.flush e ~tid:0;
  Alcotest.(check int) "empty flush does not move the epoch" epoch0
    (Ebr.epoch e);
  Alcotest.(check int) "empty flush destroys nothing" 8 !freed;
  Alcotest.(check int) "still nothing pending" 0 (Ebr.stats e).Ebr.pending

(* -------------------------------------------------------------------- *)
(* Reclamation-checked exploration: the shadow heap (installed by
   [Explore.for_all ~check_reclamation:true]) must stay silent on the
   real reclaimed structures, and must catch seeded discipline bugs. *)

module Explore = Sec_sim.Explore
module Chk = Sec_analysis.Reclaim_checker
module SP = Sec_sim.Sim.Prim
module RS = Sec_reclaim.Reclaimed_stack.Make (SP)

let stack_scenario (module M : Sec_spec.Stack_intf.MAKER) () =
  let module St = M (SP) in
  let s = St.create ~max_threads:2 () in
  St.push s ~tid:0 100;
  let results = Array.make 2 [] in
  let fiber slot () =
    St.push s ~tid:slot slot;
    match St.pop s ~tid:slot with
    | Some v -> results.(slot) <- [ v ]
    | None -> ()
  in
  ( [ fiber 0; fiber 1 ],
    fun () ->
      let rec drain acc =
        match St.pop s ~tid:0 with Some v -> drain (v :: acc) | None -> acc
      in
      let all = results.(0) @ results.(1) @ drain [] in
      List.sort compare all = [ 0; 1; 100 ] )

(* Reclaimed_stack through its own interface (push takes [~on_reclaim]),
   with a full shutdown flush in the final check so the checker sees the
   complete lifecycle of every node, reclaim included. *)
let reclaimed_stack_scenario () =
  let s = RS.create ~max_threads:2 () in
  RS.push s ~tid:0 100 ~on_reclaim:ignore;
  let fiber slot () =
    RS.push s ~tid:slot slot ~on_reclaim:ignore;
    ignore (RS.pop s ~tid:slot)
  in
  ( [ fiber 0; fiber 1 ],
    fun () ->
      let rec drain () =
        match RS.pop s ~tid:0 with Some _ -> drain () | None -> ()
      in
      drain ();
      RS.flush s ~tid:0;
      RS.flush s ~tid:1;
      (RS.reclamation_stats s).RS.Ebr.pending = 0 )

let sweep name scenario () =
  match
    Explore.for_all ~max_preemptions:1 ~quantum:6 ~max_schedules:2_000
      ~detect_races:true ~check_reclamation:true scenario
  with
  | Explore.Passed _ -> ()
  | other ->
      Alcotest.failf "%s: expected Passed, got %a" name Explore.pp_result
        other

(* -------------------------------------------------------------------- *)
(* Seeded mutants: an instrumented Treiber-over-EBR with a correct push
   and two classic discipline bugs in pop. The checker must catch both;
   these are regression tests for the checker itself. *)

module Mutant = struct
  module A = SP.Atomic

  type node = { value : int; next : node option; chk : int }
  type t = { top : node option A.t; ebr : SimEbr.t }

  let create () =
    { top = A.make_padded None; ebr = SimEbr.create ~max_threads:2 () }

  let push t ~tid v =
    SimEbr.guard t.ebr ~tid (fun () ->
        let chk = Chk.note_alloc ~fiber:tid in
        let rec attempt () =
          let cur = A.get t.top in
          if A.compare_and_set t.top cur (Some { value = v; next = cur; chk })
          then Chk.note_publish ~fiber:tid ~node:chk
          else attempt ()
        in
        attempt ())

  (* Seeded bug 1: the [Ebr.guard] wrapper was deleted — every node
     dereference races the retirement protocol. *)
  let pop_unguarded t ~tid =
    let rec attempt () =
      match A.get t.top with
      | None -> None
      | Some n as cur ->
          Chk.note_access ~fiber:tid ~node:n.chk;
          if A.compare_and_set t.top cur n.next then begin
            Chk.note_unlink ~fiber:tid ~node:n.chk;
            SimEbr.retire t.ebr ~tid ~chk:n.chk ignore;
            Some n.value
          end
          else attempt ()
    in
    attempt ()

  (* Seeded bug 2: the retire is not gated on winning the unlink CAS, so
     the loser of a pop race retires the same node a second time. *)
  let pop_double_retire t ~tid =
    SimEbr.guard t.ebr ~tid (fun () ->
        match A.get t.top with
        | None -> None
        | Some n as cur ->
            Chk.note_access ~fiber:tid ~node:n.chk;
            let won = A.compare_and_set t.top cur n.next in
            Chk.note_unlink ~fiber:tid ~node:n.chk;
            SimEbr.retire t.ebr ~tid ~chk:n.chk ignore;
            if won then Some n.value else None)
end

let missing_guard_scenario () =
  let s = Mutant.create () in
  Mutant.push s ~tid:0 100;
  ( [
      (fun () -> ignore (Mutant.pop_unguarded s ~tid:0));
      (fun () -> Mutant.push s ~tid:1 2);
    ],
    fun () -> true )

let double_retire_scenario () =
  let s = Mutant.create () in
  Mutant.push s ~tid:0 100;
  ( [
      (fun () -> ignore (Mutant.pop_double_retire s ~tid:0));
      (fun () -> ignore (Mutant.pop_double_retire s ~tid:1));
    ],
    fun () -> true )

let contains_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec scan i =
    if i + lb > ls then false else String.sub s i lb = sub || scan (i + 1)
  in
  scan 0

let test_missing_guard_flagged () =
  match
    Explore.for_all ~max_preemptions:1 ~quantum:6 ~max_schedules:500
      ~check_reclamation:true missing_guard_scenario
  with
  | Explore.Failed { kind = Explore.Reclamation_violation msg; _ } ->
      Alcotest.(check bool)
        ("an unguarded access is reported: " ^ msg)
        true
        (contains_sub msg "unguarded-access")
  | other ->
      Alcotest.failf "expected a reclamation violation, got %a"
        Explore.pp_result other

let test_double_retire_flagged_and_pinned () =
  match
    Explore.for_all ~max_preemptions:1 ~quantum:6 ~max_schedules:500
      ~check_reclamation:true double_retire_scenario
  with
  | Explore.Failed
      { kind = Explore.Reclamation_violation msg; schedule; _ } -> (
      Alcotest.(check bool)
        ("a double retire is reported: " ^ msg)
        true
        (contains_sub msg "double-retire");
      (* Pin the interleaving: round-trip the reproducing schedule
         through its string form and replay it against a fresh checker —
         the exact double-retire must come back. *)
      let schedule =
        Explore.schedule_of_string (Explore.schedule_to_string schedule)
      in
      let c = Chk.create () in
      match
        Explore.replay ~quantum:6 ~reclaim_checker:c ~schedule
          double_retire_scenario
      with
      | Explore.Ok_run _ ->
          let kinds =
            List.map (fun r -> r.Chk.kind) (Chk.reports c)
          in
          Alcotest.(check bool)
            "pinned replay reproduces the double retire" true
            (List.mem Chk.Double_retire kinds)
      | other ->
          Alcotest.failf "pinned replay did not complete (outcome %s)"
            (match other with
            | Explore.Ok_run _ -> "ok"
            | Explore.Raised m -> "raised " ^ m
            | Explore.Livelocked -> "livelock"))
  | other ->
      Alcotest.failf "expected a reclamation violation, got %a"
        Explore.pp_result other

let () =
  Alcotest.run "reclaim"
    [
      ( "epochs",
        [
          Alcotest.test_case "retire & flush" `Quick test_retire_and_flush;
          Alcotest.test_case "advance" `Quick test_epoch_advances;
          Alcotest.test_case "reader blocks advance" `Quick
            test_active_reader_blocks_advance;
          Alcotest.test_case "guard exception safety" `Quick
            test_guard_exception_safety;
          Alcotest.test_case "flush idempotent at shutdown" `Quick
            test_flush_idempotent_shutdown;
        ] );
      ( "safety",
        [
          Alcotest.test_case "no premature destruction" `Quick
            test_no_premature_destruction;
          Alcotest.test_case "concurrent use-after-free hunt" `Quick
            test_concurrent_no_use_after_free;
          Alcotest.test_case "amortised sweeping" `Quick
            test_sweep_threshold_amortisation;
        ] );
      ( "simulated",
        [ Alcotest.test_case "8 fibers" `Quick test_ebr_under_simulation ] );
      ( "reclamation-checked exploration",
        [
          Alcotest.test_case "clean: Reclaimed_stack" `Slow
            (sweep "Reclaimed_stack" reclaimed_stack_scenario);
          Alcotest.test_case "clean: TRB-EBR" `Slow
            (sweep "TRB-EBR"
               (stack_scenario (module Sec_reclaim.Treiber_ebr.Make)));
          Alcotest.test_case "clean: TSI-EBR" `Slow
            (sweep "TSI-EBR"
               (stack_scenario (module Sec_reclaim.Ts_stack_ebr.Make)));
          Alcotest.test_case "mutant: missing guard flagged" `Quick
            test_missing_guard_flagged;
          Alcotest.test_case "mutant: double retire flagged & pinned" `Quick
            test_double_retire_flagged_and_pinned;
        ] );
    ]
