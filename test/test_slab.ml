(* The wait-free slab allocator and off-heap arena (PR 10,
   lib/reclaim/slab.ml): chain-level slab semantics, park/adopt
   hand-off, arena handle lifecycle and remote-free batching, the
   reclaim checker's slab/arena shadow-heap contract (seeded
   double-free and use-after-release mutants caught under pinned
   replay), lockstep equivalence of the slab-backed stacks with their
   depot-backed and GC twins, and the cross-domain CAS claim the ISSUE
   gates on (slab strictly below depot), measured by the same
   microbenchmark `sec_bench alloc` runs. *)

module Slab = Sec_reclaim.Slab
module NSl = Sec_reclaim.Slab.Make (Sec_prim.Native)
module Chk = Sec_analysis.Reclaim_checker
module Topology = Sec_sim.Topology
module Sim = Sec_sim.Sim
module SP = Sim.Prim
module AB = Sec_harness.Alloc_bench

module type STACK = Sec_spec.Stack_intf.S

(* ------------------------------------------------------------------ *)
(* Slab store semantics (native substrate; one thread drives several
   tids, legal because no two tids ever run concurrently here). *)

let test_chain_round_trip () =
  let s = NSl.create ~chain_len:4 ~slab_chains:2 ~max_threads:2 () in
  Alcotest.(check int) "chain_len accessor" 4 (NSl.chain_len s);
  Alcotest.(check bool) "dry store misses" true (NSl.alloc_chain s ~tid:0 = None);
  let chain = (4, [ ref 1; ref 2; ref 3; ref 4 ]) in
  NSl.free_chain s ~tid:0 chain;
  (match NSl.alloc_chain s ~tid:0 with
  | Some (len, nodes) ->
      Alcotest.(check int) "length survives" 4 len;
      Alcotest.(check bool) "same chain comes back" true (nodes == snd chain)
  | None -> Alcotest.fail "the freed chain should be allocatable");
  let st = NSl.stats s in
  Alcotest.(check int) "one chain in" 1 st.Slab.chain_puts;
  Alcotest.(check int) "one chain out" 1 st.Slab.chain_gets;
  Alcotest.(check int) "one miss tallied" 1 st.Slab.fresh

let test_park_and_adopt () =
  Slab.Global.reset ();
  (* slab_chains = 2: the second free_chain fills tid 0's active slab
     and parks it on the shared partial stack. *)
  let s = NSl.create ~chain_len:2 ~slab_chains:2 ~max_threads:4 () in
  NSl.free_chain s ~tid:0 (2, [ ref 1; ref 2 ]);
  NSl.free_chain s ~tid:0 (2, [ ref 3; ref 4 ]);
  let st = NSl.stats s in
  Alcotest.(check int) "full slab parked" 1 st.Slab.parks;
  Alcotest.(check int) "park kept its nodes pooled" 4 st.Slab.pooled;
  Alcotest.(check int) "one slab on the partial stack" 1 st.Slab.parked_slabs;
  (* tid 3 never freed anything: its first alloc adopts the parked
     slab in ONE CAS and drains both chains from it. *)
  (match NSl.alloc_chain s ~tid:3 with
  | Some (len, _) -> Alcotest.(check int) "adopted chain length" 2 len
  | None -> Alcotest.fail "adoption should refill tid 3");
  (match NSl.alloc_chain s ~tid:3 with
  | Some _ -> ()
  | None -> Alcotest.fail "the adopted slab held a second chain");
  let st = NSl.stats s in
  Alcotest.(check int) "one adoption" 1 st.Slab.adopts;
  Alcotest.(check int) "store drained" 0 st.Slab.pooled;
  (* the Global mirror saw the same wait-free traffic: no retries. *)
  let g = Slab.Global.snapshot () in
  Alcotest.(check int) "global parks" 1 g.Slab.Global.parks;
  Alcotest.(check int) "global adopts" 1 g.Slab.Global.adopts;
  Alcotest.(check int) "no lost CAS in a sequential run" 0
    (Slab.Global.cas_retries g)

let test_node_granular_faces () =
  let s = NSl.create ~chain_len:2 ~slab_chains:2 ~max_threads:2 () in
  let a = ref 1 and b = ref 2 in
  NSl.free s ~tid:0 a;
  NSl.free s ~tid:0 b;
  let got_b = match NSl.alloc s ~tid:0 with Some n -> n == b | _ -> false in
  Alcotest.(check bool) "loose list is LIFO" true got_b;
  let got_a = match NSl.alloc s ~tid:0 with Some n -> n == a | _ -> false in
  Alcotest.(check bool) "then the earlier node" true got_a;
  Alcotest.(check bool) "then dry" true (NSl.alloc s ~tid:0 = None)

let test_create_validates () =
  Alcotest.check_raises "chain_len must be positive"
    (Invalid_argument "Slab.create: chain_len must be at least 1") (fun () ->
      ignore (NSl.create ~chain_len:0 ()))

(* ------------------------------------------------------------------ *)
(* Off-heap arena semantics (native substrate). *)

let test_arena_round_trip_and_reuse () =
  let a = NSl.Arena.create ~slab_slots:8 ~max_slabs:2 ~max_threads:2 () in
  let h = NSl.Arena.alloc a ~tid:0 in
  NSl.Arena.set_value a h 42;
  NSl.Arena.set_link a h (-1);
  Alcotest.(check int) "value survives" 42 (NSl.Arena.get_value a h);
  Alcotest.(check int) "live counts the slot" 1 (NSl.Arena.live a);
  NSl.Arena.free a ~tid:0 h;
  Alcotest.(check int) "free empties the arena" 0 (NSl.Arena.live a);
  let h' = NSl.Arena.alloc a ~tid:0 in
  Alcotest.(check int) "owner free list is LIFO: same slot again" h h';
  NSl.Arena.free a ~tid:0 h';
  let st = NSl.Arena.stats a in
  Alcotest.(check int) "one slab carved" 1 st.Slab.carved;
  Alcotest.(check int) "no remote traffic" 0 st.Slab.remote_frees

let test_arena_remote_batching () =
  Slab.Global.reset ();
  let a =
    NSl.Arena.create ~slab_slots:16 ~max_slabs:2 ~max_threads:2
      ~remote_batch:4 ()
  in
  (* tid 0 owns the slab it carves; tid 1 frees remotely. *)
  let handles = Array.init 10 (fun _ -> NSl.Arena.alloc a ~tid:0) in
  Array.iter (fun h -> NSl.Arena.free a ~tid:1 h) handles;
  let st = NSl.Arena.stats a in
  Alcotest.(check int) "every free was remote" 10 st.Slab.remote_frees;
  (* batch size 4: 10 frees splice two full batches, 2 slots linger in
     the outbox until the explicit flush. *)
  Alcotest.(check int) "two full batches spliced" 2 st.Slab.remote_batches;
  NSl.Arena.flush_remote a ~tid:1;
  let st = NSl.Arena.stats a in
  Alcotest.(check int) "flush publishes the tail batch" 3
    st.Slab.remote_batches;
  Alcotest.(check int) "nothing live once published" 0 (NSl.Arena.live a);
  (* adoption is lazy: the owner drains its private free list (16-slot
     slab minus the 10 handed over = 6 slots) before touching the
     inbox; the 7th allocation finds the list dry and adopts all 10
     remote slots in one exchange, instead of carving a second slab. *)
  let drained = Array.init 6 (fun _ -> NSl.Arena.alloc a ~tid:0) in
  Alcotest.(check int) "no adoption while the free list holds out" 0
    (NSl.Arena.stats a).Slab.adopted;
  let h = NSl.Arena.alloc a ~tid:0 in
  Alcotest.(check int) "adoption recovered the remote slots" 10
    (NSl.Arena.stats a).Slab.adopted;
  Alcotest.(check int) "still one slab carved" 1
    (NSl.Arena.stats a).Slab.carved;
  NSl.Arena.free a ~tid:0 h;
  Array.iter (fun h -> NSl.Arena.free a ~tid:0 h) drained;
  (* occupancy gauge: everything pooled again. *)
  let g = Slab.Global.snapshot () in
  Alcotest.(check int) "pooled equals capacity" g.Slab.Global.capacity
    g.Slab.Global.pooled

let test_arena_exhaustion_raises () =
  let a = NSl.Arena.create ~slab_slots:2 ~max_slabs:1 ~max_threads:1 () in
  ignore (NSl.Arena.alloc a ~tid:0);
  ignore (NSl.Arena.alloc a ~tid:0);
  let raised =
    try
      ignore (NSl.Arena.alloc a ~tid:0);
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "a full chunk refuses to carve" true raised

(* ------------------------------------------------------------------ *)
(* The reclaim checker's slab/arena shadow heap: the lifecycle rules
   the new report kinds enforce, fed directly. *)

let test_checker_clean_slab_lifecycle () =
  let t = Chk.create () in
  let id = Chk.on_slot_alloc t ~fiber:0 ~slab:7 ~slot:3 in
  Chk.on_publish t ~fiber:0 ~node:id;
  Chk.on_unlink t ~fiber:0 ~node:id;
  Chk.on_retire t ~fiber:0 ~node:id;
  Chk.on_slot_free t ~fiber:0 ~slab:7 ~slot:3;
  (* the slot is free again: a second life is a fresh shadow node *)
  let id' = Chk.on_slot_alloc t ~fiber:1 ~slab:7 ~slot:3 in
  Alcotest.(check bool) "reincarnation gets a fresh id" true (id' <> id);
  Chk.on_slot_free t ~fiber:1 ~slab:7 ~slot:3;
  Chk.on_slab_release t ~fiber:0 ~slab:7;
  Alcotest.(check int) "clean lifecycle, no reports" 0
    (List.length (Chk.reports t))

let test_checker_slab_double_free () =
  let t = Chk.create () in
  let _id = Chk.on_slot_alloc t ~fiber:0 ~slab:1 ~slot:0 in
  Chk.on_slot_free t ~fiber:0 ~slab:1 ~slot:0;
  Chk.on_slot_free t ~fiber:1 ~slab:1 ~slot:0;
  match Chk.reports t with
  | [ r ] ->
      Alcotest.(check string) "kind" "slab-double-free"
        (Chk.kind_to_string r.Chk.kind)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_checker_two_owners_reported () =
  let t = Chk.create () in
  let _a = Chk.on_slot_alloc t ~fiber:0 ~slab:2 ~slot:5 in
  let _b = Chk.on_slot_alloc t ~fiber:1 ~slab:2 ~slot:5 in
  match Chk.reports t with
  | [ r ] ->
      Alcotest.(check string) "kind" "alloc-from-live-slab"
        (Chk.kind_to_string r.Chk.kind)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_checker_alloc_after_release () =
  let t = Chk.create () in
  Chk.on_slab_release t ~fiber:0 ~slab:3;
  ignore (Chk.on_slot_alloc t ~fiber:1 ~slab:3 ~slot:0);
  match Chk.reports t with
  | [ r ] ->
      Alcotest.(check string) "kind" "alloc-from-live-slab"
        (Chk.kind_to_string r.Chk.kind)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_checker_use_after_arena_release () =
  let t = Chk.create () in
  let id = Chk.on_slot_alloc t ~fiber:0 ~slab:4 ~slot:1 in
  Chk.on_publish t ~fiber:0 ~node:id;
  (* releasing the slab forces every resident node to Reclaimed... *)
  Chk.on_slab_release t ~fiber:0 ~slab:4;
  (* ...so a stale handle dereference is a use-after-reclaim. *)
  Chk.on_enter t ~fiber:1;
  Chk.on_access t ~fiber:1 ~node:id;
  Chk.on_exit t ~fiber:1;
  let kinds = List.map (fun r -> Chk.kind_to_string r.Chk.kind) (Chk.reports t) in
  Alcotest.(check bool)
    (Printf.sprintf "use-after-reclaim reported (got: %s)"
       (String.concat ", " kinds))
    true
    (List.mem "use-after-reclaim" kinds)

(* ------------------------------------------------------------------ *)
(* The same two mutants seeded into real arena runs on the simulator,
   with the checker installed: the shadow heap must catch them under
   every pinned seed (the runs are deterministic, so catching them once
   per seed IS the pinned replay). *)

module SimSl = Slab.Make (SP)

let arena_mutant_kinds ~seed mutate =
  let chk = Chk.create () in
  let (_ : unit), _ =
    Sim.run ~seed ~jitter:3 ~reclaim_checker:chk ~topology:Topology.testbox
      (fun () ->
        let a =
          SimSl.Arena.create ~slab_slots:8 ~max_slabs:2 ~max_threads:4 ()
        in
        Sim.spawn (fun () ->
            let tid = Sim.fiber_id () in
            let h = SimSl.Arena.alloc a ~tid in
            SimSl.Arena.set_value a h 1;
            mutate a ~tid h);
        Sim.await_all ())
  in
  List.map (fun r -> Chk.kind_to_string r.Chk.kind) (Chk.reports chk)

let test_sim_double_free_mutant_caught () =
  List.iter
    (fun seed ->
      let kinds =
        arena_mutant_kinds ~seed (fun a ~tid h ->
            SimSl.Arena.free a ~tid h;
            SimSl.Arena.free a ~tid h)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d catches the double free (got: %s)" seed
           (String.concat ", " kinds))
        true
        (List.mem "slab-double-free" kinds))
    [ 1; 2; 3 ]

let test_sim_alloc_after_release_mutant_caught () =
  List.iter
    (fun seed ->
      let kinds =
        arena_mutant_kinds ~seed (fun a ~tid h ->
            SimSl.Arena.free a ~tid h;
            SimSl.Arena.release a ~tid;
            ignore (SimSl.Arena.alloc a ~tid))
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d catches alloc-after-release (got: %s)" seed
           (String.concat ", " kinds))
        true
        (List.mem "alloc-from-live-slab" kinds))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Lockstep differentials: the slab-backed stacks are observationally
   identical to their depot-backed and GC twins. The phased workload
   (mixed ops, then a deep drain, then a refill) forces the magazines
   past capacity so chains really cross the slab store. *)

module NT = Sec_stacks.Treiber.Make (Sec_prim.Native)
module NE = Sec_reclaim.Treiber_ebr.Make (Sec_prim.Native)
module NS = Sec_reclaim.Treiber_ebr.Make_slab (Sec_prim.Native)
module NA = Sec_reclaim.Treiber_arena.Make (Sec_prim.Native)

let test_differential_three_way () =
  Slab.Global.reset ();
  let t = NT.create ~max_threads:1 () in
  let e = NE.create ~max_threads:1 () in
  let s = NS.create ~max_threads:1 () in
  let state = ref 0x2545F491 in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let step op =
    match op with
    | `Push i ->
        NT.push t ~tid:0 i;
        NE.push e ~tid:0 i;
        NS.push s ~tid:0 i
    | `Pop ->
        let a = NT.pop t ~tid:0
        and b = NE.pop e ~tid:0
        and c = NS.pop s ~tid:0 in
        Alcotest.(check (option int)) "pop agrees (EBR)" a b;
        Alcotest.(check (option int)) "pop agrees (SLAB)" a c
    | `Peek ->
        let a = NT.peek t ~tid:0
        and b = NE.peek e ~tid:0
        and c = NS.peek s ~tid:0 in
        Alcotest.(check (option int)) "peek agrees (EBR)" a b;
        Alcotest.(check (option int)) "peek agrees (SLAB)" a c
  in
  for i = 1 to 4_000 do
    match rand 5 with
    | 0 | 1 | 2 -> step (`Push i)
    | 3 -> step `Pop
    | _ -> step `Peek
  done;
  (* deep drain: hundreds of recycles overflow the magazines... *)
  for _ = 1 to 5_000 do
    step `Pop
  done;
  (* ...and the refill drains them back through the slab store. *)
  for i = 1 to 400 do
    step (`Push i)
  done;
  for _ = 1 to 500 do
    step `Pop
  done;
  let g = Slab.Global.snapshot () in
  Alcotest.(check bool)
    (Printf.sprintf "chains crossed the slab store (puts %d, gets %d)"
       g.Slab.Global.chain_puts g.Slab.Global.chain_gets)
    true
    (g.Slab.Global.chain_puts > 0 && g.Slab.Global.chain_gets > 0)

(* The off-heap arena stack against plain Treiber (int payloads: the
   arena is monomorphic by design — no Obj, lint rule 3). *)
let test_differential_arena () =
  let t = NT.create ~max_threads:1 () in
  let a = NA.create ~max_threads:1 ~slab_slots:64 ~max_slabs:64 () in
  let state = ref 0x9E3779B9 in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for i = 1 to 6_000 do
    match rand 5 with
    | 0 | 1 | 2 ->
        NT.push t ~tid:0 i;
        NA.push a ~tid:0 i
    | 3 ->
        let x = NT.pop t ~tid:0 and y = NA.pop a ~tid:0 in
        Alcotest.(check (option int)) "pop agrees (OFH)" x y
    | _ ->
        let x = NT.peek t ~tid:0 and y = NA.peek a ~tid:0 in
        Alcotest.(check (option int)) "peek agrees (OFH)" x y
  done;
  let rec drain () =
    let x = NT.pop t ~tid:0 and y = NA.pop a ~tid:0 in
    Alcotest.(check (option int)) "drain agrees (OFH)" x y;
    if x <> None then drain ()
  in
  drain ();
  NA.flush a ~tid:0;
  Alcotest.(check bool) "arena saw real carving" true
    ((NA.arena_stats a).Slab.carved > 0)

(* Under the simulator's interleavings: recorded histories of the
   slab-backed TRB stay linearizable against the LIFO spec, on the same
   pinned seeds the depot-backed twin is checked with. *)
module SimTrbSlab = Sec_reclaim.Treiber_ebr.Make_slab (SP)

let test_sim_linearizable_slab () =
  let module I = Sec_spec.History.Instrument (SP) (SimTrbSlab) in
  for seed = 1 to 6 do
    let events, _ =
      Sim.run ~seed ~jitter:40 ~topology:Topology.testbox (fun () ->
          let t = I.create ~max_threads:4 () in
          for _ = 1 to 4 do
            Sim.spawn (fun () ->
                let tid = Sim.fiber_id () in
                for i = 1 to 6 do
                  match SP.rand_int 5 with
                  | 0 | 1 -> I.push t ~tid ((tid * 1_000_000) + i)
                  | 2 | 3 -> ignore (I.pop t ~tid)
                  | _ -> ignore (I.peek t ~tid)
                done)
          done;
          Sim.await_all ();
          Sec_spec.History.events t.I.history)
    in
    match Sec_spec.Lin_check.check events with
    | Sec_spec.Lin_check.Linearizable -> ()
    | Sec_spec.Lin_check.Gave_up ->
        Printf.eprintf "[TRB-SLAB] lin check gave up (seed %d)\n%!" seed
    | Sec_spec.Lin_check.Not_linearizable ->
        Alcotest.failf "TRB-SLAB: seed %d produced a non-linearizable history"
          seed
  done

(* Fewer allocations than plain Treiber on the same pinned workload,
   counted by the simulator's first-class allocation statistic. *)
module SimTrb = Sec_stacks.Treiber.Make (SP)

let sim_allocs (module S : STACK) =
  let _, stats =
    Sim.run ~seed:11 ~jitter:3 ~topology:Topology.testbox (fun () ->
        let s = S.create ~max_threads:8 () in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              let tid = Sim.fiber_id () in
              for i = 1 to 300 do
                S.push s ~tid i;
                ignore (S.pop s ~tid)
              done)
        done;
        Sim.await_all ())
  in
  stats.Sim.allocs

let test_fewer_allocations_than_treiber () =
  let trb = sim_allocs (module SimTrb) in
  let slab = sim_allocs (module SimTrbSlab) in
  Alcotest.(check bool)
    (Printf.sprintf "TRB-SLAB allocates less (TRB %d, TRB-SLAB %d)" trb slab)
    true (slab < trb)

(* ------------------------------------------------------------------ *)
(* The acceptance bar of the ISSUE, as a pinned regression test: on the
   deterministic simulated microbenchmark (the same one `sec_bench
   alloc` runs), the slab path issues strictly fewer cross-domain CAS
   attempts than the depot path — in both the local and the
   producer/consumer phase. *)

let test_slab_strictly_fewer_cas () =
  List.iter
    (fun phase ->
      let depot =
        AB.run_sim ~threads:4 ~iters:50 ~burst:96 ~seed:1 ~mode:AB.Depot
          ~phase ()
      in
      let slab =
        AB.run_sim ~threads:4 ~iters:50 ~burst:96 ~seed:1 ~mode:AB.Slab ~phase
          ()
      in
      Alcotest.(check int) "same work" depot.AB.ops slab.AB.ops;
      Alcotest.(check bool)
        (Printf.sprintf "%s: slab %d < depot %d cross-domain CASes"
           (AB.phase_to_string phase) slab.AB.cross_cas depot.AB.cross_cas)
        true
        (slab.AB.cross_cas < depot.AB.cross_cas))
    [ AB.Local; AB.Remote ]

(* ------------------------------------------------------------------ *)
(* Crash/cancel refinement sweep over the slab-backed entry: every
   default refinement property (including the crash/cancel ones) under
   DPOR and the pinned weighted-random seeds. *)

let test_refine_slab_entry () =
  let module Registry = Sec_harness.Registry in
  let module Refine = Sec_refine.Refine in
  List.iter
    (fun (prop, strat, v) ->
      match v with
      | Refine.Refines _ -> ()
      | v ->
          Alcotest.failf "TRB-SLAB / %s / %s: %s" prop strat
            (Refine.verdict_to_string v))
    (Refine.check_entry ~max_schedules:300 ~runs:8 Registry.treiber_slab)

let () =
  Alcotest.run "slab"
    [
      ( "slab store",
        [
          Alcotest.test_case "chain round trip" `Quick test_chain_round_trip;
          Alcotest.test_case "park and adopt" `Quick test_park_and_adopt;
          Alcotest.test_case "node-granular faces" `Quick
            test_node_granular_faces;
          Alcotest.test_case "create validates" `Quick test_create_validates;
        ] );
      ( "arena",
        [
          Alcotest.test_case "round trip and slot reuse" `Quick
            test_arena_round_trip_and_reuse;
          Alcotest.test_case "remote-free batching" `Quick
            test_arena_remote_batching;
          Alcotest.test_case "exhaustion raises" `Quick
            test_arena_exhaustion_raises;
        ] );
      ( "checker contract",
        [
          Alcotest.test_case "clean lifecycle" `Quick
            test_checker_clean_slab_lifecycle;
          Alcotest.test_case "slab double free" `Quick
            test_checker_slab_double_free;
          Alcotest.test_case "two owners of one slot" `Quick
            test_checker_two_owners_reported;
          Alcotest.test_case "alloc after release" `Quick
            test_checker_alloc_after_release;
          Alcotest.test_case "use after arena release" `Quick
            test_checker_use_after_arena_release;
        ] );
      ( "seeded mutants (sim, pinned replay)",
        [
          Alcotest.test_case "double free caught" `Quick
            test_sim_double_free_mutant_caught;
          Alcotest.test_case "alloc after release caught" `Quick
            test_sim_alloc_after_release_mutant_caught;
        ] );
      ( "differential",
        [
          Alcotest.test_case "TRB vs TRB-EBR vs TRB-SLAB lockstep" `Quick
            test_differential_three_way;
          Alcotest.test_case "TRB vs TRB-OFH lockstep" `Quick
            test_differential_arena;
          Alcotest.test_case "sim histories linearizable" `Quick
            test_sim_linearizable_slab;
          Alcotest.test_case "fewer allocations than Treiber" `Quick
            test_fewer_allocations_than_treiber;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "slab strictly fewer cross-domain CAS" `Quick
            test_slab_strictly_fewer_cas;
          Alcotest.test_case "refinement sweep (TRB-SLAB)" `Slow
            test_refine_slab_entry;
        ] );
    ]
